//! The `holoar` command-line tool: run simulations, record and replay
//! sensing traces, and profile the hologram workload, all from a terminal.
//!
//! ```text
//! holoar simulate --video shoe --scheme inter-intra --frames 100
//! holoar trace record --video cup --frames 60 --out session.trace
//! holoar trace info session.trace
//! holoar trace replay session.trace --scheme intra
//! holoar profile --planes 16
//! ```

use holoar::core::{evaluation, executor, HoloArConfig, Planner, Scheme};
use holoar::gpusim::hologram_kernels::{job_kernels, HologramJob};
use holoar::gpusim::{Device, Profiler};
use holoar::pipeline::Battery;
use holoar::sensors::objectron::VideoCategory;
use holoar::sensors::trace::SessionTrace;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}' (try --help)")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

fn print_usage() {
    println!(
        "holoar — HoloAR reproduction toolkit\n\n\
         commands:\n  \
         simulate --video V --scheme S [--frames N] [--seed K]\n      \
         evaluate one video under one scheme on the simulated edge GPU\n  \
         trace record --video V [--frames N] [--seed K] --out FILE\n      \
         record a sensing session to a trace file\n  \
         trace info FILE\n      \
         summarize a trace file\n  \
         trace replay FILE [--scheme S]\n      \
         replay a trace through the planner/executor\n  \
         profile [--planes N]\n      \
         NVPROF-style profile of the hologram workload\n\n\
         videos:  bike book bottle cup laptop shoe\n\
         schemes: baseline inter intra inter-intra"
    );
}

/// Minimal flag parser: `--key value` pairs (positionals are consumed by
/// the subcommand dispatchers before flags are parsed).
struct Args {
    flags: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut flags = std::collections::HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value =
                    it.next().ok_or_else(|| format!("--{key} requires a value"))?;
                flags.insert(key.to_string(), value.clone());
            } else {
                return Err(format!("unexpected argument '{a}'"));
            }
        }
        Ok(Args { flags })
    }

    fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} expects an integer, got '{v}'")),
        }
    }

    fn video(&self) -> Result<VideoCategory, String> {
        let name = self.flags.get("video").map(String::as_str).unwrap_or("shoe");
        VideoCategory::ALL
            .iter()
            .copied()
            .find(|v| v.name() == name)
            .ok_or_else(|| format!("unknown video '{name}'"))
    }

    fn scheme(&self) -> Result<Scheme, String> {
        match self.flags.get("scheme").map(String::as_str).unwrap_or("inter-intra") {
            "baseline" => Ok(Scheme::Baseline),
            "inter" => Ok(Scheme::InterHolo),
            "intra" => Ok(Scheme::IntraHolo),
            "inter-intra" | "holoar" => Ok(Scheme::InterIntraHolo),
            other => Err(format!("unknown scheme '{other}'")),
        }
    }
}

fn cmd_simulate(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let video = args.video()?;
    let scheme = args.scheme()?;
    let frames = args.get_u64("frames", 100)?.max(1);
    let seed = args.get_u64("seed", 42)?;

    let mut device = Device::xavier();
    let baseline =
        evaluation::evaluate_video(&mut device, video, Scheme::Baseline, frames, seed);
    let result = evaluation::evaluate_video(&mut device, video, scheme, frames, seed);
    let battery = Battery::headset();

    println!("video {} / scheme {} / {} frames (seed {seed})", video.name(), scheme, frames);
    println!("  latency   {:.1} ms/frame ({:.2} fps)", result.mean_latency * 1e3, 1.0 / result.mean_latency);
    println!("  power     {:.2} W", result.mean_power);
    println!("  energy    {:.0} mJ/frame", result.mean_energy * 1e3);
    println!("  planes    {:.1}/frame (reuse {:.0}%)", result.mean_planes, result.reuse_fraction * 100.0);
    println!("  battery   {:.1} h at this draw", battery.runtime_hours(result.mean_power));
    if scheme != Scheme::Baseline {
        println!(
            "  vs baseline: {:.2}x speedup, {:.0}% energy savings",
            baseline.mean_latency / result.mean_latency,
            100.0 * (1.0 - result.mean_energy / baseline.mean_energy)
        );
    }
    Ok(())
}

fn cmd_trace(rest: &[String]) -> Result<(), String> {
    match rest.first().map(String::as_str) {
        Some("record") => {
            let args = Args::parse(&rest[1..])?;
            let video = args.video()?;
            let frames = args.get_u64("frames", 60)?.max(1);
            let seed = args.get_u64("seed", 42)?;
            let out = args
                .flags
                .get("out")
                .ok_or("trace record requires --out FILE")?;
            let trace = SessionTrace::record(video, frames, seed);
            std::fs::write(out, trace.serialize())
                .map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("recorded {} frames of {} -> {out}", trace.len(), video.name());
            Ok(())
        }
        Some("info") => {
            let path = rest.get(1).ok_or("trace info requires a FILE")?;
            let trace = load_trace(path)?;
            let objects: usize = trace.frames.iter().map(|f| f.frame.objects.len()).sum();
            println!("{path}: {} frames, {:.2} objects/frame", trace.len(), objects as f64 / trace.len() as f64);
            if let Some(first) = trace.frames.first() {
                println!(
                    "  first frame: {} objects, pose ({:.1}°, {:.1}°), gaze ({:.1}°, {:.1}°)",
                    first.frame.objects.len(),
                    first.pose.orientation.azimuth.to_degrees(),
                    first.pose.orientation.elevation.to_degrees(),
                    first.gaze.azimuth.to_degrees(),
                    first.gaze.elevation.to_degrees()
                );
            }
            Ok(())
        }
        Some("replay") => {
            let path = rest.get(1).ok_or("trace replay requires a FILE")?;
            let args = Args::parse(&rest[2..])?;
            let scheme = args.scheme()?;
            let trace = load_trace(path)?;
            let mut device = Device::xavier();
            let mut planner = Planner::new(HoloArConfig::for_scheme(scheme))
                .map_err(|e| format!("bad configuration: {e}"))?;
            let mut latency = 0.0;
            let mut energy = 0.0;
            for tf in &trace.frames {
                let plan = planner.plan_frame(&tf.frame, &tf.pose, tf.gaze, 0.0044);
                let perf = executor::execute_plan(&mut device, &plan);
                latency += perf.latency;
                energy += perf.energy;
            }
            let n = trace.len() as f64;
            println!(
                "replayed {} frames under {}: {:.1} ms/frame, {:.0} mJ/frame",
                trace.len(),
                scheme,
                latency / n * 1e3,
                energy / n * 1e3
            );
            Ok(())
        }
        _ => Err("trace expects record | info | replay".into()),
    }
}

fn load_trace(path: &str) -> Result<SessionTrace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    SessionTrace::parse(&text).map_err(|e| e.to_string())
}

fn cmd_profile(rest: &[String]) -> Result<(), String> {
    let args = Args::parse(rest)?;
    let planes = args.get_u64("planes", 16)?.clamp(1, 256) as u32;
    let mut device = Device::xavier();
    let mut profiler = Profiler::new();
    let job = HologramJob::full(planes);
    for stats in device.execute_all(&job_kernels(&job)) {
        profiler.record(&stats);
    }
    print!("{}", profiler.report());
    println!("total hologram latency: {:.1} ms ({planes} planes, 5 GSW iterations)", device.busy_time() * 1e3);
    Ok(())
}
