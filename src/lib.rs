//! Umbrella crate for the HoloAR reproduction workspace.
//!
//! Re-exports every layer under one roof — the from-scratch FFT ([`fft`]),
//! the wave-optics CGH engine ([`optics`]), the edge-GPU simulator
//! ([`gpusim`]), the synthetic sensing substrates ([`sensors`]), the quality
//! metrics ([`metrics`]), the AR pipeline harness ([`pipeline`]) and the
//! HoloAR framework itself ([`core`]).
//!
//! # Examples
//!
//! The paper's result in six lines — approximation buys a large energy
//! saving at the same displayed scene:
//!
//! ```
//! use holoar::core::{evaluation, Scheme};
//! use holoar::gpusim::Device;
//! use holoar::sensors::objectron::VideoCategory;
//!
//! let mut device = Device::xavier();
//! let baseline = evaluation::evaluate_video(
//!     &mut device, VideoCategory::Cup, Scheme::Baseline, 20, 42);
//! let holoar = evaluation::evaluate_video(
//!     &mut device, VideoCategory::Cup, Scheme::InterIntraHolo, 20, 42);
//! assert!(holoar.mean_energy < 0.6 * baseline.mean_energy);
//! assert!(holoar.mean_latency < baseline.mean_latency);
//! ```

#![forbid(unsafe_code)]

pub use holoar_core as core;
pub use holoar_fft as fft;
pub use holoar_gpusim as gpusim;
pub use holoar_metrics as metrics;
pub use holoar_optics as optics;
pub use holoar_pipeline as pipeline;
pub use holoar_sensors as sensors;
