//! Reference discrete Fourier transform in `O(n²)`.
//!
//! Used as the correctness oracle for the fast transforms and for tiny sizes
//! where planning overhead is not worth it. The sign convention matches the
//! engineering convention used throughout the optics crate:
//! forward `X_k = Σ x_n · e^{-2πikn/N}`, inverse with `+` and a `1/N` factor.

use crate::complex::Complex64;

/// Computes the forward DFT of `input`, returning a new vector.
///
/// # Examples
///
/// ```
/// use holoar_fft::{dft, Complex64};
/// // A constant signal transforms to a single DC bin.
/// let x = vec![Complex64::ONE; 4];
/// let spectrum = dft::forward(&x);
/// assert!((spectrum[0].re - 4.0).abs() < 1e-12);
/// assert!(spectrum[1].norm() < 1e-12);
/// ```
pub fn forward(input: &[Complex64]) -> Vec<Complex64> {
    transform(input, -1.0)
}

/// Computes the inverse DFT of `input` (including the `1/N` normalization),
/// returning a new vector.
///
/// # Examples
///
/// ```
/// use holoar_fft::{dft, Complex64};
/// let x = vec![Complex64::new(1.0, 0.5), Complex64::new(-2.0, 0.0)];
/// let back = dft::inverse(&dft::forward(&x));
/// assert!((back[0] - x[0]).norm() < 1e-12);
/// ```
pub fn inverse(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    let mut out = transform(input, 1.0);
    if n > 0 {
        let k = 1.0 / n as f64;
        for v in &mut out {
            *v = v.scale(k);
        }
    }
    out
}

fn transform(input: &[Complex64], sign: f64) -> Vec<Complex64> {
    let n = input.len();
    let mut out = vec![Complex64::ZERO; n];
    if n == 0 {
        return out;
    }
    let base = sign * 2.0 * std::f64::consts::PI / n as f64;
    for (k, out_k) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (j, &x) in input.iter().enumerate() {
            // (k * j) % n keeps the angle small for numerical stability on
            // long inputs.
            let angle = base * ((k * j) % n) as f64;
            acc += x * Complex64::cis(angle);
        }
        *out_k = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        assert!(forward(&[]).is_empty());
        assert!(inverse(&[]).is_empty());
    }

    #[test]
    fn single_element_is_identity() {
        let x = [Complex64::new(2.0, -3.0)];
        assert_eq!(forward(&x)[0], x[0]);
        assert_eq!(inverse(&x)[0], x[0]);
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        for bin in forward(&x) {
            assert!((bin - Complex64::ONE).norm() < 1e-12);
        }
    }

    #[test]
    fn shifted_impulse_has_linear_phase() {
        let n = 16;
        let mut x = vec![Complex64::ZERO; n];
        x[1] = Complex64::ONE;
        let spec = forward(&x);
        for (k, bin) in spec.iter().enumerate() {
            let want = Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64);
            assert!((*bin - want).norm() < 1e-10);
        }
    }

    #[test]
    fn roundtrip_recovers_signal() {
        let x: Vec<Complex64> = (0..13)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let back = inverse(&forward(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((*a - *b).norm() < 1e-10);
        }
    }

    #[test]
    fn parseval_energy_identity() {
        let x: Vec<Complex64> =
            (0..10).map(|i| Complex64::new(i as f64, -(i as f64) * 0.3)).collect();
        let spec = forward(&x);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }
}
