//! In-place iterative radix-2 Cooley–Tukey FFT for power-of-two lengths.
//!
//! The planner ([`crate::plan`]) decides when this path applies; the functions
//! here assume (and assert) the length is a power of two. Twiddle factors are
//! precomputed once per plan so repeated transforms of the same size — the
//! common case when propagating many depth planes of identical resolution —
//! pay no trigonometry.
//!
//! # Twiddle layout
//!
//! The butterfly loop of pass `len` historically read a master length-`n/2`
//! table at stride `n/len`, so early passes touched one cache line per
//! twiddle. The plan now stores **per-stage contiguous tables** (flattened
//! into one buffer, `n−1` entries per direction): each pass walks its
//! twiddles sequentially, and the inverse direction gets its own
//! pre-conjugated table so the hot loop carries no `invert` branch. The
//! values are copied from the same `f64`-evaluated master table, so results
//! are unchanged.

use crate::complex::Complex;
use crate::real::Real;

/// Precomputed state for radix-2 transforms of one fixed length.
///
/// Generic over scalar precision; `Radix2Plan` in type positions defaults to
/// the `f64` reference precision.
#[derive(Debug, Clone)]
pub struct Radix2Plan<T: Real = f64> {
    n: usize,
    /// Forward per-stage twiddles, stages concatenated smallest first:
    /// pass `len` owns the `len/2` entries `e^{-2πik/len}`, `k < len/2`.
    fwd: Vec<Complex<T>>,
    /// The same layout, conjugated, for the inverse direction.
    inv: Vec<Complex<T>>,
    /// Bit-reversal permutation indices.
    rev: Vec<u32>,
}

impl<T: Real> Radix2Plan<T> {
    /// Builds a plan for length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or is zero.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "radix-2 plan requires a power-of-two length, got {n}");
        let half = n / 2;
        // Master table in f64: e^{-2πik/n} for k < n/2. Per-stage tables are
        // copies of these values (stage `len` reads stride n/len), narrowed
        // once, so both precisions derive from the same f64 trigonometry.
        let mut master = Vec::with_capacity(half);
        for k in 0..half {
            master.push(Complex::<T>::cis_f64(-2.0 * std::f64::consts::PI * k as f64 / n as f64));
        }
        let mut fwd = Vec::with_capacity(n.saturating_sub(1));
        let mut inv = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2;
        while len <= n {
            let stride = n / len;
            for k in 0..len / 2 {
                let w = master[k * stride];
                fwd.push(w);
                inv.push(w.conj());
            }
            len *= 2;
        }
        let bits = n.trailing_zeros();
        let mut rev = vec![0u32; n];
        for (i, r) in rev.iter_mut().enumerate() {
            // For n == 1 (bits == 0) the clamped shift still maps the one
            // index to 0, so no special case is needed.
            *r = (i as u32).reverse_bits() >> (32 - bits.max(1));
        }
        Radix2Plan { n, fwd, inv, rev }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan length is zero (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward transform, in place. `buf.len()` must equal [`Self::len`].
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn forward(&self, buf: &mut [Complex<T>]) {
        self.run(buf, &self.fwd);
    }

    /// Inverse transform, in place, including the `1/n` normalization.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn inverse(&self, buf: &mut [Complex<T>]) {
        self.run(buf, &self.inv);
        let k = T::from_usize(self.n).recip();
        for v in buf.iter_mut() {
            *v = v.scale(k);
        }
    }

    fn run(&self, buf: &mut [Complex<T>], stage_twiddles: &[Complex<T>]) {
        let n = self.n;
        assert_eq!(buf.len(), n, "buffer length {} does not match plan length {n}", buf.len());
        if n == 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        // Butterfly passes: pass `len` reads its own contiguous twiddle
        // table at `stage_twiddles[base..base + len/2]`.
        let mut len = 2;
        let mut base = 0;
        while len <= n {
            let half = len / 2;
            let twiddles = &stage_twiddles[base..base + half];
            for start in (0..n).step_by(len) {
                for (k, w) in twiddles.iter().enumerate() {
                    let a = buf[start + k];
                    let b = buf[start + k + half] * *w;
                    buf[start + k] = a + b;
                    buf[start + k + half] = a - b;
                }
            }
            base += half;
            len *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{Complex32, Complex64};
    use crate::dft;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).norm() < tol, "{x} vs {y}");
        }
    }

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect()
    }

    #[test]
    fn matches_reference_dft_across_sizes() {
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let x = signal(n);
            let mut fast = x.clone();
            Radix2Plan::new(n).forward(&mut fast);
            assert_close(&fast, &dft::forward(&x), 1e-9 * n as f64);
        }
    }

    #[test]
    fn inverse_matches_reference() {
        let n = 32;
        let x = signal(n);
        let mut fast = x.clone();
        Radix2Plan::new(n).inverse(&mut fast);
        assert_close(&fast, &dft::inverse(&x), 1e-10);
    }

    #[test]
    fn roundtrip_is_identity() {
        let n = 128;
        let plan = Radix2Plan::new(n);
        let x = signal(n);
        let mut buf = x.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        assert_close(&buf, &x, 1e-10);
    }

    #[test]
    fn length_one_is_identity() {
        let plan = Radix2Plan::new(1);
        let mut buf = [Complex64::new(5.0, -1.0)];
        plan.forward(&mut buf);
        assert_eq!(buf[0], Complex64::new(5.0, -1.0));
        plan.inverse(&mut buf);
        assert_eq!(buf[0], Complex64::new(5.0, -1.0));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        Radix2Plan::<f64>::new(12);
    }

    #[test]
    #[should_panic(expected = "does not match plan length")]
    fn rejects_wrong_buffer_length() {
        let plan = Radix2Plan::new(8);
        let mut buf = vec![Complex64::ZERO; 4];
        plan.forward(&mut buf);
    }

    #[test]
    fn plan_reuse_is_consistent() {
        let plan = Radix2Plan::new(64);
        let x = signal(64);
        let mut a = x.clone();
        let mut b = x.clone();
        plan.forward(&mut a);
        plan.forward(&mut b);
        assert_close(&a, &b, 0.0 + f64::EPSILON);
    }

    #[test]
    fn f32_plan_tracks_f64_reference() {
        for n in [4usize, 16, 128] {
            let x = signal(n);
            let mut narrow: Vec<Complex32> = x.iter().map(|z| z.to_c32()).collect();
            Radix2Plan::new(n).forward(&mut narrow);
            let wide = dft::forward(&x);
            for (a, b) in narrow.iter().zip(&wide) {
                assert!(
                    (a.to_c64() - *b).norm() < 1e-3 * n as f64,
                    "n={n}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn f32_roundtrip_is_near_identity() {
        let n = 64;
        let plan: Radix2Plan<f32> = Radix2Plan::new(n);
        let x: Vec<Complex32> = signal(n).iter().map(|z| z.to_c32()).collect();
        let mut buf = x.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&x) {
            assert!((*a - *b).norm() < 1e-4);
        }
    }
}
