//! In-place iterative radix-2 Cooley–Tukey FFT for power-of-two lengths.
//!
//! The planner ([`crate::plan`]) decides when this path applies; the functions
//! here assume (and assert) the length is a power of two. Twiddle factors are
//! precomputed once per plan so repeated transforms of the same size — the
//! common case when propagating many depth planes of identical resolution —
//! pay no trigonometry.

use crate::complex::Complex64;

/// Precomputed state for radix-2 transforms of one fixed length.
#[derive(Debug, Clone)]
pub struct Radix2Plan {
    n: usize,
    /// Twiddles for the *forward* transform: `e^{-2πik/n}` for `k < n/2`.
    twiddles: Vec<Complex64>,
    /// Bit-reversal permutation indices.
    rev: Vec<u32>,
}

impl Radix2Plan {
    /// Builds a plan for length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or is zero.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "radix-2 plan requires a power-of-two length, got {n}");
        let half = n / 2;
        let mut twiddles = Vec::with_capacity(half);
        for k in 0..half {
            twiddles.push(Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64));
        }
        let bits = n.trailing_zeros();
        let mut rev = vec![0u32; n];
        for (i, r) in rev.iter_mut().enumerate() {
            // For n == 1 (bits == 0) the clamped shift still maps the one
            // index to 0, so no special case is needed.
            *r = (i as u32).reverse_bits() >> (32 - bits.max(1));
        }
        Radix2Plan { n, twiddles, rev }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan length is zero (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward transform, in place. `buf.len()` must equal [`Self::len`].
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn forward(&self, buf: &mut [Complex64]) {
        self.run(buf, false);
    }

    /// Inverse transform, in place, including the `1/n` normalization.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn inverse(&self, buf: &mut [Complex64]) {
        self.run(buf, true);
        let k = 1.0 / self.n as f64;
        for v in buf.iter_mut() {
            *v = v.scale(k);
        }
    }

    fn run(&self, buf: &mut [Complex64], invert: bool) {
        let n = self.n;
        assert_eq!(buf.len(), n, "buffer length {} does not match plan length {n}", buf.len());
        if n == 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        // Butterfly passes. `stride` is how far apart consecutive twiddles of
        // this pass sit in the length-n/2 twiddle table.
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let mut w = self.twiddles[k * stride];
                    if invert {
                        w = w.conj();
                    }
                    let a = buf[start + k];
                    let b = buf[start + k + half] * w;
                    buf[start + k] = a + b;
                    buf[start + k + half] = a - b;
                }
            }
            len *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).norm() < tol, "{x} vs {y}");
        }
    }

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect()
    }

    #[test]
    fn matches_reference_dft_across_sizes() {
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let x = signal(n);
            let mut fast = x.clone();
            Radix2Plan::new(n).forward(&mut fast);
            assert_close(&fast, &dft::forward(&x), 1e-9 * n as f64);
        }
    }

    #[test]
    fn inverse_matches_reference() {
        let n = 32;
        let x = signal(n);
        let mut fast = x.clone();
        Radix2Plan::new(n).inverse(&mut fast);
        assert_close(&fast, &dft::inverse(&x), 1e-10);
    }

    #[test]
    fn roundtrip_is_identity() {
        let n = 128;
        let plan = Radix2Plan::new(n);
        let x = signal(n);
        let mut buf = x.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        assert_close(&buf, &x, 1e-10);
    }

    #[test]
    fn length_one_is_identity() {
        let plan = Radix2Plan::new(1);
        let mut buf = [Complex64::new(5.0, -1.0)];
        plan.forward(&mut buf);
        assert_eq!(buf[0], Complex64::new(5.0, -1.0));
        plan.inverse(&mut buf);
        assert_eq!(buf[0], Complex64::new(5.0, -1.0));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        Radix2Plan::new(12);
    }

    #[test]
    #[should_panic(expected = "does not match plan length")]
    fn rejects_wrong_buffer_length() {
        let plan = Radix2Plan::new(8);
        let mut buf = vec![Complex64::ZERO; 4];
        plan.forward(&mut buf);
    }

    #[test]
    fn plan_reuse_is_consistent() {
        let plan = Radix2Plan::new(64);
        let x = signal(64);
        let mut a = x.clone();
        let mut b = x.clone();
        plan.forward(&mut a);
        plan.forward(&mut b);
        assert_close(&a, &b, 0.0 + f64::EPSILON);
    }
}
