//! From-scratch FFT substrate for the HoloAR reproduction.
//!
//! The holographic pipeline is built on discrete Fourier transforms: the
//! angular-spectrum propagation between the hologram plane and each depth
//! plane is two 2-D FFTs around a transfer-function multiply. The workspace
//! avoids external numeric dependencies, so this crate supplies everything the
//! optics layer needs:
//!
//! * [`Complex64`]/[`Complex32`] — complex arithmetic over either scalar
//!   precision (the [`Real`] trait abstracts `f32`/`f64`; `f64` is the
//!   bit-identity reference, `f32` the quality-gated throughput path
//!   selected via [`context::Precision`]),
//! * [`dft`] — an `O(n²)` reference transform used as the test oracle,
//! * [`FftPlanner`]/[`FftPlan`] — cached fast transforms (radix-2
//!   Cooley–Tukey for powers of two, Bluestein chirp-z otherwise), with
//!   per-stage contiguous twiddle tables precomputed at plan time,
//! * [`Fft2d`], [`fftshift`], [`ifftshift`] — separable 2-D transforms with
//!   a cache-blocked transpose between passes and a packed real-input row
//!   kernel that [`Fft2d::forward`] auto-dispatches to on amplitude planes.
//!
//! # Examples
//!
//! ```
//! use holoar_fft::{Fft2d, Complex64};
//!
//! // Propagation-style usage: transform, filter, transform back.
//! let fft = Fft2d::new(8, 8);
//! let mut field = vec![Complex64::ONE; 64];
//! fft.forward(&mut field);
//! for bin in field.iter_mut().skip(1) {
//!     *bin = Complex64::ZERO; // keep only DC
//! }
//! fft.inverse(&mut field);
//! assert!((field[10] - Complex64::ONE).norm() < 1e-9);
//! ```

#![forbid(unsafe_code)]

pub mod bluestein;
pub mod complex;
pub mod context;
pub mod dft;
pub mod fft2d;
pub mod parallel;
pub mod plan;
pub mod radix2;
pub mod real;

pub use bluestein::BluesteinPlan;
pub use complex::{Complex, Complex32, Complex64};
pub use context::{ExecutionContext, ExecutionContextBuilder, Precision};
pub use fft2d::{fftshift, ifftshift, transpose_into, Fft2d};
pub use parallel::{lock_unpoisoned, Parallelism, ScratchArena};
pub use plan::{fft_forward, fft_inverse, global_cached_len_count, FftPlan, FftPlanner};
pub use radix2::Radix2Plan;
pub use real::Real;
