//! From-scratch FFT substrate for the HoloAR reproduction.
//!
//! The holographic pipeline is built on discrete Fourier transforms: the
//! angular-spectrum propagation between the hologram plane and each depth
//! plane is two 2-D FFTs around a transfer-function multiply. The workspace
//! avoids external numeric dependencies, so this crate supplies everything the
//! optics layer needs:
//!
//! * [`Complex64`] — complex arithmetic,
//! * [`dft`] — an `O(n²)` reference transform used as the test oracle,
//! * [`FftPlanner`]/[`FftPlan`] — cached fast transforms (radix-2
//!   Cooley–Tukey for powers of two, Bluestein chirp-z otherwise),
//! * [`Fft2d`], [`fftshift`], [`ifftshift`] — separable 2-D transforms.
//!
//! # Examples
//!
//! ```
//! use holoar_fft::{Fft2d, Complex64};
//!
//! // Propagation-style usage: transform, filter, transform back.
//! let fft = Fft2d::new(8, 8);
//! let mut field = vec![Complex64::ONE; 64];
//! fft.forward(&mut field);
//! for bin in field.iter_mut().skip(1) {
//!     *bin = Complex64::ZERO; // keep only DC
//! }
//! fft.inverse(&mut field);
//! assert!((field[10] - Complex64::ONE).norm() < 1e-9);
//! ```

#![forbid(unsafe_code)]

pub mod bluestein;
pub mod complex;
pub mod context;
pub mod dft;
pub mod fft2d;
pub mod parallel;
pub mod plan;
pub mod radix2;

pub use bluestein::BluesteinPlan;
pub use complex::Complex64;
pub use context::{ExecutionContext, ExecutionContextBuilder};
pub use fft2d::{fftshift, ifftshift, Fft2d};
pub use parallel::{lock_unpoisoned, Parallelism, ScratchArena};
pub use plan::{fft_forward, fft_inverse, FftPlan, FftPlanner};
pub use radix2::Radix2Plan;
