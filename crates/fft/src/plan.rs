//! Transform planning: picks the right algorithm per length and caches the
//! precomputed state.
//!
//! [`FftPlanner`] is the entry point the rest of the workspace uses; the
//! optics crate keeps one planner per thread of work and transforms thousands
//! of rows/columns of the same length through it. Planners (and the
//! process-wide caches behind them) are per scalar precision: an f32 planner
//! hands out f32 tables and never touches the f64 cache.

use std::collections::HashMap;
use std::sync::Arc;

use crate::bluestein::BluesteinPlan;
use crate::complex::Complex;
use crate::radix2::Radix2Plan;
use crate::real::Real;

/// A ready-to-run FFT of one fixed length.
///
/// Cheap to clone (the heavy tables live behind an [`Arc`]).
///
/// # Examples
///
/// ```
/// use holoar_fft::{FftPlanner, Complex64};
///
/// let mut planner = FftPlanner::new();
/// let plan = planner.plan(8);
/// let mut buf = vec![Complex64::ONE; 8];
/// plan.forward(&mut buf);
/// assert!((buf[0].re - 8.0).abs() < 1e-12); // all energy in DC
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan<T: Real = f64> {
    algo: Arc<Algo<T>>,
}

#[derive(Debug)]
enum Algo<T: Real> {
    Radix2(Radix2Plan<T>),
    Bluestein(BluesteinPlan<T>),
}

impl<T: Real> FftPlan<T> {
    /// The transform length.
    pub fn len(&self) -> usize {
        match &*self.algo {
            Algo::Radix2(p) => p.len(),
            Algo::Bluestein(p) => p.len(),
        }
    }

    /// Whether the transform length is zero (never true for constructed plans).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forward transform, in place.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn forward(&self, buf: &mut [Complex<T>]) {
        match &*self.algo {
            Algo::Radix2(p) => p.forward(buf),
            Algo::Bluestein(p) => p.forward(buf),
        }
    }

    /// Inverse transform (with `1/n` normalization), in place.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn inverse(&self, buf: &mut [Complex<T>]) {
        match &*self.algo {
            Algo::Radix2(p) => p.inverse(buf),
            Algo::Bluestein(p) => p.inverse(buf),
        }
    }
}

/// Creates and caches [`FftPlan`]s keyed by length.
///
/// # Examples
///
/// ```
/// use holoar_fft::FftPlanner;
///
/// let mut planner = FftPlanner::new();
/// let a = planner.plan(480); // Bluestein path
/// let b = planner.plan(512); // radix-2 path
/// assert_eq!(a.len(), 480);
/// assert_eq!(b.len(), 512);
/// # let mut buf = vec![holoar_fft::Complex64::ONE; 480];
/// # a.forward(&mut buf);
/// ```
#[derive(Debug, Default)]
pub struct FftPlanner<T: Real = f64> {
    cache: HashMap<usize, FftPlan<T>>,
}

impl<T: Real> FftPlanner<T> {
    /// Creates an empty planner.
    pub fn new() -> Self {
        FftPlanner { cache: HashMap::new() }
    }

    /// Returns a plan for length `n`, building and caching it on first use.
    ///
    /// Plans come from a process-wide thread-safe cache: the twiddle and
    /// chirp tables for each length are computed exactly once per process
    /// *per precision* and shared (behind an [`Arc`]) by every planner and
    /// every worker thread. The planner keeps a local lock-free mirror so
    /// repeated `plan()` calls on a hot path touch no lock after first use.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn plan(&mut self, n: usize) -> FftPlan<T> {
        assert!(n > 0, "cannot plan a zero-length transform");
        if let Some(plan) = self.cache.get(&n) {
            holoar_telemetry::counter_add("fft.plan_cache.local_hit", 1);
            return plan.clone();
        }
        let plan = global_plan::<T>(n);
        self.cache.insert(n, plan.clone());
        plan
    }

    /// Number of distinct lengths this planner has handed out.
    pub fn cached_len_count(&self) -> usize {
        self.cache.len()
    }
}

/// Fetches (building once, process-wide per precision) the shared plan for
/// length `n`.
fn global_plan<T: Real>(n: usize) -> FftPlan<T> {
    let cache = T::global_plan_cache();
    let mut cache = crate::parallel::lock_unpoisoned(cache);
    match cache.entry(n) {
        std::collections::hash_map::Entry::Occupied(hit) => {
            holoar_telemetry::counter_add("fft.plan_cache.hit", 1);
            hit.get().clone()
        }
        std::collections::hash_map::Entry::Vacant(miss) => {
            holoar_telemetry::counter_add("fft.plan_cache.miss", 1);
            let _span = holoar_telemetry::span_cat("fft.plan.build", "fft");
            let algo = if n.is_power_of_two() {
                Algo::Radix2(Radix2Plan::new(n))
            } else {
                Algo::Bluestein(BluesteinPlan::new(n))
            };
            miss.insert(FftPlan { algo: Arc::new(algo) }).clone()
        }
    }
}

/// Number of distinct lengths in the process-wide plan cache for precision
/// `T` (defaults to the `f64` reference cache).
pub fn global_cached_len_count<T: Real>() -> usize {
    crate::parallel::lock_unpoisoned(T::global_plan_cache()).len()
}

/// One-shot forward FFT convenience for callers without a planner.
///
/// # Examples
///
/// ```
/// use holoar_fft::{fft_forward, Complex64};
/// let mut buf = vec![Complex64::ONE, Complex64::ZERO, Complex64::ZERO, Complex64::ZERO];
/// fft_forward(&mut buf);
/// assert!((buf[3] - Complex64::ONE).norm() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `buf` is empty.
pub fn fft_forward<T: Real>(buf: &mut [Complex<T>]) {
    FftPlanner::new().plan(buf.len()).forward(buf);
}

/// One-shot inverse FFT convenience (with `1/n` normalization).
///
/// # Panics
///
/// Panics if `buf` is empty.
pub fn fft_inverse<T: Real>(buf: &mut [Complex<T>]) {
    FftPlanner::new().plan(buf.len()).inverse(buf);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{Complex32, Complex64};
    use crate::dft;

    #[test]
    fn planner_caches_plans() {
        let mut planner = FftPlanner::<f64>::new();
        planner.plan(16);
        planner.plan(16);
        planner.plan(17);
        assert_eq!(planner.cached_len_count(), 2);
    }

    #[test]
    fn plan_dispatches_correctly() {
        let mut planner = FftPlanner::new();
        for n in [2usize, 3, 8, 12, 480, 512] {
            let x: Vec<Complex64> =
                (0..n).map(|i| Complex64::new(i as f64, (i as f64).sqrt())).collect();
            let mut fast = x.clone();
            planner.plan(n).forward(&mut fast);
            let slow = dft::forward(&x);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((*a - *b).norm() < 1e-6 * n as f64);
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_plan_panics() {
        FftPlanner::<f64>::new().plan(0);
    }

    #[test]
    fn oneshot_roundtrip() {
        let x: Vec<Complex64> = (0..24).map(|i| Complex64::new(i as f64, -1.0)).collect();
        let mut buf = x.clone();
        fft_forward(&mut buf);
        fft_inverse(&mut buf);
        for (a, b) in buf.iter().zip(&x) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn plans_are_cheaply_cloneable_and_shareable() {
        let mut planner = FftPlanner::new();
        let plan = planner.plan(64);
        let plan2 = plan.clone();
        let mut a = vec![Complex64::ONE; 64];
        let mut b = vec![Complex64::ONE; 64];
        plan.forward(&mut a);
        plan2.forward(&mut b);
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FftPlan>();
        assert_send_sync::<FftPlanner>();
        assert_send_sync::<FftPlan<f32>>();
        assert_send_sync::<FftPlanner<f32>>();
    }

    #[test]
    fn global_cache_shares_tables_across_planners() {
        let a = FftPlanner::<f64>::new().plan(4096);
        let b = FftPlanner::<f64>::new().plan(4096);
        // Same Arc, not merely equal contents: the tables were built once.
        assert!(Arc::ptr_eq(&a.algo, &b.algo));
        assert!(global_cached_len_count::<f64>() >= 1);
    }

    #[test]
    fn precisions_have_independent_caches() {
        let wide = FftPlanner::<f64>::new().plan(96);
        let narrow = FftPlanner::<f32>::new().plan(96);
        assert_eq!(wide.len(), narrow.len());
        // An f32 transform through the narrow plan stays close to the f64
        // transform of the same data through the wide plan.
        let x64: Vec<Complex64> =
            (0..96).map(|i| Complex64::new((i as f64 * 0.21).sin(), 0.3)).collect();
        let mut a = x64.clone();
        wide.forward(&mut a);
        let mut b: Vec<Complex32> = x64.iter().map(|z| z.to_c32()).collect();
        narrow.forward(&mut b);
        for (w, n) in a.iter().zip(&b) {
            assert!((*w - n.to_c64()).norm() < 1e-3);
        }
    }

    #[test]
    fn concurrent_planning_is_safe_and_converges() {
        let plans: Vec<FftPlan> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| FftPlanner::new().plan(1234)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).collect()
        });
        for pair in plans.windows(2) {
            assert!(Arc::ptr_eq(&pair[0].algo, &pair[1].algo));
        }
    }
}
