//! Transform planning: picks the right algorithm per length and caches the
//! precomputed state.
//!
//! [`FftPlanner`] is the entry point the rest of the workspace uses; the
//! optics crate keeps one planner per thread of work and transforms thousands
//! of rows/columns of the same length through it.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::bluestein::BluesteinPlan;
use crate::complex::Complex64;
use crate::radix2::Radix2Plan;

/// A ready-to-run FFT of one fixed length.
///
/// Cheap to clone (the heavy tables live behind an [`Arc`]).
///
/// # Examples
///
/// ```
/// use holoar_fft::{FftPlanner, Complex64};
///
/// let mut planner = FftPlanner::new();
/// let plan = planner.plan(8);
/// let mut buf = vec![Complex64::ONE; 8];
/// plan.forward(&mut buf);
/// assert!((buf[0].re - 8.0).abs() < 1e-12); // all energy in DC
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    algo: Arc<Algo>,
}

#[derive(Debug)]
enum Algo {
    Radix2(Radix2Plan),
    Bluestein(BluesteinPlan),
}

impl FftPlan {
    /// The transform length.
    pub fn len(&self) -> usize {
        match &*self.algo {
            Algo::Radix2(p) => p.len(),
            Algo::Bluestein(p) => p.len(),
        }
    }

    /// Whether the transform length is zero (never true for constructed plans).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forward transform, in place.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn forward(&self, buf: &mut [Complex64]) {
        match &*self.algo {
            Algo::Radix2(p) => p.forward(buf),
            Algo::Bluestein(p) => p.forward(buf),
        }
    }

    /// Inverse transform (with `1/n` normalization), in place.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn inverse(&self, buf: &mut [Complex64]) {
        match &*self.algo {
            Algo::Radix2(p) => p.inverse(buf),
            Algo::Bluestein(p) => p.inverse(buf),
        }
    }
}

/// Creates and caches [`FftPlan`]s keyed by length.
///
/// # Examples
///
/// ```
/// use holoar_fft::FftPlanner;
///
/// let mut planner = FftPlanner::new();
/// let a = planner.plan(480); // Bluestein path
/// let b = planner.plan(512); // radix-2 path
/// assert_eq!(a.len(), 480);
/// assert_eq!(b.len(), 512);
/// ```
#[derive(Debug, Default)]
pub struct FftPlanner {
    cache: HashMap<usize, FftPlan>,
}

impl FftPlanner {
    /// Creates an empty planner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a plan for length `n`, building and caching it on first use.
    ///
    /// Plans come from a process-wide thread-safe cache: the twiddle and
    /// chirp tables for each length are computed exactly once per process
    /// and shared (behind an [`Arc`]) by every planner and every worker
    /// thread. The planner keeps a local lock-free mirror so repeated
    /// `plan()` calls on a hot path touch no lock after first use.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn plan(&mut self, n: usize) -> FftPlan {
        assert!(n > 0, "cannot plan a zero-length transform");
        if let Some(plan) = self.cache.get(&n) {
            holoar_telemetry::counter_add("fft.plan_cache.local_hit", 1);
            return plan.clone();
        }
        let plan = global_plan(n);
        self.cache.insert(n, plan.clone());
        plan
    }

    /// Number of distinct lengths this planner has handed out.
    pub fn cached_len_count(&self) -> usize {
        self.cache.len()
    }
}

/// The process-wide plan cache behind [`FftPlanner::plan`].
static GLOBAL_PLANS: OnceLock<Mutex<HashMap<usize, FftPlan>>> = OnceLock::new();

/// Fetches (building once, process-wide) the shared plan for length `n`.
fn global_plan(n: usize) -> FftPlan {
    let cache = GLOBAL_PLANS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = crate::parallel::lock_unpoisoned(cache);
    match cache.entry(n) {
        std::collections::hash_map::Entry::Occupied(hit) => {
            holoar_telemetry::counter_add("fft.plan_cache.hit", 1);
            hit.get().clone()
        }
        std::collections::hash_map::Entry::Vacant(miss) => {
            holoar_telemetry::counter_add("fft.plan_cache.miss", 1);
            let _span = holoar_telemetry::span_cat("fft.plan.build", "fft");
            let algo = if n.is_power_of_two() {
                Algo::Radix2(Radix2Plan::new(n))
            } else {
                Algo::Bluestein(BluesteinPlan::new(n))
            };
            miss.insert(FftPlan { algo: Arc::new(algo) }).clone()
        }
    }
}

/// Number of distinct lengths in the process-wide plan cache.
pub fn global_cached_len_count() -> usize {
    GLOBAL_PLANS
        .get()
        .map(|cache| crate::parallel::lock_unpoisoned(cache).len())
        .unwrap_or(0)
}

/// One-shot forward FFT convenience for callers without a planner.
///
/// # Examples
///
/// ```
/// use holoar_fft::{fft_forward, Complex64};
/// let mut buf = vec![Complex64::ONE, Complex64::ZERO, Complex64::ZERO, Complex64::ZERO];
/// fft_forward(&mut buf);
/// assert!((buf[3] - Complex64::ONE).norm() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `buf` is empty.
pub fn fft_forward(buf: &mut [Complex64]) {
    FftPlanner::new().plan(buf.len()).forward(buf);
}

/// One-shot inverse FFT convenience (with `1/n` normalization).
///
/// # Panics
///
/// Panics if `buf` is empty.
pub fn fft_inverse(buf: &mut [Complex64]) {
    FftPlanner::new().plan(buf.len()).inverse(buf);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft;

    #[test]
    fn planner_caches_plans() {
        let mut planner = FftPlanner::new();
        planner.plan(16);
        planner.plan(16);
        planner.plan(17);
        assert_eq!(planner.cached_len_count(), 2);
    }

    #[test]
    fn plan_dispatches_correctly() {
        let mut planner = FftPlanner::new();
        for n in [2usize, 3, 8, 12, 480, 512] {
            let x: Vec<Complex64> =
                (0..n).map(|i| Complex64::new(i as f64, (i as f64).sqrt())).collect();
            let mut fast = x.clone();
            planner.plan(n).forward(&mut fast);
            let slow = dft::forward(&x);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((*a - *b).norm() < 1e-6 * n as f64);
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_plan_panics() {
        FftPlanner::new().plan(0);
    }

    #[test]
    fn oneshot_roundtrip() {
        let x: Vec<Complex64> = (0..24).map(|i| Complex64::new(i as f64, -1.0)).collect();
        let mut buf = x.clone();
        fft_forward(&mut buf);
        fft_inverse(&mut buf);
        for (a, b) in buf.iter().zip(&x) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn plans_are_cheaply_cloneable_and_shareable() {
        let mut planner = FftPlanner::new();
        let plan = planner.plan(64);
        let plan2 = plan.clone();
        let mut a = vec![Complex64::ONE; 64];
        let mut b = vec![Complex64::ONE; 64];
        plan.forward(&mut a);
        plan2.forward(&mut b);
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FftPlan>();
        assert_send_sync::<FftPlanner>();
    }

    #[test]
    fn global_cache_shares_tables_across_planners() {
        let a = FftPlanner::new().plan(4096);
        let b = FftPlanner::new().plan(4096);
        // Same Arc, not merely equal contents: the tables were built once.
        assert!(Arc::ptr_eq(&a.algo, &b.algo));
        assert!(global_cached_len_count() >= 1);
    }

    #[test]
    fn concurrent_planning_is_safe_and_converges() {
        let plans: Vec<FftPlan> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| FftPlanner::new().plan(1234)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).collect()
        });
        for pair in plans.windows(2) {
            assert!(Arc::ptr_eq(&pair[0].algo, &pair[1].algo));
        }
    }
}
