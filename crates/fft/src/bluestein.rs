//! Bluestein's chirp-z algorithm: FFT of arbitrary length via a
//! power-of-two convolution.
//!
//! The depthmap resolutions in the AR datasets are not always powers of two
//! (Objectron frames are 480×640, 1440×1920, …), so the planner falls back to
//! this path whenever [`crate::radix2`] does not apply.
//!
//! The identity used: `nk = (n² + k² − (k−n)²) / 2`, which rewrites the DFT as
//! a convolution of the chirp-premultiplied input with the conjugate chirp.
//!
//! Generic over scalar precision; chirp angles are always evaluated in `f64`
//! and narrowed (see [`crate::real`]), and the per-thread convolution
//! workspace is per-precision so f32 and f64 transforms never share buffers.

use crate::complex::Complex;
use crate::radix2::Radix2Plan;
use crate::real::Real;

/// Precomputed state for arbitrary-length transforms of one fixed size.
#[derive(Debug, Clone)]
pub struct BluesteinPlan<T: Real = f64> {
    n: usize,
    /// Chirp `e^{-iπk²/n}` for the forward direction, `k < n`.
    chirp: Vec<Complex<T>>,
    /// FFT of the zero-padded conjugate chirp (forward direction).
    kernel_fft: Vec<Complex<T>>,
    inner: Radix2Plan<T>,
}

impl<T: Real> BluesteinPlan<T> {
    /// Builds a plan for length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "bluestein plan requires a non-zero length");
        let m = (2 * n - 1).next_power_of_two();
        let inner: Radix2Plan<T> = Radix2Plan::new(m);
        let mut chirp = Vec::with_capacity(n);
        for k in 0..n {
            // Reduce k² mod 2n before converting to angle to avoid precision
            // loss for large n.
            let kk = (k * k) % (2 * n);
            chirp.push(Complex::<T>::cis_f64(-std::f64::consts::PI * kk as f64 / n as f64));
        }
        let mut kernel = vec![Complex::<T>::ZERO; m];
        if let (Some(k0), Some(c0)) = (kernel.first_mut(), chirp.first()) {
            *k0 = c0.conj();
        }
        for k in 1..n {
            let c = chirp[k].conj();
            kernel[k] = c;
            kernel[m - k] = c;
        }
        inner.forward(&mut kernel);
        BluesteinPlan { n, chirp, kernel_fft: kernel, inner }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan length is zero (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward transform, in place.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn forward(&self, buf: &mut [Complex<T>]) {
        assert_eq!(buf.len(), self.n, "buffer length {} does not match plan length {}", buf.len(), self.n);
        self.run(buf, false);
    }

    /// Inverse transform, in place, including the `1/n` normalization.
    ///
    /// Implemented as `IDFT(x) = conj(DFT(conj(x))) / n`, which lets a single
    /// precomputed forward kernel serve both directions.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn inverse(&self, buf: &mut [Complex<T>]) {
        assert_eq!(buf.len(), self.n, "buffer length {} does not match plan length {}", buf.len(), self.n);
        self.run(buf, true);
    }

    fn run(&self, buf: &mut [Complex<T>], invert: bool) {
        let n = self.n;
        let m = self.inner.len();
        if invert {
            for v in buf.iter_mut() {
                *v = v.conj();
            }
        }
        // The inner transform is always radix-2, never another Bluestein
        // plan, so this thread-local borrow cannot re-enter.
        T::with_conv_work(|work| {
            work.clear();
            work.resize(m, Complex::ZERO);
            for k in 0..n {
                work[k] = buf[k] * self.chirp[k];
            }
            self.inner.forward(work);
            for (w, k) in work.iter_mut().zip(&self.kernel_fft) {
                *w *= *k;
            }
            self.inner.inverse(work);
            for k in 0..n {
                buf[k] = work[k] * self.chirp[k];
            }
        });
        if invert {
            let s = T::from_usize(n).recip();
            for v in buf.iter_mut() {
                *v = v.conj().scale(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{Complex32, Complex64};
    use crate::dft;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).norm() < tol, "{x} vs {y}");
        }
    }

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.53).cos(), (i as f64 * 0.29).sin()))
            .collect()
    }

    #[test]
    fn matches_reference_for_awkward_sizes() {
        for n in [1usize, 2, 3, 5, 6, 7, 12, 15, 17, 31, 100, 101, 480] {
            let x = signal(n);
            let mut fast = x.clone();
            BluesteinPlan::new(n).forward(&mut fast);
            assert_close(&fast, &dft::forward(&x), 1e-7 * (n as f64).max(1.0));
        }
    }

    #[test]
    fn matches_reference_for_power_of_two_too() {
        let n = 64;
        let x = signal(n);
        let mut fast = x.clone();
        BluesteinPlan::new(n).forward(&mut fast);
        assert_close(&fast, &dft::forward(&x), 1e-8);
    }

    #[test]
    fn inverse_roundtrip() {
        for n in [3usize, 17, 50, 243] {
            let plan = BluesteinPlan::new(n);
            let x = signal(n);
            let mut buf = x.clone();
            plan.forward(&mut buf);
            plan.inverse(&mut buf);
            assert_close(&buf, &x, 1e-8);
        }
    }

    #[test]
    fn inverse_matches_reference() {
        let n = 19;
        let x = signal(n);
        let mut fast = x.clone();
        BluesteinPlan::new(n).inverse(&mut fast);
        assert_close(&fast, &dft::inverse(&x), 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-zero length")]
    fn rejects_zero_length() {
        BluesteinPlan::<f64>::new(0);
    }

    #[test]
    fn large_prime_size_is_accurate() {
        let n = 509; // prime
        let x = signal(n);
        let mut fast = x.clone();
        BluesteinPlan::new(n).forward(&mut fast);
        assert_close(&fast, &dft::forward(&x), 1e-6);
    }

    #[test]
    fn f32_plan_tracks_f64_reference_on_awkward_sizes() {
        for n in [3usize, 17, 48, 101] {
            let x = signal(n);
            let mut narrow: Vec<Complex32> = x.iter().map(|z| z.to_c32()).collect();
            BluesteinPlan::new(n).forward(&mut narrow);
            let wide = dft::forward(&x);
            for (a, b) in narrow.iter().zip(&wide) {
                assert!(
                    (a.to_c64() - *b).norm() < 2e-3 * (n as f64).max(1.0),
                    "n={n}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn f32_inverse_roundtrip() {
        let n = 48; // the GSW plane size — the f32 path's hottest length
        let plan: BluesteinPlan<f32> = BluesteinPlan::new(n);
        let x: Vec<Complex32> = signal(n).iter().map(|z| z.to_c32()).collect();
        let mut buf = x.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&x) {
            assert!((*a - *b).norm() < 1e-3);
        }
    }
}
