//! The scalar-precision abstraction behind the f32/f64 dual compute path.
//!
//! HoloAR's deadline math only works if the hot path can trade precision for
//! throughput: half-width samples double the useful memory bandwidth and
//! SIMD lane count of every transform. [`Real`] is the small trait that lets
//! the FFT substrate instantiate at both widths from one implementation:
//! `f64` remains the bit-identity reference the rest of the workspace
//! verifies against, `f32` is the throughput path gated by the quality
//! experiment in `repro parallel`.
//!
//! Besides arithmetic, the trait carries the three pieces of per-precision
//! *plumbing* the generic code needs a home for: the process-wide plan
//! cache, the Bluestein convolution workspace, and the scratch-arena pools —
//! each precision gets its own instance so an f32 run never evicts or
//! aliases f64 state.
//!
//! Trig tables (twiddles, chirps) are always computed in `f64` and then
//! narrowed via [`Real::from_f64`], so the f32 tables carry correctly
//! rounded values instead of accumulating single-precision argument error.

use std::collections::HashMap;
use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::{Mutex, OnceLock};

use crate::complex::Complex;
use crate::parallel::ScratchArena;
use crate::plan::FftPlan;

/// A floating-point scalar the FFT/optics stack can be instantiated over.
///
/// Implemented for `f64` (the bit-identity reference) and `f32` (the
/// throughput path). The trait is deliberately closed: the two
/// implementations live here and nothing else in the workspace is expected
/// to implement it.
pub trait Real:
    Copy
    + Clone
    + Default
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum<Self>
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// One half — the real-FFT unpack constant.
    const HALF: Self;

    /// Exact narrowing (or identity) conversion from `f64`. All
    /// trigonometric tables are computed in `f64` and funneled through this.
    fn from_f64(v: f64) -> Self;
    /// Widening (or identity) conversion to `f64` for reporting and
    /// cross-precision comparisons.
    fn to_f64(self) -> f64;
    /// Conversion from a (small) count, used for `1/n` normalizations.
    fn from_usize(n: usize) -> Self {
        Self::from_f64(n as f64)
    }
    /// Simultaneous sine and cosine.
    fn sin_cos(self) -> (Self, Self);
    /// `sqrt(self² + other²)` without intermediate overflow.
    fn hypot(self, other: Self) -> Self;
    /// Four-quadrant arctangent.
    fn atan2(self, other: Self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Reciprocal `1/self`.
    fn recip(self) -> Self;
    /// Whether the value is neither infinite nor NaN.
    fn is_finite(self) -> bool;

    /// The process-wide FFT-plan cache for this precision (see
    /// [`crate::plan::FftPlanner`]). Separate per precision so f32 and f64
    /// tables never alias one cache entry.
    fn global_plan_cache() -> &'static Mutex<HashMap<usize, FftPlan<Self>>>;

    /// Runs `f` with this thread's Bluestein convolution workspace for this
    /// precision (see [`crate::bluestein`]). Thread-local so shared plans
    /// stay immutable across workers.
    fn with_conv_work<R>(f: impl FnOnce(&mut Vec<Complex<Self>>) -> R) -> R;

    /// Checks a zeroed scratch buffer of `len` samples out of `arena`'s
    /// pool for this precision.
    fn arena_take(arena: &ScratchArena, len: usize) -> Vec<Complex<Self>>;

    /// Returns a scratch buffer to `arena`'s pool for this precision.
    fn arena_give(arena: &ScratchArena, buf: Vec<Complex<Self>>);
}

impl Real for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const HALF: Self = 0.5;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn sin_cos(self) -> (Self, Self) {
        f64::sin_cos(self)
    }
    #[inline]
    fn hypot(self, other: Self) -> Self {
        f64::hypot(self, other)
    }
    #[inline]
    fn atan2(self, other: Self) -> Self {
        f64::atan2(self, other)
    }
    #[inline]
    fn exp(self) -> Self {
        f64::exp(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn recip(self) -> Self {
        f64::recip(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }

    fn global_plan_cache() -> &'static Mutex<HashMap<usize, FftPlan<f64>>> {
        static CACHE: OnceLock<Mutex<HashMap<usize, FftPlan<f64>>>> = OnceLock::new();
        CACHE.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn with_conv_work<R>(f: impl FnOnce(&mut Vec<Complex<f64>>) -> R) -> R {
        thread_local! {
            static WORK: std::cell::RefCell<Vec<Complex<f64>>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        WORK.with(|cell| f(&mut cell.borrow_mut()))
    }

    fn arena_take(arena: &ScratchArena, len: usize) -> Vec<Complex<f64>> {
        arena.take(len)
    }

    fn arena_give(arena: &ScratchArena, buf: Vec<Complex<f64>>) {
        arena.give(buf);
    }
}

impl Real for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const HALF: Self = 0.5;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    #[inline]
    fn sin_cos(self) -> (Self, Self) {
        f32::sin_cos(self)
    }
    #[inline]
    fn hypot(self, other: Self) -> Self {
        f32::hypot(self, other)
    }
    #[inline]
    fn atan2(self, other: Self) -> Self {
        f32::atan2(self, other)
    }
    #[inline]
    fn exp(self) -> Self {
        f32::exp(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn recip(self) -> Self {
        f32::recip(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }

    fn global_plan_cache() -> &'static Mutex<HashMap<usize, FftPlan<f32>>> {
        static CACHE: OnceLock<Mutex<HashMap<usize, FftPlan<f32>>>> = OnceLock::new();
        CACHE.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn with_conv_work<R>(f: impl FnOnce(&mut Vec<Complex<f32>>) -> R) -> R {
        thread_local! {
            static WORK: std::cell::RefCell<Vec<Complex<f32>>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        WORK.with(|cell| f(&mut cell.borrow_mut()))
    }

    fn arena_take(arena: &ScratchArena, len: usize) -> Vec<Complex<f32>> {
        arena.take32(len)
    }

    fn arena_give(arena: &ScratchArena, buf: Vec<Complex<f32>>) {
        arena.give32(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe<T: Real>() -> (f64, f64, f64) {
        let (s, c) = T::from_f64(0.5).sin_cos();
        let h = T::from_f64(3.0).hypot(T::from_f64(4.0));
        (s.to_f64(), c.to_f64(), h.to_f64())
    }

    #[test]
    fn both_precisions_agree_on_basic_math() {
        let (s64, c64, h64) = probe::<f64>();
        let (s32, c32, h32) = probe::<f32>();
        assert!((s64 - s32).abs() < 1e-6);
        assert!((c64 - c32).abs() < 1e-6);
        assert_eq!(h64, 5.0);
        assert_eq!(h32, 5.0);
    }

    #[test]
    fn narrowing_conversion_rounds() {
        let narrowed = f32::from_f64(std::f64::consts::PI);
        assert_eq!(narrowed, std::f32::consts::PI);
        assert_eq!(f64::from_f64(std::f64::consts::PI), std::f64::consts::PI);
    }

    #[test]
    fn plan_caches_are_distinct_per_precision() {
        let p64: *const _ = f64::global_plan_cache();
        let p32: *const _ = f32::global_plan_cache();
        assert_ne!(p64 as usize, p32 as usize);
    }

    #[test]
    fn conv_work_is_reused_within_a_thread() {
        let ptr = f32::with_conv_work(|w| {
            w.resize(16, Complex::<f32>::ZERO);
            w.as_ptr() as usize
        });
        let again = f32::with_conv_work(|w| w.as_ptr() as usize);
        assert_eq!(ptr, again);
    }
}
