//! Pure-std worker-pool abstraction and the shared scratch arena.
//!
//! [`Parallelism`] is the handle the whole workspace threads through its hot
//! paths: the 2-D FFT passes, batched depth-plane propagation and
//! whole-frame hologram synthesis all fan work out over it with
//! [`std::thread::scope`]. The design constraints, in order:
//!
//! 1. **Determinism** — results must be *bit-identical* to the serial path.
//!    Work is split into contiguous chunks whose boundaries depend only on
//!    the input size and worker count, every chunk runs exactly the code the
//!    serial loop would, and no floating-point reduction ever crosses a
//!    chunk boundary. Callers keep their accumulations serial.
//! 2. **No steady-state allocation** — workers borrow scratch buffers from
//!    a [`ScratchArena`] that recycles them across calls.
//! 3. **No new dependencies** — scoped threads only; threads live for one
//!    fan-out, which keeps the implementation trivially correct (no queue,
//!    no shutdown protocol) at the cost of ~10 µs spawn overhead per chunk,
//!    negligible against the millisecond-scale FFT work it amortizes.
//!
//! Sizing: [`Parallelism::auto`] reads the `HOLOAR_THREADS` environment
//! variable once per process, falling back to
//! [`std::thread::available_parallelism`]. `HOLOAR_THREADS=1` (or
//! [`Parallelism::serial`]) degenerates every fan-out to an inline loop on
//! the calling thread.

use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use crate::complex::{Complex32, Complex64};

/// Environment variable overriding the worker count for [`Parallelism::auto`].
pub const THREADS_ENV_VAR: &str = "HOLOAR_THREADS";

/// Locks `mutex`, recovering the guard if a previous holder panicked.
///
/// The workspace's shared caches and pools only ever *insert* fully-built
/// values under their locks, so a poisoned mutex still guards a coherent
/// collection; propagating the poison (or panicking on it, as
/// `lock().unwrap()` would) could only turn one failure into a cascade on
/// the real-time path. Used by the scratch arena, the FFT plan caches, and
/// `holoar-optics`' transfer caches.
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Upper bound on buffers the arena retains, to bound memory between bursts.
const ARENA_POOL_CAP: usize = 64;

/// A recycling pool of complex scratch buffers, one sub-pool per precision.
///
/// Workers [`take`](ScratchArena::take) a zeroed buffer of the length they
/// need and [`give`](ScratchArena::give) it back when done; the allocation
/// survives for the next caller. The arena is shared (behind an `Arc`) by
/// every clone of the owning [`Parallelism`], so one pool serves all FFT
/// instances driven by the same handle. The f32 path has its own sub-pool
/// ([`take32`](ScratchArena::take32)/[`give32`](ScratchArena::give32)) so
/// the two precisions never trade allocations of mismatched element size.
#[derive(Debug, Default)]
pub struct ScratchArena {
    pool: Mutex<Vec<Vec<Complex64>>>,
    pool32: Mutex<Vec<Vec<Complex32>>>,
}

impl ScratchArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a buffer of exactly `len` zeros, reusing a pooled
    /// allocation when one is available.
    pub fn take(&self, len: usize) -> Vec<Complex64> {
        let pooled = lock_unpoisoned(&self.pool).pop();
        holoar_telemetry::counter_add(
            if pooled.is_some() { "fft.arena.take.reuse" } else { "fft.arena.take.alloc" },
            1,
        );
        let mut buf = pooled.unwrap_or_default();
        buf.clear();
        buf.resize(len, Complex64::ZERO);
        buf
    }

    /// Returns a buffer to the pool for reuse.
    pub fn give(&self, buf: Vec<Complex64>) {
        if buf.capacity() == 0 {
            return;
        }
        holoar_telemetry::counter_add("fft.arena.give", 1);
        let mut pool = lock_unpoisoned(&self.pool);
        if pool.len() < ARENA_POOL_CAP {
            pool.push(buf);
        }
    }

    /// Checks out an f32 buffer of exactly `len` zeros, reusing a pooled
    /// allocation when one is available.
    pub fn take32(&self, len: usize) -> Vec<Complex32> {
        let pooled = lock_unpoisoned(&self.pool32).pop();
        holoar_telemetry::counter_add(
            if pooled.is_some() { "fft.arena.take.reuse" } else { "fft.arena.take.alloc" },
            1,
        );
        let mut buf = pooled.unwrap_or_default();
        buf.clear();
        buf.resize(len, Complex32::ZERO);
        buf
    }

    /// Returns an f32 buffer to the pool for reuse.
    pub fn give32(&self, buf: Vec<Complex32>) {
        if buf.capacity() == 0 {
            return;
        }
        holoar_telemetry::counter_add("fft.arena.give", 1);
        let mut pool = lock_unpoisoned(&self.pool32);
        if pool.len() < ARENA_POOL_CAP {
            pool.push(buf);
        }
    }

    /// Number of f64 buffers currently pooled (diagnostic).
    pub fn pooled(&self) -> usize {
        lock_unpoisoned(&self.pool).len()
    }

    /// Number of f32 buffers currently pooled (diagnostic).
    pub fn pooled32(&self) -> usize {
        lock_unpoisoned(&self.pool32).len()
    }
}

/// A worker-pool handle: how many threads to fan out over, plus the shared
/// [`ScratchArena`].
///
/// Cloning is cheap and clones share the arena. The handle is `Send + Sync`
/// and carries no live threads — workers are scoped to each call.
///
/// # Examples
///
/// ```
/// use holoar_fft::Parallelism;
///
/// let par = Parallelism::new(4);
/// let squares = par.map(&[1u64, 2, 3, 4, 5], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// assert!(Parallelism::serial().is_serial());
/// ```
#[derive(Debug, Clone)]
pub struct Parallelism {
    workers: usize,
    arena: Arc<ScratchArena>,
}

impl Default for Parallelism {
    /// Defaults to [`Parallelism::serial`] — parallel execution is opt-in.
    fn default() -> Self {
        Self::serial()
    }
}

impl Parallelism {
    /// A single-worker handle: every fan-out runs inline on the caller.
    pub fn serial() -> Self {
        Parallelism { workers: 1, arena: Arc::new(ScratchArena::new()) }
    }

    /// A handle with an explicit worker count (the programmatic override).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "worker count must be at least 1");
        Parallelism { workers, arena: Arc::new(ScratchArena::new()) }
    }

    /// Builds a handle from the environment: `HOLOAR_THREADS` when set to a
    /// positive integer, otherwise [`std::thread::available_parallelism`].
    ///
    /// Unlike [`Parallelism::auto`] this re-reads the environment on every
    /// call and returns a fresh arena.
    pub fn from_env() -> Self {
        Parallelism::new(worker_count_from_env())
    }

    /// The process-wide default handle: sized once from the environment
    /// (see [`Parallelism::from_env`]) and sharing one global arena.
    pub fn auto() -> Self {
        static GLOBAL: OnceLock<Parallelism> = OnceLock::new();
        GLOBAL.get_or_init(Parallelism::from_env).clone()
    }

    /// Number of workers fan-outs may use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether every fan-out runs inline on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.workers == 1
    }

    /// The scratch arena shared by all clones of this handle.
    pub fn arena(&self) -> &ScratchArena {
        &self.arena
    }

    /// Splits `data` into at most [`workers`](Self::workers) contiguous
    /// spans — each a whole multiple of `unit` elements — and runs `f` on
    /// every span, passing the span's element offset within `data`.
    ///
    /// With one worker (or one unit) this is an inline call; chunk
    /// boundaries depend only on `data.len()`, `unit` and the worker count,
    /// never on timing, so any per-unit computation is scheduled
    /// deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `unit == 0` or `data.len()` is not a multiple of `unit`.
    pub fn for_each_chunk<T, F>(&self, data: &mut [T], unit: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(unit > 0, "chunk unit must be non-zero");
        assert_eq!(data.len() % unit, 0, "data length must be a multiple of the unit");
        let units = data.len() / unit;
        let pieces = self.workers.min(units);
        if pieces <= 1 {
            f(0, data);
            return;
        }
        let _span = holoar_telemetry::span_cat("fft.par.for_each_chunk", "fft");
        let per_piece = units.div_ceil(pieces) * unit;
        std::thread::scope(|scope| {
            let mut rest = data;
            let mut offset = 0;
            while !rest.is_empty() {
                let take = per_piece.min(rest.len());
                let (span, tail) = rest.split_at_mut(take);
                let f = &f;
                scope.spawn(move || f(offset, span));
                offset += take;
                rest = tail;
            }
        });
    }

    /// Maps `f` over `items` on the worker pool, returning results in input
    /// order. Each item is processed exactly as an inline `iter().map()`
    /// would process it; only the interleaving across items changes.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.workers <= 1 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let _span = holoar_telemetry::span_cat("fft.par.map", "fft");
        let mut out: Vec<Option<R>> = Vec::new();
        out.resize_with(items.len(), || None);
        let per_piece = items.len().div_ceil(self.workers.min(items.len()));
        std::thread::scope(|scope| {
            for (item_chunk, out_chunk) in items.chunks(per_piece).zip(out.chunks_mut(per_piece)) {
                let f = &f;
                scope.spawn(move || {
                    for (item, slot) in item_chunk.iter().zip(out_chunk.iter_mut()) {
                        *slot = Some(f(item));
                    }
                });
            }
        });
        // Every slot is filled: the two chunks(per_piece) iterators cover
        // `items` and `out` with identical boundaries, and out.len() ==
        // items.len(). flatten() is the panic-free way to say so; the
        // debug_assert pins the invariant in test builds.
        let results: Vec<R> = out.into_iter().flatten().collect();
        debug_assert_eq!(results.len(), items.len(), "parallel map dropped a slot");
        results
    }
}

/// Resolves the worker count: `HOLOAR_THREADS` if set to a positive
/// integer, else the machine's available parallelism, else 1.
fn worker_count_from_env() -> usize {
    if let Ok(value) = std::env::var(THREADS_ENV_VAR) {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_default_are_one_worker() {
        assert_eq!(Parallelism::serial().workers(), 1);
        assert!(Parallelism::default().is_serial());
        assert!(!Parallelism::new(3).is_serial());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_workers_panics() {
        Parallelism::new(0);
    }

    #[test]
    fn clones_share_the_arena() {
        let par = Parallelism::new(2);
        let clone = par.clone();
        clone.arena().give(vec![Complex64::ZERO; 8]);
        assert_eq!(par.arena().pooled(), 1);
    }

    #[test]
    fn arena_recycles_capacity() {
        let arena = ScratchArena::new();
        let buf = arena.take(32);
        assert!(buf.iter().all(|z| *z == Complex64::ZERO));
        let ptr = buf.as_ptr();
        arena.give(buf);
        let again = arena.take(16);
        assert_eq!(again.len(), 16);
        assert_eq!(again.as_ptr(), ptr, "allocation should be reused");
        arena.give(again);
    }

    #[test]
    fn precision_pools_are_independent() {
        let arena = ScratchArena::new();
        arena.give(vec![Complex64::ZERO; 8]);
        assert_eq!((arena.pooled(), arena.pooled32()), (1, 0));
        let narrow = arena.take32(4);
        assert!(narrow.iter().all(|z| *z == Complex32::ZERO));
        arena.give32(narrow);
        assert_eq!((arena.pooled(), arena.pooled32()), (1, 1));
    }

    #[test]
    fn for_each_chunk_covers_every_unit_once() {
        for workers in [1usize, 2, 3, 7] {
            let par = Parallelism::new(workers);
            let mut data = vec![0u32; 6 * 5];
            par.for_each_chunk(&mut data, 5, |offset, span| {
                assert_eq!(offset % 5, 0);
                assert_eq!(span.len() % 5, 0);
                for v in span.iter_mut() {
                    *v += 1;
                }
            });
            assert!(data.iter().all(|&v| v == 1), "workers={workers}");
        }
    }

    #[test]
    fn for_each_chunk_offsets_address_the_parent_buffer() {
        let par = Parallelism::new(4);
        let mut data: Vec<u32> = vec![0; 24];
        par.for_each_chunk(&mut data, 2, |offset, span| {
            for (i, v) in span.iter_mut().enumerate() {
                *v = (offset + i) as u32;
            }
        });
        let expect: Vec<u32> = (0..24).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn map_preserves_input_order() {
        for workers in [1usize, 2, 7] {
            let par = Parallelism::new(workers);
            let items: Vec<u64> = (0..17).collect();
            let doubled = par.map(&items, |&x| x * 2);
            assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_single_inputs() {
        let par = Parallelism::new(4);
        assert_eq!(par.map(&[] as &[u8], |&x| x), Vec::<u8>::new());
        assert_eq!(par.map(&[9u8], |&x| x + 1), vec![10]);
    }

    #[test]
    fn env_override_controls_auto_sizing() {
        // from_env re-reads; exercise the parse paths via a guard variable.
        std::env::set_var(THREADS_ENV_VAR, "3");
        assert_eq!(Parallelism::from_env().workers(), 3);
        std::env::set_var(THREADS_ENV_VAR, "not-a-number");
        assert!(Parallelism::from_env().workers() >= 1);
        std::env::set_var(THREADS_ENV_VAR, "0");
        assert!(Parallelism::from_env().workers() >= 1);
        std::env::remove_var(THREADS_ENV_VAR);
        assert!(Parallelism::from_env().workers() >= 1);
    }

    #[test]
    fn handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Parallelism>();
        assert_send_sync::<ScratchArena>();
    }
}
