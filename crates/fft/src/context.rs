//! The unified execution handle every compute entry point takes.
//!
//! PR 1 added parallelism, PR 2 telemetry, PR 4 degradation — and each
//! widened the `run`/`run_with` API split. [`ExecutionContext`] collapses
//! those axes back into one builder-constructed handle that bundles
//!
//! * the [`Parallelism`] pool (worker count + shared scratch arena),
//! * the telemetry mode the caller intends for this work, and
//! * a type-erased map of **shared state slots** — the FFT-plan and
//!   transfer-function caches higher layers (e.g. `holoar-optics`'
//!   `Propagator`) want to share across every computation driven by the
//!   same context.
//!
//! The serving layer passes one context per simulated device, so all
//! sessions multiplexed onto that device share plan/transfer caches and a
//! scratch arena; a unit test passes `ExecutionContext::serial()`; a bench
//! passes `ExecutionContext::auto()`. The old `*_with(…, &Parallelism)`
//! twins are gone — every entry point takes a context directly, and
//! `holoar-lint`'s `deprecated-wrapper` rule keeps the legacy names from
//! coming back.
//!
//! # Examples
//!
//! ```
//! use holoar_fft::ExecutionContext;
//!
//! let ctx = ExecutionContext::builder().workers(4).build();
//! assert_eq!(ctx.workers(), 4);
//!
//! // Shared slots hand every caller the same value for a given key.
//! let a = ctx.shared("example.counter", || 41u64);
//! let b = ctx.shared("example.counter", || 0u64);
//! assert_eq!(*a, 41);
//! assert!(std::sync::Arc::ptr_eq(&a, &b));
//! ```

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use holoar_telemetry::TelemetryMode;

use crate::parallel::{lock_unpoisoned, Parallelism};

/// Type-erased shared-state slots, keyed by a static string. Values are
/// inserted once and shared by every clone of the owning context.
type SlotMap = HashMap<&'static str, Arc<dyn Any + Send + Sync>>;

/// Scalar precision compute entry points should run their hot loops at.
///
/// [`Precision::F64`] is the bit-identity reference the repro experiments
/// and tests pin; [`Precision::F32`] halves the working-set bytes through
/// the FFT and GSW kernels and is gated by the quality experiment in
/// `repro parallel` (occupancy-weighted PSNR within tolerance of the f64
/// reference on the repro scenes). Public APIs keep `f64` fields at the
/// boundary either way — precision is an internal compute policy, not a
/// data-format change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// 32-bit hot loops (throughput path; quality-gated).
    F32,
    /// 64-bit hot loops (reference; the default).
    #[default]
    F64,
}

impl Precision {
    /// Stable lower-case name (`"f32"` / `"f64"`), used in bench JSON and
    /// log lines.
    pub fn as_str(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F64 => "f64",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The single execution handle compute entry points accept: parallelism,
/// telemetry intent, and shared caches, bundled.
///
/// Cloning is cheap; clones share the worker pool, the scratch arena and
/// every shared slot. Two contexts built independently share nothing.
#[derive(Debug, Clone)]
pub struct ExecutionContext {
    par: Parallelism,
    telemetry: TelemetryMode,
    precision: Precision,
    slots: Arc<Mutex<SlotMap>>,
}

impl Default for ExecutionContext {
    /// Defaults to [`ExecutionContext::serial`] — parallelism is opt-in,
    /// exactly as with [`Parallelism`].
    fn default() -> Self {
        Self::serial()
    }
}

impl ExecutionContext {
    /// A serial context: every fan-out runs inline on the caller.
    pub fn serial() -> Self {
        Self::from_parallelism(Parallelism::serial())
    }

    /// A context over the process-wide default pool (see
    /// [`Parallelism::auto`]: `HOLOAR_THREADS`, else available parallelism).
    pub fn auto() -> Self {
        Self::from_parallelism(Parallelism::auto())
    }

    /// A context with an explicit worker count.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_workers(workers: usize) -> Self {
        Self::from_parallelism(Parallelism::new(workers))
    }

    /// Wraps an existing pool handle in a fresh context (fresh shared
    /// slots). Handy when a caller already owns a [`Parallelism`]; new code
    /// should construct contexts via [`builder`](Self::builder) and thread
    /// them through instead.
    pub fn from_parallelism(par: Parallelism) -> Self {
        ExecutionContext {
            par,
            telemetry: holoar_telemetry::mode(),
            precision: Precision::default(),
            slots: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Starts a builder.
    pub fn builder() -> ExecutionContextBuilder {
        ExecutionContextBuilder::default()
    }

    /// The worker-pool handle this context fans out over.
    pub fn parallelism(&self) -> &Parallelism {
        &self.par
    }

    /// Number of workers fan-outs may use.
    pub fn workers(&self) -> usize {
        self.par.workers()
    }

    /// Whether every fan-out runs inline on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.par.is_serial()
    }

    /// The telemetry mode this context was built for. Entry points do not
    /// flip process-global telemetry state per call (that would race across
    /// concurrent contexts); hosts that own the process — the serving layer,
    /// `repro` — apply it once via `holoar_telemetry::set_mode`.
    pub fn telemetry(&self) -> TelemetryMode {
        self.telemetry
    }

    /// The scalar precision hot loops driven by this context should run at.
    /// Defaults to [`Precision::F64`], the bit-identity reference; compute
    /// entry points that have an f32 kernel (propagation, GSW) dispatch on
    /// this value.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Fetches the shared value stored under `key`, creating it with `init`
    /// on first access. Every clone of this context sees the same value; a
    /// later call with a different type `T` under the same key replaces the
    /// slot (keys are expected to be globally unique per type — prefix them
    /// with the owning crate, e.g. `"optics.propagator.caches"`).
    pub fn shared<T, F>(&self, key: &'static str, init: F) -> Arc<T>
    where
        T: Any + Send + Sync,
        F: FnOnce() -> T,
    {
        let mut slots = lock_unpoisoned(&self.slots);
        if let Some(existing) = slots.get(key) {
            if let Ok(hit) = Arc::clone(existing).downcast::<T>() {
                holoar_telemetry::counter_add("fft.context.shared.hit", 1);
                return hit;
            }
        }
        holoar_telemetry::counter_add("fft.context.shared.miss", 1);
        let value = Arc::new(init());
        slots.insert(key, Arc::clone(&value) as Arc<dyn Any + Send + Sync>);
        value
    }

    /// Number of occupied shared slots (diagnostic).
    pub fn shared_slots(&self) -> usize {
        lock_unpoisoned(&self.slots).len()
    }
}

/// Builder for [`ExecutionContext`].
///
/// # Examples
///
/// ```
/// use holoar_fft::{ExecutionContext, Parallelism};
/// use holoar_telemetry::TelemetryMode;
///
/// let ctx = ExecutionContext::builder()
///     .parallelism(Parallelism::new(2))
///     .telemetry(TelemetryMode::Summary)
///     .build();
/// assert_eq!(ctx.workers(), 2);
/// assert_eq!(ctx.telemetry(), TelemetryMode::Summary);
/// ```
#[derive(Debug, Default)]
pub struct ExecutionContextBuilder {
    par: Option<Parallelism>,
    telemetry: Option<TelemetryMode>,
    precision: Option<Precision>,
}

impl ExecutionContextBuilder {
    /// Uses an existing pool handle (worker count + scratch arena).
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.par = Some(par);
        self
    }

    /// Sizes a fresh pool with `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn workers(mut self, workers: usize) -> Self {
        self.par = Some(Parallelism::new(workers));
        self
    }

    /// Records the telemetry mode this context's work is intended to run
    /// under (defaults to the process-wide mode at build time).
    pub fn telemetry(mut self, mode: TelemetryMode) -> Self {
        self.telemetry = Some(mode);
        self
    }

    /// Selects the hot-loop scalar precision (defaults to
    /// [`Precision::F64`]).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = Some(precision);
        self
    }

    /// Builds the context. Parallelism defaults to serial.
    pub fn build(self) -> ExecutionContext {
        let mut ctx = ExecutionContext::from_parallelism(self.par.unwrap_or_default());
        if let Some(mode) = self.telemetry {
            ctx.telemetry = mode;
        }
        if let Some(precision) = self.precision {
            ctx.precision = precision;
        }
        ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_serial_are_one_worker() {
        assert!(ExecutionContext::default().is_serial());
        assert!(ExecutionContext::serial().is_serial());
        assert_eq!(ExecutionContext::with_workers(3).workers(), 3);
    }

    #[test]
    fn builder_round_trips_settings() {
        let pool = Parallelism::new(5);
        let ctx = ExecutionContext::builder()
            .parallelism(pool.clone())
            .telemetry(TelemetryMode::Full)
            .build();
        assert_eq!(ctx.workers(), 5);
        assert_eq!(ctx.telemetry(), TelemetryMode::Full);
        // The pool handle is shared, not copied: same arena.
        ctx.parallelism().arena().give(vec![crate::Complex64::ZERO; 4]);
        assert_eq!(pool.arena().pooled(), 1);
    }

    #[test]
    fn builder_defaults_to_serial_and_current_mode() {
        let ctx = ExecutionContext::builder().build();
        assert!(ctx.is_serial());
        assert_eq!(ctx.telemetry(), holoar_telemetry::mode());
        assert_eq!(ctx.precision(), Precision::F64);
    }

    #[test]
    fn builder_selects_precision() {
        let ctx = ExecutionContext::builder().precision(Precision::F32).build();
        assert_eq!(ctx.precision(), Precision::F32);
        assert_eq!(ctx.precision().as_str(), "f32");
        assert_eq!(Precision::F64.to_string(), "f64");
        // Clones carry the policy with them.
        assert_eq!(ctx.clone().precision(), Precision::F32);
    }

    #[test]
    fn shared_slots_are_created_once_and_shared_with_clones() {
        let ctx = ExecutionContext::serial();
        let first = ctx.shared("test.slot", || vec![1u32, 2, 3]);
        let clone = ctx.clone();
        let second = clone.shared("test.slot", Vec::new);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(ctx.shared_slots(), 1);
    }

    #[test]
    fn distinct_contexts_share_nothing() {
        let a = ExecutionContext::serial();
        let b = ExecutionContext::serial();
        let va = a.shared("test.slot", || 1u8);
        let vb = b.shared("test.slot", || 2u8);
        assert_eq!((*va, *vb), (1, 2));
    }

    #[test]
    fn type_mismatch_replaces_the_slot() {
        let ctx = ExecutionContext::serial();
        let _s = ctx.shared("test.slot", || String::from("x"));
        let n = ctx.shared("test.slot", || 7u64);
        assert_eq!(*n, 7);
    }

    #[test]
    fn context_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExecutionContext>();
    }
}
