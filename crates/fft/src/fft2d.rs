//! Two-dimensional FFT over row-major buffers, plus the `fftshift` helpers
//! wave-optics code leans on.
//!
//! The 2-D transform is separable: FFT every row, then FFT every column.
//! The column pass transposes through a scratch buffer (borrowed from the
//! pool's [`ScratchArena`](crate::parallel::ScratchArena)) so the 1-D
//! kernels always run on contiguous memory; the transpose itself runs in
//! cache-sized tiles (see [`transpose_into`]) instead of walking one full
//! strided column at a time. Both passes fan out over the transform's
//! [`Parallelism`] handle — rows (and transposed columns) are independent,
//! so the parallel result is bit-identical to the serial one regardless of
//! worker count.
//!
//! # Real-input specialization
//!
//! Amplitude planes enter propagation as purely real fields (zero imaginary
//! part): depth-sliced targets, and the first GSW backward sweep before any
//! phase accumulates. [`Fft2d::forward`] detects that case with a cheap scan
//! and routes it through [`Fft2d::forward_real`], which packs **two real
//! rows into one complex row** (`z = a + i·b`), runs half the row
//! transforms, and separates the two spectra with the Hermitian unpack
//! `A[k] = (Z[k] + conj(Z[n−k]))/2`, `B[k] = (Z[k] − conj(Z[n−k]))/(2i)`.
//! Because the public entry point dispatches, the complex path and the real
//! path agree bit-for-bit on real inputs by construction, and the packing
//! works for any row length (radix-2 and Bluestein alike).

use crate::complex::Complex;
use crate::parallel::Parallelism;
use crate::plan::{FftPlan, FftPlanner};
use crate::real::Real;

/// Tile edge for the cache-blocked transpose: 32×32 complex tiles keep both
/// the strided reads and the contiguous writes of a tile resident in L1 for
/// either precision (32 KiB ≥ 32·32·16 B).
const TRANSPOSE_BLOCK: usize = 32;

/// A planned 2-D FFT for a fixed `(rows, cols)` shape.
///
/// [`Fft2d::new`] plans a serial transform; [`Fft2d::with_parallelism`]
/// attaches a worker pool that the row and column passes fan out over.
/// Generic over scalar precision (`Fft2d` in type positions defaults to the
/// `f64` reference; `Fft2d<f32>` is the throughput path).
///
/// # Examples
///
/// ```
/// use holoar_fft::{Fft2d, Complex64};
///
/// let fft = Fft2d::new(4, 8);
/// let mut buf = vec![Complex64::ONE; 4 * 8];
/// fft.forward(&mut buf);
/// // A constant image concentrates all energy in the (0, 0) bin.
/// assert!((buf[0].re - 32.0).abs() < 1e-9);
/// assert!(buf[1].norm() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Fft2d<T: Real = f64> {
    rows: usize,
    cols: usize,
    row_plan: FftPlan<T>,
    col_plan: FftPlan<T>,
    par: Parallelism,
}

impl<T: Real> Fft2d<T> {
    /// Plans a serial transform for a `rows × cols` row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self::with_parallelism(rows, cols, Parallelism::serial())
    }

    /// Plans a transform whose passes fan out over `par`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_parallelism(rows: usize, cols: usize, par: Parallelism) -> Self {
        assert!(rows > 0 && cols > 0, "2-D FFT dimensions must be non-zero");
        let mut planner = FftPlanner::new();
        let row_plan = planner.plan(cols);
        let col_plan = planner.plan(rows);
        Fft2d { rows, cols, row_plan, col_plan, par }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count (`rows × cols`).
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the buffer shape is empty (never true for constructed plans).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The pool this transform fans out over.
    pub fn parallelism(&self) -> &Parallelism {
        &self.par
    }

    /// A copy of this transform that runs serially (shares the cached
    /// plans). Used by callers that parallelize at a coarser granularity —
    /// e.g. across depth planes — and must not oversubscribe with a nested
    /// fan-out.
    pub fn serial_equivalent(&self) -> Fft2d<T> {
        Fft2d {
            rows: self.rows,
            cols: self.cols,
            row_plan: self.row_plan.clone(),
            col_plan: self.col_plan.clone(),
            par: Parallelism::serial(),
        }
    }

    /// Forward 2-D FFT, in place.
    ///
    /// Purely real inputs (every imaginary part exactly zero) are detected
    /// and routed through the packed real-row kernel — same output, roughly
    /// half the row-pass work. See [`Fft2d::forward_real`].
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != rows * cols`.
    pub fn forward(&self, buf: &mut [Complex<T>]) {
        let _span = holoar_telemetry::span_cat("fft.fft2d.forward", "fft");
        self.forward_detect(buf);
    }

    /// Forward 2-D FFT of a purely real field, in place.
    ///
    /// This is the kernel [`Fft2d::forward`] dispatches to when its input
    /// scan finds no imaginary energy, exposed for callers that know their
    /// field is an amplitude plane and for the property tests pinning
    /// dispatch equivalence. The two entry points are bit-identical on real
    /// inputs by construction.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != rows * cols` or any sample has a non-zero
    /// imaginary part.
    pub fn forward_real(&self, buf: &mut [Complex<T>]) {
        let _span = holoar_telemetry::span_cat("fft.fft2d.forward_real", "fft");
        assert!(is_all_real(buf), "forward_real requires a purely real input field");
        self.run_real_forward(buf);
    }

    /// Inverse 2-D FFT (with `1/(rows·cols)` normalization), in place.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != rows * cols`.
    pub fn inverse(&self, buf: &mut [Complex<T>]) {
        let _span = holoar_telemetry::span_cat("fft.fft2d.inverse", "fft");
        self.run(buf, false);
    }

    /// Forward 2-D FFT over a batch of same-shaped buffers, in place.
    ///
    /// The fan-out is per buffer (each transformed by a serial plan), so the
    /// result is bit-identical to calling [`Fft2d::forward`] on each buffer
    /// in order, regardless of worker count. This is the entry point the
    /// cross-session batcher coalesces same-sized plane work into.
    ///
    /// # Panics
    ///
    /// Panics if any buffer's length differs from `rows * cols`.
    pub fn forward_batch(&self, bufs: &mut [Vec<Complex<T>>]) {
        let _span = holoar_telemetry::span_cat("fft.fft2d.forward_batch", "fft");
        self.run_batch(bufs, true);
    }

    /// Inverse 2-D FFT over a batch of same-shaped buffers, in place.
    ///
    /// Bit-identical to calling [`Fft2d::inverse`] on each buffer in order.
    ///
    /// # Panics
    ///
    /// Panics if any buffer's length differs from `rows * cols`.
    pub fn inverse_batch(&self, bufs: &mut [Vec<Complex<T>>]) {
        let _span = holoar_telemetry::span_cat("fft.fft2d.inverse_batch", "fft");
        self.run_batch(bufs, false);
    }

    fn run_batch(&self, bufs: &mut [Vec<Complex<T>>], forward: bool) {
        if bufs.is_empty() {
            return;
        }
        if self.par.is_serial() || bufs.len() == 1 {
            for buf in bufs.iter_mut() {
                if forward {
                    self.forward_detect(buf);
                } else {
                    self.run(buf, false);
                }
            }
            return;
        }
        // Parallelize across buffers, not within one: each worker runs a
        // serial transform per buffer, so the per-buffer arithmetic (and
        // therefore the output) is independent of the worker count.
        let plan = self.serial_equivalent();
        self.par.for_each_chunk(bufs, 1, |_, span| {
            for buf in span {
                if forward {
                    plan.forward_detect(buf);
                } else {
                    plan.run(buf, false);
                }
            }
        });
    }

    /// Forward entry shared by [`Fft2d::forward`] and the batch path:
    /// detects purely real inputs and takes the packed-row kernel for them.
    fn forward_detect(&self, buf: &mut [Complex<T>]) {
        if is_all_real(buf) {
            holoar_telemetry::counter_add("fft.fft2d.real_dispatch", 1);
            self.run_real_forward(buf);
        } else {
            self.run(buf, true);
        }
    }

    fn check_shape(&self, buf: &[Complex<T>]) {
        assert_eq!(
            buf.len(),
            self.rows * self.cols,
            "buffer length {} does not match shape {}x{}",
            buf.len(),
            self.rows,
            self.cols
        );
    }

    fn run(&self, buf: &mut [Complex<T>], forward: bool) {
        self.check_shape(buf);
        let cols = self.cols;
        // Row pass: rows are independent; each worker transforms a
        // contiguous block of whole rows.
        self.par.for_each_chunk(buf, cols, |_, span| {
            for row in span.chunks_exact_mut(cols) {
                if forward {
                    self.row_plan.forward(row);
                } else {
                    self.row_plan.inverse(row);
                }
            }
        });
        self.column_pass(buf, forward);
    }

    fn run_real_forward(&self, buf: &mut [Complex<T>]) {
        self.check_shape(buf);
        let cols = self.cols;
        // Packed row pass: adjacent real rows a, b transform together as
        // z = a + i·b; the Hermitian unpack separates the two spectra. Pair
        // boundaries are fixed (rows 2k and 2k+1), so the output does not
        // depend on how pairs are chunked across workers.
        let paired = (self.rows - self.rows % 2) * cols;
        let (pairs, rest) = buf.split_at_mut(paired);
        if !pairs.is_empty() {
            self.par.for_each_chunk(pairs, 2 * cols, |_, span| {
                let mut packed = T::arena_take(self.par.arena(), cols);
                for pair in span.chunks_exact_mut(2 * cols) {
                    let (a, b) = pair.split_at_mut(cols);
                    for ((p, za), zb) in packed.iter_mut().zip(a.iter()).zip(b.iter()) {
                        *p = Complex::new(za.re, zb.re);
                    }
                    self.row_plan.forward(&mut packed);
                    unpack_pair(&packed, a, b);
                }
                T::arena_give(self.par.arena(), packed);
            });
        }
        // Odd trailing row: its imaginary parts are zero, so the plain
        // complex transform is already the real transform.
        for row in rest.chunks_exact_mut(cols) {
            self.row_plan.forward(row);
        }
        self.column_pass(buf, true);
    }

    /// Column pass shared by every forward/inverse variant: blocked-gather
    /// each span of columns into the transposed scratch buffer, transform
    /// them contiguously, then blocked-scatter back. Both halves split the
    /// work by whole columns (then whole rows), so workers never share an
    /// output element.
    fn column_pass(&self, buf: &mut [Complex<T>], forward: bool) {
        let (rows, cols) = (self.rows, self.cols);
        let mut transposed = T::arena_take(self.par.arena(), rows * cols);
        {
            let source: &[Complex<T>] = buf;
            self.par.for_each_chunk(&mut transposed, rows, |offset, span| {
                let first_col = offset / rows;
                gather_transposed(source, rows, cols, first_col, span);
                for column in span.chunks_exact_mut(rows) {
                    if forward {
                        self.col_plan.forward(column);
                    } else {
                        self.col_plan.inverse(column);
                    }
                }
            });
        }
        {
            let source: &[Complex<T>] = &transposed;
            self.par.for_each_chunk(buf, cols, |offset, span| {
                let first_row = offset / cols;
                gather_transposed(source, cols, rows, first_row, span);
            });
        }
        T::arena_give(self.par.arena(), transposed);
    }
}

/// Whether every sample's imaginary part is exactly zero (`±0.0`).
fn is_all_real<T: Real>(buf: &[Complex<T>]) -> bool {
    buf.iter().all(|z| z.im == T::ZERO)
}

/// Separates the spectra of two real rows transformed as one packed complex
/// row: `a ← DFT(re(z))`, `b ← DFT(im(z))` via the Hermitian identities.
fn unpack_pair<T: Real>(packed: &[Complex<T>], a: &mut [Complex<T>], b: &mut [Complex<T>]) {
    let n = packed.len();
    // k = 0 is self-conjugate: Z[0] = Â[0] + i·B̂[0] with both DCs real.
    if let (Some(z0), Some(a0), Some(b0)) = (packed.first(), a.first_mut(), b.first_mut()) {
        *a0 = Complex::new(z0.re, T::ZERO);
        *b0 = Complex::new(z0.im, T::ZERO);
    }
    for k in 1..n {
        let j = n - k;
        let zk = packed[k];
        let zj = packed[j];
        a[k] = Complex::new((zk.re + zj.re) * T::HALF, (zk.im - zj.im) * T::HALF);
        b[k] = Complex::new((zk.im + zj.im) * T::HALF, (zj.re - zk.re) * T::HALF);
    }
}

/// Writes the transpose of the row-major `src_rows × src_cols` matrix
/// `source` into `dst` (which becomes `src_cols × src_rows` row-major),
/// copying cache-sized tiles so neither side's stride walks a full matrix
/// dimension per element. Pure data movement: bit-identical to the naive
/// nested loop by construction, which the property tests pin across shapes.
///
/// # Panics
///
/// Panics if `dst.len() != source.len()` or `source.len() != src_rows *
/// src_cols`.
pub fn transpose_into<T: Real>(
    source: &[Complex<T>],
    src_rows: usize,
    src_cols: usize,
    dst: &mut [Complex<T>],
) {
    assert_eq!(source.len(), src_rows * src_cols, "source length does not match shape");
    assert_eq!(dst.len(), source.len(), "transpose destination length mismatch");
    gather_transposed(source, src_rows, src_cols, 0, dst);
}

/// The spanned tile-copy behind [`transpose_into`] and the column passes:
/// transposes source columns `[first_col, first_col + span.len()/src_rows)`
/// of the `src_rows × src_cols` matrix into the row-major `span`.
fn gather_transposed<T: Real>(
    source: &[Complex<T>],
    src_rows: usize,
    src_cols: usize,
    first_col: usize,
    span: &mut [Complex<T>],
) {
    let span_cols = span.len() / src_rows;
    let mut tile_r = 0;
    while tile_r < src_rows {
        let r_end = (tile_r + TRANSPOSE_BLOCK).min(src_rows);
        let mut tile_c = 0;
        while tile_c < span_cols {
            let c_end = (tile_c + TRANSPOSE_BLOCK).min(span_cols);
            for c in tile_c..c_end {
                let dst_base = c * src_rows;
                let src_col = first_col + c;
                for r in tile_r..r_end {
                    span[dst_base + r] = source[r * src_cols + src_col];
                }
            }
            tile_c = c_end;
        }
        tile_r = r_end;
    }
}

/// Swaps quadrants so the zero-frequency bin moves to the buffer center.
///
/// For odd dimensions, `fftshift` followed by [`ifftshift`] is the identity
/// (the two use floor/ceil splits respectively, as in NumPy).
///
/// # Panics
///
/// Panics if `buf.len() != rows * cols`.
pub fn fftshift<T: Real>(buf: &mut [Complex<T>], rows: usize, cols: usize) {
    shift(buf, rows, cols, rows.div_ceil(2), cols.div_ceil(2));
}

/// Inverse of [`fftshift`].
///
/// # Panics
///
/// Panics if `buf.len() != rows * cols`.
pub fn ifftshift<T: Real>(buf: &mut [Complex<T>], rows: usize, cols: usize) {
    shift(buf, rows, cols, rows / 2, cols / 2);
}

/// Rotates rows up by `row_by` and columns left by `col_by`, entirely in
/// place. Even dimensions take the half-swap fast path (a quadrant swap);
/// odd dimensions fall back to slice rotation, which is also allocation-free.
fn shift<T: Real>(buf: &mut [Complex<T>], rows: usize, cols: usize, row_by: usize, col_by: usize) {
    assert_eq!(buf.len(), rows * cols, "buffer length does not match shape");
    if rows == 0 || cols == 0 {
        return;
    }
    let col_by = col_by % cols;
    if col_by > 0 {
        if cols.is_multiple_of(2) && col_by == cols / 2 {
            for row in buf.chunks_exact_mut(cols) {
                let (left, right) = row.split_at_mut(col_by);
                left.swap_with_slice(right);
            }
        } else {
            for row in buf.chunks_exact_mut(cols) {
                row.rotate_left(col_by);
            }
        }
    }
    let row_by = row_by % rows;
    if row_by > 0 {
        if rows.is_multiple_of(2) && row_by == rows / 2 {
            let (top, bottom) = buf.split_at_mut(row_by * cols);
            top.swap_with_slice(bottom);
        } else {
            buf.rotate_left(row_by * cols);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;
    use crate::dft;

    fn image(rows: usize, cols: usize) -> Vec<Complex64> {
        (0..rows * cols)
            .map(|i| Complex64::new((i as f64 * 0.23).sin(), (i as f64 * 0.91).cos()))
            .collect()
    }

    fn real_image(rows: usize, cols: usize) -> Vec<Complex64> {
        (0..rows * cols)
            .map(|i| Complex64::new((i as f64 * 0.23).sin() + 0.4 * (i as f64 * 0.05).cos(), 0.0))
            .collect()
    }

    /// O(n²) 2-D DFT oracle.
    fn dft2d(buf: &[Complex64], rows: usize, cols: usize) -> Vec<Complex64> {
        // rows first
        let mut tmp: Vec<Complex64> = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            tmp.extend(dft::forward(&buf[r * cols..(r + 1) * cols]));
        }
        let mut out = vec![Complex64::ZERO; rows * cols];
        for c in 0..cols {
            let col: Vec<Complex64> = (0..rows).map(|r| tmp[r * cols + c]).collect();
            let spec = dft::forward(&col);
            for r in 0..rows {
                out[r * cols + c] = spec[r];
            }
        }
        out
    }

    #[test]
    fn matches_reference_2d_dft() {
        for (rows, cols) in [(2usize, 2usize), (4, 8), (3, 5), (8, 3)] {
            let x = image(rows, cols);
            let mut fast = x.clone();
            Fft2d::new(rows, cols).forward(&mut fast);
            let slow = dft2d(&x, rows, cols);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((*a - *b).norm() < 1e-8, "shape {rows}x{cols}");
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        let (rows, cols) = (16, 12);
        let fft = Fft2d::new(rows, cols);
        let x = image(rows, cols);
        let mut buf = x.clone();
        fft.forward(&mut buf);
        fft.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&x) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn parseval_2d() {
        let (rows, cols) = (8, 8);
        let x = image(rows, cols);
        let mut spec = x.clone();
        Fft2d::new(rows, cols).forward(&mut spec);
        let te: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let fe: f64 =
            spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / (rows * cols) as f64;
        assert!((te - fe).abs() < 1e-8);
    }

    #[test]
    fn parallel_output_is_bit_identical_to_serial() {
        for (rows, cols) in [(4usize, 4usize), (8, 6), (5, 7), (16, 16), (12, 20)] {
            let x = image(rows, cols);
            let mut serial = x.clone();
            let serial_fft = Fft2d::new(rows, cols);
            serial_fft.forward(&mut serial);
            for workers in [2usize, 3, 7] {
                let mut parallel = x.clone();
                let fft = Fft2d::with_parallelism(rows, cols, Parallelism::new(workers));
                fft.forward(&mut parallel);
                assert_eq!(serial, parallel, "forward {rows}x{cols} workers={workers}");
                fft.inverse(&mut parallel);
                let mut roundtrip = serial.clone();
                serial_fft.inverse(&mut roundtrip);
                assert_eq!(roundtrip, parallel, "inverse {rows}x{cols} workers={workers}");
            }
        }
    }

    #[test]
    fn real_input_matches_reference_2d_dft() {
        // Covers radix-2 and Bluestein row lengths, odd row counts (one
        // unpaired trailing row) and single-row/column edge shapes.
        for (rows, cols) in [(2usize, 2usize), (4, 8), (3, 5), (8, 3), (5, 7), (1, 6), (6, 1)] {
            let x = real_image(rows, cols);
            let mut fast = x.clone();
            Fft2d::new(rows, cols).forward(&mut fast);
            let slow = dft2d(&x, rows, cols);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((*a - *b).norm() < 1e-8, "shape {rows}x{cols}");
            }
        }
    }

    #[test]
    fn forward_dispatch_is_bit_identical_to_forward_real() {
        for (rows, cols) in [(4usize, 4usize), (5, 7), (9, 16), (12, 20)] {
            let x = real_image(rows, cols);
            let fft = Fft2d::new(rows, cols);
            let mut via_forward = x.clone();
            fft.forward(&mut via_forward);
            let mut via_real = x.clone();
            fft.forward_real(&mut via_real);
            assert_eq!(via_forward, via_real, "shape {rows}x{cols}");
        }
    }

    #[test]
    fn real_path_is_bit_identical_across_worker_counts() {
        for (rows, cols) in [(8usize, 6usize), (5, 7), (9, 16), (16, 16)] {
            let x = real_image(rows, cols);
            let mut serial = x.clone();
            Fft2d::new(rows, cols).forward(&mut serial);
            for workers in [2usize, 3, 7] {
                let mut parallel = x.clone();
                Fft2d::with_parallelism(rows, cols, Parallelism::new(workers))
                    .forward(&mut parallel);
                assert_eq!(serial, parallel, "real {rows}x{cols} workers={workers}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "purely real")]
    fn forward_real_rejects_complex_input() {
        let mut buf = image(4, 4);
        Fft2d::new(4, 4).forward_real(&mut buf);
    }

    #[test]
    fn real_roundtrip_recovers_the_field() {
        let (rows, cols) = (12, 10);
        let fft = Fft2d::new(rows, cols);
        let x = real_image(rows, cols);
        let mut buf = x.clone();
        fft.forward(&mut buf);
        fft.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&x) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn blocked_transpose_is_bit_identical_to_naive() {
        // Shapes straddle the 32-element tile edge and include Bluestein
        // (non-power-of-two) dimensions and degenerate single-row/column
        // cases.
        for (rows, cols) in [
            (1usize, 1usize),
            (1, 17),
            (17, 1),
            (5, 7),
            (31, 33),
            (32, 32),
            (33, 65),
            (48, 20),
            (64, 64),
        ] {
            let x = image(rows, cols);
            let mut blocked = vec![Complex64::ZERO; rows * cols];
            transpose_into(&x, rows, cols, &mut blocked);
            let mut naive = vec![Complex64::ZERO; rows * cols];
            for r in 0..rows {
                for c in 0..cols {
                    naive[c * rows + r] = x[r * cols + c];
                }
            }
            assert_eq!(blocked, naive, "shape {rows}x{cols}");
        }
    }

    #[test]
    fn f32_transform_tracks_f64_reference() {
        let (rows, cols) = (12, 20);
        let x = image(rows, cols);
        let mut wide = x.clone();
        Fft2d::new(rows, cols).forward(&mut wide);
        let mut narrow: Vec<crate::complex::Complex32> = x.iter().map(|z| z.to_c32()).collect();
        let fft32: Fft2d<f32> = Fft2d::new(rows, cols);
        fft32.forward(&mut narrow);
        for (w, n) in wide.iter().zip(&narrow) {
            assert!((*w - n.to_c64()).norm() < 1e-3, "{w} vs {n}");
        }
        fft32.inverse(&mut narrow);
        for (orig, n) in x.iter().zip(&narrow) {
            assert!((*orig - n.to_c64()).norm() < 1e-4);
        }
    }

    #[test]
    fn serial_equivalent_matches_parallel_plan() {
        let fft = Fft2d::with_parallelism(8, 8, Parallelism::new(4));
        let serial = fft.serial_equivalent();
        assert!(serial.parallelism().is_serial());
        let x = image(8, 8);
        let mut a = x.clone();
        let mut b = x;
        fft.forward(&mut a);
        serial.forward(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_arena_is_reused_across_calls() {
        let fft = Fft2d::new(8, 8);
        let mut buf = image(8, 8);
        fft.forward(&mut buf);
        assert_eq!(fft.parallelism().arena().pooled(), 1);
        fft.inverse(&mut buf);
        assert_eq!(fft.parallelism().arena().pooled(), 1);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn wrong_buffer_shape_panics() {
        Fft2d::new(4, 4).forward(&mut vec![Complex64::ZERO; 15]);
    }

    #[test]
    fn batch_matches_per_buffer_transforms() {
        let (rows, cols) = (6, 5);
        let serial = Fft2d::new(rows, cols);
        let inputs: Vec<Vec<Complex64>> = (0..5)
            .map(|i| {
                image(rows, cols)
                    .into_iter()
                    .map(|z| z * Complex64::new(1.0 + i as f64, 0.0))
                    .collect()
            })
            .collect();
        let mut expected = inputs.clone();
        for buf in &mut expected {
            serial.forward(buf);
        }
        for workers in [1usize, 2, 7] {
            let fft = Fft2d::with_parallelism(rows, cols, Parallelism::new(workers));
            let mut batch = inputs.clone();
            fft.forward_batch(&mut batch);
            assert_eq!(batch, expected, "forward batch workers={workers}");
            fft.inverse_batch(&mut batch);
            let mut roundtrip = expected.clone();
            for buf in &mut roundtrip {
                serial.inverse(buf);
            }
            assert_eq!(batch, roundtrip, "inverse batch workers={workers}");
        }
    }

    #[test]
    fn batch_takes_the_real_path_per_buffer() {
        // A batch mixing real and complex planes must agree with per-buffer
        // forward() calls (which dispatch per input) at every worker count.
        let (rows, cols) = (6, 5);
        let inputs: Vec<Vec<Complex64>> = vec![
            real_image(rows, cols),
            image(rows, cols),
            real_image(rows, cols),
        ];
        let serial = Fft2d::new(rows, cols);
        let mut expected = inputs.clone();
        for buf in &mut expected {
            serial.forward(buf);
        }
        for workers in [1usize, 2, 7] {
            let fft = Fft2d::with_parallelism(rows, cols, Parallelism::new(workers));
            let mut batch = inputs.clone();
            fft.forward_batch(&mut batch);
            assert_eq!(batch, expected, "workers={workers}");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        Fft2d::<f64>::new(4, 4).forward_batch(&mut []);
    }

    #[test]
    fn fftshift_moves_dc_to_center() {
        let (rows, cols) = (4, 4);
        let mut buf = vec![Complex64::ZERO; rows * cols];
        buf[0] = Complex64::ONE; // DC at corner
        fftshift(&mut buf, rows, cols);
        assert_eq!(buf[2 * cols + 2], Complex64::ONE);
    }

    #[test]
    fn shift_roundtrip_even_and_odd() {
        for (rows, cols) in [(4usize, 6usize), (5, 5), (3, 8), (7, 2)] {
            let x = image(rows, cols);
            let mut buf = x.clone();
            fftshift(&mut buf, rows, cols);
            ifftshift(&mut buf, rows, cols);
            assert_eq!(buf, x, "shape {rows}x{cols}");
        }
    }

    #[test]
    fn even_fast_path_matches_rotation_semantics() {
        // The quadrant-swap fast path must agree with plain rotation.
        for (rows, cols) in [(4usize, 4usize), (6, 8), (2, 10)] {
            let x = image(rows, cols);
            let mut fast = x.clone();
            fftshift(&mut fast, rows, cols);
            let mut reference = x.clone();
            for row in reference.chunks_exact_mut(cols) {
                row.rotate_left(cols / 2);
            }
            reference.rotate_left((rows / 2) * cols);
            assert_eq!(fast, reference, "shape {rows}x{cols}");
        }
    }
}
