//! Two-dimensional FFT over row-major buffers, plus the `fftshift` helpers
//! wave-optics code leans on.
//!
//! The 2-D transform is separable: FFT every row, then FFT every column. The
//! column pass gathers each column into a contiguous scratch buffer so the
//! 1-D kernels stay cache-friendly.

use crate::complex::Complex64;
use crate::plan::{FftPlan, FftPlanner};

/// A planned 2-D FFT for a fixed `(rows, cols)` shape.
///
/// # Examples
///
/// ```
/// use holoar_fft::{Fft2d, Complex64};
///
/// let fft = Fft2d::new(4, 8);
/// let mut buf = vec![Complex64::ONE; 4 * 8];
/// fft.forward(&mut buf);
/// // A constant image concentrates all energy in the (0, 0) bin.
/// assert!((buf[0].re - 32.0).abs() < 1e-9);
/// assert!(buf[1].norm() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Fft2d {
    rows: usize,
    cols: usize,
    row_plan: FftPlan,
    col_plan: FftPlan,
}

impl Fft2d {
    /// Plans a transform for a `rows × cols` row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "2-D FFT dimensions must be non-zero");
        let mut planner = FftPlanner::new();
        let row_plan = planner.plan(cols);
        let col_plan = planner.plan(rows);
        Fft2d { rows, cols, row_plan, col_plan }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count (`rows × cols`).
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the buffer shape is empty (never true for constructed plans).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forward 2-D FFT, in place.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != rows * cols`.
    pub fn forward(&self, buf: &mut [Complex64]) {
        self.run(buf, true);
    }

    /// Inverse 2-D FFT (with `1/(rows·cols)` normalization), in place.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != rows * cols`.
    pub fn inverse(&self, buf: &mut [Complex64]) {
        self.run(buf, false);
    }

    fn run(&self, buf: &mut [Complex64], forward: bool) {
        assert_eq!(
            buf.len(),
            self.rows * self.cols,
            "buffer length {} does not match shape {}x{}",
            buf.len(),
            self.rows,
            self.cols
        );
        for row in buf.chunks_exact_mut(self.cols) {
            if forward {
                self.row_plan.forward(row);
            } else {
                self.row_plan.inverse(row);
            }
        }
        let mut scratch = vec![Complex64::ZERO; self.rows];
        for c in 0..self.cols {
            for r in 0..self.rows {
                scratch[r] = buf[r * self.cols + c];
            }
            if forward {
                self.col_plan.forward(&mut scratch);
            } else {
                self.col_plan.inverse(&mut scratch);
            }
            for r in 0..self.rows {
                buf[r * self.cols + c] = scratch[r];
            }
        }
    }
}

/// Swaps quadrants so the zero-frequency bin moves to the buffer center.
///
/// For odd dimensions, `fftshift` followed by [`ifftshift`] is the identity
/// (the two use floor/ceil splits respectively, as in NumPy).
///
/// # Panics
///
/// Panics if `buf.len() != rows * cols`.
pub fn fftshift(buf: &mut [Complex64], rows: usize, cols: usize) {
    shift(buf, rows, cols, rows.div_ceil(2), cols.div_ceil(2));
}

/// Inverse of [`fftshift`].
///
/// # Panics
///
/// Panics if `buf.len() != rows * cols`.
pub fn ifftshift(buf: &mut [Complex64], rows: usize, cols: usize) {
    shift(buf, rows, cols, rows / 2, cols / 2);
}

/// Rotates rows up by `row_by` and columns left by `col_by`.
fn shift(buf: &mut [Complex64], rows: usize, cols: usize, row_by: usize, col_by: usize) {
    assert_eq!(buf.len(), rows * cols, "buffer length does not match shape");
    if rows == 0 || cols == 0 {
        return;
    }
    for row in buf.chunks_exact_mut(cols) {
        row.rotate_left(col_by % cols.max(1));
    }
    let mut tmp = buf.to_vec();
    tmp.rotate_left((row_by % rows) * cols);
    buf.copy_from_slice(&tmp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft;

    fn image(rows: usize, cols: usize) -> Vec<Complex64> {
        (0..rows * cols)
            .map(|i| Complex64::new((i as f64 * 0.23).sin(), (i as f64 * 0.91).cos()))
            .collect()
    }

    /// O(n²) 2-D DFT oracle.
    fn dft2d(buf: &[Complex64], rows: usize, cols: usize) -> Vec<Complex64> {
        // rows first
        let mut tmp: Vec<Complex64> = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            tmp.extend(dft::forward(&buf[r * cols..(r + 1) * cols]));
        }
        let mut out = vec![Complex64::ZERO; rows * cols];
        for c in 0..cols {
            let col: Vec<Complex64> = (0..rows).map(|r| tmp[r * cols + c]).collect();
            let spec = dft::forward(&col);
            for r in 0..rows {
                out[r * cols + c] = spec[r];
            }
        }
        out
    }

    #[test]
    fn matches_reference_2d_dft() {
        for (rows, cols) in [(2usize, 2usize), (4, 8), (3, 5), (8, 3)] {
            let x = image(rows, cols);
            let mut fast = x.clone();
            Fft2d::new(rows, cols).forward(&mut fast);
            let slow = dft2d(&x, rows, cols);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((*a - *b).norm() < 1e-8, "shape {rows}x{cols}");
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        let (rows, cols) = (16, 12);
        let fft = Fft2d::new(rows, cols);
        let x = image(rows, cols);
        let mut buf = x.clone();
        fft.forward(&mut buf);
        fft.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&x) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn parseval_2d() {
        let (rows, cols) = (8, 8);
        let x = image(rows, cols);
        let mut spec = x.clone();
        Fft2d::new(rows, cols).forward(&mut spec);
        let te: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let fe: f64 =
            spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / (rows * cols) as f64;
        assert!((te - fe).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn wrong_buffer_shape_panics() {
        Fft2d::new(4, 4).forward(&mut vec![Complex64::ZERO; 15]);
    }

    #[test]
    fn fftshift_moves_dc_to_center() {
        let (rows, cols) = (4, 4);
        let mut buf = vec![Complex64::ZERO; rows * cols];
        buf[0] = Complex64::ONE; // DC at corner
        fftshift(&mut buf, rows, cols);
        assert_eq!(buf[2 * cols + 2], Complex64::ONE);
    }

    #[test]
    fn shift_roundtrip_even_and_odd() {
        for (rows, cols) in [(4usize, 6usize), (5, 5), (3, 8), (7, 2)] {
            let x = image(rows, cols);
            let mut buf = x.clone();
            fftshift(&mut buf, rows, cols);
            ifftshift(&mut buf, rows, cols);
            assert_eq!(buf, x, "shape {rows}x{cols}");
        }
    }
}
