//! Two-dimensional FFT over row-major buffers, plus the `fftshift` helpers
//! wave-optics code leans on.
//!
//! The 2-D transform is separable: FFT every row, then FFT every column.
//! The column pass transposes through a scratch buffer (borrowed from the
//! pool's [`ScratchArena`](crate::parallel::ScratchArena)) so the 1-D
//! kernels always run on contiguous
//! memory. Both passes fan out over the transform's [`Parallelism`] handle —
//! rows (and transposed columns) are independent, so the parallel result is
//! bit-identical to the serial one regardless of worker count.

use crate::complex::Complex64;
use crate::parallel::Parallelism;
use crate::plan::{FftPlan, FftPlanner};

/// A planned 2-D FFT for a fixed `(rows, cols)` shape.
///
/// [`Fft2d::new`] plans a serial transform; [`Fft2d::with_parallelism`]
/// attaches a worker pool that the row and column passes fan out over.
///
/// # Examples
///
/// ```
/// use holoar_fft::{Fft2d, Complex64};
///
/// let fft = Fft2d::new(4, 8);
/// let mut buf = vec![Complex64::ONE; 4 * 8];
/// fft.forward(&mut buf);
/// // A constant image concentrates all energy in the (0, 0) bin.
/// assert!((buf[0].re - 32.0).abs() < 1e-9);
/// assert!(buf[1].norm() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Fft2d {
    rows: usize,
    cols: usize,
    row_plan: FftPlan,
    col_plan: FftPlan,
    par: Parallelism,
}

impl Fft2d {
    /// Plans a serial transform for a `rows × cols` row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self::with_parallelism(rows, cols, Parallelism::serial())
    }

    /// Plans a transform whose passes fan out over `par`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_parallelism(rows: usize, cols: usize, par: Parallelism) -> Self {
        assert!(rows > 0 && cols > 0, "2-D FFT dimensions must be non-zero");
        let mut planner = FftPlanner::new();
        let row_plan = planner.plan(cols);
        let col_plan = planner.plan(rows);
        Fft2d { rows, cols, row_plan, col_plan, par }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count (`rows × cols`).
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the buffer shape is empty (never true for constructed plans).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The pool this transform fans out over.
    pub fn parallelism(&self) -> &Parallelism {
        &self.par
    }

    /// A copy of this transform that runs serially (shares the cached
    /// plans). Used by callers that parallelize at a coarser granularity —
    /// e.g. across depth planes — and must not oversubscribe with a nested
    /// fan-out.
    pub fn serial_equivalent(&self) -> Fft2d {
        Fft2d {
            rows: self.rows,
            cols: self.cols,
            row_plan: self.row_plan.clone(),
            col_plan: self.col_plan.clone(),
            par: Parallelism::serial(),
        }
    }

    /// Forward 2-D FFT, in place.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != rows * cols`.
    pub fn forward(&self, buf: &mut [Complex64]) {
        let _span = holoar_telemetry::span_cat("fft.fft2d.forward", "fft");
        self.run(buf, true);
    }

    /// Inverse 2-D FFT (with `1/(rows·cols)` normalization), in place.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != rows * cols`.
    pub fn inverse(&self, buf: &mut [Complex64]) {
        let _span = holoar_telemetry::span_cat("fft.fft2d.inverse", "fft");
        self.run(buf, false);
    }

    /// Forward 2-D FFT over a batch of same-shaped buffers, in place.
    ///
    /// The fan-out is per buffer (each transformed by a serial plan), so the
    /// result is bit-identical to calling [`Fft2d::forward`] on each buffer
    /// in order, regardless of worker count. This is the entry point the
    /// cross-session batcher coalesces same-sized plane work into.
    ///
    /// # Panics
    ///
    /// Panics if any buffer's length differs from `rows * cols`.
    pub fn forward_batch(&self, bufs: &mut [Vec<Complex64>]) {
        let _span = holoar_telemetry::span_cat("fft.fft2d.forward_batch", "fft");
        self.run_batch(bufs, true);
    }

    /// Inverse 2-D FFT over a batch of same-shaped buffers, in place.
    ///
    /// Bit-identical to calling [`Fft2d::inverse`] on each buffer in order.
    ///
    /// # Panics
    ///
    /// Panics if any buffer's length differs from `rows * cols`.
    pub fn inverse_batch(&self, bufs: &mut [Vec<Complex64>]) {
        let _span = holoar_telemetry::span_cat("fft.fft2d.inverse_batch", "fft");
        self.run_batch(bufs, false);
    }

    fn run_batch(&self, bufs: &mut [Vec<Complex64>], forward: bool) {
        if bufs.is_empty() {
            return;
        }
        if self.par.is_serial() || bufs.len() == 1 {
            for buf in bufs.iter_mut() {
                self.run(buf, forward);
            }
            return;
        }
        // Parallelize across buffers, not within one: each worker runs a
        // serial transform per buffer, so the per-buffer arithmetic (and
        // therefore the output) is independent of the worker count.
        let plan = self.serial_equivalent();
        self.par.for_each_chunk(bufs, 1, |_, span| {
            for buf in span {
                plan.run(buf, forward);
            }
        });
    }

    fn run(&self, buf: &mut [Complex64], forward: bool) {
        assert_eq!(
            buf.len(),
            self.rows * self.cols,
            "buffer length {} does not match shape {}x{}",
            buf.len(),
            self.rows,
            self.cols
        );
        let (rows, cols) = (self.rows, self.cols);

        // Row pass: rows are independent; each worker transforms a
        // contiguous block of whole rows.
        self.par.for_each_chunk(buf, cols, |_, span| {
            for row in span.chunks_exact_mut(cols) {
                if forward {
                    self.row_plan.forward(row);
                } else {
                    self.row_plan.inverse(row);
                }
            }
        });

        // Column pass: gather each column into the transposed scratch
        // buffer, transform it contiguously, then scatter back. Both halves
        // split the work by whole columns (then whole rows), so workers
        // never share an output element.
        let mut transposed = self.par.arena().take(rows * cols);
        {
            let source: &[Complex64] = buf;
            self.par.for_each_chunk(&mut transposed, rows, |offset, span| {
                let first_col = offset / rows;
                for (i, column) in span.chunks_exact_mut(rows).enumerate() {
                    let c = first_col + i;
                    for (r, sample) in column.iter_mut().enumerate() {
                        *sample = source[r * cols + c];
                    }
                    if forward {
                        self.col_plan.forward(column);
                    } else {
                        self.col_plan.inverse(column);
                    }
                }
            });
        }
        {
            let transposed: &[Complex64] = &transposed;
            self.par.for_each_chunk(buf, cols, |offset, span| {
                let first_row = offset / cols;
                for (i, row) in span.chunks_exact_mut(cols).enumerate() {
                    let r = first_row + i;
                    for (c, sample) in row.iter_mut().enumerate() {
                        *sample = transposed[c * rows + r];
                    }
                }
            });
        }
        self.par.arena().give(transposed);
    }
}

/// Swaps quadrants so the zero-frequency bin moves to the buffer center.
///
/// For odd dimensions, `fftshift` followed by [`ifftshift`] is the identity
/// (the two use floor/ceil splits respectively, as in NumPy).
///
/// # Panics
///
/// Panics if `buf.len() != rows * cols`.
pub fn fftshift(buf: &mut [Complex64], rows: usize, cols: usize) {
    shift(buf, rows, cols, rows.div_ceil(2), cols.div_ceil(2));
}

/// Inverse of [`fftshift`].
///
/// # Panics
///
/// Panics if `buf.len() != rows * cols`.
pub fn ifftshift(buf: &mut [Complex64], rows: usize, cols: usize) {
    shift(buf, rows, cols, rows / 2, cols / 2);
}

/// Rotates rows up by `row_by` and columns left by `col_by`, entirely in
/// place. Even dimensions take the half-swap fast path (a quadrant swap);
/// odd dimensions fall back to slice rotation, which is also allocation-free.
fn shift(buf: &mut [Complex64], rows: usize, cols: usize, row_by: usize, col_by: usize) {
    assert_eq!(buf.len(), rows * cols, "buffer length does not match shape");
    if rows == 0 || cols == 0 {
        return;
    }
    let col_by = col_by % cols;
    if col_by > 0 {
        if cols.is_multiple_of(2) && col_by == cols / 2 {
            for row in buf.chunks_exact_mut(cols) {
                let (left, right) = row.split_at_mut(col_by);
                left.swap_with_slice(right);
            }
        } else {
            for row in buf.chunks_exact_mut(cols) {
                row.rotate_left(col_by);
            }
        }
    }
    let row_by = row_by % rows;
    if row_by > 0 {
        if rows.is_multiple_of(2) && row_by == rows / 2 {
            let (top, bottom) = buf.split_at_mut(row_by * cols);
            top.swap_with_slice(bottom);
        } else {
            buf.rotate_left(row_by * cols);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft;

    fn image(rows: usize, cols: usize) -> Vec<Complex64> {
        (0..rows * cols)
            .map(|i| Complex64::new((i as f64 * 0.23).sin(), (i as f64 * 0.91).cos()))
            .collect()
    }

    /// O(n²) 2-D DFT oracle.
    fn dft2d(buf: &[Complex64], rows: usize, cols: usize) -> Vec<Complex64> {
        // rows first
        let mut tmp: Vec<Complex64> = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            tmp.extend(dft::forward(&buf[r * cols..(r + 1) * cols]));
        }
        let mut out = vec![Complex64::ZERO; rows * cols];
        for c in 0..cols {
            let col: Vec<Complex64> = (0..rows).map(|r| tmp[r * cols + c]).collect();
            let spec = dft::forward(&col);
            for r in 0..rows {
                out[r * cols + c] = spec[r];
            }
        }
        out
    }

    #[test]
    fn matches_reference_2d_dft() {
        for (rows, cols) in [(2usize, 2usize), (4, 8), (3, 5), (8, 3)] {
            let x = image(rows, cols);
            let mut fast = x.clone();
            Fft2d::new(rows, cols).forward(&mut fast);
            let slow = dft2d(&x, rows, cols);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((*a - *b).norm() < 1e-8, "shape {rows}x{cols}");
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        let (rows, cols) = (16, 12);
        let fft = Fft2d::new(rows, cols);
        let x = image(rows, cols);
        let mut buf = x.clone();
        fft.forward(&mut buf);
        fft.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&x) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn parseval_2d() {
        let (rows, cols) = (8, 8);
        let x = image(rows, cols);
        let mut spec = x.clone();
        Fft2d::new(rows, cols).forward(&mut spec);
        let te: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let fe: f64 =
            spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / (rows * cols) as f64;
        assert!((te - fe).abs() < 1e-8);
    }

    #[test]
    fn parallel_output_is_bit_identical_to_serial() {
        for (rows, cols) in [(4usize, 4usize), (8, 6), (5, 7), (16, 16), (12, 20)] {
            let x = image(rows, cols);
            let mut serial = x.clone();
            let serial_fft = Fft2d::new(rows, cols);
            serial_fft.forward(&mut serial);
            for workers in [2usize, 3, 7] {
                let mut parallel = x.clone();
                let fft = Fft2d::with_parallelism(rows, cols, Parallelism::new(workers));
                fft.forward(&mut parallel);
                assert_eq!(serial, parallel, "forward {rows}x{cols} workers={workers}");
                fft.inverse(&mut parallel);
                let mut roundtrip = serial.clone();
                serial_fft.inverse(&mut roundtrip);
                assert_eq!(roundtrip, parallel, "inverse {rows}x{cols} workers={workers}");
            }
        }
    }

    #[test]
    fn serial_equivalent_matches_parallel_plan() {
        let fft = Fft2d::with_parallelism(8, 8, Parallelism::new(4));
        let serial = fft.serial_equivalent();
        assert!(serial.parallelism().is_serial());
        let x = image(8, 8);
        let mut a = x.clone();
        let mut b = x;
        fft.forward(&mut a);
        serial.forward(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_arena_is_reused_across_calls() {
        let fft = Fft2d::new(8, 8);
        let mut buf = image(8, 8);
        fft.forward(&mut buf);
        assert_eq!(fft.parallelism().arena().pooled(), 1);
        fft.inverse(&mut buf);
        assert_eq!(fft.parallelism().arena().pooled(), 1);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn wrong_buffer_shape_panics() {
        Fft2d::new(4, 4).forward(&mut vec![Complex64::ZERO; 15]);
    }

    #[test]
    fn batch_matches_per_buffer_transforms() {
        let (rows, cols) = (6, 5);
        let serial = Fft2d::new(rows, cols);
        let inputs: Vec<Vec<Complex64>> = (0..5)
            .map(|i| {
                image(rows, cols)
                    .into_iter()
                    .map(|z| z * Complex64::new(1.0 + i as f64, 0.0))
                    .collect()
            })
            .collect();
        let mut expected = inputs.clone();
        for buf in &mut expected {
            serial.forward(buf);
        }
        for workers in [1usize, 2, 7] {
            let fft = Fft2d::with_parallelism(rows, cols, Parallelism::new(workers));
            let mut batch = inputs.clone();
            fft.forward_batch(&mut batch);
            assert_eq!(batch, expected, "forward batch workers={workers}");
            fft.inverse_batch(&mut batch);
            let mut roundtrip = expected.clone();
            for buf in &mut roundtrip {
                serial.inverse(buf);
            }
            assert_eq!(batch, roundtrip, "inverse batch workers={workers}");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        Fft2d::new(4, 4).forward_batch(&mut []);
    }

    #[test]
    fn fftshift_moves_dc_to_center() {
        let (rows, cols) = (4, 4);
        let mut buf = vec![Complex64::ZERO; rows * cols];
        buf[0] = Complex64::ONE; // DC at corner
        fftshift(&mut buf, rows, cols);
        assert_eq!(buf[2 * cols + 2], Complex64::ONE);
    }

    #[test]
    fn shift_roundtrip_even_and_odd() {
        for (rows, cols) in [(4usize, 6usize), (5, 5), (3, 8), (7, 2)] {
            let x = image(rows, cols);
            let mut buf = x.clone();
            fftshift(&mut buf, rows, cols);
            ifftshift(&mut buf, rows, cols);
            assert_eq!(buf, x, "shape {rows}x{cols}");
        }
    }

    #[test]
    fn even_fast_path_matches_rotation_semantics() {
        // The quadrant-swap fast path must agree with plain rotation.
        for (rows, cols) in [(4usize, 4usize), (6, 8), (2, 10)] {
            let x = image(rows, cols);
            let mut fast = x.clone();
            fftshift(&mut fast, rows, cols);
            let mut reference = x.clone();
            for row in reference.chunks_exact_mut(cols) {
                row.rotate_left(cols / 2);
            }
            reference.rotate_left((rows / 2) * cols);
            assert_eq!(fast, reference, "shape {rows}x{cols}");
        }
    }
}
