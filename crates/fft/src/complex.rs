//! A minimal complex-number type for wave-optics computations.
//!
//! The workspace deliberately avoids external numeric crates, so this module
//! provides the small slice of complex arithmetic the holographic pipeline
//! needs: the four ring operations, conjugation, polar conversions and the
//! complex exponential.
//!
//! [`Complex`] is generic over the scalar precision (see [`crate::real`]):
//! [`Complex64`] is the bit-identity reference used across the workspace,
//! [`Complex32`] backs the quality-gated f32 throughput path.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::real::Real;

/// A complex number generic over scalar precision. Defaults to `f64`, so
/// `Complex` in type positions means the reference precision.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex<T: Real = f64> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// A complex number with `f64` components — the workspace reference type.
///
/// # Examples
///
/// ```
/// use holoar_fft::Complex64;
///
/// let i = Complex64::I;
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// ```
pub type Complex64 = Complex<f64>;

/// A complex number with `f32` components — the throughput path's type.
///
/// # Examples
///
/// ```
/// use holoar_fft::Complex32;
///
/// let z = Complex32::new(3.0, -4.0);
/// assert_eq!(z.norm(), 5.0);
/// ```
pub type Complex32 = Complex<f32>;

impl<T: Real> Complex<T> {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex<T> = Complex { re: T::ZERO, im: T::ZERO };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex<T> = Complex { re: T::ONE, im: T::ZERO };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex<T> = Complex { re: T::ZERO, im: T::ONE };

    /// Creates a complex number from rectangular components.
    ///
    /// # Examples
    ///
    /// ```
    /// use holoar_fft::Complex64;
    /// let z = Complex64::new(3.0, -4.0);
    /// assert_eq!(z.norm(), 5.0);
    /// ```
    #[inline]
    pub const fn new(re: T, im: T) -> Self {
        Complex { re, im }
    }

    /// Creates a complex number from polar components `r·e^{iθ}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use holoar_fft::Complex64;
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-12);
    /// assert!((z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: T, theta: T) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: r * c, im: r * s }
    }

    /// `e^{iθ}`: a unit-magnitude phasor. This is the workhorse of every
    /// propagation kernel in the optics crate.
    #[inline]
    pub fn cis(theta: T) -> Self {
        Self::from_polar(T::ONE, theta)
    }

    /// `e^{iθ}` with the angle supplied (and the trigonometry evaluated) in
    /// `f64`, then narrowed. Plan construction funnels every twiddle/chirp
    /// table through this so the f32 tables hold correctly rounded values
    /// rather than values computed from already-rounded angles.
    #[inline]
    pub fn cis_f64(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: T::from_f64(c), im: T::from_f64(s) }
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// The modulus `|z|`.
    #[inline]
    pub fn norm(self) -> T {
        self.re.hypot(self.im)
    }

    /// The squared modulus `|z|²` — the optical *intensity* of a field sample.
    #[inline]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// The argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> T {
        self.im.atan2(self.re)
    }

    /// The complex exponential `e^z`.
    ///
    /// # Examples
    ///
    /// ```
    /// use holoar_fft::Complex64;
    /// let z = Complex64::new(0.0, std::f64::consts::PI).exp();
    /// assert!((z.re + 1.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Self::from_polar(r, self.im)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: T) -> Self {
        Complex { re: self.re * k, im: self.im * k }
    }

    /// The multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `z` is zero, mirroring scalar
    /// division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex { re: self.re / d, im: -self.im / d }
    }

    /// Whether both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Complex64 {
    /// Narrows both components to `f32`.
    #[inline]
    pub fn to_c32(self) -> Complex32 {
        Complex { re: self.re as f32, im: self.im as f32 }
    }
}

impl Complex32 {
    /// Widens both components to `f64`.
    #[inline]
    pub fn to_c64(self) -> Complex64 {
        Complex { re: f64::from(self.re), im: f64::from(self.im) }
    }
}

impl<T: Real> From<T> for Complex<T> {
    #[inline]
    fn from(re: T) -> Self {
        Complex { re, im: T::ZERO }
    }
}

impl<T: Real> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= T::ZERO {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl<T: Real> Add for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    fn add(self, rhs: Complex<T>) -> Complex<T> {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl<T: Real> AddAssign for Complex<T> {
    #[inline]
    fn add_assign(&mut self, rhs: Complex<T>) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl<T: Real> Sub for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    fn sub(self, rhs: Complex<T>) -> Complex<T> {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl<T: Real> SubAssign for Complex<T> {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex<T>) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl<T: Real> Mul for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    fn mul(self, rhs: Complex<T>) -> Complex<T> {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl<T: Real> MulAssign for Complex<T> {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex<T>) {
        *self = *self * rhs;
    }
}

impl<T: Real> Mul<T> for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    fn mul(self, rhs: T) -> Complex<T> {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Mul<Complex32> for f32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: Complex32) -> Complex32 {
        rhs.scale(self)
    }
}

impl<T: Real> Div for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w computed as z·w⁻¹
    fn div(self, rhs: Complex<T>) -> Complex<T> {
        self * rhs.inv()
    }
}

impl<T: Real> DivAssign for Complex<T> {
    #[inline]
    fn div_assign(&mut self, rhs: Complex<T>) {
        *self = *self / rhs;
    }
}

impl<T: Real> Div<T> for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    fn div(self, rhs: T) -> Complex<T> {
        Complex { re: self.re / rhs, im: self.im / rhs }
    }
}

impl<T: Real> Neg for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    fn neg(self) -> Complex<T> {
        Complex { re: -self.re, im: -self.im }
    }
}

impl<T: Real> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Complex<T>>>(iter: I) -> Self {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).norm() < 1e-12
    }

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex64::ZERO, Complex64::new(0.0, 0.0));
        assert_eq!(Complex64::ONE, Complex64::new(1.0, 0.0));
        assert_eq!(Complex64::I * Complex64::I, -Complex64::ONE);
        assert_eq!(Complex64::from(2.5), Complex64::new(2.5, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(3.0, 1.2);
        assert!((z.norm() - 3.0).abs() < 1e-12);
        assert!((z.arg() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert!(close(a + b, Complex64::new(-2.0, 2.5)));
        assert!(close(a - b, Complex64::new(4.0, 1.5)));
        assert!(close(a * b, Complex64::new(-4.0, -5.5)));
        assert!(close((a / b) * b, a));
        assert!(close(-a, Complex64::new(-1.0, -2.0)));
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let a = Complex64::new(0.3, -0.7);
        let b = Complex64::new(1.5, 2.0);
        let mut c = a;
        c += b;
        assert!(close(c, a + b));
        c -= b;
        assert!(close(c, a));
        c *= b;
        assert!(close(c, a * b));
        c /= b;
        assert!(close(c, a));
    }

    #[test]
    fn conj_and_norms() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z.conj(), Complex64::new(3.0, 4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
        assert!(close(z * z.conj(), Complex64::from(25.0)));
    }

    #[test]
    fn exp_matches_euler() {
        let theta = 0.7;
        assert!(close(Complex64::new(0.0, theta).exp(), Complex64::cis(theta)));
        // e^{a+bi} = e^a (cos b + i sin b)
        let z = Complex64::new(0.5, -1.1).exp();
        let want = Complex64::from_polar(0.5f64.exp(), -1.1);
        assert!(close(z, want));
    }

    #[test]
    fn inv_is_multiplicative_inverse() {
        let z = Complex64::new(-2.0, 7.0);
        assert!(close(z * z.inv(), Complex64::ONE));
    }

    #[test]
    fn sum_of_iterator() {
        let total: Complex64 =
            (0..4).map(|k| Complex64::new(k as f64, -(k as f64))).sum();
        assert!(close(total, Complex64::new(6.0, -6.0)));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn zero_inverse_is_not_finite() {
        assert!(!Complex64::ZERO.inv().is_finite());
        assert!(Complex64::ONE.is_finite());
    }

    #[test]
    fn f32_instantiation_mirrors_f64_semantics() {
        let a = Complex32::new(1.0, 2.0);
        let b = Complex32::new(-3.0, 0.5);
        assert_eq!(a * b, Complex32::new(-4.0, -5.5));
        assert_eq!(Complex32::I * Complex32::I, -Complex32::ONE);
        assert_eq!(2.0f32 * a, Complex32::new(2.0, 4.0));
        assert_eq!(a * 2.0f32, Complex32::new(2.0, 4.0));
        assert_eq!(a.to_string(), "1+2i");
    }

    #[test]
    fn precision_conversions_roundtrip() {
        let z = Complex64::new(0.125, -7.5); // exactly representable in f32
        assert_eq!(z.to_c32().to_c64(), z);
        let narrowed = Complex64::new(std::f64::consts::PI, 0.0).to_c32();
        assert_eq!(narrowed.re, std::f32::consts::PI);
    }

    #[test]
    fn cis_f64_narrows_correctly_rounded_values() {
        let theta = 1.234_567_89_f64;
        let reference = Complex64::cis(theta);
        let narrowed: Complex32 = Complex::cis_f64(theta);
        assert_eq!(narrowed.re, reference.re as f32);
        assert_eq!(narrowed.im, reference.im as f32);
    }
}
