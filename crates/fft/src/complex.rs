//! A minimal complex-number type for wave-optics computations.
//!
//! The workspace deliberately avoids external numeric crates, so this module
//! provides the small slice of complex arithmetic the holographic pipeline
//! needs: the four ring operations, conjugation, polar conversions and the
//! complex exponential.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use holoar_fft::Complex64;
///
/// let i = Complex64::I;
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    ///
    /// # Examples
    ///
    /// ```
    /// use holoar_fft::Complex64;
    /// let z = Complex64::new(3.0, -4.0);
    /// assert_eq!(z.norm(), 5.0);
    /// ```
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a complex number from polar components `r·e^{iθ}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use holoar_fft::Complex64;
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-12);
    /// assert!((z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex64 { re: r * c, im: r * s }
    }

    /// `e^{iθ}`: a unit-magnitude phasor. This is the workhorse of every
    /// propagation kernel in the optics crate.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 { re: self.re, im: -self.im }
    }

    /// The modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The squared modulus `|z|²` — the optical *intensity* of a field sample.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// The complex exponential `e^z`.
    ///
    /// # Examples
    ///
    /// ```
    /// use holoar_fft::Complex64;
    /// let z = Complex64::new(0.0, std::f64::consts::PI).exp();
    /// assert!((z.re + 1.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Self::from_polar(r, self.im)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64 { re: self.re * k, im: self.im * k }
    }

    /// The multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `z` is zero, mirroring `f64`
    /// division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64 { re: self.re / d, im: -self.im / d }
    }

    /// Whether both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64 { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64 { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w computed as z·w⁻¹
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.inv()
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64 { re: self.re / rhs, im: self.im / rhs }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64 { re: -self.re, im: -self.im }
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).norm() < 1e-12
    }

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex64::ZERO, Complex64::new(0.0, 0.0));
        assert_eq!(Complex64::ONE, Complex64::new(1.0, 0.0));
        assert_eq!(Complex64::I * Complex64::I, -Complex64::ONE);
        assert_eq!(Complex64::from(2.5), Complex64::new(2.5, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(3.0, 1.2);
        assert!((z.norm() - 3.0).abs() < 1e-12);
        assert!((z.arg() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert!(close(a + b, Complex64::new(-2.0, 2.5)));
        assert!(close(a - b, Complex64::new(4.0, 1.5)));
        assert!(close(a * b, Complex64::new(-4.0, -5.5)));
        assert!(close((a / b) * b, a));
        assert!(close(-a, Complex64::new(-1.0, -2.0)));
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let a = Complex64::new(0.3, -0.7);
        let b = Complex64::new(1.5, 2.0);
        let mut c = a;
        c += b;
        assert!(close(c, a + b));
        c -= b;
        assert!(close(c, a));
        c *= b;
        assert!(close(c, a * b));
        c /= b;
        assert!(close(c, a));
    }

    #[test]
    fn conj_and_norms() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z.conj(), Complex64::new(3.0, 4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
        assert!(close(z * z.conj(), Complex64::from(25.0)));
    }

    #[test]
    fn exp_matches_euler() {
        let theta = 0.7;
        assert!(close(Complex64::new(0.0, theta).exp(), Complex64::cis(theta)));
        // e^{a+bi} = e^a (cos b + i sin b)
        let z = Complex64::new(0.5, -1.1).exp();
        let want = Complex64::from_polar(0.5f64.exp(), -1.1);
        assert!(close(z, want));
    }

    #[test]
    fn inv_is_multiplicative_inverse() {
        let z = Complex64::new(-2.0, 7.0);
        assert!(close(z * z.inv(), Complex64::ONE));
    }

    #[test]
    fn sum_of_iterator() {
        let total: Complex64 =
            (0..4).map(|k| Complex64::new(k as f64, -(k as f64))).sum();
        assert!(close(total, Complex64::new(6.0, -6.0)));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn zero_inverse_is_not_finite() {
        assert!(!Complex64::ZERO.inv().is_finite());
        assert!(Complex64::ONE.is_finite());
    }
}
