//! Property-based tests for the FFT substrate: algebraic identities that must
//! hold for every length and every input, fast path or slow path.

use holoar_fft::{
    dft, fftshift, ifftshift, transpose_into, Complex64, Fft2d, FftPlanner, Parallelism,
};
use proptest::prelude::*;

fn complex_vec(max_len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec(
        (-1e3f64..1e3, -1e3f64..1e3).prop_map(|(re, im)| Complex64::new(re, im)),
        1..=max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT(inverse(x)) == x for arbitrary lengths (covers both algorithms).
    #[test]
    fn roundtrip_is_identity(x in complex_vec(96)) {
        let plan = FftPlanner::new().plan(x.len());
        let mut buf = x.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        let scale: f64 = x.iter().map(|z| z.norm()).fold(1.0, f64::max);
        for (a, b) in buf.iter().zip(&x) {
            prop_assert!((*a - *b).norm() <= 1e-9 * scale * x.len() as f64);
        }
    }

    /// The fast transform agrees with the O(n²) reference DFT.
    #[test]
    fn fast_matches_reference(x in complex_vec(48)) {
        let plan = FftPlanner::new().plan(x.len());
        let mut fast = x.clone();
        plan.forward(&mut fast);
        let slow = dft::forward(&x);
        let scale: f64 = x.iter().map(|z| z.norm()).sum::<f64>().max(1.0);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).norm() <= 1e-9 * scale);
        }
    }

    /// FFT is linear: FFT(a·x + y) == a·FFT(x) + FFT(y).
    #[test]
    fn linearity(x in complex_vec(64), scale in -10.0f64..10.0) {
        let n = x.len();
        let y: Vec<Complex64> =
            (0..n).map(|i| Complex64::new((i as f64).sin(), 1.0)).collect();
        let plan = FftPlanner::new().plan(n);

        let mut combined: Vec<Complex64> =
            x.iter().zip(&y).map(|(a, b)| a.scale(scale) + *b).collect();
        plan.forward(&mut combined);

        let mut fx = x.clone();
        plan.forward(&mut fx);
        let mut fy = y.clone();
        plan.forward(&mut fy);

        let mag: f64 = x.iter().map(|z| z.norm()).sum::<f64>().max(1.0) * scale.abs().max(1.0);
        for ((c, a), b) in combined.iter().zip(&fx).zip(&fy) {
            prop_assert!((*c - (a.scale(scale) + *b)).norm() <= 1e-8 * mag.max(n as f64));
        }
    }

    /// Parseval: time-domain and (normalized) frequency-domain energy agree.
    #[test]
    fn parseval(x in complex_vec(80)) {
        let plan = FftPlanner::new().plan(x.len());
        let mut spec = x.clone();
        plan.forward(&mut spec);
        let te: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let fe: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        prop_assert!((te - fe).abs() <= 1e-7 * te.max(1.0));
    }

    /// fftshift/ifftshift invert each other for any shape.
    #[test]
    fn shift_roundtrip(rows in 1usize..12, cols in 1usize..12) {
        let x: Vec<Complex64> =
            (0..rows * cols).map(|i| Complex64::new(i as f64, -(i as f64))).collect();
        let mut buf = x.clone();
        fftshift(&mut buf, rows, cols);
        ifftshift(&mut buf, rows, cols);
        prop_assert_eq!(buf, x);
    }

    /// 2-D roundtrip is the identity for any shape.
    #[test]
    fn roundtrip_2d(rows in 1usize..16, cols in 1usize..16) {
        let fft = Fft2d::new(rows, cols);
        let x: Vec<Complex64> = (0..rows * cols)
            .map(|i| Complex64::new((i as f64 * 0.3).cos(), (i as f64 * 1.7).sin()))
            .collect();
        let mut buf = x.clone();
        fft.forward(&mut buf);
        fft.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&x) {
            prop_assert!((*a - *b).norm() <= 1e-8);
        }
    }

    /// Time shift ↔ frequency linear phase (the DFT shift theorem), the
    /// property the angular-spectrum propagator implicitly relies on.
    #[test]
    fn shift_theorem(x in complex_vec(48), shift in 0usize..48) {
        let n = x.len();
        let shift = shift % n;
        let plan = FftPlanner::new().plan(n);

        let mut shifted = x.clone();
        shifted.rotate_right(shift);
        plan.forward(&mut shifted);

        let mut spec = x.clone();
        plan.forward(&mut spec);

        let mag: f64 = x.iter().map(|z| z.norm()).sum::<f64>().max(1.0);
        for (k, (s, f)) in shifted.iter().zip(&spec).enumerate() {
            let phase = Complex64::cis(
                -2.0 * std::f64::consts::PI * (k * shift % n) as f64 / n as f64,
            );
            prop_assert!((*s - *f * phase).norm() <= 1e-8 * mag);
        }
    }
}

// ---------------------------------------------------------------------------
// Hot-path specializations must be invisible in the numbers: the packed
// real-input row kernel and the cache-blocked transpose are pure
// reorganizations of the same arithmetic and data movement.
// ---------------------------------------------------------------------------

fn real_shape_and_data() -> impl Strategy<Value = (usize, usize, Vec<Complex64>)> {
    // Shapes up to 20×20 cover radix-2 and Bluestein row/column lengths and
    // both parities of the row count (odd = one unpaired trailing row).
    (1usize..20, 1usize..20).prop_flat_map(|(rows, cols)| {
        prop::collection::vec(
            (-1e3f64..1e3).prop_map(|re| Complex64::new(re, 0.0)),
            rows * cols..=rows * cols,
        )
        .prop_map(move |data| (rows, cols, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `forward` on a purely real buffer is bit-identical to `forward_real`
    /// (the public complex entry point dispatches to the packed real
    /// kernel), for every shape and worker count.
    #[test]
    fn real_input_dispatch_is_bit_identical(
        (rows, cols, x) in real_shape_and_data(),
        workers in prop::sample::select(vec![1usize, 2, 7]),
    ) {
        let fft = Fft2d::with_parallelism(rows, cols, Parallelism::new(workers));
        let mut via_forward = x.clone();
        fft.forward(&mut via_forward);
        let mut via_real = x.clone();
        fft.forward_real(&mut via_real);
        prop_assert_eq!(&via_forward, &via_real);
        // And the parallel fan-out stays invisible for the real path too.
        let mut serial = x.clone();
        Fft2d::new(rows, cols).forward(&mut serial);
        prop_assert_eq!(&via_forward, &serial);
    }

    /// The packed real-input transform agrees with the O(n²) reference DFT
    /// on both rows and columns.
    #[test]
    fn real_input_fft_matches_reference((rows, cols, x) in real_shape_and_data()) {
        let mut fast = x.clone();
        Fft2d::new(rows, cols).forward(&mut fast);
        // Reference: 1-D DFT of every row, then of every column.
        let mut slow: Vec<Complex64> = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            slow.extend(dft::forward(&x[r * cols..(r + 1) * cols]));
        }
        let mut out = vec![Complex64::ZERO; rows * cols];
        for c in 0..cols {
            let col: Vec<Complex64> = (0..rows).map(|r| slow[r * cols + c]).collect();
            for (r, v) in dft::forward(&col).into_iter().enumerate() {
                out[r * cols + c] = v;
            }
        }
        let scale: f64 = x.iter().map(|z| z.norm()).sum::<f64>().max(1.0);
        for (a, b) in fast.iter().zip(&out) {
            prop_assert!((*a - *b).norm() <= 1e-9 * scale);
        }
    }

    /// The cache-blocked transpose is bit-identical to the naive nested
    /// loop for every shape, including Bluestein (non-power-of-two) ones
    /// and shapes straddling the tile edge.
    #[test]
    fn blocked_transpose_matches_naive(rows in 1usize..70, cols in 1usize..70) {
        let x: Vec<Complex64> = (0..rows * cols)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let mut blocked = vec![Complex64::ZERO; rows * cols];
        transpose_into(&x, rows, cols, &mut blocked);
        let mut naive = vec![Complex64::ZERO; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                naive[c * rows + r] = x[r * cols + c];
            }
        }
        prop_assert_eq!(blocked, naive);
    }
}

// ---------------------------------------------------------------------------
// Parallel execution: the fan-out must be a pure execution detail. Every
// worker count (including over-subscribed ones) must produce bit-identical
// buffers for every shape — radix-2 and Bluestein, forward and inverse.
// ---------------------------------------------------------------------------

fn shape_and_data() -> impl Strategy<Value = (usize, usize, Vec<Complex64>)> {
    (1usize..20, 1usize..20).prop_flat_map(|(rows, cols)| {
        prop::collection::vec(
            (-1e3f64..1e3, -1e3f64..1e3).prop_map(|(re, im)| Complex64::new(re, im)),
            rows * cols..=rows * cols,
        )
        .prop_map(move |data| (rows, cols, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel 2-D FFT output is bit-identical to serial for any shape
    /// (non-powers of two exercise the Bluestein path) and worker count.
    #[test]
    fn parallel_fft2d_is_bit_identical(
        (rows, cols, x) in shape_and_data(),
        workers in prop::sample::select(vec![1usize, 2, 7]),
    ) {
        let serial = Fft2d::new(rows, cols);
        let parallel = Fft2d::with_parallelism(rows, cols, Parallelism::new(workers));

        let mut want = x.clone();
        serial.forward(&mut want);
        let mut got = x.clone();
        parallel.forward(&mut got);
        prop_assert_eq!(&got, &want);

        serial.inverse(&mut want);
        parallel.inverse(&mut got);
        prop_assert_eq!(&got, &want);
    }

    /// Telemetry is observation only: running the same transforms with
    /// `full` tracing enabled must not perturb a single bit of output, and
    /// the parallel-vs-serial identity must keep holding while instrumented.
    #[test]
    fn full_telemetry_does_not_change_fft_output(
        (rows, cols, x) in shape_and_data(),
        workers in prop::sample::select(vec![1usize, 2, 7]),
    ) {
        let fft = Fft2d::with_parallelism(rows, cols, Parallelism::new(workers));
        let mut quiet = x.clone();
        fft.forward(&mut quiet);

        let previous = holoar_telemetry::mode();
        holoar_telemetry::set_mode(holoar_telemetry::TelemetryMode::Full);
        let mut traced = x.clone();
        fft.forward(&mut traced);
        let mut serial_traced = x.clone();
        Fft2d::new(rows, cols).forward(&mut serial_traced);
        holoar_telemetry::set_mode(previous);

        prop_assert_eq!(&traced, &quiet);
        prop_assert_eq!(&traced, &serial_traced);
    }

    /// The in-place fftshift/ifftshift fast paths keep their inverse
    /// relationship under parallel 2-D transforms around them.
    #[test]
    fn parallel_transform_with_shift_roundtrip(
        (rows, cols, x) in shape_and_data(),
        workers in prop::sample::select(vec![2usize, 7]),
    ) {
        let fft = Fft2d::with_parallelism(rows, cols, Parallelism::new(workers));
        let mut buf = x.clone();
        fft.forward(&mut buf);
        fftshift(&mut buf, rows, cols);
        ifftshift(&mut buf, rows, cols);
        fft.inverse(&mut buf);
        let scale: f64 = x.iter().map(|z| z.norm()).fold(1.0, f64::max);
        for (a, b) in buf.iter().zip(&x) {
            prop_assert!((*a - *b).norm() <= 1e-8 * scale * (rows * cols) as f64);
        }
    }
}
