//! Staged-executor properties: queue semantics (bounded, drop-oldest, no
//! silent presentation gaps), worker-count bit-identity, and agreement with
//! the lockstep loop's per-frame accounting — for *any* latency stream.

use holoar_fft::ExecutionContext;
use holoar_pipeline::{
    run_loop, run_staged, run_staged_trace, BoundedQueue, FrameLatencies, StagedConfig,
};
use proptest::prelude::*;

fn arb_latencies() -> impl Strategy<Value = Vec<FrameLatencies>> {
    prop::collection::vec(
        (1e-4f64..0.02, 1e-4f64..0.01, 0.0f64..0.15, 1e-4f64..0.2).prop_map(
            |(pose, eye, scene, hologram)| FrameLatencies { pose, eye, scene, hologram },
        ),
        1..40,
    )
}

fn arb_config() -> impl Strategy<Value = StagedConfig> {
    (1usize..4, 1usize..4).prop_map(|(compute_queue, present_queue)| StagedConfig {
        compute_queue,
        present_queue,
        ..StagedConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every ingested frame presents exactly once, in frame-index order, at
    /// a non-decreasing virtual time — a dropped frame surfaces as a stale
    /// reprojection, never as a silent gap. The stale count is exactly the
    /// frames the bounded queues displaced.
    #[test]
    fn dropped_frames_surface_as_stale_reprojections_never_gaps(
        lat in arb_latencies(),
        config in arb_config(),
    ) {
        let frames = lat.len() as u64;
        let trace =
            run_staged_trace(frames, &config, |i| lat[i as usize], &ExecutionContext::serial());
        let report = &trace.report;
        prop_assert_eq!(trace.presented.len() as u64, frames);
        let mut last_t = f64::NEG_INFINITY;
        for (i, p) in trace.presented.iter().enumerate() {
            prop_assert!(p.frame == i as u64, "presentation out of frame order");
            prop_assert!(p.presented >= last_t, "present times must be non-decreasing");
            prop_assert!(p.ready <= p.presented);
            prop_assert!(p.latency > 0.0 && p.latency.is_finite());
            last_t = p.presented;
        }
        prop_assert_eq!(report.fresh_frames + report.stale_frames, frames);
        // Every stale frame must trace back to a queue displacement.
        prop_assert_eq!(report.stale_frames, report.compute_drops + report.present_drops);
    }

    /// Drop-oldest never drops the newest frame: the most recent sample
    /// always survives, so the final frame always presents fresh.
    #[test]
    fn drop_oldest_never_drops_the_newest_frame(
        lat in arb_latencies(),
        config in arb_config(),
    ) {
        let frames = lat.len() as u64;
        let trace =
            run_staged_trace(frames, &config, |i| lat[i as usize], &ExecutionContext::serial());
        let last = trace.presented.last().expect("at least one frame presents");
        prop_assert!(
            last.fresh,
            "the newest frame was displaced (drop-oldest must keep it): {:?}",
            last
        );
    }

    /// Inter-stage queue depth never exceeds its configured bound.
    #[test]
    fn queue_depth_never_exceeds_its_bound(
        lat in arb_latencies(),
        config in arb_config(),
    ) {
        let frames = lat.len() as u64;
        let report =
            run_staged(frames, &config, |i| lat[i as usize], &ExecutionContext::serial());
        prop_assert!(
            report.max_compute_depth <= config.compute_queue,
            "compute queue high-water {} exceeds bound {}",
            report.max_compute_depth,
            config.compute_queue
        );
        prop_assert!(
            report.max_present_depth <= config.present_queue,
            "present queue high-water {} exceeds bound {}",
            report.max_present_depth,
            config.present_queue
        );
    }

    /// The staged report is bit-identical across worker counts: scheduling
    /// runs on virtual time, so thread arrival order cannot reorder
    /// hand-offs.
    #[test]
    fn staged_report_is_bit_identical_across_worker_counts(
        lat in arb_latencies(),
        config in arb_config(),
    ) {
        let frames = lat.len() as u64;
        let baseline =
            run_staged(frames, &config, |i| lat[i as usize], &ExecutionContext::serial());
        for workers in [1usize, 2, 7] {
            let ctx = ExecutionContext::with_workers(workers);
            let report = run_staged(frames, &config, |i| lat[i as usize], &ctx);
            prop_assert!(report == baseline, "report diverged at {workers} workers");
        }
    }

    /// The staged executor reproduces the lockstep loop's per-frame
    /// accounting exactly: same frame count, same cadence-applied worst-case
    /// stage latencies — overlap changes *when* stages run, never *what*
    /// they cost.
    #[test]
    fn staged_worst_case_matches_lockstep_accounting(lat in arb_latencies()) {
        let frames = lat.len() as u64;
        let staged = run_staged(
            frames,
            &StagedConfig::default(),
            |i| lat[i as usize],
            &ExecutionContext::serial(),
        );
        let lockstep = run_loop(frames, |i| lat[i as usize]);
        prop_assert_eq!(staged.frames, lockstep.frames);
        prop_assert_eq!(staged.worst, lockstep.worst);
    }

    /// `BoundedQueue` is FIFO with drop-oldest overflow: the displaced
    /// elements are exactly the oldest prefix (in age order), the survivors
    /// pop in insertion order, and depth never exceeds the bound.
    #[test]
    fn bounded_queue_displaces_exactly_the_oldest_prefix(
        items in prop::collection::vec(0u64..1000, 1..40),
        bound in 1usize..6,
    ) {
        let mut q = BoundedQueue::new(bound);
        let mut dropped = Vec::new();
        for &x in &items {
            if let Some(old) = q.push(x) {
                dropped.push(old);
            }
            prop_assert!(q.len() <= bound);
        }
        prop_assert_eq!(q.high_water(), items.len().min(bound));
        let cut = items.len().saturating_sub(bound);
        // Displacements must be the oldest elements, in age order.
        prop_assert_eq!(&dropped[..], &items[..cut]);
        let mut survivors = Vec::new();
        while let Some(x) = q.pop() {
            survivors.push(x);
        }
        // Survivors must pop in FIFO order.
        prop_assert_eq!(&survivors[..], &items[cut..]);
    }
}
