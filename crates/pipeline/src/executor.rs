//! The staged producer–consumer pipeline executor: sensor ingest ∥
//! hologram compute ∥ present, connected by bounded drop-oldest queues.
//!
//! [`crate::schedule::run_loop`] charges a frame the *sum* of its stage
//! latencies — lockstep execution, where a slow hologram stalls ingest and
//! present even though they run on different resources. This module
//! executes the same per-frame stage latencies as an overlapped pipeline:
//!
//! ```text
//!            ┌────────┐  compute   ┌─────────┐  present   ┌─────────┐
//!  sensors ─▶│ INGEST │──queue────▶│ COMPUTE │──queue────▶│ PRESENT │─▶ display
//!            └────────┘ (bounded,  └─────────┘ (bounded,  └─────────┘
//!                        drop-oldest)           drop-oldest)
//! ```
//!
//! Each stage is one virtual worker processing frames in order; stages
//! overlap freely. The queues are [`BoundedQueue`]s: when compute falls
//! behind, the oldest waiting frame is displaced and **surfaces as a stale
//! reprojection at present** (the `core::degrade` last-good path) — never a
//! silent gap, and never the newest frame.
//!
//! # Deterministic virtual time
//!
//! Scheduling runs in *virtual time*: stage hand-offs are ordered by
//! `(virtual timestamp, stage rank, frame index)` in a serial discrete-
//! event loop, never by wall clock or thread arrival. The only parallel
//! section is the per-frame latency evaluation (`frame_fn` fan-out over the
//! `ExecutionContext` pool), which is an order-preserving map. Worker count
//! therefore cannot reorder a single hand-off, and replay is bit-identical
//! across `HOLOAR_THREADS` — the same property-test discipline every other
//! parallel entry point in the workspace holds. Presentation additionally
//! stays in frame-index order: a stale frame's reprojection waits its turn,
//! so the display sequence is gap-free and monotone.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::queue::BoundedQueue;
use crate::schedule::{apply_scene_cadence, FrameLatencies, StageWorst};
use holoar_fft::ExecutionContext;

/// The three overlapped stages of the staged executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Sensor ingest + perception (pose, eye, scene reconstruction).
    Ingest,
    /// Hologram computation (GSW).
    Compute,
    /// Display composition / stale reprojection.
    Present,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 3] = [Stage::Ingest, Stage::Compute, Stage::Present];

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::Compute => "compute",
            Stage::Present => "present",
        }
    }

    /// Stage position: 0 (ingest) … 2 (present).
    pub fn index(self) -> usize {
        match self {
            Stage::Ingest => 0,
            Stage::Compute => 1,
            Stage::Present => 2,
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of the staged executor: queue bounds and present-stage
/// costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StagedConfig {
    /// Bound of the ingest → compute queue (frames waiting for a hologram).
    pub compute_queue: usize,
    /// Bound of the compute → present queue (holograms awaiting display).
    pub present_queue: usize,
    /// Display-composition cost of a fresh frame, seconds (the
    /// `display_compose` task of the frame graph).
    pub present_latency: f64,
    /// Cost of re-presenting the last good hologram for a dropped frame,
    /// seconds (mirrors `DegradationLadder::reproject_latency`).
    pub reproject_latency: f64,
}

impl Default for StagedConfig {
    /// Two-deep queues, the frame graph's 4 ms display composition, the
    /// degradation ladder's 1.5 ms reprojection.
    fn default() -> Self {
        StagedConfig {
            compute_queue: 2,
            present_queue: 2,
            present_latency: 0.004,
            reproject_latency: 0.0015,
        }
    }
}

impl StagedConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.compute_queue == 0 || self.present_queue == 0 {
            return Err("queue bounds must be at least 1".into());
        }
        if !(self.present_latency >= 0.0 && self.present_latency.is_finite()) {
            return Err("present latency must be finite and non-negative".into());
        }
        if !(self.reproject_latency >= 0.0 && self.reproject_latency.is_finite()) {
            return Err("reproject latency must be finite and non-negative".into());
        }
        Ok(())
    }
}

/// One frame as it left the present stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PresentedFrame {
    /// Frame index.
    pub frame: u64,
    /// `true` when the frame's own hologram was displayed; `false` when the
    /// frame surfaced as a stale reprojection (dropped from a queue).
    pub fresh: bool,
    /// Virtual time the frame's content became available to present.
    pub ready: f64,
    /// Virtual time presentation finished.
    pub presented: f64,
    /// End-to-end latency: presentation end minus ingest start.
    pub latency: f64,
}

/// Steady-state behaviour of a staged execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StagedReport {
    /// Frames simulated.
    pub frames: u64,
    /// Virtual time from the first ingest start to the last present end.
    pub makespan: f64,
    /// Achieved throughput, frames per second (`frames / makespan`).
    pub throughput_fps: f64,
    /// Mean end-to-end (ingest-start → present-end) latency, seconds.
    pub mean_latency: f64,
    /// Median end-to-end latency, seconds (quantile-sketch estimate, 1%
    /// relative-error bound).
    pub latency_p50: f64,
    /// 99th-percentile end-to-end latency, seconds (sketch estimate).
    pub latency_p99: f64,
    /// Frames that presented their own hologram.
    pub fresh_frames: u64,
    /// Frames that surfaced as stale reprojections (queue drops).
    pub stale_frames: u64,
    /// Frames displaced from the ingest → compute queue.
    pub compute_drops: u64,
    /// Holograms displaced from the compute → present queue.
    pub present_drops: u64,
    /// High-water occupancy of the ingest → compute queue.
    pub max_compute_depth: usize,
    /// High-water occupancy of the compute → present queue.
    pub max_present_depth: usize,
    /// The stage with the highest total busy time (bounds throughput).
    pub bottleneck: Stage,
    /// Per-stage worst-case raw latencies over the run (cadence-applied,
    /// identical to the lockstep loop's accounting on the same frames).
    pub worst: StageWorst,
}

/// A staged run plus its full per-frame evidence, for property tests and
/// callers that feed queue depth into a degradation controller.
#[derive(Debug, Clone, PartialEq)]
pub struct StagedTrace {
    /// The aggregate report.
    pub report: StagedReport,
    /// Every frame in presentation (= frame-index) order.
    pub presented: Vec<PresentedFrame>,
    /// The evaluated, cadence-applied per-frame stage latencies — exactly
    /// the stream the lockstep loop would consume.
    pub latencies: Vec<FrameLatencies>,
}

/// A discrete event of the virtual-time loop. Ordering is the determinism
/// contract: `(time, stage rank, frame)`, with downstream stages ranked
/// first so a worker frees its slot before an upstream hand-off lands at
/// the same instant.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    rank: u8,
    frame: u64,
}

impl Event {
    const RANK_PRESENT_DONE: u8 = 0;
    const RANK_COMPUTE_DONE: u8 = 1;
    const RANK_INGEST_DONE: u8 = 2;
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we pop earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.rank.cmp(&self.rank))
            .then_with(|| other.frame.cmp(&self.frame))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs the staged executor over per-frame latencies from `frame_fn`,
/// fanning the per-frame evaluations out over `ctx`'s worker pool, and
/// returns the aggregate report. See [`run_staged_trace`] for the
/// per-frame evidence.
///
/// Scene reconstruction runs at its 1-in-3 cadence (zeroed on off-frames),
/// exactly as in [`crate::schedule::run_loop`], so staged and lockstep
/// reports describe the same workload.
///
/// # Panics
///
/// Panics if `frames == 0` or `config` fails [`StagedConfig::validate`].
pub fn run_staged<F: Fn(u64) -> FrameLatencies + Sync>(
    frames: u64,
    config: &StagedConfig,
    frame_fn: F,
    ctx: &ExecutionContext,
) -> StagedReport {
    run_staged_trace(frames, config, frame_fn, ctx).report
}

/// [`run_staged`] returning the full [`StagedTrace`].
///
/// # Panics
///
/// Panics if `frames == 0` or `config` fails [`StagedConfig::validate`].
pub fn run_staged_trace<F: Fn(u64) -> FrameLatencies + Sync>(
    frames: u64,
    config: &StagedConfig,
    frame_fn: F,
    ctx: &ExecutionContext,
) -> StagedTrace {
    assert!(frames > 0, "need at least one frame");
    assert!(config.validate().is_ok(), "invalid staged config");
    let _span = holoar_telemetry::span_cat("pipeline.staged.run", "pipeline");

    // Parallel phase: evaluate every frame's stage latencies on the pool
    // (order-preserving map — bit-identical to a serial loop), then apply
    // the scene-reconstruction cadence the lockstep loop applies.
    let latencies: Vec<FrameLatencies> = crate::pipelined::evaluate_frames(frames, &frame_fn, ctx)
        .into_iter()
        .enumerate()
        .map(|(i, lat)| apply_scene_cadence(i as u64, lat))
        .collect();

    let trace = simulate_staged(config, &latencies);
    holoar_telemetry::gauge_set("pipeline.staged.throughput_fps", trace.report.throughput_fps);
    holoar_telemetry::gauge_set("pipeline.queue.high_water", trace.report.max_compute_depth as f64);
    holoar_telemetry::counter_add("pipeline.staged.stale_frames", trace.report.stale_frames);
    trace
}

/// Serial virtual-time discrete-event loop behind [`run_staged_trace`].
fn simulate_staged(config: &StagedConfig, latencies: &[FrameLatencies]) -> StagedTrace {
    let n = latencies.len();

    // Ingest is a free-running serial stage: frame i starts the instant
    // frame i-1 finished ingesting.
    let mut ingest_start = vec![0.0f64; n];
    let mut ingest_done = vec![0.0f64; n];
    {
        let _span = holoar_telemetry::span_cat("pipeline.stage.ingest", "pipeline");
        let mut t = 0.0;
        for (i, lat) in latencies.iter().enumerate() {
            ingest_start[i] = t;
            t += lat.ingest();
            ingest_done[i] = t;
        }
    }

    // Per-frame presentation content: (ready time, fresh?).
    let mut ready: Vec<Option<(f64, bool)>> = vec![None; n];
    let mut compute_q: BoundedQueue<u64> = BoundedQueue::new(config.compute_queue);
    let mut present_q: BoundedQueue<u64> = BoundedQueue::new(config.present_queue);
    let mut computing: Option<u64> = None;
    let mut presenting: Option<u64> = None;
    let mut next_present: u64 = 0;
    let mut present_end = vec![0.0f64; n];
    let mut present_ready = vec![0.0f64; n];
    let mut present_fresh = vec![false; n];
    let mut busy = [0.0f64; 3];
    busy[Stage::Ingest.index()] = ingest_done.last().copied().unwrap_or(0.0);

    let mut events: BinaryHeap<Event> = BinaryHeap::new();
    events.push(Event {
        time: ingest_done.first().copied().unwrap_or(0.0),
        rank: Event::RANK_INGEST_DONE,
        frame: 0,
    });

    while let Some(ev) = events.pop() {
        let t = ev.time;
        match ev.rank {
            Event::RANK_INGEST_DONE => {
                let i = ev.frame;
                // Hand the ingested frame to compute: straight onto the idle
                // worker, else into the bounded queue — where the displaced
                // oldest frame (if any) surfaces as a stale present.
                if computing.is_none() && compute_q.is_empty() {
                    computing = Some(i);
                    events.push(Event {
                        time: t + latencies[i as usize].hologram,
                        rank: Event::RANK_COMPUTE_DONE,
                        frame: i,
                    });
                } else if let Some(dropped) = compute_q.push(i) {
                    ready[dropped as usize] = Some((t, false));
                }
                if i + 1 < n as u64 {
                    events.push(Event {
                        time: ingest_done[i as usize + 1],
                        rank: Event::RANK_INGEST_DONE,
                        frame: i + 1,
                    });
                }
            }
            Event::RANK_COMPUTE_DONE => {
                let _span = holoar_telemetry::span_cat("pipeline.stage.compute", "pipeline");
                let i = ev.frame;
                busy[Stage::Compute.index()] += latencies[i as usize].hologram;
                // Hand the hologram to present through its bounded queue; a
                // displaced hologram expires — its frame presents stale.
                ready[i as usize] = Some((t, true));
                if let Some(expired) = present_q.push(i) {
                    if let Some(entry) = ready.get_mut(expired as usize) {
                        if let Some((ready_at, fresh)) = entry.as_mut() {
                            *fresh = false;
                            *ready_at = t;
                        }
                    }
                }
                computing = compute_q.pop().inspect(|&next| {
                    events.push(Event {
                        time: t + latencies[next as usize].hologram,
                        rank: Event::RANK_COMPUTE_DONE,
                        frame: next,
                    });
                });
            }
            _ => {
                let _span = holoar_telemetry::span_cat("pipeline.stage.present", "pipeline");
                let i = ev.frame;
                let cost = if present_fresh[i as usize] {
                    config.present_latency
                } else {
                    config.reproject_latency
                };
                busy[Stage::Present.index()] += cost;
                present_end[i as usize] = t;
                presenting = None;
            }
        }
        // Present runs in strict frame-index order: start the next frame the
        // moment its content is ready and the present worker is free.
        if presenting.is_none() && (next_present as usize) < n {
            if let Some((ready_at, fresh)) = ready[next_present as usize] {
                if ready_at <= t {
                    let i = next_present;
                    if fresh {
                        // Its hologram is the present queue's front (compute
                        // completes in frame order; stale frames never enter).
                        let popped = present_q.pop();
                        debug_assert_eq!(popped, Some(i));
                    }
                    present_ready[i as usize] = ready_at;
                    present_fresh[i as usize] = fresh;
                    let cost =
                        if fresh { config.present_latency } else { config.reproject_latency };
                    presenting = Some(i);
                    next_present += 1;
                    events.push(Event {
                        time: t + cost,
                        rank: Event::RANK_PRESENT_DONE,
                        frame: i,
                    });
                }
            }
        }
    }

    // Aggregate in frame order (serial reduction: bit-identical always).
    let mut worst = StageWorst::default();
    let mut sketch = holoar_telemetry::QuantileSketch::default();
    let mut latency_sum = 0.0;
    let mut fresh_frames = 0u64;
    let mut presented = Vec::with_capacity(n);
    for i in 0..n {
        worst.absorb(&latencies[i]);
        let latency = present_end[i] - ingest_start[i];
        sketch.record(latency);
        latency_sum += latency;
        fresh_frames += u64::from(present_fresh[i]);
        presented.push(PresentedFrame {
            frame: i as u64,
            fresh: present_fresh[i],
            ready: present_ready[i],
            presented: present_end[i],
            latency,
        });
    }
    let makespan = present_end.last().copied().unwrap_or(0.0);
    let bottleneck = Stage::ALL
        .iter()
        .copied()
        .fold((Stage::Ingest, f64::NEG_INFINITY), |(bs, bb), s| {
            if busy[s.index()].total_cmp(&bb).is_ge() { (s, busy[s.index()]) } else { (bs, bb) }
        })
        .0;
    let report = StagedReport {
        frames: n as u64,
        makespan,
        throughput_fps: n as f64 / makespan.max(f64::MIN_POSITIVE),
        mean_latency: latency_sum / n as f64,
        latency_p50: sketch.p50().unwrap_or(0.0),
        latency_p99: sketch.p99().unwrap_or(0.0),
        fresh_frames,
        stale_frames: n as u64 - fresh_frames,
        compute_drops: compute_q.dropped(),
        present_drops: present_q.dropped(),
        max_compute_depth: compute_q.high_water(),
        max_present_depth: present_q.high_water(),
        bottleneck,
        worst,
    };
    StagedTrace { report, presented, latencies: latencies.to_vec() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat(hologram: f64) -> FrameLatencies {
        FrameLatencies { pose: 0.0138, eye: 0.0044, scene: 0.120, hologram }
    }

    fn ctx() -> ExecutionContext {
        ExecutionContext::serial()
    }

    #[test]
    fn fast_compute_presents_every_frame_fresh_in_order() {
        let trace = run_staged_trace(30, &StagedConfig::default(), |_| lat(0.010), &ctx());
        assert_eq!(trace.report.stale_frames, 0);
        assert_eq!(trace.report.fresh_frames, 30);
        assert_eq!(trace.report.compute_drops, 0);
        for (i, p) in trace.presented.iter().enumerate() {
            assert_eq!(p.frame, i as u64);
            assert!(p.fresh);
        }
        // Presentation times strictly increase (gap-free, in order).
        for w in trace.presented.windows(2) {
            assert!(w[1].presented > w[0].presented);
        }
    }

    #[test]
    fn staged_beats_lockstep_throughput() {
        let staged = run_staged(60, &StagedConfig::default(), |_| lat(0.030), &ctx());
        let lockstep = crate::schedule::run_loop(60, |_| lat(0.030));
        assert!(
            staged.throughput_fps > 1.15 * lockstep.fps,
            "staged {} vs lockstep {}",
            staged.throughput_fps,
            lockstep.fps
        );
    }

    #[test]
    fn worst_case_matches_lockstep_accounting() {
        let f = |i: u64| lat(if i == 7 { 0.2 } else { 0.03 });
        let staged = run_staged(20, &StagedConfig::default(), f, &ctx());
        let lockstep = crate::schedule::run_loop(20, f);
        assert_eq!(staged.worst, lockstep.worst);
    }

    #[test]
    fn slow_compute_drops_oldest_frames_as_stale_reprojections() {
        // Hologram 10× slower than ingest: the compute queue saturates and
        // sheds, but every frame still presents.
        let trace = run_staged_trace(
            40,
            &StagedConfig::default(),
            |_| FrameLatencies { pose: 0.005, eye: 0.0, scene: 0.0, hologram: 0.050 },
            &ctx(),
        );
        assert!(trace.report.compute_drops > 0);
        assert_eq!(trace.report.stale_frames, trace.report.compute_drops);
        assert_eq!(trace.presented.len(), 40);
        assert_eq!(trace.report.max_compute_depth, 2);
        // Stale frames carry the reprojection cost, not a hologram.
        assert!(trace.presented.iter().any(|p| !p.fresh));
        // The newest frame always survives to compute fresh… eventually the
        // last frame must be fresh (nothing newer can displace it).
        assert!(trace.presented.last().unwrap().fresh);
    }

    #[test]
    fn compute_bound_pipeline_is_bottlenecked_on_compute() {
        let report = run_staged(
            30,
            &StagedConfig::default(),
            |_| FrameLatencies { pose: 0.001, eye: 0.0, scene: 0.0, hologram: 0.030 },
            &ctx(),
        );
        assert_eq!(report.bottleneck, Stage::Compute);
        // Throughput approaches 1 / hologram once the pipeline fills.
        assert!(report.throughput_fps > 0.8 / 0.030);
    }

    #[test]
    fn report_is_bit_identical_across_worker_counts() {
        let f = |i: u64| lat(0.02 + 0.015 * (i as f64 * 0.37).sin().abs());
        let serial = run_staged_trace(25, &StagedConfig::default(), f, &ctx());
        for workers in [1usize, 2, 7] {
            let par = run_staged_trace(
                25,
                &StagedConfig::default(),
                f,
                &ExecutionContext::with_workers(workers),
            );
            assert_eq!(par, serial, "workers {workers}");
        }
    }

    #[test]
    fn stage_names_and_order() {
        assert_eq!(Stage::ALL.len(), 3);
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert!(!s.name().is_empty());
        }
        assert!(Stage::Ingest < Stage::Present);
        assert_eq!(Stage::Compute.to_string(), "compute");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(StagedConfig { compute_queue: 0, ..StagedConfig::default() }.validate().is_err());
        assert!(
            StagedConfig { present_latency: f64::NAN, ..StagedConfig::default() }
                .validate()
                .is_err()
        );
        assert!(
            StagedConfig { reproject_latency: -1.0, ..StagedConfig::default() }
                .validate()
                .is_err()
        );
        assert!(StagedConfig::default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_panics() {
        run_staged(0, &StagedConfig::default(), |_| lat(0.1), &ctx());
    }
}
