//! Pipelined stage execution: overlapping perception and visual stages
//! across consecutive frames.
//!
//! The serial loop in [`crate::schedule`] charges a frame the *sum* of its
//! stage latencies — the conservative model matching the paper's
//! single-GPU measurements. Real XR runtimes (ILLIXR among them) also run
//! stages as concurrent tasks, where steady-state **throughput** is set by
//! the slowest stage while **motion-to-photon latency** is still the sum.
//! This module models that regime, exposing both numbers so HoloAR's
//! improvements can be read either way: with a 341.7 ms hologram, the
//! hologram is the throughput bottleneck regardless; once approximated, the
//! pipeline becomes sensor/display bound.

use crate::schedule::{FrameLatencies, StageWorst};
use crate::task::TaskKind;
use holoar_fft::ExecutionContext;

/// Steady-state behaviour of a pipelined execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelinedReport {
    /// Frames simulated.
    pub frames: u64,
    /// Steady-state throughput, frames per second (bounded by the slowest
    /// stage).
    pub throughput_fps: f64,
    /// Mean motion-to-photon latency, seconds (the full stage sum — a
    /// sample still traverses every stage).
    pub mean_latency: f64,
    /// The stage that bounds throughput.
    pub bottleneck: TaskKind,
    /// Per-stage worst-case latencies over the run (raw stage times; scene
    /// reconstruction is *not* amortized here — a frame that pays it pays
    /// all of it).
    pub worst: StageWorst,
}

/// Runs the pipelined model over per-frame latencies from `frame_fn`,
/// fanning the per-frame evaluations out over `ctx`'s worker pool.
///
/// Scene reconstruction's 1-in-N cadence is amortized into its effective
/// stage time (`latency / cadence`), since a pipelined runtime overlaps it
/// across the frames in between.
///
/// `frame_fn` must be pure per frame index (`Fn`, not `FnMut`); the
/// reduction over frames stays serial in frame order, so the report is
/// bit-identical for every worker count. Frame evaluations that internally
/// synthesize holograms (through the `holoar-core` quality/executor paths)
/// are independent across frames, which makes this the pipeline-layer entry
/// point for whole-run parallelism.
///
/// # Panics
///
/// Panics if `frames == 0`.
pub fn run_pipelined<F: Fn(u64) -> FrameLatencies + Sync>(
    frames: u64,
    frame_fn: F,
    ctx: &ExecutionContext,
) -> PipelinedReport {
    assert!(frames > 0, "need at least one frame");
    let _span = holoar_telemetry::span_cat("pipeline.run_pipelined", "pipeline");
    let latencies = evaluate_frames(frames, &frame_fn, ctx);
    summarize(&latencies)
}

/// Evaluates `frame_fn` for every frame index, fanning out over `ctx`'s
/// worker pool. The map is order-preserving — results land in frame-index
/// order regardless of worker count — which is the parallel half of the
/// bit-identity contract shared by [`run_pipelined`] and the staged
/// executor ([`crate::executor::run_staged`]).
pub(crate) fn evaluate_frames<F: Fn(u64) -> FrameLatencies + Sync>(
    frames: u64,
    frame_fn: &F,
    ctx: &ExecutionContext,
) -> Vec<FrameLatencies> {
    let indices: Vec<u64> = (0..frames).collect();
    ctx.parallelism().map(&indices, |&i| {
        let _frame_span = holoar_telemetry::span_cat("pipeline.frame_eval", "pipeline");
        frame_fn(i)
    })
}

/// Serial, frame-ordered reduction behind [`run_pipelined`].
fn summarize(latencies: &[FrameLatencies]) -> PipelinedReport {
    let _span = holoar_telemetry::span_cat("pipeline.summarize", "pipeline");
    let frames = latencies.len() as u64;
    let cadence = TaskKind::SceneReconstruct.frame_cadence() as f64;
    // Named per-stage accumulators; scene time is amortized over its cadence.
    let (mut pose_sum, mut eye_sum, mut scene_sum, mut hologram_sum) =
        (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut latency_sum = 0.0;
    let mut worst = StageWorst::default();
    for lat in latencies {
        worst.absorb(lat);
        pose_sum += lat.pose;
        eye_sum += lat.eye;
        scene_sum += lat.scene / cadence;
        hologram_sum += lat.hologram;
        // Motion-to-photon: the serial traversal of one sample (scene
        // reconstruction is off the critical path when it has a fresh map).
        latency_sum += lat.pose + lat.eye + lat.hologram;
    }
    let n = frames as f64;
    let stage_means = [
        (TaskKind::PoseEstimate, pose_sum / n),
        (TaskKind::EyeTrack, eye_sum / n),
        (TaskKind::SceneReconstruct, scene_sum / n),
        (TaskKind::Hologram, hologram_sum / n),
    ];
    // Last-max tie-breaking matches `Iterator::max_by` on the former array.
    let (mut bottleneck, mut slowest) = (TaskKind::PoseEstimate, f64::NEG_INFINITY);
    for &(kind, mean) in &stage_means {
        if mean.total_cmp(&slowest).is_ge() {
            bottleneck = kind;
            slowest = mean;
        }
    }
    let report = PipelinedReport {
        frames,
        throughput_fps: 1.0 / slowest.max(f64::MIN_POSITIVE),
        mean_latency: latency_sum / n,
        bottleneck,
        worst,
    };
    holoar_telemetry::gauge_set("pipeline.throughput_fps", report.throughput_fps);
    holoar_telemetry::gauge_set("pipeline.mean_latency_ms", report.mean_latency * 1e3);
    holoar_telemetry::gauge_set("pipeline.worst_frame_ms", report.worst.total * 1e3);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latencies(hologram: f64) -> FrameLatencies {
        FrameLatencies { pose: 0.0138, eye: 0.0044, scene: 0.120, hologram }
    }

    fn ctx() -> ExecutionContext {
        ExecutionContext::serial()
    }

    #[test]
    fn baseline_hologram_bounds_throughput() {
        let report = run_pipelined(30, |_| latencies(0.3417), &ctx());
        assert_eq!(report.bottleneck, TaskKind::Hologram);
        assert!((report.throughput_fps - 1.0 / 0.3417).abs() < 1e-9);
    }

    #[test]
    fn approximated_hologram_shifts_the_bottleneck() {
        // HoloAR-level hologram latency (~130 ms/frame across objects) still
        // bottlenecks; at aggressive approximation (~35 ms) scene
        // reconstruction's amortized 40 ms takes over.
        let fast = run_pipelined(30, |_| latencies(0.035), &ctx());
        assert_eq!(fast.bottleneck, TaskKind::SceneReconstruct);
        assert!(fast.throughput_fps > 20.0);
    }

    #[test]
    fn pipelining_beats_serial_throughput() {
        let lat = latencies(0.100);
        let pipelined = run_pipelined(30, |_| lat, &ctx());
        let serial = crate::schedule::run_loop(30, |_| lat);
        assert!(pipelined.throughput_fps > serial.fps);
    }

    #[test]
    fn motion_to_photon_is_the_stage_sum() {
        let report = run_pipelined(10, |_| latencies(0.1), &ctx());
        assert!((report.mean_latency - (0.0138 + 0.0044 + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn worst_case_surfaces_single_frame_spikes() {
        // One spiked hologram frame: the mean barely moves, the worst-case
        // pins it exactly.
        let report = run_pipelined(20, |i| latencies(if i == 13 { 0.25 } else { 0.03 }), &ctx());
        assert!((report.worst.hologram - 0.25).abs() < 1e-12);
        assert!(report.mean_latency < 0.06);
        // Raw (unamortized) scene time is reported.
        assert!((report.worst.scene - 0.120).abs() < 1e-12);
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        // Frame latencies that vary with the index exercise the ordering of
        // the reduction.
        let frame_fn = |i: u64| latencies(0.05 + 0.013 * (i as f64 * 0.7).sin().abs());
        let serial = run_pipelined(25, frame_fn, &ctx());
        for workers in [1usize, 2, 7] {
            let par = run_pipelined(25, frame_fn, &ExecutionContext::with_workers(workers));
            assert_eq!(par, serial, "workers {workers}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_panics() {
        run_pipelined(0, |_| latencies(0.1), &ctx());
    }
}
