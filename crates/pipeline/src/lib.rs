//! The full AR pipeline harness — the ILLIXR-testbed substitute.
//!
//! Covers the paper's pipeline-level analysis: Table 1's task deadlines
//! ([`task`]), the Fig 2 measured-versus-ideal characterization
//! ([`mod@characterize`]), a serial frame-loop scheduler with per-task cadences
//! and QoS accounting ([`schedule`]), a pipelined (stage-overlapping)
//! throughput model ([`pipelined`]), a staged producer–consumer executor
//! with bounded drop-oldest queues ([`executor`], [`queue`]), and a
//! battery-life model ([`battery`]).
//!
//! # Examples
//!
//! ```
//! use holoar_gpusim::Device;
//! use holoar_pipeline::{characterize::characterize, task::TaskKind};
//!
//! let rows = characterize(&mut Device::xavier());
//! let bottleneck = rows
//!     .iter()
//!     .max_by(|a, b| a.gap().total_cmp(&b.gap()))
//!     .unwrap();
//! assert_eq!(bottleneck.kind, TaskKind::Hologram);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod characterize;
pub mod executor;
pub mod graph;
pub mod pipelined;
pub mod queue;
pub mod schedule;
pub mod task;

pub use battery::Battery;
pub use characterize::{characterize, TaskCharacterization};
pub use executor::{
    run_staged, run_staged_trace, PresentedFrame, Stage, StagedConfig, StagedReport, StagedTrace,
};
pub use graph::{ar_frame_graph, schedule_frame, FrameSchedule, GraphTask, Resource};
pub use pipelined::{run_pipelined, PipelinedReport};
pub use queue::BoundedQueue;
pub use schedule::{apply_scene_cadence, run_loop, FrameLatencies, QosReport, StageWorst};
pub use task::TaskKind;
