//! The AR pipeline as an executable task graph (Fig 1c).
//!
//! The paper's pipeline has three stages — Inputs → Perception (pose, eye,
//! scene reconstruction) → Visual (hologram, display) — with dependencies
//! *between* stages and parallelism *within* them, all contending for two
//! resources (CPU and GPU). This module schedules one frame of that graph:
//! list scheduling over the dependency order, serializing tasks that share
//! a resource, and reporting the frame makespan, the critical path and
//! per-resource busy time.

use std::collections::HashMap;

/// The execution resource a task occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Host CPU (sensor handling, scheduling).
    Cpu,
    /// The GPU (perception networks, hologram kernels).
    Gpu,
}

/// One node of the frame graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphTask {
    /// Unique task name.
    pub name: String,
    /// Execution latency, seconds.
    pub latency: f64,
    /// Resource the task occupies while running.
    pub resource: Resource,
    /// Names of tasks that must complete first.
    pub deps: Vec<String>,
}

impl GraphTask {
    /// Creates a task.
    pub fn new(
        name: impl Into<String>,
        latency: f64,
        resource: Resource,
        deps: &[&str],
    ) -> Self {
        GraphTask {
            name: name.into(),
            latency,
            resource,
            deps: deps.iter().map(|d| d.to_string()).collect(),
        }
    }
}

/// A scheduled task instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledTask {
    /// Task name.
    pub name: String,
    /// Start time within the frame, seconds.
    pub start: f64,
    /// End time within the frame, seconds.
    pub end: f64,
    /// Resource used.
    pub resource: Resource,
}

/// The result of scheduling one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameSchedule {
    /// Tasks in start order.
    pub tasks: Vec<ScheduledTask>,
    /// Frame makespan, seconds.
    pub makespan: f64,
    /// Name of the task finishing last (the end of the critical path).
    pub critical_task: String,
    /// Busy seconds per resource.
    pub busy: HashMap<Resource, f64>,
}

impl FrameSchedule {
    /// Utilization of a resource over the makespan.
    pub fn utilization(&self, resource: Resource) -> f64 {
        if self.makespan > 0.0 {
            self.busy.get(&resource).copied().unwrap_or(0.0) / self.makespan
        } else {
            0.0
        }
    }
}

/// Error scheduling a task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A dependency names a task that does not exist.
    UnknownDependency {
        /// The task declaring the dependency.
        task: String,
        /// The missing dependency name.
        dependency: String,
    },
    /// The graph contains a cycle (or a duplicate name shadowing a node).
    Cycle,
    /// Two tasks share a name.
    DuplicateName(String),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::UnknownDependency { task, dependency } => {
                write!(f, "task '{task}' depends on unknown task '{dependency}'")
            }
            ScheduleError::Cycle => write!(f, "task graph contains a cycle"),
            ScheduleError::DuplicateName(n) => write!(f, "duplicate task name '{n}'"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Schedules one frame: dependency-ordered, earliest-start list scheduling
/// with one task at a time per resource.
///
/// # Errors
///
/// Returns [`ScheduleError`] for unknown dependencies, duplicate names or
/// cycles.
///
/// # Examples
///
/// ```
/// use holoar_pipeline::graph::{schedule_frame, GraphTask, Resource};
///
/// let tasks = vec![
///     GraphTask::new("imu", 0.001, Resource::Cpu, &[]),
///     GraphTask::new("pose", 0.0138, Resource::Gpu, &["imu"]),
///     GraphTask::new("hologram", 0.10, Resource::Gpu, &["pose"]),
/// ];
/// let schedule = schedule_frame(&tasks)?;
/// assert!((schedule.makespan - 0.1148).abs() < 1e-9);
/// # Ok::<(), holoar_pipeline::graph::ScheduleError>(())
/// ```
pub fn schedule_frame(tasks: &[GraphTask]) -> Result<FrameSchedule, ScheduleError> {
    let mut index: HashMap<&str, usize> = HashMap::new();
    for (i, t) in tasks.iter().enumerate() {
        if index.insert(t.name.as_str(), i).is_some() {
            return Err(ScheduleError::DuplicateName(t.name.clone()));
        }
    }
    for t in tasks {
        for d in &t.deps {
            if !index.contains_key(d.as_str()) {
                return Err(ScheduleError::UnknownDependency {
                    task: t.name.clone(),
                    dependency: d.clone(),
                });
            }
        }
    }

    let n = tasks.len();
    let mut finished: Vec<Option<f64>> = vec![None; n]; // end times
    let mut resource_free: HashMap<Resource, f64> = HashMap::new();
    let mut scheduled: Vec<ScheduledTask> = Vec::with_capacity(n);
    let mut remaining: Vec<usize> = (0..n).collect();

    while !remaining.is_empty() {
        // Among ready tasks, start the one that can begin earliest
        // (ties broken by declaration order for determinism).
        let mut best: Option<(usize, f64)> = None; // (remaining-index, start)
        for (ri, &ti) in remaining.iter().enumerate() {
            let task = &tasks[ti];
            let deps_done: Option<f64> = task.deps.iter().try_fold(0.0f64, |acc, d| {
                finished[index[d.as_str()]].map(|e| acc.max(e))
            });
            if let Some(ready_at) = deps_done {
                let start = ready_at.max(resource_free.get(&task.resource).copied().unwrap_or(0.0));
                if best.is_none_or(|(_, s)| start < s) {
                    best = Some((ri, start));
                }
            }
        }
        let Some((ri, start)) = best else {
            return Err(ScheduleError::Cycle);
        };
        let ti = remaining.remove(ri);
        let task = &tasks[ti];
        let end = start + task.latency;
        finished[ti] = Some(end);
        resource_free.insert(task.resource, end);
        scheduled.push(ScheduledTask {
            name: task.name.clone(),
            start,
            end,
            resource: task.resource,
        });
    }

    scheduled.sort_by(|a, b| a.start.total_cmp(&b.start));
    let (makespan, critical_task) = scheduled
        .iter()
        .map(|t| (t.end, t.name.clone()))
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .unwrap_or((0.0, String::new()));
    let mut busy: HashMap<Resource, f64> = HashMap::new();
    for t in &scheduled {
        *busy.entry(t.resource).or_insert(0.0) += t.end - t.start;
    }
    Ok(FrameSchedule { tasks: scheduled, makespan, critical_task, busy })
}

/// The paper's frame graph (Fig 1c) with a given hologram latency: sensor
/// input on the CPU, perception tasks on the GPU (pose, eye tracking, scene
/// reconstruction when due), then the hologram and display composition.
pub fn ar_frame_graph(hologram_latency: f64, scene_reconstruct_due: bool) -> Vec<GraphTask> {
    let mut tasks = vec![
        GraphTask::new("sensor_input", 0.002, Resource::Cpu, &[]),
        GraphTask::new("pose_estimate", 0.01375, Resource::Gpu, &["sensor_input"]),
        GraphTask::new("eye_track", 0.0044, Resource::Gpu, &["sensor_input"]),
        GraphTask::new(
            "hologram",
            hologram_latency,
            Resource::Gpu,
            &["pose_estimate", "eye_track"],
        ),
        GraphTask::new("display_compose", 0.004, Resource::Cpu, &["hologram"]),
    ];
    if scene_reconstruct_due {
        tasks.insert(
            3,
            GraphTask::new("scene_reconstruct", 0.120, Resource::Gpu, &["sensor_input"]),
        );
    }
    tasks
}

/// Maps a frame-graph task name to the staged-executor stage it belongs to
/// ([`crate::executor::Stage`]), or `None` for names outside the AR graph.
/// Sensor handling and perception are ingest, the hologram is compute, and
/// display composition is present — the partition the staged executor
/// overlaps across frames.
pub fn ar_stage_of(task_name: &str) -> Option<crate::executor::Stage> {
    match task_name {
        "sensor_input" | "pose_estimate" | "eye_track" | "scene_reconstruct" => {
            Some(crate::executor::Stage::Ingest)
        }
        "hologram" => Some(crate::executor::Stage::Compute),
        "display_compose" => Some(crate::executor::Stage::Present),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain_adds_latencies() {
        let tasks = vec![
            GraphTask::new("a", 0.01, Resource::Cpu, &[]),
            GraphTask::new("b", 0.02, Resource::Gpu, &["a"]),
            GraphTask::new("c", 0.03, Resource::Cpu, &["b"]),
        ];
        let s = schedule_frame(&tasks).unwrap();
        assert!((s.makespan - 0.06).abs() < 1e-12);
        assert_eq!(s.critical_task, "c");
    }

    #[test]
    fn independent_tasks_on_different_resources_overlap() {
        let tasks = vec![
            GraphTask::new("cpu_work", 0.05, Resource::Cpu, &[]),
            GraphTask::new("gpu_work", 0.05, Resource::Gpu, &[]),
        ];
        let s = schedule_frame(&tasks).unwrap();
        assert!((s.makespan - 0.05).abs() < 1e-12, "parallel resources should overlap");
    }

    #[test]
    fn shared_resource_serializes() {
        let tasks = vec![
            GraphTask::new("k1", 0.05, Resource::Gpu, &[]),
            GraphTask::new("k2", 0.05, Resource::Gpu, &[]),
        ];
        let s = schedule_frame(&tasks).unwrap();
        assert!((s.makespan - 0.10).abs() < 1e-12, "single GPU must serialize");
        assert!((s.utilization(Resource::Gpu) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn error_cases() {
        let unknown = vec![GraphTask::new("a", 0.01, Resource::Cpu, &["ghost"])];
        assert!(matches!(
            schedule_frame(&unknown),
            Err(ScheduleError::UnknownDependency { .. })
        ));

        let cyclic = vec![
            GraphTask::new("a", 0.01, Resource::Cpu, &["b"]),
            GraphTask::new("b", 0.01, Resource::Cpu, &["a"]),
        ];
        assert_eq!(schedule_frame(&cyclic), Err(ScheduleError::Cycle));

        let dup = vec![
            GraphTask::new("a", 0.01, Resource::Cpu, &[]),
            GraphTask::new("a", 0.01, Resource::Gpu, &[]),
        ];
        assert!(matches!(schedule_frame(&dup), Err(ScheduleError::DuplicateName(_))));

        let err = schedule_frame(&unknown).unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn ar_graph_baseline_is_hologram_bound() {
        let s = schedule_frame(&ar_frame_graph(0.3417, false)).unwrap();
        // Perception (GPU) serializes before the hologram; display follows.
        assert_eq!(s.critical_task, "display_compose");
        assert!(s.makespan > 0.3417);
        assert!(s.makespan < 0.3417 + 0.03);
        assert!(s.utilization(Resource::Gpu) > 0.9);
    }

    #[test]
    fn ar_graph_speeds_up_with_approximated_hologram() {
        let slow = schedule_frame(&ar_frame_graph(0.3417, false)).unwrap();
        let fast = schedule_frame(&ar_frame_graph(0.120, false)).unwrap();
        assert!(slow.makespan / fast.makespan > 2.0);
    }

    #[test]
    fn scene_reconstruction_extends_gpu_serialization() {
        let without = schedule_frame(&ar_frame_graph(0.1, false)).unwrap();
        let with = schedule_frame(&ar_frame_graph(0.1, true)).unwrap();
        assert!((with.makespan - without.makespan - 0.120).abs() < 1e-9);
    }

    #[test]
    fn every_ar_graph_task_maps_to_a_stage() {
        for task in ar_frame_graph(0.1, true) {
            assert!(ar_stage_of(&task.name).is_some(), "unmapped task {}", task.name);
        }
        assert_eq!(ar_stage_of("hologram"), Some(crate::executor::Stage::Compute));
        assert_eq!(ar_stage_of("display_compose"), Some(crate::executor::Stage::Present));
        assert_eq!(ar_stage_of("nonesuch"), None);
    }

    #[test]
    fn empty_graph_is_trivial() {
        let s = schedule_frame(&[]).unwrap();
        assert_eq!(s.makespan, 0.0);
        assert!(s.tasks.is_empty());
    }
}
