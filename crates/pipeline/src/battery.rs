//! Battery-life model: translating average power into runtime.
//!
//! §2.1 motivates the work with battery life "as short as just 1 hour" on a
//! smartphone running a simple AR app; §5.3's 73% energy savings directly
//! extends runtime. This model converts a capacity and average power draw
//! into hours of operation.

/// A headset battery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    /// Usable capacity in watt-hours.
    pub capacity_wh: f64,
}

impl Battery {
    /// A HoloLens-2-class battery (~16.5 Wh usable).
    pub fn headset() -> Self {
        Battery { capacity_wh: 16.5 }
    }

    /// Creates a battery with a given capacity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not positive and finite.
    pub fn new(capacity_wh: f64) -> Self {
        assert!(
            capacity_wh > 0.0 && capacity_wh.is_finite(),
            "battery capacity must be positive"
        );
        Battery { capacity_wh }
    }

    /// Runtime in hours at a sustained average power draw.
    ///
    /// # Panics
    ///
    /// Panics if `avg_power_watts` is not positive.
    pub fn runtime_hours(&self, avg_power_watts: f64) -> f64 {
        assert!(avg_power_watts > 0.0, "average power must be positive");
        self.capacity_wh / avg_power_watts
    }

    /// Runtime improvement factor when moving from `baseline_watts` to
    /// `optimized_watts`.
    ///
    /// # Panics
    ///
    /// Panics if either power is not positive.
    pub fn runtime_gain(&self, baseline_watts: f64, optimized_watts: f64) -> f64 {
        self.runtime_hours(optimized_watts) / self.runtime_hours(baseline_watts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_scales_inversely_with_power() {
        let b = Battery::headset();
        let at4w = b.runtime_hours(4.4);
        let at3w = b.runtime_hours(3.1);
        assert!(at3w > at4w);
        assert!((b.runtime_gain(4.4, 3.1) - 4.4 / 3.1).abs() < 1e-12);
    }

    #[test]
    fn headset_battery_gives_few_hours_at_baseline_power() {
        // ~16.5 Wh at the baseline's ~4.4 W: under 4 hours, matching the
        // short-battery-life motivation.
        let hours = Battery::headset().runtime_hours(4.4);
        assert!(hours > 2.0 && hours < 5.0, "{hours} h");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn bad_capacity_panics() {
        Battery::new(0.0);
    }

    #[test]
    #[should_panic(expected = "power must be positive")]
    fn bad_power_panics() {
        Battery::headset().runtime_hours(0.0);
    }
}
