//! The pipeline characterization of §2.2.1 / Fig 2: measured latencies of
//! each task on the edge platform versus the Table 1 ideals.

use crate::task::TaskKind;
use holoar_gpusim::hologram_kernels::{run_job, HologramJob};
use holoar_gpusim::Device;
use holoar_sensors::{eyetrack, pose, scene_reconstruct};

/// One row of the Fig 2 comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCharacterization {
    /// Task measured.
    pub kind: TaskKind,
    /// Table 1 ideal latency, seconds.
    pub ideal: f64,
    /// Measured latency on the (simulated) edge platform, seconds.
    pub measured: f64,
}

impl TaskCharacterization {
    /// Whether the task meets its deadline.
    pub fn meets_deadline(&self) -> bool {
        self.measured <= self.ideal
    }

    /// Measured-over-ideal ratio (the "gap").
    pub fn gap(&self) -> f64 {
        self.measured / self.ideal
    }
}

/// Characterizes all four tasks, running the hologram (16 planes, 5 GSW
/// iterations) on the device and taking the sensing stages' published
/// measured latencies from their substitute models.
///
/// # Examples
///
/// ```
/// use holoar_gpusim::Device;
/// use holoar_pipeline::characterize::characterize;
/// use holoar_pipeline::task::TaskKind;
///
/// let rows = characterize(&mut Device::xavier());
/// let hologram = rows.iter().find(|r| r.kind == TaskKind::Hologram).unwrap();
/// assert!(hologram.gap() > 8.0, "the paper's 10x motivating gap");
/// ```
pub fn characterize(device: &mut Device) -> Vec<TaskCharacterization> {
    TaskKind::ALL
        .iter()
        .map(|&kind| {
            let measured = match kind {
                TaskKind::PoseEstimate => pose::spec::LATENCY,
                TaskKind::EyeTrack => eyetrack::spec::LATENCY,
                TaskKind::SceneReconstruct => scene_reconstruct::spec::LATENCY,
                TaskKind::Hologram => run_job(device, &HologramJob::full(16)).latency,
            };
            TaskCharacterization { kind, ideal: kind.ideal_latency(), measured }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<TaskCharacterization> {
        characterize(&mut Device::xavier())
    }

    #[test]
    fn covers_all_tasks() {
        assert_eq!(rows().len(), 4);
    }

    #[test]
    fn perception_tasks_meet_deadlines() {
        // §2.2.1: pose estimation (13.8 ms) and eye tracking (4.4 ms) fit.
        let rows = rows();
        let pose = rows.iter().find(|r| r.kind == TaskKind::PoseEstimate).unwrap();
        let eye = rows.iter().find(|r| r.kind == TaskKind::EyeTrack).unwrap();
        assert!(pose.meets_deadline());
        assert!(eye.meets_deadline());
    }

    #[test]
    fn scene_reconstruct_slightly_misses() {
        // 120 ms vs 100 ms — close to ideal but over.
        let rows = rows();
        let sr = rows.iter().find(|r| r.kind == TaskKind::SceneReconstruct).unwrap();
        assert!(!sr.meets_deadline());
        assert!(sr.gap() < 1.5, "gap {} should be small", sr.gap());
    }

    #[test]
    fn hologram_is_the_bottleneck_by_an_order_of_magnitude() {
        let rows = rows();
        let holo = rows.iter().find(|r| r.kind == TaskKind::Hologram).unwrap();
        assert!(!holo.meets_deadline());
        assert!(
            holo.gap() > 9.0 && holo.gap() < 12.0,
            "hologram gap {:.1}x should be the paper's ~10x",
            holo.gap()
        );
        // And it dominates every other task's measured latency.
        for r in &rows {
            if r.kind != TaskKind::Hologram {
                assert!(holo.measured > 2.0 * r.measured);
            }
        }
    }
}
