//! Bounded inter-stage queues with drop-oldest frame semantics.
//!
//! The staged executor ([`crate::executor`]) connects its stages with
//! [`BoundedQueue`]s. A bounded queue gives the pipeline *backpressure
//! without stalling*: when a producer outruns its consumer the queue fills,
//! and the next push displaces the **oldest** queued frame rather than
//! blocking the producer or discarding the fresh frame. In an AR pipeline
//! the newest sensor frame is always the most valuable one — presenting a
//! stale pose is exactly the artifact reprojection exists to paper over,
//! so the queue sheds from the stale end.
//!
//! Three invariants hold by construction (property-tested in
//! `tests/staged_properties.rs`):
//!
//! 1. **Depth never exceeds the bound** — a push into a full queue pops
//!    before it pushes.
//! 2. **The newest frame is never the one dropped** — only the head (the
//!    oldest element) is ever displaced.
//! 3. **Drops are observable** — [`push`](BoundedQueue::push) *returns* the
//!    displaced element; the caller must route it somewhere (the staged
//!    executor re-presents it through the stale-reprojection path; see
//!    `core::degrade`). A dropped frame is therefore never a silent gap.
//!
//! Every queue operation updates the `pipeline.queue.*` telemetry
//! instruments, so exported metrics show queue pressure alongside the
//! stage spans.

use std::collections::VecDeque;

/// A bounded FIFO with drop-oldest overflow semantics and occupancy
/// accounting.
///
/// # Examples
///
/// ```
/// use holoar_pipeline::queue::BoundedQueue;
///
/// let mut q = BoundedQueue::new(2);
/// assert_eq!(q.push(0u64), None);
/// assert_eq!(q.push(1), None);
/// // Full: pushing displaces the *oldest* element, never the newest.
/// assert_eq!(q.push(2), Some(0));
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.dropped(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    bound: usize,
    pushed: u64,
    popped: u64,
    dropped: u64,
    high_water: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `bound` elements.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0` — a zero-capacity queue would drop every
    /// frame it sees, which is never what a pipeline wants.
    pub fn new(bound: usize) -> Self {
        assert!(bound > 0, "queue bound must be at least 1");
        BoundedQueue {
            items: VecDeque::with_capacity(bound),
            bound,
            pushed: 0,
            popped: 0,
            dropped: 0,
            high_water: 0,
        }
    }

    /// Enqueues `item`. When the queue is already at its bound, the oldest
    /// element is displaced and returned — the caller decides how the
    /// dropped frame surfaces (the staged executor turns it into a stale
    /// reprojection). Returns `None` when the push fit without a drop.
    pub fn push(&mut self, item: T) -> Option<T> {
        let displaced = if self.items.len() == self.bound {
            self.dropped += 1;
            holoar_telemetry::counter_add("pipeline.queue.dropped", 1);
            self.items.pop_front()
        } else {
            None
        };
        self.items.push_back(item);
        self.pushed += 1;
        self.high_water = self.high_water.max(self.items.len());
        holoar_telemetry::counter_add("pipeline.queue.pushed", 1);
        holoar_telemetry::gauge_set("pipeline.queue.depth", self.items.len() as f64);
        displaced
    }

    /// Dequeues the oldest element, if any.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.popped += 1;
            holoar_telemetry::counter_add("pipeline.queue.popped", 1);
            holoar_telemetry::gauge_set("pipeline.queue.depth", self.items.len() as f64);
        }
        item
    }

    /// Borrows the oldest element without dequeuing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Whether the next push would displace the oldest element — the
    /// saturation signal `core::degrade` watches
    /// (`DegradationController::observe_queue_depth`).
    pub fn is_saturated(&self) -> bool {
        self.items.len() == self.bound
    }

    /// Highest occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total elements ever pushed (including ones later dropped).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Total elements dequeued by [`pop`](Self::pop).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Total elements displaced by drop-oldest overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = BoundedQueue::new(3);
        for i in 0..3u32 {
            assert_eq!(q.push(i), None);
        }
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_displaces_the_oldest_only() {
        let mut q = BoundedQueue::new(2);
        q.push(10u32);
        q.push(11);
        assert_eq!(q.push(12), Some(10), "head (oldest) is displaced");
        assert_eq!(q.push(13), Some(11));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(12), "newest survivors keep FIFO order");
        assert_eq!(q.pop(), Some(13));
    }

    #[test]
    fn depth_never_exceeds_the_bound() {
        let mut q = BoundedQueue::new(4);
        for i in 0..100u32 {
            q.push(i);
            assert!(q.len() <= 4);
        }
        assert_eq!(q.high_water(), 4);
        assert_eq!(q.dropped(), 96);
        assert_eq!(q.pushed(), 100);
    }

    #[test]
    fn saturation_flags_the_next_drop() {
        let mut q = BoundedQueue::new(2);
        q.push(0u8);
        assert!(!q.is_saturated());
        q.push(1);
        assert!(q.is_saturated());
        q.pop();
        assert!(!q.is_saturated());
    }

    #[test]
    fn accounting_balances() {
        let mut q = BoundedQueue::new(3);
        for i in 0..10u8 {
            q.push(i);
            if i % 2 == 0 {
                q.pop();
            }
        }
        assert_eq!(q.pushed(), 10);
        assert_eq!(q.popped() + q.dropped() + q.len() as u64, 10);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_bound_is_rejected() {
        BoundedQueue::<u8>::new(0);
    }
}
