//! The frame loop: scheduling pipeline tasks at their cadences and
//! measuring achieved frame rate and per-stage slack.
//!
//! This is the ILLIXR-style harness the paper builds on (§4.5): every frame
//! runs pose estimation, eye tracking (when the configuration uses it) and
//! the hologram; scene reconstruction runs at its 1-in-3 cadence. The frame
//! period is bounded below by the slowest stage, which is how the paper's
//! <1 fps smartphone observation and the post-optimization QoS both fall
//! out.

use crate::task::TaskKind;

/// Latencies of one frame's stage executions, seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FrameLatencies {
    /// Pose estimation.
    pub pose: f64,
    /// Eye tracking (0 when unused).
    pub eye: f64,
    /// Scene reconstruction (0 on frames where it is not scheduled).
    pub scene: f64,
    /// Hologram computation.
    pub hologram: f64,
}

impl FrameLatencies {
    /// Total serial frame latency. The paper's pipeline runs perception and
    /// visual stages back-to-back on the shared edge GPU, so stages add.
    pub fn total(&self) -> f64 {
        self.pose + self.eye + self.scene + self.hologram
    }

    /// The ingest-stage share of the frame: everything upstream of the
    /// hologram (pose, eye, scene). This is the producer stage of the staged
    /// executor ([`crate::executor`]).
    pub fn ingest(&self) -> f64 {
        self.pose + self.eye + self.scene
    }
}

/// Applies the scene-reconstruction cadence to one frame's latencies:
/// scene time is zeroed on frames where the stage is not scheduled
/// (every frame except multiples of its 1-in-N cadence).
///
/// Both the lockstep loop ([`run_loop`]) and the staged executor
/// ([`crate::executor::run_staged`]) route frames through this, so the two
/// models always describe the same workload.
pub fn apply_scene_cadence(frame: u64, mut lat: FrameLatencies) -> FrameLatencies {
    if !frame.is_multiple_of(TaskKind::SceneReconstruct.frame_cadence()) {
        lat.scene = 0.0;
    }
    lat
}

/// Per-stage worst-case (maximum observed) latencies over a run, seconds.
///
/// Means hide tail behaviour: a run can report a comfortable mean frame
/// latency while single frames blow the deadline — exactly the frames a
/// degradation controller must react to. Every QoS report therefore carries
/// the observed per-stage maxima alongside the means.
///
/// # Examples
///
/// ```
/// use holoar_pipeline::{FrameLatencies, StageWorst};
/// let mut worst = StageWorst::default();
/// worst.absorb(&FrameLatencies { pose: 0.010, eye: 0.004, scene: 0.0, hologram: 0.020 });
/// worst.absorb(&FrameLatencies { pose: 0.012, eye: 0.004, scene: 0.1, hologram: 0.019 });
/// assert_eq!(worst.pose, 0.012);
/// assert_eq!(worst.hologram, 0.020);
/// assert_eq!(worst.total, 0.135); // worst single frame, not sum of maxima
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageWorst {
    /// Worst pose-estimation latency.
    pub pose: f64,
    /// Worst eye-tracking latency.
    pub eye: f64,
    /// Worst scene-reconstruction latency (on frames where it ran).
    pub scene: f64,
    /// Worst hologram-computation latency.
    pub hologram: f64,
    /// Worst single-frame serial total (not the sum of the per-stage maxima,
    /// which may come from different frames).
    pub total: f64,
}

impl StageWorst {
    /// Folds one frame's latencies into the running maxima.
    pub fn absorb(&mut self, lat: &FrameLatencies) {
        self.pose = self.pose.max(lat.pose);
        self.eye = self.eye.max(lat.eye);
        self.scene = self.scene.max(lat.scene);
        self.hologram = self.hologram.max(lat.hologram);
        self.total = self.total.max(lat.total());
    }
}

/// Aggregate QoS over a run of frames.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosReport {
    /// Frames simulated.
    pub frames: u64,
    /// Mean frame latency, seconds.
    pub mean_frame_latency: f64,
    /// Achieved frames per second (1 / mean latency).
    pub fps: f64,
    /// Fraction of frames meeting the 30 fps (33 ms) deadline.
    pub deadline_hit_rate: f64,
    /// Median frame latency, seconds (quantile-sketch estimate, 1%
    /// relative-error bound).
    pub latency_p50: f64,
    /// 99th-percentile frame latency, seconds (sketch estimate).
    pub latency_p99: f64,
    /// Per-stage worst-case latencies over the run.
    pub worst: StageWorst,
}

/// Runs a frame loop over per-frame latencies supplied by `frame_fn`
/// (called with the frame index; scene reconstruction cadence is handled
/// here by zeroing the stage on off-frames).
///
/// # Panics
///
/// Panics if `frames == 0`.
pub fn run_loop<F: FnMut(u64) -> FrameLatencies>(frames: u64, mut frame_fn: F) -> QosReport {
    assert!(frames > 0, "need at least one frame");
    let _span = holoar_telemetry::span_cat("pipeline.run_loop", "pipeline");
    let mut total = 0.0;
    let mut hits = 0u64;
    let mut worst = StageWorst::default();
    let mut sketch = holoar_telemetry::QuantileSketch::default();
    for i in 0..frames {
        let lat = apply_scene_cadence(i, frame_fn(i));
        worst.absorb(&lat);
        let t = lat.total();
        holoar_telemetry::histogram_record_us("pipeline.sim_frame_latency_us", t * 1e6);
        sketch.record(t);
        total += t;
        if t <= TaskKind::Hologram.ideal_latency() {
            hits += 1;
        }
    }
    holoar_telemetry::counter_add("pipeline.deadline.hits", hits);
    holoar_telemetry::counter_add("pipeline.deadline.misses", frames - hits);
    holoar_telemetry::gauge_set("pipeline.worst_frame_ms", worst.total * 1e3);
    let mean = total / frames as f64;
    QosReport {
        frames,
        mean_frame_latency: mean,
        fps: 1.0 / mean,
        deadline_hit_rate: hits as f64 / frames as f64,
        latency_p50: sketch.p50().unwrap_or(0.0),
        latency_p99: sketch.p99().unwrap_or(0.0),
        worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_stages() {
        let f = FrameLatencies { pose: 0.01, eye: 0.004, scene: 0.1, hologram: 0.3 };
        assert!((f.total() - 0.414).abs() < 1e-12);
    }

    #[test]
    fn scene_reconstruct_runs_at_cadence() {
        // Frame 0, 3, 6, … include the 120 ms scene stage.
        let report = run_loop(6, |_| FrameLatencies {
            pose: 0.01,
            eye: 0.0,
            scene: 0.12,
            hologram: 0.01,
        });
        // 2 of 6 frames pay scene reconstruction.
        let expected = (6.0 * 0.02 + 2.0 * 0.12) / 6.0;
        assert!((report.mean_frame_latency - expected).abs() < 1e-12);
        // Worst-case reflects a scene-cadence frame, not the mean.
        assert!((report.worst.total - 0.14).abs() < 1e-12);
        assert!((report.worst.scene - 0.12).abs() < 1e-12);
    }

    #[test]
    fn worst_case_tracks_the_slowest_frame_per_stage() {
        // Stage maxima land on different frames: pose spikes on frame 1,
        // the hologram on frame 2.
        let report = run_loop(4, |i| FrameLatencies {
            pose: if i == 1 { 0.02 } else { 0.005 },
            eye: 0.004,
            scene: 0.0,
            hologram: if i == 2 { 0.05 } else { 0.02 },
        });
        assert!((report.worst.pose - 0.02).abs() < 1e-12);
        assert!((report.worst.hologram - 0.05).abs() < 1e-12);
        // Worst total is a single frame's sum (frame 2), not pose-max +
        // hologram-max.
        assert!((report.worst.total - (0.005 + 0.004 + 0.05)).abs() < 1e-12);
        assert!(report.worst.total > report.mean_frame_latency);
    }

    #[test]
    fn fast_frames_hit_deadline() {
        let report = run_loop(10, |_| FrameLatencies {
            pose: 0.005,
            eye: 0.004,
            scene: 0.0,
            hologram: 0.02,
        });
        assert_eq!(report.deadline_hit_rate, 1.0);
        assert!(report.fps > 30.0);
    }

    #[test]
    fn slow_holograms_tank_fps() {
        let report = run_loop(10, |_| FrameLatencies {
            pose: 0.0138,
            eye: 0.0044,
            scene: 0.0,
            hologram: 0.3417,
        });
        assert!(report.fps < 3.0, "fps {}", report.fps);
        assert_eq!(report.deadline_hit_rate, 0.0);
    }

    #[test]
    fn quantiles_bracket_a_uniform_run() {
        // All frames identical: both quantiles sit on the single latency,
        // within the sketch's 1% relative-error bound.
        let report = run_loop(10, |_| FrameLatencies {
            pose: 0.005,
            eye: 0.004,
            scene: 0.0,
            hologram: 0.02,
        });
        assert!((report.latency_p50 - 0.029).abs() <= 0.029 * 0.01);
        assert!((report.latency_p99 - 0.029).abs() <= 0.029 * 0.01);
        assert!(report.latency_p99 >= report.latency_p50);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_panics() {
        run_loop(0, |_| FrameLatencies::default());
    }
}
