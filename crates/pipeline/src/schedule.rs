//! The frame loop: scheduling pipeline tasks at their cadences and
//! measuring achieved frame rate and per-stage slack.
//!
//! This is the ILLIXR-style harness the paper builds on (§4.5): every frame
//! runs pose estimation, eye tracking (when the configuration uses it) and
//! the hologram; scene reconstruction runs at its 1-in-3 cadence. The frame
//! period is bounded below by the slowest stage, which is how the paper's
//! <1 fps smartphone observation and the post-optimization QoS both fall
//! out.

use crate::task::TaskKind;

/// Latencies of one frame's stage executions, seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FrameLatencies {
    /// Pose estimation.
    pub pose: f64,
    /// Eye tracking (0 when unused).
    pub eye: f64,
    /// Scene reconstruction (0 on frames where it is not scheduled).
    pub scene: f64,
    /// Hologram computation.
    pub hologram: f64,
}

impl FrameLatencies {
    /// Total serial frame latency. The paper's pipeline runs perception and
    /// visual stages back-to-back on the shared edge GPU, so stages add.
    pub fn total(&self) -> f64 {
        self.pose + self.eye + self.scene + self.hologram
    }
}

/// Aggregate QoS over a run of frames.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosReport {
    /// Frames simulated.
    pub frames: u64,
    /// Mean frame latency, seconds.
    pub mean_frame_latency: f64,
    /// Achieved frames per second (1 / mean latency).
    pub fps: f64,
    /// Fraction of frames meeting the 30 fps (33 ms) deadline.
    pub deadline_hit_rate: f64,
}

/// Runs a frame loop over per-frame latencies supplied by `frame_fn`
/// (called with the frame index; scene reconstruction cadence is handled
/// here by zeroing the stage on off-frames).
///
/// # Panics
///
/// Panics if `frames == 0`.
pub fn run_loop<F: FnMut(u64) -> FrameLatencies>(frames: u64, mut frame_fn: F) -> QosReport {
    assert!(frames > 0, "need at least one frame");
    let _span = holoar_telemetry::span_cat("pipeline.run_loop", "pipeline");
    let mut total = 0.0;
    let mut hits = 0u64;
    for i in 0..frames {
        let mut lat = frame_fn(i);
        if i % TaskKind::SceneReconstruct.frame_cadence() != 0 {
            lat.scene = 0.0;
        }
        let t = lat.total();
        holoar_telemetry::histogram_record_us("pipeline.sim_frame_latency_us", t * 1e6);
        total += t;
        if t <= TaskKind::Hologram.ideal_latency() {
            hits += 1;
        }
    }
    holoar_telemetry::counter_add("pipeline.deadline.hits", hits);
    holoar_telemetry::counter_add("pipeline.deadline.misses", frames - hits);
    let mean = total / frames as f64;
    QosReport {
        frames,
        mean_frame_latency: mean,
        fps: 1.0 / mean,
        deadline_hit_rate: hits as f64 / frames as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_stages() {
        let f = FrameLatencies { pose: 0.01, eye: 0.004, scene: 0.1, hologram: 0.3 };
        assert!((f.total() - 0.414).abs() < 1e-12);
    }

    #[test]
    fn scene_reconstruct_runs_at_cadence() {
        // Frame 0, 3, 6, … include the 120 ms scene stage.
        let report = run_loop(6, |_| FrameLatencies {
            pose: 0.01,
            eye: 0.0,
            scene: 0.12,
            hologram: 0.01,
        });
        // 2 of 6 frames pay scene reconstruction.
        let expected = (6.0 * 0.02 + 2.0 * 0.12) / 6.0;
        assert!((report.mean_frame_latency - expected).abs() < 1e-12);
    }

    #[test]
    fn fast_frames_hit_deadline() {
        let report = run_loop(10, |_| FrameLatencies {
            pose: 0.005,
            eye: 0.004,
            scene: 0.0,
            hologram: 0.02,
        });
        assert_eq!(report.deadline_hit_rate, 1.0);
        assert!(report.fps > 30.0);
    }

    #[test]
    fn slow_holograms_tank_fps() {
        let report = run_loop(10, |_| FrameLatencies {
            pose: 0.0138,
            eye: 0.0044,
            scene: 0.0,
            hologram: 0.3417,
        });
        assert!(report.fps < 3.0, "fps {}", report.fps);
        assert_eq!(report.deadline_hit_rate, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_panics() {
        run_loop(0, |_| FrameLatencies::default());
    }
}
