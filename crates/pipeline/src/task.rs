//! The AR pipeline's tasks and their Table 1 latency requirements.

/// The four characterized pipeline tasks (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaskKind {
    /// Head-pose estimation (Kimera).
    PoseEstimate,
    /// Eye tracking (NVGaze).
    EyeTrack,
    /// Scene reconstruction (InfiniTAM).
    SceneReconstruct,
    /// Hologram generation (GSW).
    Hologram,
}

impl TaskKind {
    /// All tasks in Table 1 order.
    pub const ALL: [TaskKind; 4] = [
        TaskKind::PoseEstimate,
        TaskKind::EyeTrack,
        TaskKind::SceneReconstruct,
        TaskKind::Hologram,
    ];

    /// Display name as in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            TaskKind::PoseEstimate => "Pose Estimate",
            TaskKind::EyeTrack => "Eye Track",
            TaskKind::SceneReconstruct => "Scene Reconstruct",
            TaskKind::Hologram => "Hologram",
        }
    }

    /// The algorithm the paper runs for this task.
    pub fn algorithm(self) -> &'static str {
        match self {
            TaskKind::PoseEstimate => "Kimera",
            TaskKind::EyeTrack => "NVGaze",
            TaskKind::SceneReconstruct => "InfiniTAM",
            TaskKind::Hologram => "GSW",
        }
    }

    /// Table 1's ideal latency (deadline), seconds.
    pub fn ideal_latency(self) -> f64 {
        match self {
            TaskKind::PoseEstimate => 0.033,
            TaskKind::EyeTrack => 0.033,
            TaskKind::SceneReconstruct => 0.100,
            TaskKind::Hologram => 0.033,
        }
    }

    /// How many frames may elapse between runs (scene reconstruction runs
    /// once per 2–3 frames; everything else every frame).
    pub fn frame_cadence(self) -> u64 {
        match self {
            TaskKind::SceneReconstruct => 3,
            _ => 1,
        }
    }

    /// The staged-executor stage this task runs in
    /// ([`crate::executor::Stage`]): perception tasks are ingest, hologram
    /// generation is compute. (Display composition is not a Table 1 task;
    /// the executor models it via [`crate::executor::StagedConfig`].)
    pub fn stage(self) -> crate::executor::Stage {
        match self {
            TaskKind::PoseEstimate | TaskKind::EyeTrack | TaskKind::SceneReconstruct => {
                crate::executor::Stage::Ingest
            }
            TaskKind::Hologram => crate::executor::Stage::Compute,
        }
    }
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows() {
        assert_eq!(TaskKind::ALL.len(), 4);
        assert_eq!(TaskKind::PoseEstimate.ideal_latency(), 0.033);
        assert_eq!(TaskKind::SceneReconstruct.ideal_latency(), 0.100);
        assert_eq!(TaskKind::Hologram.algorithm(), "GSW");
        assert_eq!(TaskKind::EyeTrack.algorithm(), "NVGaze");
    }

    #[test]
    fn cadence() {
        assert_eq!(TaskKind::Hologram.frame_cadence(), 1);
        assert_eq!(TaskKind::SceneReconstruct.frame_cadence(), 3);
    }

    #[test]
    fn display_names() {
        assert_eq!(TaskKind::PoseEstimate.to_string(), "Pose Estimate");
    }
}
