//! The quality path: real wave-optics reconstruction and PSNR against the
//! unapproximated baseline (§5.4, Fig 10).
//!
//! For sampled frames of each video, every visible object is mapped to one
//! of the six OpenHolo-substitute virtual objects, its depthmap hologram is
//! computed at both the full 16-plane budget and the plan's approximated
//! budget, both are numerically reconstructed at the object's depth, and the
//! PSNR between the two reconstructions is recorded.
//!
//! Scene distances (0.4–2.5 m) are mapped onto a table-top optical bench
//! scale (`OPTICAL_SCALE`) so the 8 µm-pitch aperture stays within the
//! angular-spectrum propagation band — the paper's OpenHolo reconstructions
//! are bench-scale for the same reason. Relative quality between plane
//! budgets, which is what Fig 10 reports, is preserved.

use crate::config::HoloArConfig;
use crate::planner::Planner;
use holoar_fft::ExecutionContext;
use holoar_metrics::{psnr, Image};
use holoar_optics::{reconstruct, OpticalConfig, Propagator, VirtualObject};
use std::collections::HashMap;
use holoar_sensors::angles::AngularPoint;
use holoar_sensors::eyetrack::EyeTracker;
use holoar_sensors::objectron::{FrameGenerator, ObjectAnnotation, VideoCategory};
use holoar_sensors::pose::PoseEstimate;

/// Metric scene distance → optical bench distance.
pub const OPTICAL_SCALE: f64 = 0.01;

/// Rendering resolution for quality studies (square).
pub const QUALITY_RESOLUTION: usize = 40;

/// PSNR outcome for a single object observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectQuality {
    /// Object evaluated.
    pub object: ObjectAnnotation,
    /// Plane budget the plan assigned.
    pub planes: u32,
    /// PSNR of the approximated reconstruction versus the 16-plane
    /// baseline, dB (infinite when budgets coincide).
    pub psnr_db: f64,
}

/// Aggregated quality for one (video, config) pair.
#[derive(Debug, Clone)]
pub struct VideoQuality {
    /// Video evaluated.
    pub category: VideoCategory,
    /// Per-object results.
    pub objects: Vec<ObjectQuality>,
}

impl VideoQuality {
    /// Mean finite PSNR across objects; `None` when every object was
    /// computed at the full budget (infinite PSNR, no quality loss).
    pub fn mean_psnr(&self) -> Option<f64> {
        let finite: Vec<f64> =
            self.objects.iter().map(|o| o.psnr_db).filter(|p| p.is_finite()).collect();
        if finite.is_empty() {
            None
        } else {
            Some(finite.iter().sum::<f64>() / finite.len() as f64)
        }
    }

    /// Mean PSNR counting full-budget objects at a ceiling (the way a
    /// finite-bit-depth display caps measurable PSNR). The paper's Fig 10a
    /// averages sit in the 30s; we cap at 50 dB.
    pub fn mean_psnr_capped(&self) -> Option<f64> {
        if self.objects.is_empty() {
            return None;
        }
        let sum: f64 = self.objects.iter().map(|o| o.psnr_db.min(50.0)).sum();
        Some(sum / self.objects.len() as f64)
    }
}

/// The virtual hologram assigned to an object track (the paper maps real
/// objects to OpenHolo holograms "randomly" — we map deterministically by
/// track id, which it notes has no impact on results).
pub fn virtual_object_for(track_id: u64) -> VirtualObject {
    VirtualObject::ALL[(track_id % 6) as usize]
}

/// Computes the PSNR of an approximated hologram of `obj` against its
/// 16-plane baseline.
///
/// Returns infinite PSNR when `planes` equals the full budget.
/// Reconstruction propagations fan out over the context's worker pool;
/// results are bit-identical for every worker count.
///
/// # Panics
///
/// Panics if `planes == 0`.
pub fn object_psnr(
    obj: &ObjectAnnotation,
    planes: u32,
    config: &HoloArConfig,
    ctx: &ExecutionContext,
) -> f64 {
    assert!(planes > 0, "cannot evaluate a skipped object");
    if planes >= config.full_planes {
        return f64::INFINITY;
    }
    let _span = holoar_telemetry::span_cat("core.quality.object_psnr", "core");
    let optics = OpticalConfig::default();
    let n = QUALITY_RESOLUTION;
    // Distances are quantized to 0.5 mm so transfer functions and PSNR
    // results repeat across similar observations (pure evaluation speedup;
    // well below the depth resolution anything downstream uses).
    let z_center = quantize_mm(obj.distance * OPTICAL_SCALE);
    let depth_extent = quantize_mm((obj.size * OPTICAL_SCALE).min(z_center * 0.8));
    let depthmap = virtual_object_for(obj.track_id).render(n, n, z_center, depth_extent);

    // A viewer accommodates to the content: compare *all-in-focus*
    // composites built from incoherent focal stacks (see
    // `holoar_optics::reconstruct::incoherent_focal_stack`), where each
    // pixel is read from the reconstruction focused at its true depth.
    let base_stack = depthmap.slice(config.full_planes as usize, optics);
    let approx_stack = depthmap.slice(planes as usize, optics);
    let mut prop = Propagator::with_context(ctx);
    let img_base = all_in_focus(&base_stack, &depthmap, z_center, &mut prop);
    let img_approx = all_in_focus(&approx_stack, &depthmap, z_center, &mut prop);

    // Coherent reconstructions carry speckle; displays and the eye integrate
    // over it, so both images are speckle-averaged with a small box filter
    // before comparison (as PSNR-on-reconstruction pipelines conventionally
    // do).
    // Both buffers are n*n by construction, so the only way a build can
    // fail is a reconstruction that produced non-finite luminance. That
    // carries no usable quality signal: report 0 dB (worst) instead of
    // aborting — this runs on the serving path, which must not panic.
    let reference = Image::new(n, n, box_blur(&img_base, n, n, 1));
    let test = Image::new(n, n, box_blur(&img_approx, n, n, 1));
    match (reference, test) {
        (Ok(reference), Ok(test)) => {
            psnr(&reference.normalized(), &test.normalized()).unwrap_or(0.0)
        }
        _ => 0.0,
    }
}

/// Mean squared error (on peak-normalized, speckle-averaged all-in-focus
/// composites) of an approximated hologram versus its full-budget baseline.
/// Zero when the budget is already full.
///
/// # Panics
///
/// Panics if `planes == 0`.
pub fn object_mse(
    obj: &ObjectAnnotation,
    planes: u32,
    config: &HoloArConfig,
    ctx: &ExecutionContext,
) -> f64 {
    assert!(planes > 0, "cannot evaluate a skipped object");
    if planes >= config.full_planes {
        return 0.0;
    }
    // PSNR was computed against a peak-1 reference, so invert it exactly.
    let psnr_db = object_psnr(obj, planes, config, ctx);
    // holoar-lint: allow(float-determinism, reason = "inverts a dB scalar for planner scoring; the value never enters a synthesized field, so cross-platform ULP drift cannot desynchronize holograms")
    10f64.powf(-psnr_db / 10.0)
}

/// Frame-level quality: pools every planned object's reconstruction error
/// (pixel-count-weighted MSE across objects, reused holograms included at
/// their cached budget) into a single frame PSNR. `None` when the frame
/// displays nothing.
///
/// This is the closest analog of the paper's per-video PSNR: a frame's
/// displayed quality is the aggregate of its objects' qualities.
pub fn frame_psnr(
    items: &[crate::planner::PlanItem],
    config: &HoloArConfig,
    ctx: &ExecutionContext,
) -> Option<f64> {
    let mut weighted_mse = 0.0;
    let mut weight = 0.0;
    for item in items {
        if item.planes == 0 || item.coverage <= 0.0 {
            continue; // not displayed as a hologram this frame
        }
        let pixels = QUALITY_RESOLUTION as f64 * QUALITY_RESOLUTION as f64 * item.coverage;
        weighted_mse += object_mse(&item.object, item.planes, config, ctx) * pixels;
        weight += pixels;
    }
    if weight == 0.0 {
        return None;
    }
    let mse = weighted_mse / weight;
    Some(if mse == 0.0 { f64::INFINITY } else { 10.0 * (1.0 / mse).log10() })
}

/// Coherent single-focus PSNR variant: builds the actual holograms with
/// Algorithm 1 and compares speckle-averaged reconstructions at the object
/// center depth.
///
/// This is the strictest reading of the paper's §5.4 procedure. At this
/// reproduction's evaluation resolution it is speckle-floor-limited
/// (typically 13–18 dB regardless of budget), which is why the headline
/// quality path uses incoherent all-in-focus composites instead — both are
/// exposed so the choice is inspectable.
///
/// # Panics
///
/// Panics if `planes == 0`.
pub fn object_psnr_coherent(
    obj: &ObjectAnnotation,
    planes: u32,
    config: &HoloArConfig,
    ctx: &ExecutionContext,
) -> f64 {
    assert!(planes > 0, "cannot evaluate a skipped object");
    if planes >= config.full_planes {
        return f64::INFINITY;
    }
    let optics = OpticalConfig::default();
    let n = QUALITY_RESOLUTION;
    let z_center = quantize_mm(obj.distance * OPTICAL_SCALE);
    let depth_extent = quantize_mm((obj.size * OPTICAL_SCALE).min(z_center * 0.8));
    let depthmap = virtual_object_for(obj.track_id).render(n, n, z_center, depth_extent);

    let baseline = holoar_optics::algorithm1::depthmap_hologram(
        &depthmap,
        config.full_planes as usize,
        optics,
        ctx,
    );
    let approx =
        holoar_optics::algorithm1::depthmap_hologram(&depthmap, planes as usize, optics, ctx);
    let mut prop = Propagator::with_context(ctx);
    let img_base = reconstruct::reconstruct_intensity(&baseline.hologram, z_center, &mut prop);
    let img_approx = reconstruct::reconstruct_intensity(&approx.hologram, z_center, &mut prop);
    psnr_between(&img_base, &img_approx, n)
}

/// GSW (phase-only) PSNR variant: runs the paper's actual hologram
/// algorithm — adaptive weighted Gerchberg–Saxton — at both budgets and
/// compares the phase-only holograms' reconstructions.
///
/// Resolution is reduced (GSW costs `iterations × 2 × planes` propagations
/// per hologram). Used by tests and the supplementary experiments; the
/// headline Fig 10 path uses the faster direct method.
///
/// # Panics
///
/// Panics if `planes == 0`.
pub fn object_psnr_gsw(
    obj: &ObjectAnnotation,
    planes: u32,
    config: &HoloArConfig,
    ctx: &ExecutionContext,
) -> f64 {
    assert!(planes > 0, "cannot evaluate a skipped object");
    if planes >= config.full_planes {
        return f64::INFINITY;
    }
    let optics = OpticalConfig::default();
    let n = 32;
    let z_center = quantize_mm(obj.distance * OPTICAL_SCALE);
    let depth_extent = quantize_mm((obj.size * OPTICAL_SCALE).min(z_center * 0.8));
    let depthmap = virtual_object_for(obj.track_id).render(n, n, z_center, depth_extent);

    let gsw_cfg = holoar_optics::GswConfig::default();
    let full = holoar_optics::gsw::run(
        &depthmap.slice(config.full_planes as usize, optics),
        optics,
        gsw_cfg,
        ctx,
    );
    let approx = holoar_optics::gsw::run(
        &depthmap.slice(planes as usize, optics),
        optics,
        gsw_cfg,
        ctx,
    );
    let mut prop = Propagator::with_context(ctx);
    let img_base = reconstruct::reconstruct_intensity(&full.hologram, z_center, &mut prop);
    let img_approx = reconstruct::reconstruct_intensity(&approx.hologram, z_center, &mut prop);
    psnr_between(&img_base, &img_approx, n)
}

/// Speckle-averaged, normalized PSNR between two raw intensity images.
fn psnr_between(reference: &[f64], test: &[f64], n: usize) -> f64 {
    let reference = Image::new(n, n, box_blur(reference, n, n, 1))
        .expect("reconstruction produces a valid image")
        .normalized();
    let test = Image::new(n, n, box_blur(test, n, n, 1))
        .expect("reconstruction produces a valid image")
        .normalized();
    psnr(&reference, &test).expect("shapes match by construction")
}

/// Quantizes an optical distance to a 0.5 mm grid (flooring at 0.5 mm).
fn quantize_mm(z: f64) -> f64 {
    ((z * 2000.0).round() / 2000.0).max(0.0005)
}

/// Builds the all-in-focus composite: the plane stack is reconstructed
/// (incoherently) at a small set of focal depths covering the object, and
/// each pixel is taken from the reconstruction focused nearest its true
/// depth.
fn all_in_focus(
    stack: &holoar_optics::PlaneStack,
    depthmap: &holoar_optics::DepthMap,
    z_center: f64,
    prop: &mut Propagator,
) -> Vec<f64> {
    const FOCAL_SLICES: usize = 8;
    let (near, far) = depthmap.depth_range().unwrap_or((z_center, z_center));
    let zs: Vec<f64> = (0..FOCAL_SLICES)
        .map(|i| {
            if FOCAL_SLICES == 1 || far == near {
                (near + far) / 2.0
            } else {
                near + (far - near) * i as f64 / (FOCAL_SLICES - 1) as f64
            }
        })
        .collect();
    let images = reconstruct::incoherent_focal_stack(stack, &zs, prop);
    let span = (far - near).max(f64::MIN_POSITIVE);
    depthmap
        .depth()
        .iter()
        .zip(depthmap.amplitude())
        .enumerate()
        .map(|(idx, (&d, &a))| {
            let slice = if a > 0.0 {
                (((d - near) / span).clamp(0.0, 1.0) * (FOCAL_SLICES - 1) as f64).round()
                    as usize
            } else {
                FOCAL_SLICES / 2
            };
            images[slice][idx]
        })
        .collect()
}

/// Box blur with a `(2·radius+1)²` kernel, clamped at the borders.
fn box_blur(img: &[f64], rows: usize, cols: usize, radius: usize) -> Vec<f64> {
    let mut out = vec![0.0; img.len()];
    let r = radius as isize;
    for row in 0..rows as isize {
        for col in 0..cols as isize {
            let mut sum = 0.0;
            let mut count = 0.0;
            for dr in -r..=r {
                for dc in -r..=r {
                    let (nr, nc) = (row + dr, col + dc);
                    if nr >= 0 && nr < rows as isize && nc >= 0 && nc < cols as isize {
                        sum += img[nr as usize * cols + nc as usize];
                        count += 1.0;
                    }
                }
            }
            out[row as usize * cols + col as usize] = sum / count;
        }
    }
    out
}

/// Runs the quality study for one video under one configuration: plans
/// `frames` sampled frames and evaluates every computed object's PSNR.
///
/// The frame walk, planning and PSNR cache stay serial (only each object
/// evaluation's plane propagations fan out over the context's worker pool),
/// so results are bit-identical for every worker count.
///
/// # Panics
///
/// Panics if `frames == 0`.
pub fn video_quality(
    category: VideoCategory,
    config: HoloArConfig,
    frames: u64,
    seed: u64,
    ctx: &ExecutionContext,
) -> VideoQuality {
    assert!(frames > 0, "need at least one frame");
    let mut planner = Planner::new(config).expect("configuration must be valid");
    let mut tracker = EyeTracker::new(seed ^ 0x5EED);
    let mut objects = Vec::new();
    // PSNR depends only on the (virtual object, plane budget, quantized
    // geometry) triple; identical observations hit this cache.
    let mut cache: HashMap<(u64, u32, u64, u64), f64> = HashMap::new();
    // Sample sparse frames (every 10th) so distinct fixations are covered.
    let generator = FrameGenerator::new(category, seed).step_by(10).take(frames as usize);
    for frame in generator {
        let pose = PoseEstimate { orientation: AngularPoint::CENTER, latency: 0.01375 };
        // Gaze at the first object (a fixated user), as the attention model
        // in the performance path would typically settle.
        let true_gaze =
            frame.objects.first().map(|o| o.direction).unwrap_or(AngularPoint::CENTER);
        let estimate = tracker.estimate(true_gaze);
        let plan = planner.plan_frame(&frame, &pose, estimate.direction, estimate.latency);
        for item in plan.items.iter().filter(|i| i.needs_compute()) {
            let key = (
                item.object.track_id % 6,
                item.planes,
                quantize_mm(item.object.distance * OPTICAL_SCALE).to_bits(),
                quantize_mm(item.object.size * OPTICAL_SCALE).to_bits(),
            );
            let psnr_db = *cache
                .entry(key)
                .or_insert_with(|| object_psnr(&item.object, item.planes, &config, ctx));
            objects.push(ObjectQuality { object: item.object, planes: item.planes, psnr_db });
        }
    }
    VideoQuality { category, objects }
}

/// One point of the Fig 10b trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// The α evaluated.
    pub alpha: f64,
    /// Fleet mean capped PSNR, dB.
    pub mean_psnr: f64,
    /// Fleet mean planes per computed object (proxy for energy: fewer
    /// planes ⇒ proportionally less hologram energy).
    pub mean_planes: f64,
}

/// One of Fig 10b's "tuned approximation" settings: a joint tuning of
/// Algorithm 2's α and Algorithm 3's β (via a scale on the calibrated
/// `θ_ref`; larger means more aggressive Intra-Holo).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// Inter-Holo factor α.
    pub alpha: f64,
    /// Multiplier on `θ_ref` (1.0 = the calibrated default).
    pub theta_scale: f64,
}

impl DesignPoint {
    /// The five design points of the Fig 10b study, least to most
    /// aggressive.
    pub fn fig10b_points() -> [DesignPoint; 5] {
        [
            DesignPoint { alpha: 0.75, theta_scale: 0.75 },
            DesignPoint { alpha: 0.5, theta_scale: 1.0 },
            DesignPoint { alpha: 0.5, theta_scale: 1.5 },
            DesignPoint { alpha: 0.25, theta_scale: 2.0 },
            DesignPoint { alpha: 0.125, theta_scale: 3.0 },
        ]
    }

    /// The configuration this design point induces.
    ///
    /// # Panics
    ///
    /// Panics if `theta_scale` is not positive or α is outside `(0, 1]`.
    pub fn config(&self) -> HoloArConfig {
        assert!(self.theta_scale > 0.0, "theta scale must be positive");
        let mut config = HoloArConfig::default().with_alpha(self.alpha);
        config.intra.theta_ref *= self.theta_scale;
        config
    }
}

/// Sweeps the joint (α, β) design points of Fig 10b, reporting quality
/// against plane budget — the energy-vs-quality trade-off.
///
/// # Panics
///
/// Panics if `points` is empty or `frames == 0`.
pub fn design_sweep(
    points: &[DesignPoint],
    frames: u64,
    seed: u64,
    ctx: &ExecutionContext,
) -> Vec<TradeoffPoint> {
    assert!(!points.is_empty(), "sweep needs at least one design point");
    points
        .iter()
        .map(|point| {
            let (mean_psnr, mean_planes) = sweep_cell(point.config(), frames, seed, ctx);
            TradeoffPoint { alpha: point.alpha, mean_psnr, mean_planes }
        })
        .collect()
}

/// Sweeps α alone for the Inter-Intra-Holo scheme (the Algorithm 2 knob of
/// the Fig 10b study).
///
/// # Panics
///
/// Panics if `alphas` is empty or `frames == 0`.
pub fn alpha_sweep(
    alphas: &[f64],
    frames: u64,
    seed: u64,
    ctx: &ExecutionContext,
) -> Vec<TradeoffPoint> {
    assert!(!alphas.is_empty(), "sweep needs at least one alpha");
    alphas
        .iter()
        .map(|&alpha| {
            let config = HoloArConfig::default().with_alpha(alpha);
            let (mean_psnr, mean_planes) = sweep_cell(config, frames, seed, ctx);
            TradeoffPoint { alpha, mean_psnr, mean_planes }
        })
        .collect()
}

/// Fleet mean (capped PSNR, planes per object) for one configuration.
fn sweep_cell(config: HoloArConfig, frames: u64, seed: u64, ctx: &ExecutionContext) -> (f64, f64) {
    let mut psnr_sum = 0.0;
    let mut psnr_count = 0usize;
    let mut plane_sum = 0u64;
    let mut object_count = 0u64;
    for &category in &VideoCategory::ALL {
        let vq = video_quality(category, config, frames, seed, ctx);
        if let Some(p) = vq.mean_psnr_capped() {
            psnr_sum += p;
            psnr_count += 1;
        }
        for o in &vq.objects {
            plane_sum += o.planes as u64;
            object_count += 1;
        }
    }
    (
        if psnr_count > 0 { psnr_sum / psnr_count as f64 } else { 0.0 },
        if object_count > 0 { plane_sum as f64 / object_count as f64 } else { 0.0 },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    fn ctx() -> ExecutionContext {
        ExecutionContext::serial()
    }

    fn obj(track_id: u64, distance: f64, size: f64) -> ObjectAnnotation {
        ObjectAnnotation { track_id, direction: AngularPoint::CENTER, distance, size }
    }

    #[test]
    fn full_budget_has_no_quality_loss() {
        let cfg = HoloArConfig::default();
        assert!(object_psnr(&obj(0, 0.6, 0.2), 16, &cfg, &ctx()).is_infinite());
    }

    #[test]
    fn psnr_degrades_monotonically_with_fewer_planes() {
        let cfg = HoloArConfig::default();
        let o = obj(3, 0.6, 0.25); // Planet
        let p8 = object_psnr(&o, 8, &cfg, &ctx());
        let p2 = object_psnr(&o, 2, &cfg, &ctx());
        assert!(p8.is_finite() && p2.is_finite());
        assert!(p8 > p2, "8 planes ({p8:.1} dB) should beat 2 planes ({p2:.1} dB)");
    }

    #[test]
    fn moderate_approximation_keeps_acceptable_quality() {
        let cfg = HoloArConfig::default();
        // Half the planes on a mid-distance object: the Fig 10a regime.
        let p = object_psnr(&obj(3, 0.6, 0.2), 8, &cfg, &ctx());
        assert!(p > 20.0, "8-plane PSNR {p:.1} dB unexpectedly poor");
    }

    #[test]
    fn video_quality_produces_observations() {
        let cfg = HoloArConfig::for_scheme(Scheme::InterIntraHolo);
        let vq = video_quality(VideoCategory::Cup, cfg, 3, 11, &ctx());
        assert_eq!(vq.category, VideoCategory::Cup);
        assert!(!vq.objects.is_empty());
        let mean = vq.mean_psnr_capped().unwrap();
        assert!(mean > 15.0 && mean <= 50.0, "mean PSNR {mean:.1} dB");
    }

    #[test]
    fn baseline_video_quality_is_lossless() {
        let cfg = HoloArConfig::for_scheme(Scheme::Baseline);
        let vq = video_quality(VideoCategory::Cup, cfg, 2, 11, &ctx());
        assert_eq!(vq.mean_psnr(), None, "baseline never approximates");
        assert_eq!(vq.mean_psnr_capped(), Some(50.0));
    }

    #[test]
    fn alpha_sweep_trades_planes_for_quality() {
        let points = alpha_sweep(&[0.25, 0.75], 2, 5, &ctx());
        assert_eq!(points.len(), 2);
        // Lower α ⇒ fewer planes ⇒ lower (or equal) PSNR.
        assert!(points[0].mean_planes <= points[1].mean_planes);
        assert!(points[0].mean_psnr <= points[1].mean_psnr + 1.0);
    }

    #[test]
    fn design_sweep_is_monotonically_aggressive() {
        let points = design_sweep(&DesignPoint::fig10b_points(), 2, 5, &ctx());
        assert_eq!(points.len(), 5);
        // Later (more aggressive) points compute fewer planes.
        assert!(points.last().unwrap().mean_planes < points[0].mean_planes);
        // And lose quality relative to the gentlest point.
        assert!(points.last().unwrap().mean_psnr <= points[0].mean_psnr + 0.5);
    }

    #[test]
    fn object_mse_inverts_psnr() {
        let cfg = HoloArConfig::default();
        let o = obj(3, 0.6, 0.25);
        assert_eq!(object_mse(&o, 16, &cfg, &ctx()), 0.0);
        let psnr_db = object_psnr(&o, 8, &cfg, &ctx());
        let mse = object_mse(&o, 8, &cfg, &ctx());
        assert!((10.0 * (1.0 / mse).log10() - psnr_db).abs() < 1e-9);
    }

    #[test]
    fn frame_psnr_pools_objects() {
        use crate::planner::PlanItem;
        let cfg = HoloArConfig::default();
        let make = |planes: u32, coverage: f64| PlanItem {
            object: obj(3, 0.6, 0.25),
            planes,
            coverage,
            in_rof: true,
            reused: false,
        };
        // Empty frame: nothing displayed.
        assert_eq!(frame_psnr(&[], &cfg, &ctx()), None);
        assert_eq!(frame_psnr(&[make(0, 0.0)], &cfg, &ctx()), None);
        // All-full frame: lossless.
        assert_eq!(frame_psnr(&[make(16, 1.0)], &cfg, &ctx()), Some(f64::INFINITY));
        // A mixed frame sits between its members' PSNRs.
        let lossy = object_psnr(&obj(3, 0.6, 0.25), 4, &cfg, &ctx());
        let mixed = frame_psnr(&[make(16, 1.0), make(4, 1.0)], &cfg, &ctx()).unwrap();
        assert!(mixed > lossy, "pooling with a lossless object must improve on {lossy:.1}");
        assert!(mixed.is_finite());
        // Lower coverage of the lossy object raises frame quality.
        let less_lossy = frame_psnr(&[make(16, 1.0), make(4, 0.2)], &cfg, &ctx()).unwrap();
        assert!(less_lossy > mixed);
    }

    #[test]
    fn coherent_variant_reports_finite_loss() {
        let cfg = HoloArConfig::default();
        let o = obj(3, 0.6, 0.25);
        let p = object_psnr_coherent(&o, 8, &cfg, &ctx());
        assert!(p.is_finite() && p > 5.0, "coherent PSNR {p:.1}");
        assert!(object_psnr_coherent(&o, 16, &cfg, &ctx()).is_infinite());
        // The incoherent headline metric is the more forgiving one.
        assert!(object_psnr(&o, 8, &cfg, &ctx()) >= p - 1.0);
    }

    #[test]
    fn gsw_variant_reports_finite_loss() {
        let cfg = HoloArConfig::default();
        let o = obj(3, 0.6, 0.25);
        let p = object_psnr_gsw(&o, 8, &cfg, &ctx());
        assert!(p.is_finite() && p > 5.0, "GSW PSNR {p:.1}");
        assert!(object_psnr_gsw(&o, 16, &cfg, &ctx()).is_infinite());
    }

    #[test]
    fn parallel_quality_is_bit_identical_to_serial() {
        let cfg = HoloArConfig::default();
        let o = obj(3, 0.6, 0.25);
        let serial = object_psnr(&o, 8, &cfg, &ctx());
        for workers in [2usize, 7] {
            let par_ctx = ExecutionContext::with_workers(workers);
            assert_eq!(object_psnr(&o, 8, &cfg, &par_ctx).to_bits(), serial.to_bits());
        }
        let par_ctx = ExecutionContext::with_workers(3);
        assert_eq!(
            object_psnr_gsw(&o, 8, &cfg, &par_ctx).to_bits(),
            object_psnr_gsw(&o, 8, &cfg, &ctx()).to_bits()
        );
    }

    #[test]
    fn virtual_object_mapping_is_stable() {
        assert_eq!(virtual_object_for(0), VirtualObject::Sniper);
        assert_eq!(virtual_object_for(6), VirtualObject::Sniper);
        assert_eq!(virtual_object_for(3), VirtualObject::Planet);
    }

    #[test]
    #[should_panic(expected = "skipped object")]
    fn zero_planes_panics() {
        object_psnr(&obj(0, 0.6, 0.2), 0, &HoloArConfig::default(), &ctx());
    }
}
