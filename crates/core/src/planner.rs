//! The per-frame planner: sensors in, compute plan out.
//!
//! This is the heart of HoloAR (Fig 6a): for every object in the frame it
//! decides, in order, (a) viewing-window culling and coverage, (b)
//! cross-frame reuse, (c) the depth-plane budget per the active scheme.
//! The resulting [`ComputePlan`] drives both the performance path (GPU
//! simulator) and the quality path (wave-optics engine), so both evaluate
//! identical decisions.

use crate::approx;
use crate::config::{HoloArConfig, Scheme};
use crate::rof::RegionOfFocus;
use crate::sensor_input::{GazeInput, PoseInput, SensorSample};
use crate::window::{window_status, ReuseTracker};
use holoar_sensors::angles::AngularPoint;
use holoar_sensors::objectron::{Frame, ObjectAnnotation};
use holoar_sensors::pose::PoseEstimate;

/// The planned treatment of one object in one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanItem {
    /// The object being planned.
    pub object: ObjectAnnotation,
    /// Depth planes to compute (0 when skipped or reused).
    pub planes: u32,
    /// Viewing-window coverage in `[0, 1]`.
    pub coverage: f64,
    /// Whether the object overlapped the region of focus (always `true`
    /// under schemes that don't track gaze, so they never approximate on
    /// attention).
    pub in_rof: bool,
    /// Whether a cached sub-hologram was reused instead of computing.
    pub reused: bool,
}

impl PlanItem {
    /// Whether this object requires any hologram computation this frame.
    pub fn needs_compute(&self) -> bool {
        self.planes > 0 && !self.reused && self.coverage > 0.0
    }
}

/// A full per-frame compute plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ComputePlan {
    /// Frame index the plan was built for.
    pub frame_index: u64,
    /// Per-object decisions.
    pub items: Vec<PlanItem>,
    /// Eye-tracking latency charged this frame, seconds (zero for schemes
    /// that don't use gaze).
    pub eye_track_latency: f64,
    /// Pose-estimation latency charged this frame, seconds.
    pub pose_latency: f64,
}

impl ComputePlan {
    /// Total depth planes that will actually be computed this frame —
    /// the Fig 8b metric ("average number of depth planes required").
    pub fn total_planes(&self) -> u32 {
        self.items.iter().filter(|i| i.needs_compute()).map(|i| i.planes).sum()
    }

    /// Objects requiring computation this frame.
    pub fn compute_count(&self) -> usize {
        self.items.iter().filter(|i| i.needs_compute()).count()
    }

    /// Objects served from the reuse cache.
    pub fn reused_count(&self) -> usize {
        self.items.iter().filter(|i| i.reused).count()
    }

    /// Objects skipped as outside the viewing window.
    pub fn skipped_count(&self) -> usize {
        self.items.iter().filter(|i| i.coverage <= 0.0).count()
    }
}

/// Stateful per-video planner (owns the reuse cache).
///
/// # Examples
///
/// ```
/// use holoar_core::{HoloArConfig, Planner, Scheme};
/// use holoar_sensors::angles::AngularPoint;
/// use holoar_sensors::objectron::{FrameGenerator, VideoCategory};
/// use holoar_sensors::pose::PoseEstimate;
///
/// let mut planner = Planner::new(HoloArConfig::for_scheme(Scheme::InterIntraHolo)).unwrap();
/// let frame = FrameGenerator::new(VideoCategory::Cup, 1).next().unwrap();
/// let pose = PoseEstimate { orientation: AngularPoint::CENTER, latency: 0.01375 };
/// let plan = planner.plan_frame(&frame, &pose, AngularPoint::CENTER, 0.0044);
/// assert_eq!(plan.items.len(), frame.objects.len());
/// ```
#[derive(Debug, Clone)]
pub struct Planner {
    config: HoloArConfig,
    reuse: ReuseTracker,
}

impl Planner {
    /// Creates a planner for a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error message.
    pub fn new(config: HoloArConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Planner { config, reuse: ReuseTracker::new() })
    }

    /// The active configuration.
    pub fn config(&self) -> &HoloArConfig {
        &self.config
    }

    /// The reuse tracker (for experiment accounting).
    pub fn reuse_tracker(&self) -> &ReuseTracker {
        &self.reuse
    }

    /// Plans one frame.
    ///
    /// `gaze` is the eye tracker's estimated direction and
    /// `eye_track_latency` its cost; both are ignored by schemes that do not
    /// use eye tracking (their latency is not charged, matching §5.1's
    /// "one additional eye tracking task integrated into the pipeline" for
    /// Inter-Holo only).
    pub fn plan_frame(
        &mut self,
        frame: &Frame,
        pose: &PoseEstimate,
        gaze: AngularPoint,
        eye_track_latency: f64,
    ) -> ComputePlan {
        self.plan_frame_with(
            frame,
            &SensorSample {
                pose: PoseInput::Tracked(*pose),
                gaze: GazeInput::Tracked(holoar_sensors::eyetrack::GazeEstimate {
                    direction: gaze,
                    latency: eye_track_latency,
                }),
            },
        )
    }

    /// Plans one frame from a possibly-degraded sensor bundle.
    ///
    /// Sensor loss degrades performance, never quality:
    ///
    /// * **gaze lost** — every visible object is treated as attended (no
    ///   Inter-Holo approximation this frame);
    /// * **pose lost** — the viewing window is unknown, so every object is
    ///   assumed fully visible, and camera-to-object distances are unknown,
    ///   so Intra-Holo falls back to the full plane budget.
    pub fn plan_frame_with(&mut self, frame: &Frame, sensors: &SensorSample) -> ComputePlan {
        let _span = holoar_telemetry::span_cat("core.planner.plan_frame", "core");
        let config = self.config;
        let pose = sensors.pose.estimate();
        let gaze = sensors.gaze.estimate();
        let window = pose.map(|p| p.viewing_window());
        let rof = gaze.map(|g| RegionOfFocus::new(g.direction, config.rof_radius));
        let distances_known = pose.is_some();

        let mut items = Vec::with_capacity(frame.objects.len());
        for obj in &frame.objects {
            // Without a pose the window is unknown: assume full visibility.
            let coverage = match &window {
                Some(w) => window_status(w, obj).coverage,
                None => 1.0,
            };
            if coverage <= 0.0 {
                // Fig 5a: the box object outside the window is never
                // computed.
                items.push(PlanItem {
                    object: *obj,
                    planes: 0,
                    coverage: 0.0,
                    in_rof: false,
                    reused: false,
                });
                continue;
            }
            // Without gaze, nothing can be ruled unattended.
            let in_rof = !config.scheme.uses_eye_tracking()
                || rof.as_ref().is_none_or(|r| r.contains_object(obj));
            let planes = match (config.scheme, distances_known) {
                (Scheme::Baseline, _) => config.full_planes,
                (Scheme::InterHolo, _) => {
                    if in_rof {
                        config.full_planes
                    } else {
                        approx::inter_planes(&config)
                    }
                }
                // Distance-based approximation needs the pose estimate.
                (Scheme::IntraHolo, false) | (Scheme::InterIntraHolo, false) => {
                    if in_rof {
                        config.full_planes
                    } else {
                        approx::inter_planes(&config)
                    }
                }
                (Scheme::IntraHolo, true) => approx::intra_planes(obj, &config),
                (Scheme::InterIntraHolo, true) => {
                    approx::inter_intra_planes(obj, in_rof, &config)
                }
            };
            let reused = config.reuse_enabled
                && self.reuse.can_reuse(obj, planes, coverage, frame.index);
            if reused {
                self.reuse.note_reuse();
            } else {
                self.reuse.record(obj, planes, coverage, frame.index);
            }
            items.push(PlanItem { object: *obj, planes, coverage, in_rof, reused });
        }
        self.reuse.evict_stale(frame.index);

        let plan = ComputePlan {
            frame_index: frame.index,
            items,
            eye_track_latency: if config.scheme.uses_eye_tracking() {
                gaze.map(|g| g.latency).unwrap_or(0.0)
            } else {
                0.0
            },
            pose_latency: pose.map(|p| p.latency).unwrap_or(0.0),
        };
        holoar_telemetry::gauge_set("core.plan.total_planes", f64::from(plan.total_planes()));
        holoar_telemetry::counter_add("core.plan.objects_computed", plan.compute_count() as u64);
        holoar_telemetry::counter_add("core.plan.objects_reused", plan.reused_count() as u64);
        holoar_telemetry::counter_add("core.plan.objects_skipped", plan.skipped_count() as u64);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holoar_sensors::angles::deg;

    fn pose() -> PoseEstimate {
        PoseEstimate { orientation: AngularPoint::CENTER, latency: 0.01375 }
    }

    fn frame_with(objects: Vec<ObjectAnnotation>) -> Frame {
        Frame { index: 0, objects }
    }

    fn obj(id: u64, az_deg: f64, distance: f64, size: f64) -> ObjectAnnotation {
        ObjectAnnotation {
            track_id: id,
            direction: AngularPoint::new(deg(az_deg), 0.0),
            distance,
            size,
        }
    }

    fn plan(scheme: Scheme, frame: &Frame, gaze: AngularPoint) -> ComputePlan {
        Planner::new(HoloArConfig::for_scheme(scheme))
            .unwrap()
            .plan_frame(frame, &pose(), gaze, 0.0044)
    }

    #[test]
    fn baseline_computes_full_planes_for_visible_objects() {
        let f = frame_with(vec![obj(1, 0.0, 0.6, 0.2), obj(2, 60.0, 0.6, 0.2)]);
        let p = plan(Scheme::Baseline, &f, AngularPoint::CENTER);
        assert_eq!(p.items[0].planes, 16);
        assert_eq!(p.items[1].planes, 0, "outside the window is skipped");
        assert_eq!(p.skipped_count(), 1);
        assert_eq!(p.total_planes(), 16);
        assert_eq!(p.eye_track_latency, 0.0, "baseline pays no eye tracking");
    }

    #[test]
    fn inter_holo_approximates_outside_rof() {
        // Gaze on object 1; object 2 visible but unattended.
        let f = frame_with(vec![obj(1, 0.0, 0.6, 0.1), obj(2, 15.0, 0.6, 0.1)]);
        let p = plan(Scheme::InterHolo, &f, AngularPoint::CENTER);
        assert!(p.items[0].in_rof);
        assert_eq!(p.items[0].planes, 16);
        assert!(!p.items[1].in_rof);
        assert_eq!(p.items[1].planes, 8);
        assert!(p.eye_track_latency > 0.0);
    }

    #[test]
    fn intra_holo_ignores_gaze_but_scales_with_geometry() {
        let near_big = obj(1, 0.0, 0.4, 0.5);
        let far_small = obj(2, 10.0, 2.5, 0.1);
        let f = frame_with(vec![near_big, far_small]);
        // Gaze far away — Intra-Holo shouldn't care.
        let p = plan(Scheme::IntraHolo, &f, AngularPoint::new(deg(-20.0), 0.0));
        assert!(p.items[0].planes > p.items[1].planes);
        assert!(p.items[0].in_rof && p.items[1].in_rof, "no gaze ⇒ treated as attended");
        assert_eq!(p.eye_track_latency, 0.0);
    }

    #[test]
    fn inter_intra_is_no_more_expensive_than_either() {
        let objects =
            vec![obj(1, 0.0, 0.47, 0.16), obj(2, 12.0, 0.65, 0.21), obj(3, -8.0, 2.08, 1.54)];
        let f = frame_with(objects);
        let gaze = AngularPoint::CENTER;
        let inter = plan(Scheme::InterHolo, &f, gaze);
        let intra = plan(Scheme::IntraHolo, &f, gaze);
        let both = plan(Scheme::InterIntraHolo, &f, gaze);
        for i in 0..3 {
            assert!(
                both.items[i].planes <= inter.items[i].planes.min(intra.items[i].planes),
                "object {i}: combined {} vs inter {} / intra {}",
                both.items[i].planes,
                inter.items[i].planes,
                intra.items[i].planes
            );
        }
        assert!(both.total_planes() <= inter.total_planes().min(intra.total_planes()));
    }

    #[test]
    fn scheme_plane_totals_are_ordered() {
        // Baseline ≥ Inter ≥ Inter-Intra and Baseline ≥ Intra ≥ Inter-Intra.
        let f = frame_with(vec![obj(1, 0.0, 0.64, 0.28), obj(2, 14.0, 0.47, 0.16)]);
        let gaze = AngularPoint::CENTER;
        let base = plan(Scheme::Baseline, &f, gaze).total_planes();
        let inter = plan(Scheme::InterHolo, &f, gaze).total_planes();
        let intra = plan(Scheme::IntraHolo, &f, gaze).total_planes();
        let both = plan(Scheme::InterIntraHolo, &f, gaze).total_planes();
        assert!(base >= inter);
        assert!(inter >= both);
        assert!(base >= intra);
        assert!(intra >= both);
    }

    #[test]
    fn reuse_kicks_in_on_static_scenes() {
        let mut planner = Planner::new(HoloArConfig::for_scheme(Scheme::Baseline)).unwrap();
        let o = obj(1, 0.0, 0.6, 0.2);
        let f0 = Frame { index: 0, objects: vec![o] };
        let f1 = Frame { index: 1, objects: vec![o] }; // perfectly static
        let p0 = planner.plan_frame(&f0, &pose(), AngularPoint::CENTER, 0.0);
        assert!(p0.items[0].needs_compute());
        let p1 = planner.plan_frame(&f1, &pose(), AngularPoint::CENTER, 0.0);
        assert!(p1.items[0].reused, "static object should reuse Frame-I's hologram");
        assert_eq!(p1.total_planes(), 0);
        assert_eq!(planner.reuse_tracker().reuse_count(), 1);
    }

    #[test]
    fn disabling_reuse_recomputes_static_scenes() {
        let mut planner =
            Planner::new(HoloArConfig::for_scheme(Scheme::Baseline).without_reuse()).unwrap();
        let o = obj(1, 0.0, 0.6, 0.2);
        let f0 = Frame { index: 0, objects: vec![o] };
        let f1 = Frame { index: 1, objects: vec![o] };
        planner.plan_frame(&f0, &pose(), AngularPoint::CENTER, 0.0);
        let p1 = planner.plan_frame(&f1, &pose(), AngularPoint::CENTER, 0.0);
        assert!(!p1.items[0].reused, "reuse must be off");
        assert_eq!(p1.total_planes(), 16);
    }

    #[test]
    fn partial_coverage_is_propagated() {
        let f = frame_with(vec![obj(1, 21.0, 0.6, 0.3)]);
        let p = plan(Scheme::Baseline, &f, AngularPoint::CENTER);
        assert!(p.items[0].coverage > 0.0 && p.items[0].coverage < 1.0);
    }

    #[test]
    fn gaze_loss_disables_attention_approximation() {
        use crate::sensor_input::{GazeInput, PoseInput, SensorSample};
        let f = frame_with(vec![obj(1, 0.0, 0.6, 0.1), obj(2, 15.0, 0.6, 0.1)]);
        let mut planner = Planner::new(HoloArConfig::for_scheme(Scheme::InterHolo)).unwrap();
        let sensors =
            SensorSample { pose: PoseInput::Tracked(pose()), gaze: GazeInput::Lost };
        let plan = planner.plan_frame_with(&f, &sensors);
        // Every visible object falls back to full quality.
        assert!(plan.items.iter().all(|i| i.planes == 16 && i.in_rof));
        assert_eq!(plan.eye_track_latency, 0.0);
    }

    #[test]
    fn pose_loss_disables_distance_approximation_and_culling() {
        use crate::sensor_input::{GazeInput, PoseInput, SensorSample};
        // One far-small object (normally heavily approximated) and one far
        // outside the window (normally skipped).
        let f = frame_with(vec![obj(1, 0.0, 2.5, 0.1), obj(2, 60.0, 0.6, 0.2)]);
        let mut planner = Planner::new(HoloArConfig::for_scheme(Scheme::IntraHolo)).unwrap();
        let sensors = SensorSample {
            pose: PoseInput::Lost,
            gaze: GazeInput::tracked(AngularPoint::CENTER),
        };
        let plan = planner.plan_frame_with(&f, &sensors);
        // No culling, no distance approximation, no pose latency.
        assert!(plan.items.iter().all(|i| i.coverage == 1.0));
        assert!(plan.items.iter().all(|i| i.planes == 16));
        assert_eq!(plan.pose_latency, 0.0);
    }

    #[test]
    fn all_sensors_lost_degenerates_to_full_quality_everywhere() {
        use crate::sensor_input::SensorSample;
        let f = frame_with(vec![obj(1, 0.0, 0.47, 0.16), obj(2, 30.0, 2.0, 1.0)]);
        let mut planner =
            Planner::new(HoloArConfig::for_scheme(Scheme::InterIntraHolo)).unwrap();
        let plan = planner.plan_frame_with(&f, &SensorSample::all_lost());
        assert!(plan.items.iter().all(|i| i.planes == 16 && i.coverage == 1.0));
        assert_eq!(plan.eye_track_latency + plan.pose_latency, 0.0);
    }

    #[test]
    fn tracked_sample_matches_legacy_entry_point() {
        use crate::sensor_input::SensorSample;
        let f = frame_with(vec![obj(1, 0.0, 0.6, 0.2), obj(2, 14.0, 0.5, 0.15)]);
        let mut a = Planner::new(HoloArConfig::for_scheme(Scheme::InterIntraHolo)).unwrap();
        let mut b = Planner::new(HoloArConfig::for_scheme(Scheme::InterIntraHolo)).unwrap();
        let via_legacy = a.plan_frame(&f, &pose(), AngularPoint::CENTER, 0.0044);
        let via_sample =
            b.plan_frame_with(&f, &SensorSample::tracked(pose(), AngularPoint::CENTER));
        assert_eq!(via_legacy, via_sample);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = HoloArConfig { min_planes: 0, ..HoloArConfig::default() };
        assert!(Planner::new(cfg).is_err());
    }
}
