//! The region of focus (RoF): the foveal circle around the tracked gaze.
//!
//! Prior HVS research (§2.2.2) puts sharp foveal vision inside a ~5° circle;
//! Inter-Holo renders objects inside it at full quality and approximates the
//! rest. The RoF is rebuilt every frame from the eye tracker's estimate.

use holoar_sensors::angles::AngularPoint;
use holoar_sensors::objectron::ObjectAnnotation;

/// A circular region of focus around the current gaze direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionOfFocus {
    /// Gaze direction at the center of the region.
    pub center: AngularPoint,
    /// Angular radius, radians.
    pub radius: f64,
}

impl RegionOfFocus {
    /// Creates a region of focus.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not positive and finite.
    pub fn new(center: AngularPoint, radius: f64) -> Self {
        assert!(radius > 0.0 && radius.is_finite(), "RoF radius must be positive");
        RegionOfFocus { center, radius }
    }

    /// Whether a direction falls inside the region.
    pub fn contains_direction(&self, p: AngularPoint) -> bool {
        self.center.distance_to(p) <= self.radius
    }

    /// Whether the object is attended: its center falls within the foveal
    /// circle. Fixation lands on object centers (the attention literature's
    /// center bias), so a glancing overlap of a wide object's rim does not
    /// count as focus — only the object the fovea actually rests on gets
    /// full quality.
    ///
    /// # Examples
    ///
    /// ```
    /// use holoar_core::RegionOfFocus;
    /// use holoar_sensors::angles::{deg, AngularPoint};
    /// use holoar_sensors::objectron::ObjectAnnotation;
    ///
    /// let rof = RegionOfFocus::new(AngularPoint::CENTER, deg(5.0));
    /// let looked_at = ObjectAnnotation {
    ///     track_id: 0,
    ///     direction: AngularPoint::new(deg(2.0), 0.0),
    ///     distance: 0.5,
    ///     size: 0.2,
    /// };
    /// assert!(rof.contains_object(&looked_at));
    /// ```
    pub fn contains_object(&self, obj: &ObjectAnnotation) -> bool {
        self.contains_direction(obj.direction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holoar_sensors::angles::deg;

    fn obj(azimuth_deg: f64, distance: f64, size: f64) -> ObjectAnnotation {
        ObjectAnnotation {
            track_id: 0,
            direction: AngularPoint::new(deg(azimuth_deg), 0.0),
            distance,
            size,
        }
    }

    #[test]
    fn direction_containment() {
        let rof = RegionOfFocus::new(AngularPoint::CENTER, deg(5.0));
        assert!(rof.contains_direction(AngularPoint::new(deg(4.9), 0.0)));
        assert!(!rof.contains_direction(AngularPoint::new(deg(5.1), 0.0)));
    }

    #[test]
    fn focus_is_center_biased() {
        let rof = RegionOfFocus::new(AngularPoint::CENTER, deg(5.0));
        // A big close object whose rim overlaps the fovea but whose center
        // sits at 8° is not the attended object.
        let big_near = obj(8.0, 0.5, 0.2);
        assert!(big_near.angular_radius() > deg(3.0));
        assert!(!rof.contains_object(&big_near));
        // The same object centered under the gaze is attended.
        let attended = obj(3.0, 0.5, 0.2);
        assert!(rof.contains_object(&attended));
    }

    #[test]
    fn moving_gaze_moves_the_region() {
        // Fig 5b: gaze shifts from the soccer ball to the football.
        let ball = obj(-8.0, 1.0, 0.22);
        let football = obj(8.0, 1.0, 0.28);
        let gaze_on_ball = RegionOfFocus::new(AngularPoint::new(deg(-8.0), 0.0), deg(5.0));
        assert!(gaze_on_ball.contains_object(&ball));
        assert!(!gaze_on_ball.contains_object(&football));
        let gaze_on_football = RegionOfFocus::new(AngularPoint::new(deg(8.0), 0.0), deg(5.0));
        assert!(!gaze_on_football.contains_object(&ball));
        assert!(gaze_on_football.contains_object(&football));
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_panics() {
        RegionOfFocus::new(AngularPoint::CENTER, 0.0);
    }
}
