//! Viewing-window culling and cross-frame sub-hologram reuse — the
//! *Baseline* machinery of Fig 5a that every scheme builds on.
//!
//! Per frame, each object is tested against the head-pose-derived viewing
//! window: objects outside are skipped entirely, partially-inside objects
//! compute only the covered fraction of their sub-hologram, and an object
//! whose hologram was already computed in a recent frame (same budget,
//! negligible relative motion) is *reused* rather than recomputed — "since
//! the soccer ball hologram has been already generated in Frame-I, we can
//! skip its computation".

use std::collections::HashMap;

use holoar_sensors::angles::{deg, AngularRect};
use holoar_sensors::objectron::ObjectAnnotation;

/// Where an object stands relative to the current viewing window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStatus {
    /// Fraction of the object's angular footprint inside the window,
    /// `[0, 1]`.
    pub coverage: f64,
}

impl WindowStatus {
    /// Whether the object is entirely outside the window (fully skippable).
    pub fn is_outside(&self) -> bool {
        self.coverage <= 0.0
    }

    /// Whether the object is only partially visible.
    pub fn is_partial(&self) -> bool {
        self.coverage > 0.0 && self.coverage < 1.0
    }
}

/// Computes an object's coverage by the viewing window.
pub fn window_status(window: &AngularRect, obj: &ObjectAnnotation) -> WindowStatus {
    WindowStatus { coverage: window.coverage_of_disc(obj.direction, obj.angular_radius()) }
}

/// What the tracker remembers about a previously computed sub-hologram.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CachedHologram {
    plane_count: u32,
    coverage: f64,
    annotation: ObjectAnnotation,
    last_frame: u64,
}

/// Cross-frame reuse tracker for per-object sub-holograms.
///
/// # Examples
///
/// ```
/// use holoar_core::window::ReuseTracker;
/// use holoar_sensors::angles::AngularPoint;
/// use holoar_sensors::objectron::ObjectAnnotation;
///
/// let obj = ObjectAnnotation {
///     track_id: 7,
///     direction: AngularPoint::CENTER,
///     distance: 0.6,
///     size: 0.2,
/// };
/// let mut tracker = ReuseTracker::new();
/// assert!(!tracker.can_reuse(&obj, 16, 1.0, 0)); // nothing cached yet
/// tracker.record(&obj, 16, 1.0, 0);
/// assert!(tracker.can_reuse(&obj, 16, 1.0, 1)); // unchanged next frame
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReuseTracker {
    cache: HashMap<u64, CachedHologram>,
    /// Reuses granted so far (for experiment accounting).
    reuse_count: u64,
}

impl ReuseTracker {
    /// Angular motion beyond which a cached hologram is stale.
    const MAX_ANGLE_DRIFT: f64 = deg(0.25);
    /// Relative distance change beyond which a cached hologram is stale.
    const MAX_DISTANCE_DRIFT: f64 = 0.01;
    /// Cached holograms older than this many frames are dropped (the scene
    /// around them will have changed).
    const MAX_AGE_FRAMES: u64 = 30;

    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `obj`'s hologram at the requested budget can be served from
    /// the cache for `frame`.
    pub fn can_reuse(&self, obj: &ObjectAnnotation, plane_count: u32, coverage: f64, frame: u64) -> bool {
        match self.cache.get(&obj.track_id) {
            None => false,
            Some(c) => {
                frame.saturating_sub(c.last_frame) <= Self::MAX_AGE_FRAMES
                    && c.plane_count == plane_count
                    && c.coverage >= coverage - 1e-9
                    && c.annotation.direction.distance_to(obj.direction) <= Self::MAX_ANGLE_DRIFT
                    && (c.annotation.distance - obj.distance).abs()
                        <= Self::MAX_DISTANCE_DRIFT * c.annotation.distance
            }
        }
    }

    /// Records a freshly computed sub-hologram.
    pub fn record(&mut self, obj: &ObjectAnnotation, plane_count: u32, coverage: f64, frame: u64) {
        self.cache.insert(
            obj.track_id,
            CachedHologram { plane_count, coverage, annotation: *obj, last_frame: frame },
        );
    }

    /// Notes a reuse (for accounting).
    pub fn note_reuse(&mut self) {
        self.reuse_count += 1;
    }

    /// Total reuses granted.
    pub fn reuse_count(&self) -> u64 {
        self.reuse_count
    }

    /// Number of cached entries.
    pub fn cached_len(&self) -> usize {
        self.cache.len()
    }

    /// Drops entries not touched since `frame − MAX_AGE_FRAMES`.
    pub fn evict_stale(&mut self, frame: u64) {
        self.cache
            .retain(|_, c| frame.saturating_sub(c.last_frame) <= Self::MAX_AGE_FRAMES);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holoar_sensors::angles::AngularPoint;

    fn obj(track_id: u64, az: f64, distance: f64) -> ObjectAnnotation {
        ObjectAnnotation {
            track_id,
            direction: AngularPoint::new(az, 0.0),
            distance,
            size: 0.2,
        }
    }

    fn window() -> AngularRect {
        AngularRect::new(AngularPoint::CENTER, deg(43.0), deg(29.0))
    }

    #[test]
    fn status_classifies_inside_partial_outside() {
        let w = window();
        let inside = window_status(&w, &obj(0, 0.0, 0.6));
        assert_eq!(inside.coverage, 1.0);
        assert!(!inside.is_partial());
        let outside = window_status(&w, &obj(1, deg(60.0), 0.6));
        assert!(outside.is_outside());
        let partial = window_status(&w, &obj(2, deg(21.5), 0.6));
        assert!(partial.is_partial(), "coverage {}", partial.coverage);
    }

    #[test]
    fn reuse_requires_matching_budget() {
        let mut t = ReuseTracker::new();
        let o = obj(1, 0.0, 0.6);
        t.record(&o, 16, 1.0, 0);
        assert!(t.can_reuse(&o, 16, 1.0, 1));
        assert!(!t.can_reuse(&o, 8, 1.0, 1), "different plane budget must recompute");
    }

    #[test]
    fn reuse_requires_small_motion() {
        let mut t = ReuseTracker::new();
        let o = obj(1, 0.0, 0.6);
        t.record(&o, 16, 1.0, 0);
        let drifted_far = obj(1, deg(3.0), 0.6);
        assert!(!t.can_reuse(&drifted_far, 16, 1.0, 1));
        let drifted_little = obj(1, deg(0.1), 0.6);
        assert!(t.can_reuse(&drifted_little, 16, 1.0, 1));
        let moved_closer = obj(1, 0.0, 0.4);
        assert!(!t.can_reuse(&moved_closer, 16, 1.0, 1));
    }

    #[test]
    fn reuse_respects_coverage_growth() {
        let mut t = ReuseTracker::new();
        let o = obj(1, 0.0, 0.6);
        t.record(&o, 16, 0.5, 0);
        // Object became more visible: cached half-hologram is insufficient.
        assert!(!t.can_reuse(&o, 16, 0.9, 1));
        assert!(t.can_reuse(&o, 16, 0.5, 1));
        assert!(t.can_reuse(&o, 16, 0.3, 1));
    }

    #[test]
    fn cache_ages_out() {
        let mut t = ReuseTracker::new();
        let o = obj(1, 0.0, 0.6);
        t.record(&o, 16, 1.0, 0);
        assert!(t.can_reuse(&o, 16, 1.0, 30));
        assert!(!t.can_reuse(&o, 16, 1.0, 31));
        t.evict_stale(100);
        assert_eq!(t.cached_len(), 0);
    }

    #[test]
    fn accounting() {
        let mut t = ReuseTracker::new();
        assert_eq!(t.reuse_count(), 0);
        t.note_reuse();
        t.note_reuse();
        assert_eq!(t.reuse_count(), 2);
    }
}
