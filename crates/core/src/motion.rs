//! Motion sensitivity guard — operationalizing §5.4's "Generality" caveat.
//!
//! The paper notes two application classes HoloAR serves poorly:
//! quality-critical apps (AR surgery) that should not approximate at all,
//! and motion-sensitive apps (spaceship simulation) where "the eye could
//! move to another area while the hologram is still being computed for the
//! previous focus region". This module provides both guards:
//!
//! * [`ApplicationProfile`] — presets mapping an application class to a
//!   configuration (quality-critical pins the baseline);
//! * [`MotionGuard`] — a gaze/head velocity estimator that detects rapid
//!   motion and tells the planner to suspend attention-based approximation
//!   for the affected frames (the RoF would be stale before the hologram
//!   lands).

use crate::config::{HoloArConfig, Scheme};
use holoar_sensors::angles::{deg, AngularPoint};

/// Application classes from the paper's generality discussion (§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApplicationProfile {
    /// Infotainment / gaming / virtual touring: the paper's target class —
    /// full HoloAR.
    Infotainment,
    /// Quality-critical (e.g. AR surgery): never approximate; the paper
    /// recommends offloading instead.
    QualityCritical,
    /// Motion-sensitive (e.g. flight simulation): distance-based
    /// approximation only — stale-gaze artifacts rule out Inter-Holo.
    MotionSensitive,
}

impl ApplicationProfile {
    /// The configuration this profile prescribes.
    pub fn config(self) -> HoloArConfig {
        match self {
            ApplicationProfile::Infotainment => {
                HoloArConfig::for_scheme(Scheme::InterIntraHolo)
            }
            ApplicationProfile::QualityCritical => HoloArConfig::for_scheme(Scheme::Baseline),
            ApplicationProfile::MotionSensitive => HoloArConfig::for_scheme(Scheme::IntraHolo),
        }
    }
}

/// Detects gaze motion too fast for attention-based approximation.
///
/// Tracks the angular velocity of consecutive gaze samples; when it exceeds
/// the saccade threshold, the region of focus is declared stale for
/// `hold_frames` frames (a saccade plus hologram latency), during which
/// the planner should treat every object as attended.
///
/// # Examples
///
/// ```
/// use holoar_core::motion::MotionGuard;
/// use holoar_sensors::angles::{deg, AngularPoint};
///
/// let mut guard = MotionGuard::new(30.0);
/// assert!(!guard.observe(AngularPoint::CENTER));
/// // A 12° jump between consecutive 30 Hz samples is a saccade.
/// assert!(guard.observe(AngularPoint::new(deg(12.0), 0.0)));
/// ```
#[derive(Debug, Clone)]
pub struct MotionGuard {
    sample_period: f64,
    threshold: f64,
    hold_frames: u32,
    last: Option<AngularPoint>,
    hold_remaining: u32,
}

impl MotionGuard {
    /// Saccade-detection threshold, rad/s. Smooth pursuit tops out near
    /// 30–40°/s; saccades run to hundreds.
    pub const DEFAULT_THRESHOLD: f64 = deg(80.0);

    /// Creates a guard for a given gaze sample rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not positive and finite.
    pub fn new(rate_hz: f64) -> Self {
        assert!(rate_hz > 0.0 && rate_hz.is_finite(), "sample rate must be positive");
        MotionGuard {
            sample_period: 1.0 / rate_hz,
            threshold: Self::DEFAULT_THRESHOLD,
            hold_frames: 3,
            last: None,
            hold_remaining: 0,
        }
    }

    /// Overrides the velocity threshold (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        self.threshold = threshold;
        self
    }

    /// Observes one gaze sample. Returns `true` while attention-based
    /// approximation should be suspended (saccade in flight or cooling
    /// down).
    pub fn observe(&mut self, gaze: AngularPoint) -> bool {
        let velocity = match self.last {
            Some(prev) => prev.distance_to(gaze) / self.sample_period,
            None => 0.0,
        };
        self.last = Some(gaze);
        if velocity > self.threshold {
            self.hold_remaining = self.hold_frames;
        } else {
            self.hold_remaining = self.hold_remaining.saturating_sub(1);
        }
        self.hold_remaining > 0
    }

    /// Whether the guard is currently holding approximation off.
    pub fn is_holding(&self) -> bool {
        self.hold_remaining > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_map_to_expected_schemes() {
        assert_eq!(ApplicationProfile::Infotainment.config().scheme, Scheme::InterIntraHolo);
        assert_eq!(ApplicationProfile::QualityCritical.config().scheme, Scheme::Baseline);
        assert_eq!(ApplicationProfile::MotionSensitive.config().scheme, Scheme::IntraHolo);
        // The quality-critical profile never uses eye tracking.
        assert!(!ApplicationProfile::QualityCritical.config().scheme.uses_eye_tracking());
    }

    #[test]
    fn fixation_does_not_trigger() {
        let mut guard = MotionGuard::new(30.0);
        for i in 0..20 {
            // Tremor-scale jitter.
            let p = AngularPoint::new(deg(0.05) * (i % 3) as f64, 0.0);
            assert!(!guard.observe(p), "fixation misdetected at sample {i}");
        }
    }

    #[test]
    fn smooth_pursuit_does_not_trigger() {
        let mut guard = MotionGuard::new(30.0);
        // 20°/s pursuit = 0.67° per 30 Hz sample.
        for i in 0..20 {
            let p = AngularPoint::new(deg(0.667) * i as f64, 0.0);
            assert!(!guard.observe(p), "pursuit misdetected at sample {i}");
        }
    }

    #[test]
    fn saccade_triggers_and_holds() {
        let mut guard = MotionGuard::new(30.0);
        guard.observe(AngularPoint::CENTER);
        // 15° in one 30 Hz sample = 450°/s: a saccade.
        assert!(guard.observe(AngularPoint::new(deg(15.0), 0.0)));
        assert!(guard.is_holding());
        // The hold persists for a few quiet frames, then releases.
        let mut held = 0;
        for _ in 0..10 {
            if guard.observe(AngularPoint::new(deg(15.0), 0.0)) {
                held += 1;
            } else {
                break;
            }
        }
        assert!((1..=4).contains(&held), "hold lasted {held} frames");
        assert!(!guard.is_holding());
    }

    #[test]
    fn threshold_is_tunable() {
        let mut strict = MotionGuard::new(30.0).with_threshold(deg(5.0));
        strict.observe(AngularPoint::CENTER);
        // 0.5° per sample = 15°/s: trips a 5°/s threshold.
        assert!(strict.observe(AngularPoint::new(deg(0.5), 0.0)));
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn zero_rate_panics() {
        MotionGuard::new(0.0);
    }
}
