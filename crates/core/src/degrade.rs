//! Deadline-aware graceful degradation: the ladder the planner walks when
//! the frame budget tightens.
//!
//! HoloAR's premise is *on-the-fly* adaptation, and the pipeline already
//! measures `deadline_hit_rate` — this module is the part that reacts to
//! it. A [`DegradationController`] watches observed hologram-stage
//! latencies, maintains an EWMA estimate of what a *full-quality* frame
//! would currently cost (the "demand"), and before each frame picks the
//! shallowest [`DegradationLevel`] predicted to fit the budget:
//!
//! 1. [`Full`](DegradationLevel::Full) — the configured scheme, untouched.
//! 2. [`TrimPeriphery`](DegradationLevel::TrimPeriphery) — halve the
//!    Inter-Holo α, shedding out-of-focus depth planes first (peripheral
//!    quality is the cheapest thing to give up, per the gaze-contingent
//!    rendering literature).
//! 3. [`FloorBeta`](DegradationLevel::FloorBeta) — additionally relax the
//!    Intra-Holo β model (double `theta_ref`, drop the plane floor to 1),
//!    shedding depth structure on distant/small objects.
//! 4. [`LastGood`](DegradationLevel::LastGood) — stop computing entirely
//!    and re-present the last good hologram with a cheap reprojection.
//!
//! Step-downs are immediate (predicted or actual overrun); step-ups are
//! hysteretic — one level at a time, only after
//! [`recover_frames`](DegradationLadder::recover_frames) consecutive frames
//! whose latency predicts the shallower level would still fit inside
//! [`recover_margin`](DegradationLadder::recover_margin) of the budget.
//! The controller enforces the contract documented in `DESIGN.md`: **the
//! budget is never exceeded on two consecutive frames without a step-down
//! in between** (checkable via
//! [`max_overruns_without_stepdown`](DegradationController::max_overruns_without_stepdown)).
//!
//! The controller is pure state-machine logic — no clocks, no RNG — so
//! runs replay bit-identically; all inputs are simulated latencies.
//!
//! # Examples
//!
//! ```
//! use holoar_core::degrade::{DegradationController, DegradationLadder, DegradationLevel};
//! use holoar_core::HoloArConfig;
//!
//! let mut ctl = DegradationController::new(DegradationLadder::default()).unwrap();
//! // Nominal frames stay at full quality.
//! assert_eq!(ctl.decide(0), DegradationLevel::Full);
//! ctl.observe(0, 0.050); // 50 ms on a 33 ms budget: overrun
//! let degraded = ctl.decide(1);
//! assert!(degraded > DegradationLevel::Full, "controller must step down");
//! // The degraded level plans with a smaller α (fewer out-of-focus planes).
//! let base = HoloArConfig::default();
//! let cfg = ctl.config_for(&base).unwrap();
//! assert!(cfg.alpha < base.alpha);
//! ```

use crate::config::HoloArConfig;

/// A rung of the degradation ladder, ordered from full quality (shallow) to
/// maximum shedding (deep).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DegradationLevel {
    /// The configured scheme, untouched.
    Full,
    /// Reduced out-of-focus plane budget (Inter-Holo α scaled down).
    TrimPeriphery,
    /// Additionally relaxed Intra-Holo β floors (larger `theta_ref`,
    /// plane floor of 1).
    FloorBeta,
    /// No hologram computation: re-present the last good hologram with a
    /// cheap reprojection.
    LastGood,
}

impl DegradationLevel {
    /// All levels, shallow to deep.
    pub const ALL: [DegradationLevel; 4] = [
        DegradationLevel::Full,
        DegradationLevel::TrimPeriphery,
        DegradationLevel::FloorBeta,
        DegradationLevel::LastGood,
    ];

    /// Ladder depth: 0 (full quality) … 3 (last-good).
    pub fn index(self) -> usize {
        match self {
            DegradationLevel::Full => 0,
            DegradationLevel::TrimPeriphery => 1,
            DegradationLevel::FloorBeta => 2,
            DegradationLevel::LastGood => 3,
        }
    }

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DegradationLevel::Full => "full",
            DegradationLevel::TrimPeriphery => "trim-periphery",
            DegradationLevel::FloorBeta => "floor-beta",
            DegradationLevel::LastGood => "last-good",
        }
    }
}

impl std::fmt::Display for DegradationLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a level transition happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionReason {
    /// The demand estimate predicted the current level would overrun.
    PredictedOverrun,
    /// The previous frame actually exceeded the budget.
    Overrun,
    /// An external QoS authority (the multi-session scheduler) requested
    /// the step-down via [`DegradationController::request_step_down_with`].
    Qos,
    /// Hysteretic recovery after a streak of comfortably-fast frames.
    Recovered,
    /// The session was live-migrated to another device (fleet placement):
    /// the state-transfer blackout is paid as a one-level step down,
    /// recovered through the normal hysteresis. Recorded via
    /// [`DegradationController::record_migration`].
    Migration,
}

impl TransitionReason {
    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            TransitionReason::PredictedOverrun => "predicted-overrun",
            TransitionReason::Overrun => "overrun",
            TransitionReason::Qos => "qos",
            TransitionReason::Recovered => "recovered",
            TransitionReason::Migration => "migration",
        }
    }
}

/// One recorded level transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// Frame index at which the new level took effect.
    pub frame: u64,
    /// Level before.
    pub from: DegradationLevel,
    /// Level after.
    pub to: DegradationLevel,
    /// Trigger.
    pub reason: TransitionReason,
    /// The concrete signal behind the trigger (e.g. `"observed-overrun"`,
    /// `"qos-batch-overrun"`, `"clean-streak"`), so every step-down in a
    /// report is attributable to a recorded SLO signal.
    pub signal: &'static str,
}

/// Configuration of the degradation ladder and its hysteresis (the
/// "degradation contract" of `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationLadder {
    /// Hologram-stage frame budget, seconds (the paper's 33 ms deadline).
    pub frame_budget: f64,
    /// Recovery headroom in `(0, 1)`: a step up requires the predicted
    /// latency at the shallower level to fit inside
    /// `recover_margin × frame_budget`.
    pub recover_margin: f64,
    /// Consecutive qualifying frames required before one step up.
    pub recover_frames: u32,
    /// Weight of the newest observation in the demand EWMA, in `(0, 1]`.
    pub ewma_weight: f64,
    /// Multiplier applied to Inter-Holo α at `TrimPeriphery` and deeper.
    pub trim_alpha_scale: f64,
    /// Multiplier applied to Intra-Holo `theta_ref` at `FloorBeta` (larger
    /// reference angle ⇒ smaller β ⇒ fewer planes).
    pub floor_theta_scale: f64,
    /// Expected hologram cost at each level as a fraction of the
    /// full-quality cost, shallow to deep; strictly decreasing, in `(0, 1]`.
    /// Used both to normalize observations into demand and to predict what
    /// a candidate level would cost.
    pub shed: [f64; 4],
    /// Cost of re-presenting the last good hologram (reprojection),
    /// seconds.
    pub reproject_latency: f64,
}

impl Default for DegradationLadder {
    /// Defaults documented in `DESIGN.md`: 33 ms budget, step up after 6
    /// clean frames into 70% headroom, α halved at `TrimPeriphery`,
    /// `theta_ref` doubled at `FloorBeta`.
    fn default() -> Self {
        DegradationLadder {
            frame_budget: 0.033,
            recover_margin: 0.7,
            recover_frames: 6,
            ewma_weight: 0.5,
            trim_alpha_scale: 0.5,
            floor_theta_scale: 2.0,
            shed: [1.0, 0.72, 0.45, 0.05],
            reproject_latency: 0.0015,
        }
    }
}

impl DegradationLadder {
    /// Validates the ladder parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.frame_budget > 0.0 && self.frame_budget.is_finite()) {
            return Err("frame budget must be positive".into());
        }
        if !(self.recover_margin > 0.0 && self.recover_margin < 1.0) {
            return Err("recover margin must be in (0, 1)".into());
        }
        if self.recover_frames == 0 {
            return Err("recovery needs at least one clean frame".into());
        }
        if !(self.ewma_weight > 0.0 && self.ewma_weight <= 1.0) {
            return Err("EWMA weight must be in (0, 1]".into());
        }
        if !(self.trim_alpha_scale > 0.0 && self.trim_alpha_scale < 1.0) {
            return Err("trim alpha scale must be in (0, 1)".into());
        }
        if !(self.floor_theta_scale > 1.0 && self.floor_theta_scale.is_finite()) {
            return Err("floor theta scale must exceed 1".into());
        }
        let mut prev = f64::INFINITY;
        for (i, &s) in self.shed.iter().enumerate() {
            if !(s > 0.0 && s <= 1.0 && s < prev) {
                return Err(format!("shed fractions must be strictly decreasing in (0, 1] (index {i})"));
            }
            prev = s;
        }
        if !(self.reproject_latency >= 0.0 && self.reproject_latency < self.frame_budget) {
            return Err("reprojection must cost less than the budget".into());
        }
        Ok(())
    }

    /// The planner configuration a level plans with, derived from `base`.
    ///
    /// `LastGood` returns the `FloorBeta` configuration — callers that keep
    /// planning (e.g. for bookkeeping) get the deepest computing level, but
    /// should normally skip planning entirely (see
    /// [`DegradationController::config_for`]).
    pub fn apply(&self, level: DegradationLevel, base: &HoloArConfig) -> HoloArConfig {
        let mut cfg = *base;
        if level >= DegradationLevel::TrimPeriphery {
            // Keep α valid: at least one plane's worth outside the RoF.
            cfg.alpha = (cfg.alpha * self.trim_alpha_scale)
                .max(1.0 / f64::from(cfg.full_planes.max(1)));
        }
        if level >= DegradationLevel::FloorBeta {
            cfg.intra.theta_ref *= self.floor_theta_scale;
            cfg.min_planes = 1;
        }
        cfg
    }
}

/// The deadline-aware controller: call [`decide`](Self::decide) before
/// planning each frame and [`observe`](Self::observe) with the measured
/// hologram-stage latency afterwards. See the [module docs](self) for the
/// policy.
#[derive(Debug, Clone)]
pub struct DegradationController {
    ladder: DegradationLadder,
    level: DegradationLevel,
    /// EWMA estimate of the current *full-quality* hologram cost, seconds.
    /// `None` until the first computed frame and after each probe step-up.
    demand: Option<f64>,
    clean_streak: u32,
    must_step_down: bool,
    /// Signal attached to a pending QoS-forced step-down (None when the
    /// pending step-down came from the controller's own overrun watch).
    qos_signal: Option<&'static str>,
    hold_recovery: bool,
    transitions: Vec<Transition>,
    frames: u64,
    overruns: u64,
    overrun_streak: u32,
    max_overrun_streak: u32,
}

impl DegradationController {
    /// Creates a controller at [`DegradationLevel::Full`].
    ///
    /// # Errors
    ///
    /// Returns the ladder's validation error message.
    pub fn new(ladder: DegradationLadder) -> Result<Self, String> {
        ladder.validate()?;
        Ok(DegradationController {
            ladder,
            level: DegradationLevel::Full,
            demand: None,
            clean_streak: 0,
            must_step_down: false,
            qos_signal: None,
            hold_recovery: false,
            transitions: Vec::new(),
            frames: 0,
            overruns: 0,
            overrun_streak: 0,
            max_overrun_streak: 0,
        })
    }

    /// The ladder configuration.
    pub fn ladder(&self) -> &DegradationLadder {
        &self.ladder
    }

    /// The current level.
    pub fn level(&self) -> DegradationLevel {
        self.level
    }

    /// Picks the level for frame `frame` from the demand estimate and any
    /// pending forced step-down, and records/emits the transition if the
    /// level changed. Call once per frame, before planning.
    pub fn decide(&mut self, frame: u64) -> DegradationLevel {
        let _span = holoar_telemetry::span_cat("core.degrade.decide", "core");
        let current = self.level.index();
        // Shallowest level the demand estimate predicts will fit.
        let predicted = match self.demand {
            Some(d) => DegradationLevel::ALL
                .iter()
                .position(|l| d * self.ladder.shed[l.index()] <= self.ladder.frame_budget)
                .unwrap_or(DegradationLevel::LastGood.index()),
            None => current,
        };
        if self.must_step_down || predicted > current {
            // Step down immediately — at least one level on an actual
            // overrun, straight to the predicted-feasible level otherwise.
            let target = if self.must_step_down {
                predicted.max(current + 1).min(DegradationLevel::LastGood.index())
            } else {
                predicted
            };
            let (reason, signal) = if self.must_step_down {
                match self.qos_signal {
                    Some(signal) => (TransitionReason::Qos, signal),
                    None => (TransitionReason::Overrun, "observed-overrun"),
                }
            } else {
                (TransitionReason::PredictedOverrun, "demand-prediction")
            };
            self.transition(frame, DegradationLevel::ALL[target], reason, signal);
        } else if current > 0
            && self.clean_streak >= self.ladder.recover_frames
            && !self.hold_recovery
        {
            // Hysteretic recovery: one level at a time, and forget the
            // (stale) demand so the shallower level is re-measured before
            // any prediction-driven move.
            self.transition(
                frame,
                DegradationLevel::ALL[current.saturating_sub(1)],
                TransitionReason::Recovered,
                "clean-streak",
            );
            self.demand = None;
        }
        self.must_step_down = false;
        self.qos_signal = None;
        self.hold_recovery = false;
        if self.level == DegradationLevel::LastGood {
            holoar_telemetry::counter_add("core.degrade.lastgood_frames", 1);
        }
        holoar_telemetry::gauge_set("core.degrade.level", self.level.index() as f64);
        self.level
    }

    /// The configuration to plan the current frame with, or `None` at
    /// [`DegradationLevel::LastGood`] (skip planning; re-present the cached
    /// hologram at [`reproject_latency`](DegradationLadder::reproject_latency)).
    pub fn config_for(&self, base: &HoloArConfig) -> Option<HoloArConfig> {
        match self.level {
            DegradationLevel::LastGood => None,
            level => Some(self.ladder.apply(level, base)),
        }
    }

    /// Feeds back the measured hologram-stage latency of frame `frame`
    /// (executed at the level [`decide`](Self::decide) returned). Updates
    /// the demand estimate, deadline accounting and recovery streak.
    pub fn observe(&mut self, frame: u64, hologram_latency: f64) {
        let _ = frame;
        self.frames += 1;
        let ladder = self.ladder;
        let cur = self.level.index();
        if self.level != DegradationLevel::LastGood {
            // Normalize the observation into an estimate of full-quality
            // cost; LastGood frames (pure reprojection) carry no signal.
            let estimate = hologram_latency / ladder.shed[cur];
            self.demand = Some(match self.demand {
                Some(d) => d + ladder.ewma_weight * (estimate - d),
                None => estimate,
            });
        }
        if hologram_latency > ladder.frame_budget {
            self.overruns += 1;
            self.overrun_streak += 1;
            self.max_overrun_streak = self.max_overrun_streak.max(self.overrun_streak);
            holoar_telemetry::counter_add("core.degrade.overruns", 1);
            self.clean_streak = 0;
            // Contract: the very next decide() must step down (if it can).
            if self.level != DegradationLevel::LastGood {
                self.must_step_down = true;
            }
            return;
        }
        self.overrun_streak = 0;
        // A frame counts toward recovery only if it predicts the next
        // shallower level would still fit comfortably. LastGood frames
        // carry no prediction, so recovery from it is a timed probe.
        let qualifies = match cur {
            0 => false,
            _ if self.level == DegradationLevel::LastGood => true,
            up => {
                let predicted_up = hologram_latency * ladder.shed[up - 1] / ladder.shed[up];
                predicted_up <= ladder.recover_margin * ladder.frame_budget
            }
        };
        if qualifies {
            self.clean_streak += 1;
        } else {
            self.clean_streak = 0;
        }
    }

    /// Requests a forced step-down on the next [`decide`](Self::decide),
    /// exactly as an observed overrun would.
    ///
    /// This is the QoS hook the serving layer uses: when the *shared* device
    /// is overloaded, the multi-session scheduler picks one victim session
    /// (the least-focused) and steps its controller down, rather than
    /// letting every session's own overrun accounting degrade the whole
    /// fleet at once. A no-op at [`DegradationLevel::LastGood`] — there is
    /// nothing left to shed.
    pub fn request_step_down(&mut self) {
        self.request_step_down_with("qos-step-down");
    }

    /// Like [`request_step_down`](Self::request_step_down), annotating the
    /// resulting transition with the concrete SLO `signal` that triggered
    /// it (recorded in [`Transition::signal`] with reason
    /// [`TransitionReason::Qos`]). A no-op at
    /// [`DegradationLevel::LastGood`].
    pub fn request_step_down_with(&mut self, signal: &'static str) {
        if self.level != DegradationLevel::LastGood {
            holoar_telemetry::counter_add("core.degrade.qos_step_down", 1);
            self.must_step_down = true;
            self.qos_signal = Some(signal);
        }
    }

    /// Observes the occupancy of the staged executor's inter-stage queue
    /// feeding this session's compute stage (see
    /// `holoar_pipeline::executor`), treating saturation as an SLO signal.
    ///
    /// A bounded drop-oldest queue converts compute overload into stale
    /// reprojections instead of stalls, which means a starved session's own
    /// frame accounting can look clean — reprojection is cheap — while its
    /// content ages. Queue depth is the honest signal: at `depth >= bound`
    /// the queue is shedding (or about to shed) frames, so the controller
    /// schedules a step-down annotated `"queue-saturated"` exactly as an
    /// external QoS authority would. Below saturation this only records the
    /// depth gauge. A no-op at [`DegradationLevel::LastGood`].
    pub fn observe_queue_depth(&mut self, depth: usize, bound: usize) {
        holoar_telemetry::gauge_set("core.degrade.queue_depth", depth as f64);
        if depth >= bound && self.level != DegradationLevel::LastGood {
            holoar_telemetry::counter_add("core.degrade.queue_saturated", 1);
            self.request_step_down_with("queue-saturated");
        }
    }

    /// Suppresses any recovery step-up at the next [`decide`](Self::decide)
    /// without forcing a step down.
    ///
    /// The serving layer's companion QoS hook to
    /// [`request_step_down`](Self::request_step_down): while the *shared*
    /// device is saturated, sessions whose own attributed cost looks clean
    /// must not step back up (their headroom is an artifact of the batch
    /// attribution), or fleet-wide recovery would outpace the one-victim-
    /// per-tick shedding and the overload would never drain.
    pub fn hold_level(&mut self) {
        holoar_telemetry::counter_add("core.degrade.qos_hold", 1);
        self.hold_recovery = true;
    }

    /// Records a live migration of this session to another device as a
    /// signal-attributed transition (reason
    /// [`TransitionReason::Migration`], `signal` naming the fleet trigger —
    /// `"device-kill"`, `"device-overload"`, …).
    ///
    /// The state-transfer blackout is charged as an immediate one-level
    /// step down — the first frames on the new host are served shallower
    /// while the hologram state re-uploads — and the session recovers
    /// through the normal hysteresis. The demand estimate is dropped
    /// because it was measured on the *old* host. Unlike the QoS hooks this
    /// always records the transition: at [`DegradationLevel::LastGood`] the
    /// level cannot deepen (`from == to`), but the migration stays
    /// attributable in [`transitions`](Self::transitions).
    pub fn record_migration(&mut self, frame: u64, signal: &'static str) {
        let to = DegradationLevel::ALL
            [(self.level.index() + 1).min(DegradationLevel::LastGood.index())];
        holoar_telemetry::counter_add("core.degrade.migrations", 1);
        if to > self.level {
            holoar_telemetry::counter_add("core.degrade.step_down", 1);
        }
        self.transitions.push(Transition {
            frame,
            from: self.level,
            to,
            reason: TransitionReason::Migration,
            signal,
        });
        self.level = to;
        self.clean_streak = 0;
        self.overrun_streak = 0;
        self.demand = None;
    }

    /// Every recorded level transition, in order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Frames observed.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Frames that exceeded the budget.
    pub fn overruns(&self) -> u64 {
        self.overruns
    }

    /// The longest run of consecutive over-budget frames the controller
    /// allowed without stepping down in between. The documented contract
    /// requires this to stay ≤ 1 whenever the ladder has depth left.
    pub fn max_overruns_without_stepdown(&self) -> u32 {
        self.max_overrun_streak
    }

    fn transition(
        &mut self,
        frame: u64,
        to: DegradationLevel,
        reason: TransitionReason,
        signal: &'static str,
    ) {
        if to == self.level {
            return;
        }
        if to > self.level {
            holoar_telemetry::counter_add("core.degrade.step_down", 1);
        } else {
            holoar_telemetry::counter_add("core.degrade.step_up", 1);
        }
        self.transitions.push(Transition { frame, from: self.level, to, reason, signal });
        self.level = to;
        self.clean_streak = 0;
        // Any step down satisfies a pending forced one.
        self.overrun_streak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> DegradationController {
        DegradationController::new(DegradationLadder::default()).unwrap()
    }

    /// Simulates `frames` frames where a full-quality hologram costs
    /// `full_cost` seconds and each level costs `full_cost × shed[level]`.
    fn run(ctl: &mut DegradationController, frames: u64, full_cost: impl Fn(u64) -> f64) {
        for i in 0..frames {
            let level = ctl.decide(i);
            let lat = if level == DegradationLevel::LastGood {
                ctl.ladder().reproject_latency
            } else {
                full_cost(i) * ctl.ladder().shed[level.index()]
            };
            ctl.observe(i, lat);
        }
    }

    #[test]
    fn migrations_are_signal_attributed_and_charge_one_level() {
        let mut ctl = controller();
        run(&mut ctl, 10, |_| 0.026);
        assert_eq!(ctl.level(), DegradationLevel::Full);
        ctl.record_migration(10, "device-kill");
        assert_eq!(ctl.level(), DegradationLevel::TrimPeriphery);
        let t = *ctl.transitions().last().unwrap();
        assert_eq!(t.reason, TransitionReason::Migration);
        assert_eq!(t.signal, "device-kill");
        assert_eq!((t.from, t.to), (DegradationLevel::Full, DegradationLevel::TrimPeriphery));

        // At the ladder floor the level cannot deepen, but the migration
        // is still recorded (from == to) so it stays attributable.
        for _ in 0..4 {
            ctl.record_migration(11, "device-overload");
        }
        assert_eq!(ctl.level(), DegradationLevel::LastGood);
        let t = *ctl.transitions().last().unwrap();
        assert_eq!((t.from, t.to), (DegradationLevel::LastGood, DegradationLevel::LastGood));
        assert_eq!(t.reason.name(), "migration");
    }

    #[test]
    fn nominal_load_never_degrades() {
        let mut ctl = controller();
        run(&mut ctl, 50, |_| 0.026);
        assert_eq!(ctl.level(), DegradationLevel::Full);
        assert!(ctl.transitions().is_empty());
        assert_eq!(ctl.overruns(), 0);
    }

    #[test]
    fn overrun_steps_down_within_one_frame() {
        let mut ctl = controller();
        assert_eq!(ctl.decide(0), DegradationLevel::Full);
        ctl.observe(0, 0.060);
        let next = ctl.decide(1);
        assert!(next > DegradationLevel::Full);
        assert_eq!(ctl.transitions().len(), 1);
        assert_eq!(ctl.transitions()[0].reason, TransitionReason::Overrun);
        assert_eq!(ctl.transitions()[0].signal, "observed-overrun");
    }

    #[test]
    fn qos_request_forces_a_step_down_on_the_next_decide() {
        let mut ctl = controller();
        assert_eq!(ctl.decide(0), DegradationLevel::Full);
        ctl.observe(0, 0.020);
        ctl.request_step_down();
        let next = ctl.decide(1);
        assert!(next > DegradationLevel::Full, "QoS request must shed despite clean latency");
        assert_eq!(ctl.transitions().len(), 1);
        assert_eq!(ctl.transitions()[0].reason, TransitionReason::Qos);
        assert_eq!(ctl.transitions()[0].signal, "qos-step-down");
    }

    #[test]
    fn qos_signals_annotate_the_transition_and_do_not_leak() {
        let mut ctl = controller();
        ctl.decide(0);
        ctl.observe(0, 0.020);
        ctl.request_step_down_with("qos-batch-overrun");
        ctl.decide(1);
        assert_eq!(ctl.transitions()[0].reason, TransitionReason::Qos);
        assert_eq!(ctl.transitions()[0].signal, "qos-batch-overrun");
        // A later *observed* overrun must not inherit the stale QoS signal.
        ctl.observe(1, 0.200);
        ctl.decide(2);
        let last = *ctl.transitions().last().unwrap();
        assert_eq!(last.reason, TransitionReason::Overrun);
        assert_eq!(last.signal, "observed-overrun");
        // Every recorded transition carries a non-empty signal.
        assert!(ctl.transitions().iter().all(|t| !t.signal.is_empty()));
    }

    #[test]
    fn queue_saturation_forces_an_annotated_step_down() {
        let mut ctl = controller();
        assert_eq!(ctl.decide(0), DegradationLevel::Full);
        ctl.observe(0, 0.020);
        // Below the bound: a depth observation alone never sheds.
        ctl.observe_queue_depth(1, 2);
        assert_eq!(ctl.decide(1), DegradationLevel::Full);
        ctl.observe(1, 0.020);
        // At the bound the queue is dropping frames: step down despite
        // clean frame latencies, attributed to the queue signal.
        ctl.observe_queue_depth(2, 2);
        assert!(ctl.decide(2) > DegradationLevel::Full);
        let last = *ctl.transitions().last().unwrap();
        assert_eq!(last.reason, TransitionReason::Qos);
        assert_eq!(last.signal, "queue-saturated");
    }

    #[test]
    fn queue_saturation_is_a_no_op_at_lastgood() {
        let mut ctl = controller();
        for i in 0..4 {
            ctl.request_step_down();
            ctl.decide(i);
            ctl.observe(i, 0.001);
        }
        assert_eq!(ctl.level(), DegradationLevel::LastGood);
        let transitions = ctl.transitions().len();
        ctl.observe_queue_depth(5, 2);
        ctl.decide(9);
        assert_eq!(ctl.transitions().len(), transitions, "nothing left to shed");
    }

    #[test]
    fn qos_hold_suppresses_one_recovery_step() {
        let mut ctl = controller();
        ctl.request_step_down();
        assert!(ctl.decide(0) > DegradationLevel::Full);
        // Build a full recovery streak with comfortably clean frames.
        let ladder = *ctl.ladder();
        for i in 0..ladder.recover_frames {
            ctl.observe(u64::from(i), 0.001);
            if i + 1 < ladder.recover_frames {
                ctl.decide(u64::from(i) + 1);
            }
        }
        let level = ctl.level();
        ctl.hold_level();
        assert_eq!(ctl.decide(100), level, "held controller must not step up");
        // The hold is consumed: the very next decide recovers as usual.
        assert!(ctl.decide(101) < level, "hold must only last one decide");
    }

    #[test]
    fn qos_request_is_a_no_op_at_last_good() {
        let mut ctl = controller();
        // Drive the controller all the way down with pathological latencies.
        run(&mut ctl, 20, |_| 10.0);
        assert_eq!(ctl.level(), DegradationLevel::LastGood);
        let transitions = ctl.transitions().len();
        ctl.request_step_down();
        ctl.decide(20);
        assert_eq!(ctl.level(), DegradationLevel::LastGood);
        assert_eq!(ctl.transitions().len(), transitions, "nothing left to shed");
    }

    #[test]
    fn sustained_slowdown_settles_on_a_feasible_level_and_recovers() {
        let mut ctl = controller();
        // Warm up at nominal load, then a 2× slowdown for 40 frames, then
        // back to nominal.
        run(&mut ctl, 10, |_| 0.026);
        run(&mut ctl, 40, |_| 0.052);
        let degraded = ctl.level();
        assert!(degraded > DegradationLevel::Full, "must shed under 2× slowdown");
        assert!(
            degraded < DegradationLevel::LastGood,
            "2× slowdown should not need last-good ({degraded})"
        );
        run(&mut ctl, 60, |_| 0.020);
        assert_eq!(ctl.level(), DegradationLevel::Full, "must recover after the burst");
        let ups = ctl
            .transitions()
            .iter()
            .filter(|t| t.reason == TransitionReason::Recovered)
            .count();
        assert!(ups >= 1, "recovery must be recorded");
    }

    #[test]
    fn extreme_load_drops_to_last_good_and_probes_back() {
        let mut ctl = controller();
        run(&mut ctl, 30, |_| 1.0); // 30× over budget: nothing computable fits
        assert_eq!(ctl.level(), DegradationLevel::LastGood);
        // Persistent overload: probes step up and get knocked straight back.
        run(&mut ctl, 40, |_| 1.0);
        assert_eq!(ctl.level(), DegradationLevel::LastGood);
        // Load vanishes: the controller climbs all the way home.
        run(&mut ctl, 80, |_| 0.010);
        assert_eq!(ctl.level(), DegradationLevel::Full);
    }

    #[test]
    fn never_two_consecutive_overruns_without_stepdown() {
        let mut ctl = controller();
        // A nasty sawtooth: alternating calm and violent frames.
        run(&mut ctl, 120, |i| if (i / 7) % 2 == 0 { 0.020 } else { 0.150 });
        assert!(
            ctl.max_overruns_without_stepdown() <= 1,
            "contract violated: {} consecutive overruns",
            ctl.max_overruns_without_stepdown()
        );
    }

    #[test]
    fn hysteresis_blocks_immediate_reclimb() {
        let mut ctl = controller();
        run(&mut ctl, 5, |_| 0.060); // force a step down
        let deep = ctl.level();
        assert!(deep > DegradationLevel::Full);
        // One fast frame is not enough to climb.
        run(&mut ctl, 1, |_| 0.004);
        assert_eq!(ctl.level(), deep);
        // A sustained calm stretch is.
        run(&mut ctl, 30, |_| 0.004);
        assert!(ctl.level() < deep);
    }

    #[test]
    fn ladder_config_application_is_cumulative() {
        let ladder = DegradationLadder::default();
        let base = HoloArConfig::default();
        let full = ladder.apply(DegradationLevel::Full, &base);
        assert_eq!(full, base);
        let trim = ladder.apply(DegradationLevel::TrimPeriphery, &base);
        assert!((trim.alpha - base.alpha * 0.5).abs() < 1e-12);
        assert_eq!(trim.min_planes, base.min_planes);
        let floor = ladder.apply(DegradationLevel::FloorBeta, &base);
        assert!((floor.alpha - base.alpha * 0.5).abs() < 1e-12);
        assert!((floor.intra.theta_ref - base.intra.theta_ref * 2.0).abs() < 1e-12);
        assert_eq!(floor.min_planes, 1);
        for level in DegradationLevel::ALL {
            assert!(ladder.apply(level, &base).validate().is_ok(), "{level}");
        }
    }

    #[test]
    fn invalid_ladders_are_rejected() {
        let bad = DegradationLadder { frame_budget: 0.0, ..DegradationLadder::default() };
        assert!(DegradationController::new(bad).is_err());
        let bad = DegradationLadder { shed: [1.0, 0.72, 0.72, 0.05], ..DegradationLadder::default() };
        assert!(bad.validate().is_err());
        let bad = DegradationLadder { recover_margin: 1.0, ..DegradationLadder::default() };
        assert!(bad.validate().is_err());
        let bad = DegradationLadder { reproject_latency: 0.1, ..DegradationLadder::default() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn last_good_suppresses_planning_config() {
        let mut ctl = controller();
        run(&mut ctl, 30, |_| 1.0);
        assert_eq!(ctl.level(), DegradationLevel::LastGood);
        assert!(ctl.config_for(&HoloArConfig::default()).is_none());
    }

    #[test]
    fn levels_are_ordered_and_named() {
        assert!(DegradationLevel::Full < DegradationLevel::TrimPeriphery);
        assert!(DegradationLevel::FloorBeta < DegradationLevel::LastGood);
        for (i, l) in DegradationLevel::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
            assert!(!l.name().is_empty());
        }
        assert_eq!(DegradationLevel::LastGood.to_string(), "last-good");
    }
}
