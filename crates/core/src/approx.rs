//! The approximation factors: Inter-Holo's `α` and Intra-Holo's
//! `β = approxFactors(cam2ObjDist, size)`.
//!
//! Algorithm 2 applies a fixed factor `α` to everything outside the region
//! of focus. Algorithm 3 derives a per-object factor `β` from the pose
//! estimate; the paper gives the intuition (far/small objects need fewer
//! planes) but not the closed form, so we model the plane budget as
//! proportional to the object's *angular depth* — its metric depth extent
//! divided by its distance:
//!
//! ```text
//! β(d, s)  = clamp(s / (d · θ_ref), min/full, 1)
//! planes   = clamp(round(16 · β), min_planes, 16)
//! ```
//!
//! `θ_ref` is calibrated once against the Table 2 statistics so the fleet
//! average reproduces Fig 8b (23.6 → 19.8 → 7.1 → 6.7 planes across the four
//! schemes); see `DESIGN.md`.

use crate::config::HoloArConfig;
use holoar_sensors::objectron::ObjectAnnotation;

/// Plane budget for an object *outside* the RoF under Inter-Holo:
/// `full × α`, floored at the configured minimum (Algorithm 2, Line 7).
///
/// # Examples
///
/// ```
/// use holoar_core::{approx, HoloArConfig, Scheme};
/// let cfg = HoloArConfig::for_scheme(Scheme::InterHolo);
/// assert_eq!(approx::inter_planes(&cfg), 8); // 16 × 0.5
/// ```
pub fn inter_planes(config: &HoloArConfig) -> u32 {
    scaled_planes(config.full_planes, config.alpha, config)
}

/// The Intra-Holo approximation factor `β ∈ (0, 1]` for an object.
pub fn beta(obj: &ObjectAnnotation, config: &HoloArConfig) -> f64 {
    let min_beta = config.min_planes as f64 / config.full_planes as f64;
    (obj.angular_depth() / config.intra.theta_ref).clamp(min_beta, 1.0)
}

/// Plane budget for an object under Intra-Holo: `full × β` (Algorithm 3,
/// Line 5).
pub fn intra_planes(obj: &ObjectAnnotation, config: &HoloArConfig) -> u32 {
    scaled_planes(config.full_planes, beta(obj, config), config)
}

/// Plane budget under the combined Inter-Intra-Holo scheme: Intra's budget,
/// further scaled by `α` when the object is outside the RoF (§4.4,
/// "first identify the objects inside/outside the RoF, then approximate each
/// of them based on its shape and distance").
pub fn inter_intra_planes(obj: &ObjectAnnotation, in_rof: bool, config: &HoloArConfig) -> u32 {
    let factor = if in_rof { beta(obj, config) } else { beta(obj, config) * config.alpha };
    scaled_planes(config.full_planes, factor, config)
}

fn scaled_planes(full: u32, factor: f64, config: &HoloArConfig) -> u32 {
    let raw = (full as f64 * factor).round() as u32;
    raw.clamp(config.min_planes, full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use holoar_sensors::angles::AngularPoint;

    fn obj(distance: f64, size: f64) -> ObjectAnnotation {
        ObjectAnnotation { track_id: 0, direction: AngularPoint::CENTER, distance, size }
    }

    fn cfg() -> HoloArConfig {
        HoloArConfig::for_scheme(Scheme::InterIntraHolo)
    }

    #[test]
    fn inter_planes_follow_alpha() {
        let c = cfg();
        assert_eq!(inter_planes(&c), 8);
        assert_eq!(inter_planes(&c.with_alpha(0.25)), 4);
        assert_eq!(inter_planes(&c.with_alpha(1.0)), 16);
        // Tiny alpha clamps to the floor.
        assert_eq!(inter_planes(&c.with_alpha(0.01)), 2);
    }

    #[test]
    fn beta_monotonic_in_distance() {
        let c = cfg();
        // Farther ⇒ smaller β ⇒ fewer planes.
        let near = obj(0.4, 0.3);
        let far = obj(2.5, 0.3);
        assert!(beta(&near, &c) > beta(&far, &c));
        assert!(intra_planes(&near, &c) >= intra_planes(&far, &c));
    }

    #[test]
    fn beta_monotonic_in_size() {
        let c = cfg();
        let small = obj(0.6, 0.05);
        let large = obj(0.6, 0.5);
        assert!(beta(&large, &c) > beta(&small, &c));
        assert!(intra_planes(&large, &c) >= intra_planes(&small, &c));
    }

    #[test]
    fn budgets_stay_in_bounds() {
        let c = cfg();
        for (d, s) in [(0.1, 5.0), (10.0, 0.001), (0.5, 0.2), (2.08, 1.54)] {
            let p = intra_planes(&obj(d, s), &c);
            assert!((c.min_planes..=c.full_planes).contains(&p), "planes {p} for d={d} s={s}");
            let b = beta(&obj(d, s), &c);
            assert!((0.0..=1.0).contains(&b));
        }
    }

    #[test]
    fn huge_close_object_gets_full_budget() {
        let c = cfg();
        // Angular depth 5 ≫ θ_ref.
        assert_eq!(intra_planes(&obj(0.1, 0.5), &c), 16);
    }

    #[test]
    fn combined_scheme_never_exceeds_intra_alone() {
        let c = cfg();
        for (d, s) in [(0.47, 0.16), (2.08, 1.54), (0.65, 0.21)] {
            let o = obj(d, s);
            let intra = intra_planes(&o, &c);
            assert_eq!(inter_intra_planes(&o, true, &c), intra);
            assert!(inter_intra_planes(&o, false, &c) <= intra);
        }
    }

    #[test]
    fn table2_means_give_expected_budgets() {
        // Sanity-check the θ_ref calibration against the Table 2 category
        // means: bike (large angular depth) gets the most planes, shoe/cup
        // (small) the fewest — the §5.3 per-video speedup ordering.
        let c = cfg();
        let bike = intra_planes(&obj(2.08, 1.54), &c);
        let laptop = intra_planes(&obj(0.58, 0.38), &c);
        let shoe = intra_planes(&obj(0.65, 0.21), &c);
        let cup = intra_planes(&obj(0.47, 0.16), &c);
        assert!(bike >= laptop, "bike {bike} vs laptop {laptop}");
        assert!(laptop > shoe, "laptop {laptop} vs shoe {shoe}");
        assert!(laptop > cup, "laptop {laptop} vs cup {cup}");
        assert!((7..=9).contains(&bike), "bike budget {bike} should be ~8");
        assert!((3..=6).contains(&shoe), "shoe budget {shoe} should be ~3-6");
        assert!((3..=6).contains(&cup), "cup budget {cup} should be ~3-6");
    }
}
