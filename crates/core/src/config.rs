//! HoloAR configuration: the four evaluated schemes and their knobs.

use holoar_sensors::angles::deg;

/// Full (unapproximated) depth-plane budget per object (§4.3: "the strict 16
/// depth planes requirement").
pub const FULL_PLANES: u32 = 16;

/// The four AR-hologram configurations of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scheme {
    /// Viewing-window sub-hologram only (Reichelt et al. \[52\]) — the
    /// paper's *Baseline*.
    Baseline,
    /// Foveated rendering: full planes inside the region of focus, `16·α`
    /// outside — the paper's *Reference* design.
    InterHolo,
    /// Distance/size-driven per-object plane budgets (`16·β`).
    IntraHolo,
    /// Inter-then-Intra composition — the full *HoloAR*.
    InterIntraHolo,
}

impl Scheme {
    /// All schemes in evaluation order.
    pub const ALL: [Scheme; 4] =
        [Scheme::Baseline, Scheme::InterHolo, Scheme::IntraHolo, Scheme::InterIntraHolo];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Baseline => "Baseline",
            Scheme::InterHolo => "Inter-Holo",
            Scheme::IntraHolo => "Intra-Holo",
            Scheme::InterIntraHolo => "Inter-Intra-Holo",
        }
    }

    /// Whether the scheme consumes eye tracking (and pays its latency).
    pub fn uses_eye_tracking(self) -> bool {
        matches!(self, Scheme::InterHolo | Scheme::InterIntraHolo)
    }

    /// Whether the scheme approximates by object distance/size.
    pub fn uses_distance(self) -> bool {
        matches!(self, Scheme::IntraHolo | Scheme::InterIntraHolo)
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of the Intra-Holo approximation-factor model (see `DESIGN.md`,
/// "The β model").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntraParams {
    /// Reference angular depth (radians): an object whose depth extent over
    /// distance reaches this value gets the full plane budget. Calibrated so
    /// the Table 2 video mix lands at the paper's Fig 8b plane averages.
    pub theta_ref: f64,
}

impl Default for IntraParams {
    fn default() -> Self {
        IntraParams { theta_ref: 1.548 }
    }
}

/// Full configuration for the HoloAR planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoloArConfig {
    /// Active scheme.
    pub scheme: Scheme,
    /// Inter-Holo approximation factor `α ∈ (0, 1]`; the paper settles on
    /// 0.5 (§4.3) and sweeps it in Fig 10b.
    pub alpha: f64,
    /// Intra-Holo model parameters.
    pub intra: IntraParams,
    /// Region-of-focus radius (the ~5° foveal circle of the HVS).
    pub rof_radius: f64,
    /// Plane budget for unapproximated objects.
    pub full_planes: u32,
    /// Floor on approximated plane budgets (an object that is rendered at
    /// all needs some depth structure).
    pub min_planes: u32,
    /// Whether cross-frame sub-hologram reuse (Fig 5a's "skip the soccer
    /// ball in Frame-II") is enabled. On by default; the ablation harness
    /// turns it off to measure its contribution.
    pub reuse_enabled: bool,
}

impl HoloArConfig {
    /// The paper's default configuration for a scheme (α = 0.5, 5° RoF,
    /// 16 full planes, floor of 2).
    ///
    /// # Examples
    ///
    /// ```
    /// use holoar_core::{HoloArConfig, Scheme};
    /// let cfg = HoloArConfig::for_scheme(Scheme::InterIntraHolo);
    /// assert_eq!(cfg.alpha, 0.5);
    /// assert_eq!(cfg.full_planes, 16);
    /// ```
    pub fn for_scheme(scheme: Scheme) -> Self {
        HoloArConfig {
            scheme,
            alpha: 0.5,
            intra: IntraParams::default(),
            rof_radius: deg(5.0),
            full_planes: FULL_PLANES,
            min_planes: 2,
            reuse_enabled: true,
        }
    }

    /// Same configuration with reuse disabled (the reuse-ablation harness).
    pub fn without_reuse(mut self) -> Self {
        self.reuse_enabled = false;
        self
    }

    /// Same configuration with a different α (the Fig 10b sweep).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        self.alpha = alpha;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err("alpha must be in (0, 1]".into());
        }
        if self.full_planes == 0 {
            return Err("full plane budget must be non-zero".into());
        }
        if self.min_planes == 0 || self.min_planes > self.full_planes {
            return Err("min planes must be in [1, full_planes]".into());
        }
        if !(self.rof_radius > 0.0 && self.rof_radius.is_finite()) {
            return Err("RoF radius must be positive".into());
        }
        if !(self.intra.theta_ref > 0.0 && self.intra.theta_ref.is_finite()) {
            return Err("theta_ref must be positive".into());
        }
        Ok(())
    }
}

impl Default for HoloArConfig {
    /// The full HoloAR scheme (Inter-Intra-Holo) at paper defaults.
    fn default() -> Self {
        HoloArConfig::for_scheme(Scheme::InterIntraHolo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_properties() {
        assert!(!Scheme::Baseline.uses_eye_tracking());
        assert!(Scheme::InterHolo.uses_eye_tracking());
        assert!(!Scheme::InterHolo.uses_distance());
        assert!(Scheme::IntraHolo.uses_distance());
        assert!(Scheme::InterIntraHolo.uses_eye_tracking());
        assert!(Scheme::InterIntraHolo.uses_distance());
        assert_eq!(Scheme::ALL.len(), 4);
        assert_eq!(Scheme::InterIntraHolo.to_string(), "Inter-Intra-Holo");
    }

    #[test]
    fn default_config_is_paper_defaults() {
        let cfg = HoloArConfig::default();
        assert_eq!(cfg.scheme, Scheme::InterIntraHolo);
        assert_eq!(cfg.alpha, 0.5);
        assert_eq!(cfg.full_planes, 16);
        assert_eq!(cfg.min_planes, 2);
        assert!(cfg.reuse_enabled);
        assert!(!cfg.without_reuse().reuse_enabled);
        assert!((cfg.rof_radius - deg(5.0)).abs() < 1e-12);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn with_alpha_overrides() {
        let cfg = HoloArConfig::for_scheme(Scheme::InterHolo).with_alpha(0.25);
        assert_eq!(cfg.alpha, 0.25);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn with_alpha_rejects_out_of_range() {
        HoloArConfig::default().with_alpha(0.0);
    }

    #[test]
    fn validation_catches_bad_fields() {
        let cfg = HoloArConfig { min_planes: 32, ..HoloArConfig::default() };
        assert!(cfg.validate().is_err());
        let cfg = HoloArConfig { full_planes: 0, ..HoloArConfig::default() };
        assert!(cfg.validate().is_err());
        let cfg = HoloArConfig { rof_radius: -1.0, ..HoloArConfig::default() };
        assert!(cfg.validate().is_err());
        let cfg = HoloArConfig {
            intra: IntraParams { theta_ref: f64::NAN },
            ..HoloArConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
