//! The HORN-8 comparison and the future-work hybrid scheduler.
//!
//! HORN-8 \[35\] is a special-purpose electro-holography ASIC. The paper had
//! no RTL or datasheet, so it *estimated* the accelerator's power efficiency
//! from published FPGA-vs-GPU characterization \[51\]: ≈ 48% power saving on
//! the same workload, with no approximation (so no latency change). We model
//! it the same way — and the same caveat applies: these are estimates, not
//! hardware measurements (the paper's footnote 5).
//!
//! §5.5 sketches a future accelerator co-design; [`HybridSchedule`]
//! implements its analytically tractable piece — partitioning depth planes
//! between a fixed-capacity accelerator and the GPU.

use crate::evaluation::EvaluationMatrix;
use crate::config::Scheme;

/// Analytical HORN-8 model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Horn8Model {
    /// Fraction of baseline power the accelerator saves (paper estimate:
    /// 0.48 from \[51\]).
    pub power_saving: f64,
}

impl Default for Horn8Model {
    fn default() -> Self {
        Horn8Model { power_saving: 0.48 }
    }
}

impl Horn8Model {
    /// Creates a model with a given power saving fraction.
    ///
    /// # Panics
    ///
    /// Panics if `power_saving` is outside `[0, 1)`.
    pub fn new(power_saving: f64) -> Self {
        assert!((0.0..1.0).contains(&power_saving), "power saving must be in [0, 1)");
        Horn8Model { power_saving }
    }

    /// HORN-8's mean energy per frame on the baseline workload: same
    /// latency (no approximation), scaled power.
    pub fn mean_energy(&self, matrix: &EvaluationMatrix) -> f64 {
        let base = matrix.fleet_mean(Scheme::Baseline, |c| c.mean_energy);
        base * (1.0 - self.power_saving)
    }

    /// Energy savings versus the baseline, as a fraction.
    pub fn energy_savings(&self, _matrix: &EvaluationMatrix) -> f64 {
        self.power_saving
    }

    /// How much more energy HoloAR (Inter-Intra-Holo) saves than HORN-8, in
    /// fraction-of-baseline points. The paper reports ≈ 25% (§5.3).
    pub fn holoar_advantage(&self, matrix: &EvaluationMatrix) -> f64 {
        matrix.fleet_energy_savings(Scheme::InterIntraHolo) - self.energy_savings(matrix)
    }
}

/// Future-work (§5.5): split one hologram's depth planes between an
/// accelerator with `pu_count` processing units and the GPU, overlapping
/// their execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridSchedule {
    /// Planes assigned to the accelerator.
    pub accelerator_planes: u32,
    /// Planes assigned to the GPU.
    pub gpu_planes: u32,
    /// Makespan relative to running all planes on the GPU alone.
    pub relative_makespan: f64,
}

/// Plans a hybrid split: the accelerator processes one plane per PU per
/// "round" at `accel_speedup` × the GPU's per-plane rate; both run
/// concurrently and the makespan is the slower side.
///
/// # Panics
///
/// Panics if `accel_speedup` is not positive.
pub fn plan_hybrid(planes: u32, pu_count: u32, accel_speedup: f64) -> HybridSchedule {
    assert!(accel_speedup > 0.0, "accelerator speedup must be positive");
    if planes == 0 {
        return HybridSchedule { accelerator_planes: 0, gpu_planes: 0, relative_makespan: 0.0 };
    }
    if pu_count == 0 {
        return HybridSchedule {
            accelerator_planes: 0,
            gpu_planes: planes,
            relative_makespan: 1.0,
        };
    }
    // Balance: accel rate = pu_count × accel_speedup planes per GPU-plane
    // time; GPU rate = 1. Assign proportionally, rounding toward the
    // accelerator.
    let accel_rate = pu_count as f64 * accel_speedup;
    let accel_share =
        ((planes as f64 * accel_rate / (accel_rate + 1.0)).ceil() as u32).min(planes);
    let gpu_share = planes - accel_share;
    let accel_time = accel_share as f64 / accel_rate;
    let gpu_time = gpu_share as f64;
    HybridSchedule {
        accelerator_planes: accel_share,
        gpu_planes: gpu_share,
        relative_makespan: accel_time.max(gpu_time) / planes as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::evaluate_matrix;
    use holoar_gpusim::Device;

    #[test]
    fn horn8_saves_less_than_holoar() {
        let matrix = evaluate_matrix(&mut Device::xavier(), 30, 5);
        let horn8 = Horn8Model::default();
        let horn8_savings = horn8.energy_savings(&matrix);
        let holoar_savings = matrix.fleet_energy_savings(Scheme::InterIntraHolo);
        assert!((horn8_savings - 0.48).abs() < 1e-12);
        assert!(
            holoar_savings > horn8_savings,
            "HoloAR ({holoar_savings:.2}) should beat HORN-8 ({horn8_savings:.2})"
        );
        let advantage = horn8.holoar_advantage(&matrix);
        assert!(
            (0.10..0.40).contains(&advantage),
            "advantage {advantage:.2} should be near the paper's ~25%"
        );
    }

    #[test]
    fn horn8_energy_is_power_scaled_baseline() {
        let matrix = evaluate_matrix(&mut Device::xavier(), 10, 2);
        let base = matrix.fleet_mean(Scheme::Baseline, |c| c.mean_energy);
        let horn8 = Horn8Model::default();
        assert!((horn8.mean_energy(&matrix) - base * 0.52).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power saving")]
    fn horn8_rejects_bad_saving() {
        Horn8Model::new(1.0);
    }

    #[test]
    fn hybrid_degenerate_cases() {
        let none = plan_hybrid(0, 4, 2.0);
        assert_eq!(none.relative_makespan, 0.0);
        let gpu_only = plan_hybrid(16, 0, 2.0);
        assert_eq!(gpu_only.gpu_planes, 16);
        assert_eq!(gpu_only.relative_makespan, 1.0);
    }

    #[test]
    fn hybrid_conserves_planes_and_speeds_up() {
        for (planes, pus, speedup) in [(16u32, 4u32, 1.5f64), (16, 8, 2.0), (7, 3, 1.0)] {
            let s = plan_hybrid(planes, pus, speedup);
            assert_eq!(s.accelerator_planes + s.gpu_planes, planes);
            assert!(s.relative_makespan < 1.0, "hybrid should beat GPU-only");
            assert!(s.relative_makespan > 0.0);
        }
    }

    #[test]
    fn more_pus_shrink_makespan() {
        let few = plan_hybrid(16, 2, 1.5);
        let many = plan_hybrid(16, 8, 1.5);
        assert!(many.relative_makespan <= few.relative_makespan);
    }
}
