//! HoloAR: on-the-fly approximation of 3-D holographic processing for AR —
//! the paper's primary contribution.
//!
//! The framework layers three decisions per object per frame (Fig 6a):
//!
//! 1. **Viewing window** ([`window`]) — skip objects outside the
//!    head-pose-derived window, compute partial sub-holograms for partially
//!    visible ones, and reuse unchanged sub-holograms across frames
//!    (the *Baseline*, after Reichelt et al.).
//! 2. **Inter-Holo** ([`rof`], [`approx`]) — full depth-plane budget inside
//!    the tracked 5° region of focus, `16·α` outside (foveated rendering,
//!    the *Reference* design).
//! 3. **Intra-Holo** ([`approx`]) — per-object budgets `16·β(dist, size)`
//!    from the pose estimate; composed with Inter-Holo as *Inter-Intra-Holo*
//!    (the full HoloAR).
//!
//! [`Planner`] turns sensor inputs into a [`planner::ComputePlan`];
//! [`executor`] runs plans on the simulated edge GPU for
//! latency/power/energy (Fig 7, Fig 8), [`quality`] runs the same plans
//! through the real wave-optics engine for PSNR (Fig 10), [`evaluation`]
//! drives the full 6-video × 4-scheme matrix, and [`horn8`] provides the
//! accelerator comparison and the §5.5 hybrid-scheduling ablation.
//!
//! # Examples
//!
//! ```
//! use holoar_core::{evaluation, Scheme};
//! use holoar_gpusim::Device;
//! use holoar_sensors::objectron::VideoCategory;
//!
//! let mut device = Device::xavier();
//! let base = evaluation::evaluate_video(
//!     &mut device, VideoCategory::Shoe, Scheme::Baseline, 10, 1);
//! let holoar = evaluation::evaluate_video(
//!     &mut device, VideoCategory::Shoe, Scheme::InterIntraHolo, 10, 1);
//! assert!(holoar.mean_energy < base.mean_energy);
//! ```

#![forbid(unsafe_code)]

pub mod approx;
pub mod config;
pub mod degrade;
pub mod evaluation;
pub mod executor;
pub mod horn8;
pub mod motion;
pub mod planner;
pub mod quality;
pub mod rof;
pub mod sensor_input;
pub mod view;
pub mod window;

pub use config::{HoloArConfig, IntraParams, Scheme, FULL_PLANES};
pub use holoar_fft::{ExecutionContext, ExecutionContextBuilder};
pub use degrade::{DegradationController, DegradationLadder, DegradationLevel};
pub use evaluation::{EvaluationMatrix, VideoResult};
pub use executor::FramePerf;
pub use horn8::{Horn8Model, HybridSchedule};
pub use motion::{ApplicationProfile, MotionGuard};
pub use planner::{ComputePlan, PlanItem, Planner};
pub use quality::{DesignPoint, ObjectQuality, TradeoffPoint, VideoQuality};
pub use rof::RegionOfFocus;
pub use sensor_input::{GazeInput, PoseInput, SensorSample};
pub use view::{render_view, ViewportImage};
pub use window::ReuseTracker;
