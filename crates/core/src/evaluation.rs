//! End-to-end evaluation over the six videos and four schemes — the engine
//! behind Fig 7 (power / latency / energy) and Fig 8b (plane counts).
//!
//! Each evaluated video couples the synthetic substrates exactly the way the
//! paper's testbed couples the real ones: Objectron-like frames, an IMU-fed
//! Kimera-like pose estimate per frame, an NVGaze-like gaze estimate whose
//! fixation target follows scene objects, and the GPU simulator executing
//! whatever the planner decides.

use crate::config::{HoloArConfig, Scheme};
use crate::executor::{execute_plan, FramePerf};
use crate::planner::Planner;
use holoar_gpusim::Device;
use holoar_sensors::angles::AngularPoint;
use holoar_sensors::eyetrack::EyeTracker;
use holoar_sensors::imu::HeadMotion;
use holoar_sensors::objectron::{Frame, FrameGenerator, VideoCategory};
use holoar_sensors::pose::PoseEstimator;
use holoar_sensors::rng::Rng;

/// Aggregated results for one (video, scheme) cell of Fig 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VideoResult {
    /// Video evaluated.
    pub category: VideoCategory,
    /// Scheme evaluated.
    pub scheme: Scheme,
    /// Frames evaluated.
    pub frames: u64,
    /// Mean end-to-end frame latency, seconds (Fig 7b).
    pub mean_latency: f64,
    /// Mean (time-averaged) power, watts (Fig 7a).
    pub mean_power: f64,
    /// Mean energy per frame, joules (Fig 7c).
    pub mean_energy: f64,
    /// Mean depth planes computed per frame (Fig 8b).
    pub mean_planes: f64,
    /// Fraction of object observations served from the reuse cache.
    pub reuse_fraction: f64,
}

/// Evaluates one video under one scheme for `frames` frames.
///
/// # Examples
///
/// ```
/// use holoar_core::{evaluation, Scheme};
/// use holoar_gpusim::Device;
/// use holoar_sensors::objectron::VideoCategory;
///
/// let mut device = Device::xavier();
/// let result = evaluation::evaluate_video(
///     &mut device, VideoCategory::Cup, Scheme::InterIntraHolo, 20, 7);
/// assert!(result.mean_latency > 0.0);
/// ```
///
/// # Panics
///
/// Panics if `frames == 0`.
pub fn evaluate_video(
    device: &mut Device,
    category: VideoCategory,
    scheme: Scheme,
    frames: u64,
    seed: u64,
) -> VideoResult {
    assert!(frames > 0, "need at least one frame to evaluate");
    let mut planner =
        Planner::new(HoloArConfig::for_scheme(scheme)).expect("paper defaults are valid");
    evaluate_with_planner(device, &mut planner, category, frames, seed)
}

/// Evaluates with a caller-supplied planner (used by the α-sensitivity sweep
/// of Fig 10b).
///
/// # Panics
///
/// Panics if `frames == 0`.
pub fn evaluate_with_planner(
    device: &mut Device,
    planner: &mut Planner,
    category: VideoCategory,
    frames: u64,
    seed: u64,
) -> VideoResult {
    assert!(frames > 0, "need at least one frame to evaluate");
    let generator = FrameGenerator::new(category, seed);
    // 210 Hz IMU against 30 fps video: 7 samples per frame.
    let mut imu = HeadMotion::new(210.0, seed ^ 0xABCD);
    let mut vio = PoseEstimator::new(seed ^ 0x1234);
    let mut tracker = EyeTracker::new(seed ^ 0x77);
    let mut attention = AttentionModel::new(seed ^ 0xA77E);

    let mut total = FrameTotals::default();
    for frame in generator.take(frames as usize) {
        let mut pose = None;
        for sample in imu.samples(7) {
            pose = Some(vio.update(&sample));
        }
        let pose = pose.expect("at least one IMU sample per frame");
        let true_gaze = attention.gaze_for(&frame);
        let estimate = tracker.estimate(true_gaze);
        let plan = planner.plan_frame(&frame, &pose, estimate.direction, estimate.latency);
        let perf = execute_plan(device, &plan);
        total.add(&plan, &perf);
    }
    total.finish(category, planner.config().scheme, frames)
}

/// Fixation behaviour over scene objects: the user dwells on one object at a
/// time (preferring visually large ones), switching after an exponential
/// dwell — the object-directed version of the Fig 3b temporal locality.
#[derive(Debug, Clone)]
struct AttentionModel {
    rng: Rng,
    focused_track: Option<u64>,
    dwell_frames_left: f64,
}

impl AttentionModel {
    fn new(seed: u64) -> Self {
        AttentionModel { rng: Rng::seeded(seed), focused_track: None, dwell_frames_left: 0.0 }
    }

    fn gaze_for(&mut self, frame: &Frame) -> AngularPoint {
        self.dwell_frames_left -= 1.0;
        let focused_alive = self
            .focused_track
            .is_some_and(|id| frame.objects.iter().any(|o| o.track_id == id));
        if self.dwell_frames_left <= 0.0 || !focused_alive {
            self.focused_track = self.pick_object(frame);
            // Mean dwell ~2 s at 30 fps.
            self.dwell_frames_left = self.rng.exponential(60.0);
        }
        match self.focused_track {
            Some(id) => frame
                .objects
                .iter()
                .find(|o| o.track_id == id)
                .map(|o| o.direction)
                .unwrap_or(AngularPoint::CENTER),
            None => AngularPoint::CENTER,
        }
    }

    fn pick_object(&mut self, frame: &Frame) -> Option<u64> {
        if frame.objects.is_empty() {
            return None;
        }
        // Weight by apparent angular size: big/close objects draw attention.
        let weights: Vec<f64> =
            frame.objects.iter().map(|o| o.angular_radius().max(1e-6)).collect();
        let total: f64 = weights.iter().sum();
        let mut pick = self.rng.uniform() * total;
        for (obj, w) in frame.objects.iter().zip(&weights) {
            pick -= w;
            if pick <= 0.0 {
                return Some(obj.track_id);
            }
        }
        frame.objects.last().map(|o| o.track_id)
    }
}

#[derive(Debug, Default)]
struct FrameTotals {
    latency: f64,
    energy: f64,
    planes: u64,
    computed_objects: u64,
    reused_objects: u64,
}

impl FrameTotals {
    fn add(&mut self, plan: &crate::planner::ComputePlan, perf: &FramePerf) {
        self.latency += perf.latency;
        self.energy += perf.energy;
        self.planes += perf.planes as u64;
        self.computed_objects += perf.jobs as u64;
        self.reused_objects += plan.reused_count() as u64;
    }

    fn finish(self, category: VideoCategory, scheme: Scheme, frames: u64) -> VideoResult {
        let n = frames as f64;
        let observations = self.computed_objects + self.reused_objects;
        VideoResult {
            category,
            scheme,
            frames,
            mean_latency: self.latency / n,
            mean_power: if self.latency > 0.0 { self.energy / self.latency } else { 0.0 },
            mean_energy: self.energy / n,
            mean_planes: self.planes as f64 / n,
            reuse_fraction: if observations > 0 {
                self.reused_objects as f64 / observations as f64
            } else {
                0.0
            },
        }
    }
}

/// The full Fig 7 / Fig 8b matrix: every video × every scheme.
#[derive(Debug, Clone)]
pub struct EvaluationMatrix {
    /// One cell per (video, scheme) pair.
    pub cells: Vec<VideoResult>,
}

impl EvaluationMatrix {
    /// The cell for one (video, scheme) pair.
    pub fn cell(&self, category: VideoCategory, scheme: Scheme) -> Option<&VideoResult> {
        self.cells.iter().find(|c| c.category == category && c.scheme == scheme)
    }

    /// Fleet-average of a metric across videos for one scheme.
    pub fn fleet_mean<F: Fn(&VideoResult) -> f64>(&self, scheme: Scheme, metric: F) -> f64 {
        let values: Vec<f64> =
            self.cells.iter().filter(|c| c.scheme == scheme).map(metric).collect();
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }

    /// Average speedup of `scheme` over the baseline (ratio of mean
    /// latencies, averaged over videos) — the Fig 7b headline numbers.
    pub fn fleet_speedup(&self, scheme: Scheme) -> f64 {
        let ratios: Vec<f64> = VideoCategory::ALL
            .iter()
            .filter_map(|&v| {
                let base = self.cell(v, Scheme::Baseline)?;
                let other = self.cell(v, scheme)?;
                Some(base.mean_latency / other.mean_latency)
            })
            .collect();
        if ratios.is_empty() {
            0.0
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        }
    }

    /// Fleet power reduction of `scheme` versus baseline, as a fraction
    /// (Fig 7a headline numbers).
    pub fn fleet_power_reduction(&self, scheme: Scheme) -> f64 {
        let base = self.fleet_mean(Scheme::Baseline, |c| c.mean_power);
        let other = self.fleet_mean(scheme, |c| c.mean_power);
        1.0 - other / base
    }

    /// Fleet energy savings of `scheme` versus baseline, as a fraction
    /// (Fig 7c headline numbers).
    pub fn fleet_energy_savings(&self, scheme: Scheme) -> f64 {
        let base = self.fleet_mean(Scheme::Baseline, |c| c.mean_energy);
        let other = self.fleet_mean(scheme, |c| c.mean_energy);
        1.0 - other / base
    }
}

/// Runs the full matrix: 6 videos × 4 schemes, `frames` frames each.
///
/// # Panics
///
/// Panics if `frames == 0`.
pub fn evaluate_matrix(device: &mut Device, frames: u64, seed: u64) -> EvaluationMatrix {
    let mut cells = Vec::with_capacity(24);
    for &category in &VideoCategory::ALL {
        for &scheme in &Scheme::ALL {
            cells.push(evaluate_video(device, category, scheme, frames, seed));
        }
    }
    EvaluationMatrix { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_matrix() -> EvaluationMatrix {
        evaluate_matrix(&mut Device::xavier(), 40, 3)
    }

    #[test]
    fn matrix_has_all_cells() {
        let m = small_matrix();
        assert_eq!(m.cells.len(), 24);
        for &v in &VideoCategory::ALL {
            for &s in &Scheme::ALL {
                assert!(m.cell(v, s).is_some());
            }
        }
    }

    #[test]
    fn schemes_are_ordered_in_latency_and_energy() {
        let m = small_matrix();
        let lat = |s| m.fleet_mean(s, |c| c.mean_latency);
        assert!(lat(Scheme::Baseline) > lat(Scheme::InterHolo));
        assert!(lat(Scheme::InterHolo) > lat(Scheme::IntraHolo));
        assert!(lat(Scheme::IntraHolo) >= lat(Scheme::InterIntraHolo) * 0.95);
        let en = |s| m.fleet_mean(s, |c| c.mean_energy);
        assert!(en(Scheme::Baseline) > en(Scheme::InterHolo));
        assert!(en(Scheme::InterHolo) > en(Scheme::InterIntraHolo));
    }

    #[test]
    fn plane_counts_shrink_across_schemes() {
        let m = small_matrix();
        let planes = |s| m.fleet_mean(s, |c| c.mean_planes);
        let base = planes(Scheme::Baseline);
        let inter = planes(Scheme::InterHolo);
        let intra = planes(Scheme::IntraHolo);
        let both = planes(Scheme::InterIntraHolo);
        assert!(base > inter, "baseline {base} vs inter {inter}");
        assert!(inter > intra, "inter {inter} vs intra {intra}");
        assert!(intra >= both, "intra {intra} vs both {both}");
    }

    #[test]
    fn evaluation_is_deterministic() {
        let mut d1 = Device::xavier();
        let mut d2 = Device::xavier();
        let a = evaluate_video(&mut d1, VideoCategory::Shoe, Scheme::InterIntraHolo, 25, 9);
        let b = evaluate_video(&mut d2, VideoCategory::Shoe, Scheme::InterIntraHolo, 25, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn speedup_of_baseline_is_unity() {
        let m = small_matrix();
        assert!((m.fleet_speedup(Scheme::Baseline) - 1.0).abs() < 1e-9);
        assert!(m.fleet_speedup(Scheme::InterIntraHolo) > 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_panics() {
        evaluate_video(&mut Device::xavier(), VideoCategory::Cup, Scheme::Baseline, 0, 1);
    }
}
