//! Sensor inputs to the planner, including degraded modes.
//!
//! Real headsets lose sensors: eye trackers drop frames when the user
//! blinks or the IR view is occluded, and VIO diverges in feature-poor
//! scenes. HoloAR's safety property is that sensor loss degrades
//! *performance*, never *quality*: a scheme that cannot see the gaze must
//! treat every object as attended (no Inter-Holo approximation), and a
//! scheme that cannot see the pose must assume everything is in view and at
//! a conservative (near) distance.

use holoar_sensors::angles::AngularPoint;
use holoar_sensors::eyetrack::GazeEstimate;
use holoar_sensors::pose::PoseEstimate;

/// Eye-tracking input state for one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GazeInput {
    /// A valid estimate from the tracker.
    Tracked(GazeEstimate),
    /// Tracking lost (blink, occlusion, IR washout). The planner must not
    /// approximate on attention this frame.
    Lost,
}

impl GazeInput {
    /// Convenience constructor from a direction with the tracker's nominal
    /// latency.
    pub fn tracked(direction: AngularPoint) -> Self {
        GazeInput::Tracked(GazeEstimate {
            direction,
            latency: holoar_sensors::eyetrack::spec::LATENCY,
        })
    }

    /// The estimate, if tracked.
    pub fn estimate(&self) -> Option<GazeEstimate> {
        match self {
            GazeInput::Tracked(e) => Some(*e),
            GazeInput::Lost => None,
        }
    }
}

/// Pose input state for one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PoseInput {
    /// A valid pose estimate.
    Tracked(PoseEstimate),
    /// Pose lost (VIO divergence). The planner must assume the full scene is
    /// visible and must not approximate on distance.
    Lost,
}

impl PoseInput {
    /// The estimate, if tracked.
    pub fn estimate(&self) -> Option<PoseEstimate> {
        match self {
            PoseInput::Tracked(p) => Some(*p),
            PoseInput::Lost => None,
        }
    }
}

/// One frame's sensor bundle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorSample {
    /// Head pose (viewing window + distances).
    pub pose: PoseInput,
    /// Gaze (region of focus).
    pub gaze: GazeInput,
}

impl SensorSample {
    /// A fully tracked sample.
    pub fn tracked(pose: PoseEstimate, gaze: AngularPoint) -> Self {
        SensorSample { pose: PoseInput::Tracked(pose), gaze: GazeInput::tracked(gaze) }
    }

    /// A sample with every sensor lost — the worst case the planner must
    /// survive.
    pub fn all_lost() -> Self {
        SensorSample { pose: PoseInput::Lost, gaze: GazeInput::Lost }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracked_round_trips() {
        let pose = PoseEstimate { orientation: AngularPoint::CENTER, latency: 0.01375 };
        let s = SensorSample::tracked(pose, AngularPoint::new(0.1, 0.0));
        assert_eq!(s.pose.estimate(), Some(pose));
        assert!(s.gaze.estimate().is_some());
        assert!((s.gaze.estimate().unwrap().latency - 0.0044).abs() < 1e-12);
    }

    #[test]
    fn lost_yields_none() {
        let s = SensorSample::all_lost();
        assert_eq!(s.pose.estimate(), None);
        assert_eq!(s.gaze.estimate(), None);
    }
}
