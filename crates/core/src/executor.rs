//! The performance path: executing a [`ComputePlan`] on the simulated edge
//! GPU and accounting latency, power and energy per frame.

use crate::planner::ComputePlan;
use holoar_gpusim::hologram_kernels::{run_job, HologramJob};
use holoar_gpusim::power::{Activity, EnergyMeter};
use holoar_gpusim::{calibration, Device};

/// Host-side per-frame overhead outside the hologram kernels: depthmap
/// slicing, buffer management, display composition. Calibrated (together
/// with the kernel-linear hologram cost) so the end-to-end scheme speedups
/// land at the paper's Fig 7b ratios while the kernel-only plane sweep stays
/// linear as in Fig 4b; see `EXPERIMENTS.md` for the residuals.
pub const FRAME_OVERHEAD: f64 = 0.045;

/// Host activity while the CPU prepares/composes a frame.
const HOST_ACTIVITY: Activity = Activity { gpu: 0.05, mem: 0.10, cpu: 0.90 };

/// Performance accounting for one executed frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FramePerf {
    /// End-to-end frame latency, seconds.
    pub latency: f64,
    /// Time-averaged total power over the frame, watts.
    pub avg_power: f64,
    /// Total energy, joules.
    pub energy: f64,
    /// Depth planes actually computed.
    pub planes: u32,
    /// Hologram jobs executed (objects computed).
    pub jobs: usize,
}

/// Executes a plan's hologram jobs on the device and integrates power over
/// the whole frame (host overhead at host activity, each hologram job at its
/// plane-count-dependent activity).
///
/// # Examples
///
/// ```
/// use holoar_core::{executor, HoloArConfig, Planner, Scheme};
/// use holoar_gpusim::Device;
/// use holoar_sensors::angles::AngularPoint;
/// use holoar_sensors::objectron::{FrameGenerator, VideoCategory};
/// use holoar_sensors::pose::PoseEstimate;
///
/// let mut device = Device::xavier();
/// let mut planner = Planner::new(HoloArConfig::for_scheme(Scheme::Baseline)).unwrap();
/// let frame = FrameGenerator::new(VideoCategory::Cup, 1).next().unwrap();
/// let pose = PoseEstimate { orientation: AngularPoint::CENTER, latency: 0.01375 };
/// let plan = planner.plan_frame(&frame, &pose, AngularPoint::CENTER, 0.0);
/// let perf = executor::execute_plan(&mut device, &plan);
/// assert!(perf.latency >= executor::FRAME_OVERHEAD);
/// ```
pub fn execute_plan(device: &mut Device, plan: &ComputePlan) -> FramePerf {
    let _span = holoar_telemetry::span_cat("core.executor.execute_plan", "core");
    let mut meter = EnergyMeter::new();
    let host_rails = device.config().power.rails(HOST_ACTIVITY);
    let overhead = FRAME_OVERHEAD + plan.pose_latency + plan.eye_track_latency;
    meter.accumulate(overhead, host_rails);

    let mut planes = 0u32;
    let mut jobs = 0usize;
    for item in &plan.items {
        if !item.needs_compute() {
            continue;
        }
        let job = HologramJob {
            pixels: calibration::HOLOGRAM_PIXELS,
            plane_count: item.planes,
            coverage: item.coverage.clamp(f64::MIN_POSITIVE, 1.0),
            gsw_iterations: calibration::GSW_ITERATIONS,
        };
        let stats = {
            let _job_span = holoar_telemetry::span_cat("core.executor.hologram_job", "core");
            run_job(device, &job)
        };
        holoar_telemetry::histogram_record_us(
            "core.executor.sim_latency_us",
            stats.latency * 1e6,
        );
        meter.accumulate(stats.latency, stats.rails);
        planes += item.planes;
        jobs += 1;
    }

    let perf = FramePerf {
        latency: meter.time,
        avg_power: meter.average_power(),
        energy: meter.energy.total(),
        planes,
        jobs,
    };
    holoar_telemetry::record_frame(
        plan.frame_index,
        &[
            ("latency_ms", perf.latency * 1e3),
            ("power_w", perf.avg_power),
            ("energy_mj", perf.energy * 1e3),
            ("planes", f64::from(perf.planes)),
            ("jobs", perf.jobs as f64),
        ],
    );
    perf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HoloArConfig, Scheme};
    use crate::planner::Planner;
    use holoar_sensors::angles::AngularPoint;
    use holoar_sensors::objectron::{Frame, ObjectAnnotation};
    use holoar_sensors::pose::PoseEstimate;

    fn pose() -> PoseEstimate {
        PoseEstimate { orientation: AngularPoint::CENTER, latency: 0.01375 }
    }

    fn frame(objects: Vec<ObjectAnnotation>) -> Frame {
        Frame { index: 0, objects }
    }

    fn obj(id: u64, distance: f64, size: f64) -> ObjectAnnotation {
        ObjectAnnotation { track_id: id, direction: AngularPoint::CENTER, distance, size }
    }

    fn perf_for(scheme: Scheme, objects: Vec<ObjectAnnotation>) -> FramePerf {
        let mut device = Device::xavier();
        let mut planner = Planner::new(HoloArConfig::for_scheme(scheme)).unwrap();
        let plan = planner.plan_frame(&frame(objects), &pose(), AngularPoint::CENTER, 0.0044);
        execute_plan(&mut device, &plan)
    }

    #[test]
    fn empty_frame_costs_only_overhead() {
        let perf = perf_for(Scheme::Baseline, vec![]);
        assert_eq!(perf.jobs, 0);
        assert_eq!(perf.planes, 0);
        assert!((perf.latency - (FRAME_OVERHEAD + 0.01375)).abs() < 1e-9);
        assert!(perf.energy > 0.0, "idle host still burns energy");
    }

    #[test]
    fn approximation_reduces_latency_and_energy() {
        let objects = vec![obj(1, 0.65, 0.21)]; // shoe-like: small & mid-distance
        let base = perf_for(Scheme::Baseline, objects.clone());
        let intra = perf_for(Scheme::IntraHolo, objects);
        assert!(intra.latency < base.latency);
        assert!(intra.energy < base.energy);
        assert!(intra.planes < base.planes);
        assert!(intra.avg_power < base.avg_power);
    }

    #[test]
    fn baseline_frame_latency_matches_anchor_plus_overhead() {
        let base = perf_for(Scheme::Baseline, vec![obj(1, 0.6, 0.2)]);
        // One full 16-plane hologram (≈ 341.7 ms) plus overheads.
        let expected = 0.3417 + FRAME_OVERHEAD + 0.01375;
        assert!(
            (base.latency - expected).abs() / expected < 0.05,
            "latency {:.1} ms vs expected {:.1} ms",
            base.latency * 1e3,
            expected * 1e3
        );
    }

    #[test]
    fn inter_holo_charges_eye_tracking() {
        // Two identical scenes; Inter-Holo pays 4.4 ms extra overhead but
        // with everything in RoF computes the same planes.
        let objects = vec![obj(1, 0.6, 0.2)];
        let base = perf_for(Scheme::Baseline, objects.clone());
        let inter = perf_for(Scheme::InterHolo, objects);
        assert_eq!(base.planes, inter.planes);
        assert!((inter.latency - base.latency - 0.0044).abs() < 1e-6);
    }

    #[test]
    fn more_objects_cost_more() {
        let one = perf_for(Scheme::Baseline, vec![obj(1, 0.6, 0.2)]);
        let two = perf_for(Scheme::Baseline, vec![obj(1, 0.6, 0.2), obj(2, 0.7, 0.25)]);
        assert!(two.latency > one.latency);
        assert_eq!(two.jobs, 2);
        assert_eq!(two.planes, 32);
    }
}
