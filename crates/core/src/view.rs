//! The user's composed view: every planned object's reconstruction placed
//! at its angular position in the display's field of view.
//!
//! This is the Fig 1a end product — what the headset actually shows. Each
//! computed (or reused) object is reconstructed at its plane budget through
//! the quality path, scaled to its apparent angular size, and splatted into
//! a viewport image. The compositor makes approximation *visible*: an
//! unattended far object rendered from 2 planes sits softly in the
//! periphery while the attended object stays crisp.

use crate::planner::PlanItem;
use crate::quality::{virtual_object_for, OPTICAL_SCALE};
use holoar_fft::ExecutionContext;
use holoar_optics::{reconstruct, OpticalConfig, Propagator};
use holoar_sensors::angles::AngularRect;

/// A rendered viewport: row-major luminance in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewportImage {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major luminance.
    pub pixels: Vec<f64>,
}

impl ViewportImage {
    /// Total luminance (how much hologram light the view contains).
    pub fn total_luminance(&self) -> f64 {
        self.pixels.iter().sum()
    }

    /// Luminance inside an axis-aligned pixel box (for locating objects in
    /// tests).
    ///
    /// # Panics
    ///
    /// Panics if the box exceeds the viewport.
    pub fn luminance_in(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> f64 {
        assert!(row0 + rows <= self.rows && col0 + cols <= self.cols, "box out of bounds");
        let mut sum = 0.0;
        for r in row0..row0 + rows {
            for c in col0..col0 + cols {
                sum += self.pixels[r * self.cols + c];
            }
        }
        sum
    }
}

/// Renders the composed view of a frame's plan.
///
/// Objects with zero planes and zero coverage (outside the window) do not
/// appear. Reused objects render at their cached budget — they are still
/// displayed, just not recomputed.
///
/// Per-object reconstruction fans out over the context's worker pool —
/// whole-frame synthesis parallelizes across objects while the viewport
/// splat stays serial in plan order, so the image is bit-identical for
/// every worker count.
///
/// # Panics
///
/// Panics if viewport dimensions are zero.
pub fn render_view(
    items: &[PlanItem],
    window: &AngularRect,
    rows: usize,
    cols: usize,
    ctx: &ExecutionContext,
) -> ViewportImage {
    let par = ctx.parallelism();
    assert!(rows > 0 && cols > 0, "viewport must be non-empty");
    let _span = holoar_telemetry::span_cat("core.view.render_view", "core");
    let mut pixels = vec![0.0f64; rows * cols];
    let optics = OpticalConfig::default();
    const TILE: usize = 24;
    // Workers run serial FFTs (the fan-out is across objects) but share one
    // transfer-function cache through cloned propagators.
    let prop = Propagator::new();

    // Stage 1: reconstruct every displayed object's tile concurrently.
    let tiles: Vec<Option<Vec<f64>>> = par.map(items, |item| {
        if item.planes == 0 || item.coverage <= 0.0 {
            return None;
        }
        let _tile_span = holoar_telemetry::span_cat("core.view.tile", "core");
        let obj = &item.object;
        let z = (obj.distance * OPTICAL_SCALE).max(0.001);
        let extent = (obj.size * OPTICAL_SCALE).min(z * 0.8);
        let depthmap = virtual_object_for(obj.track_id).render(TILE, TILE, z, extent);
        let stack = depthmap.slice(item.planes as usize, optics);
        let mut prop = prop.clone();
        let mut images = reconstruct::incoherent_focal_stack(&stack, &[z], &mut prop);
        Some(images.swap_remove(0))
    });

    // Stage 2: splat serially, in plan order.
    for (item, tile) in items.iter().zip(&tiles) {
        let Some(tile) = tile else {
            continue;
        };
        let obj = &item.object;
        let peak = tile.iter().cloned().fold(0.0, f64::max).max(f64::MIN_POSITIVE);

        // Angular footprint → pixel footprint.
        let half_w = window.width / 2.0;
        let half_h = window.height / 2.0;
        let cx = ((obj.direction.azimuth - window.center.azimuth + half_w)
            / window.width
            * cols as f64)
            .round();
        let cy = ((-(obj.direction.elevation - window.center.elevation) + half_h)
            / window.height
            * rows as f64)
            .round();
        let radius = obj.angular_radius();
        let px_w = ((2.0 * radius / window.width) * cols as f64).max(2.0);
        let px_h = ((2.0 * radius / window.height) * rows as f64).max(2.0);

        // Splat the tile (nearest-neighbour) into the viewport; brightness
        // falls off with distance (inverse-square, normalized at 0.5 m).
        let brightness = (0.5 / obj.distance.max(0.1)).powi(2).min(1.0);
        let (w, h) = (px_w as isize, px_h as isize);
        for dy in 0..h {
            for dx in 0..w {
                let vr = cy as isize - h / 2 + dy;
                let vc = cx as isize - w / 2 + dx;
                if vr < 0 || vc < 0 || vr >= rows as isize || vc >= cols as isize {
                    continue;
                }
                let tr = (dy as f64 / h as f64 * TILE as f64) as usize;
                let tc = (dx as f64 / w as f64 * TILE as f64) as usize;
                let v = tile[tr.min(TILE - 1) * TILE + tc.min(TILE - 1)] / peak * brightness;
                let idx = vr as usize * cols + vc as usize;
                pixels[idx] = pixels[idx].max(v);
            }
        }
    }
    ViewportImage { rows, cols, pixels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HoloArConfig, Scheme};
    use crate::planner::PlanItem;
    use holoar_sensors::angles::{deg, AngularPoint};
    use holoar_sensors::objectron::ObjectAnnotation;

    fn ctx() -> ExecutionContext {
        ExecutionContext::serial()
    }

    fn window() -> AngularRect {
        AngularRect::new(AngularPoint::CENTER, deg(43.0), deg(29.0))
    }

    fn item(az_deg: f64, el_deg: f64, planes: u32) -> PlanItem {
        PlanItem {
            object: ObjectAnnotation {
                track_id: 3, // Planet
                direction: AngularPoint::new(deg(az_deg), deg(el_deg)),
                distance: 0.6,
                size: 0.25,
            },
            planes,
            coverage: 1.0,
            in_rof: true,
            reused: false,
        }
    }

    #[test]
    fn empty_plan_renders_black() {
        let v = render_view(&[], &window(), 32, 48, &ctx());
        assert_eq!(v.total_luminance(), 0.0);
        assert_eq!(v.pixels.len(), 32 * 48);
    }

    #[test]
    fn skipped_objects_do_not_appear() {
        let mut it = item(0.0, 0.0, 0);
        it.coverage = 0.0;
        let v = render_view(&[it], &window(), 32, 48, &ctx());
        assert_eq!(v.total_luminance(), 0.0);
    }

    #[test]
    fn centered_object_lights_the_center() {
        let v = render_view(&[item(0.0, 0.0, 8)], &window(), 32, 48, &ctx());
        assert!(v.total_luminance() > 0.0);
        let center = v.luminance_in(12, 18, 8, 12);
        let corner = v.luminance_in(0, 0, 8, 12);
        assert!(center > corner, "center {center} vs corner {corner}");
    }

    #[test]
    fn object_position_maps_to_viewport_side() {
        let v =
            render_view(&[item(15.0, 0.0, 8)], &window(), 32, 48, &ctx());
        let right = v.luminance_in(8, 24, 16, 24);
        let left = v.luminance_in(8, 0, 16, 24);
        assert!(right > left, "right {right} vs left {left}");
    }

    #[test]
    fn closer_objects_are_brighter() {
        let near = {
            let mut it = item(0.0, 0.0, 8);
            it.object.distance = 0.4;
            render_view(&[it], &window(), 32, 48, &ctx())
        };
        let far = {
            let mut it = item(0.0, 0.0, 8);
            it.object.distance = 1.6;
            render_view(&[it], &window(), 32, 48, &ctx())
        };
        assert!(near.total_luminance() > far.total_luminance());
    }

    #[test]
    fn full_plan_composites_multiple_objects() {
        let mut planner = crate::planner::Planner::new(HoloArConfig::for_scheme(
            Scheme::InterIntraHolo,
        ))
        .unwrap();
        let frame = holoar_sensors::objectron::Frame {
            index: 0,
            objects: vec![item(-8.0, 0.0, 0).object, {
                let mut o = item(8.0, 3.0, 0).object;
                o.track_id = 5;
                o
            }],
        };
        let pose = holoar_sensors::pose::PoseEstimate {
            orientation: AngularPoint::CENTER,
            latency: 0.01375,
        };
        let plan = planner.plan_frame(&frame, &pose, AngularPoint::new(deg(-8.0), 0.0), 0.0);
        let v = render_view(&plan.items, &pose.viewing_window(), 32, 48, &ctx());
        assert!(v.total_luminance() > 0.0);
        // Both sides of the view carry light.
        assert!(v.luminance_in(0, 0, 32, 24) > 0.0);
        assert!(v.luminance_in(0, 24, 32, 24) > 0.0);
    }

    #[test]
    fn parallel_render_is_bit_identical_to_serial() {
        let items = [item(-8.0, 0.0, 8), item(8.0, 3.0, 4), item(0.0, -5.0, 2)];
        let serial = render_view(&items, &window(), 32, 48, &ctx());
        for workers in [2usize, 7] {
            let par = render_view(
                &items,
                &window(),
                32,
                48,
                &ExecutionContext::with_workers(workers),
            );
            assert_eq!(par, serial, "workers {workers}");
        }
    }

    #[test]
    #[should_panic(expected = "viewport must be non-empty")]
    fn zero_viewport_panics() {
        render_view(&[], &window(), 0, 10, &ctx());
    }
}
