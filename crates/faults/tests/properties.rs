//! Property tests for the robustness layer: deterministic fault replay
//! across worker counts, and monotonicity of the degradation ladder and
//! controller (strictly more load never raises the chosen plane count).

use holoar_core::degrade::{DegradationController, DegradationLadder, DegradationLevel};
use holoar_core::{HoloArConfig, Planner, Scheme};
use holoar_faults::{scenario, FrameFaults};
use holoar_fft::Parallelism;
use holoar_sensors::angles::AngularPoint;
use holoar_sensors::objectron::{Frame, FrameGenerator, VideoCategory};
use holoar_sensors::pose::PoseEstimate;
use holoar_sensors::rng::Rng;
use proptest::prelude::*;

const FRAMES: u64 = 80;

fn nominal_pose() -> PoseEstimate {
    PoseEstimate { orientation: AngularPoint::CENTER, latency: 0.01375 }
}

/// Plans every frame of a Shoe clip at the given ladder level and returns
/// the per-frame total plane counts (reuse disabled so totals are a pure
/// function of the configuration).
fn planes_per_frame(level: DegradationLevel, ladder: &DegradationLadder) -> Vec<u32> {
    let base = HoloArConfig::for_scheme(Scheme::InterIntraHolo).without_reuse();
    let cfg = ladder.apply(level, &base);
    let mut planner = Planner::new(cfg).expect("ladder configs stay valid");
    FrameGenerator::new(VideoCategory::Shoe, 7)
        .take(FRAMES as usize)
        .map(|frame: Frame| {
            planner
                .plan_frame(&frame, &nominal_pose(), AngularPoint::CENTER, 0.0044)
                .total_planes()
        })
        .collect()
}

/// Runs the controller against a synthetic load trace where a full-quality
/// hologram costs `cost[i] × load` seconds and each ladder level sheds cost
/// per its `shed` fraction. Returns the per-frame chosen plane counts.
fn simulate(load: f64, cost: &[f64], planes: &[Vec<u32>; 4]) -> (Vec<u32>, DegradationController) {
    let ladder = DegradationLadder::default();
    let mut ctl = DegradationController::new(ladder).expect("default ladder is valid");
    let mut chosen = Vec::with_capacity(cost.len());
    for (i, &c) in cost.iter().enumerate() {
        let level = ctl.decide(i as u64);
        let latency = if level == DegradationLevel::LastGood {
            ladder.reproject_latency
        } else {
            c * load * ladder.shed[level.index()]
        };
        chosen.push(if level == DegradationLevel::LastGood {
            0
        } else {
            planes[level.index()][i]
        });
        ctl.observe(i as u64, latency);
    }
    (chosen, ctl)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fault replay with the same seed is bit-identical across worker
    /// counts {1, 2, 7}: the injector is a pure function of (seed, index),
    /// so fanning frame evaluation out over any pool must reproduce the
    /// serial stream exactly.
    #[test]
    fn fault_replay_bit_identical_across_worker_counts(seed in 0u64..u64::MAX) {
        let injector = scenario::full_stack(seed).expect("preset scenario is valid");
        let indices: Vec<u64> = (0..FRAMES).collect();
        let serial: Vec<FrameFaults> = indices.iter().map(|&i| injector.frame(i)).collect();
        for workers in [1usize, 2, 7] {
            let par = Parallelism::new(workers);
            let parallel = par.map(&indices, |&i| injector.frame(i));
            prop_assert!(parallel == serial, "divergence at {} workers", workers);
        }
    }

    /// Two injectors with the same seed and specs agree on every frame;
    /// different seeds must diverge somewhere in the run.
    #[test]
    fn same_seed_replays_different_seed_diverges(seed in 0u64..u64::MAX) {
        let a = scenario::gpu_slowdown(seed).expect("valid");
        let b = scenario::gpu_slowdown(seed).expect("valid");
        prop_assert!((0..FRAMES).all(|i| a.frame(i) == b.frame(i)));
        let c = scenario::gpu_slowdown(seed.wrapping_add(1)).expect("valid");
        prop_assert!((0..4 * FRAMES).any(|i| a.frame(i) != c.frame(i)));
    }

    /// Walking the ladder never raises any frame's plane count: each level
    /// plans no more planes than the one above it, for every frame of the
    /// clip and any valid trim/floor parameters.
    #[test]
    fn deeper_ladder_levels_never_raise_planes(
        trim_alpha_scale in 0.2f64..0.9,
        floor_theta_scale in 1.2f64..4.0,
    ) {
        let ladder = DegradationLadder {
            trim_alpha_scale,
            floor_theta_scale,
            ..DegradationLadder::default()
        };
        let full = planes_per_frame(DegradationLevel::Full, &ladder);
        let trim = planes_per_frame(DegradationLevel::TrimPeriphery, &ladder);
        let floor = planes_per_frame(DegradationLevel::FloorBeta, &ladder);
        for i in 0..full.len() {
            prop_assert!(trim[i] <= full[i], "frame {}: trim {} > full {}", i, trim[i], full[i]);
            prop_assert!(floor[i] <= trim[i], "frame {}: floor {} > trim {}", i, floor[i], trim[i]);
        }
    }

    /// The controller is monotone in load: injecting strictly more load
    /// never raises the chosen plane count over the run, and the
    /// two-consecutive-overruns contract holds under both loads.
    #[test]
    fn more_load_never_raises_chosen_planes(
        cost_seed in 0u64..u64::MAX,
        load_lo in 0.6f64..3.0,
        load_delta in 0.05f64..2.0,
    ) {
        let ladder = DegradationLadder::default();
        let planes = [
            planes_per_frame(DegradationLevel::Full, &ladder),
            planes_per_frame(DegradationLevel::TrimPeriphery, &ladder),
            planes_per_frame(DegradationLevel::FloorBeta, &ladder),
            vec![0; FRAMES as usize], // LastGood computes nothing
        ];
        let mut rng = Rng::seeded(cost_seed);
        let cost: Vec<f64> = (0..FRAMES).map(|_| rng.uniform_in(0.015, 0.035)).collect();
        let (chosen_lo, ctl_lo) = simulate(load_lo, &cost, &planes);
        let (chosen_hi, ctl_hi) = simulate(load_lo + load_delta, &cost, &planes);
        let total_lo: u64 = chosen_lo.iter().map(|&p| u64::from(p)).sum();
        let total_hi: u64 = chosen_hi.iter().map(|&p| u64::from(p)).sum();
        prop_assert!(
            total_hi <= total_lo,
            "load {} chose {} planes, heavier load {} chose {}",
            load_lo, total_lo, load_lo + load_delta, total_hi
        );
        prop_assert!(ctl_lo.max_overruns_without_stepdown() <= 1);
        prop_assert!(ctl_hi.max_overruns_without_stepdown() <= 1);
    }
}
