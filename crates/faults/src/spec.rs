//! The fault taxonomy: what can go wrong, where, and how hard.
//!
//! Each [`FaultSpec`] describes one fault process as a *windowed burst*:
//! time is divided into windows of [`burst_frames`](FaultSpec::burst_frames)
//! consecutive frames, and each window is independently faulted with
//! [`window_probability`](FaultSpec::window_probability). Real failures —
//! blinks, thermal throttling, memory-bus contention — arrive in bursts,
//! not as i.i.d. per-frame coin flips, and the windowed form is what makes
//! replay trivially order-independent (see [`crate::injector`]).

/// The kinds of fault the harness can inject, spanning every layer of the
/// simulated stack. The full fault → layer → response table lives in
/// `DESIGN.md` ("Graceful degradation & fault model").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Eye tracker loses the pupil (blink, IR washout): gaze reads `Lost`.
    /// Layer: `sensors::eyetrack`.
    GazeDropout,
    /// Eye-tracker inference runs long; `magnitude` is the extra latency in
    /// seconds added to the eye-tracking stage.
    GazeLatencySpike,
    /// VIO diverges (feature-poor scene): pose reads `Lost`.
    /// Layer: `sensors::pose`.
    PoseDropout,
    /// IMU noise burst (vibration, magnetic disturbance): the pose estimate
    /// jitters. `magnitude` is the per-axis jitter sigma in **degrees**.
    /// Layer: `sensors::imu`.
    ImuNoiseBurst,
    /// SM slowdown (thermal throttling / co-runner): the effective GPU
    /// clock is multiplied by `magnitude` ∈ (0, 1). Layer: `gpusim`.
    SmSlowdown,
    /// DRAM contention from other SoC clients: sustained DRAM bandwidth is
    /// multiplied by `magnitude` ∈ (0, 1). Layer: `gpusim`.
    DramContention,
    /// A perception stage overruns (scheduling hiccup): `magnitude` seconds
    /// are added to the pose stage. Layer: `pipeline`.
    StageOverrun,
    /// The device dies outright (power trip, thermal shutdown, fabric
    /// fault): every faulted window reads dead, and the fleet layer latches
    /// the first such window into a permanent loss — hosted sessions must
    /// migrate. `magnitude` is ignored. Layer: `serve::fleet`.
    DeviceKill,
}

impl FaultKind {
    /// All kinds, in taxonomy order.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::GazeDropout,
        FaultKind::GazeLatencySpike,
        FaultKind::PoseDropout,
        FaultKind::ImuNoiseBurst,
        FaultKind::SmSlowdown,
        FaultKind::DramContention,
        FaultKind::StageOverrun,
        FaultKind::DeviceKill,
    ];

    /// Display name used in reports and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::GazeDropout => "gaze-dropout",
            FaultKind::GazeLatencySpike => "gaze-latency-spike",
            FaultKind::PoseDropout => "pose-dropout",
            FaultKind::ImuNoiseBurst => "imu-noise-burst",
            FaultKind::SmSlowdown => "sm-slowdown",
            FaultKind::DramContention => "dram-contention",
            FaultKind::StageOverrun => "stage-overrun",
            FaultKind::DeviceKill => "device-kill",
        }
    }

    /// Stream-separation salt: each kind draws from its own deterministic
    /// RNG stream so adding one fault never reshuffles another's bursts.
    pub(crate) fn salt(self) -> u64 {
        match self {
            FaultKind::GazeDropout => 0x6A5E_D801,
            FaultKind::GazeLatencySpike => 0x6A5E_D802,
            FaultKind::PoseDropout => 0x705E_D803,
            FaultKind::ImuNoiseBurst => 0x1400_D804,
            FaultKind::SmSlowdown => 0x53D0_D805,
            FaultKind::DramContention => 0xD3A0_D806,
            FaultKind::StageOverrun => 0x57A6_D807,
            FaultKind::DeviceKill => 0xDEAD_D808,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One fault process: a kind plus its burst statistics and magnitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// What is injected.
    pub kind: FaultKind,
    /// Probability that any given window is faulted, in `[0, 1]`.
    pub window_probability: f64,
    /// Window length in frames (every frame of a faulted window is
    /// affected); must be ≥ 1.
    pub burst_frames: u64,
    /// Kind-specific severity: a latency in seconds
    /// ([`GazeLatencySpike`](FaultKind::GazeLatencySpike) /
    /// [`StageOverrun`](FaultKind::StageOverrun)), a derating scale in
    /// `(0, 1)` ([`SmSlowdown`](FaultKind::SmSlowdown) /
    /// [`DramContention`](FaultKind::DramContention)), a jitter sigma in
    /// degrees ([`ImuNoiseBurst`](FaultKind::ImuNoiseBurst)), or ignored
    /// (the dropouts).
    pub magnitude: f64,
}

impl FaultSpec {
    /// Creates a spec.
    pub fn new(kind: FaultKind, window_probability: f64, burst_frames: u64, magnitude: f64) -> Self {
        FaultSpec { kind, window_probability, burst_frames, magnitude }
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.window_probability) {
            return Err(format!("{}: window probability must be in [0, 1]", self.kind));
        }
        if self.burst_frames == 0 {
            return Err(format!("{}: burst must be at least one frame", self.kind));
        }
        let magnitude_ok = match self.kind {
            FaultKind::GazeDropout | FaultKind::PoseDropout | FaultKind::DeviceKill => true,
            FaultKind::GazeLatencySpike | FaultKind::StageOverrun => {
                self.magnitude >= 0.0 && self.magnitude.is_finite()
            }
            FaultKind::ImuNoiseBurst => self.magnitude >= 0.0 && self.magnitude.is_finite(),
            FaultKind::SmSlowdown | FaultKind::DramContention => {
                self.magnitude > 0.0 && self.magnitude < 1.0
            }
        };
        if !magnitude_ok {
            return Err(format!("{}: magnitude {} out of range", self.kind, self.magnitude));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn salts_are_distinct() {
        for (i, a) in FaultKind::ALL.iter().enumerate() {
            for b in &FaultKind::ALL[i + 1..] {
                assert_ne!(a.salt(), b.salt(), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn validation_checks_kind_specific_ranges() {
        assert!(FaultSpec::new(FaultKind::GazeDropout, 0.3, 5, 0.0).validate().is_ok());
        assert!(FaultSpec::new(FaultKind::SmSlowdown, 0.3, 5, 0.5).validate().is_ok());
        // Slowdown scale of 1 (no-op) or more is a spec error.
        assert!(FaultSpec::new(FaultKind::SmSlowdown, 0.3, 5, 1.0).validate().is_err());
        assert!(FaultSpec::new(FaultKind::DramContention, 0.3, 5, 0.0).validate().is_err());
        assert!(FaultSpec::new(FaultKind::StageOverrun, 0.3, 5, -0.1).validate().is_err());
        assert!(FaultSpec::new(FaultKind::GazeDropout, 1.5, 5, 0.0).validate().is_err());
        assert!(FaultSpec::new(FaultKind::GazeDropout, 0.5, 0, 0.0).validate().is_err());
    }

    #[test]
    fn names_cover_every_kind() {
        for kind in FaultKind::ALL {
            assert!(!kind.name().is_empty());
            assert_eq!(kind.to_string(), kind.name());
        }
    }
}
