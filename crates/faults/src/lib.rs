//! Deterministic fault injection for the simulated HoloAR stack.
//!
//! Papers measure the happy path; production AR runtimes live on the sad
//! one. This crate perturbs every layer of the reproduction — gaze-tracker
//! dropouts and latency spikes (`sensors::eyetrack`), VIO divergence and
//! IMU noise bursts (`sensors::pose`/`imu`), SM slowdown and DRAM
//! contention (`gpusim`), and pipeline stage overruns — so the
//! deadline-aware degradation controller in `holoar_core::degrade` has
//! something real to react to.
//!
//! Two properties are load-bearing:
//!
//! * **Determinism** — [`FaultInjector::frame`] is a pure function of
//!   `(seed, frame index)`; every fault process draws from its own salted
//!   RNG stream keyed by the frame's *burst window*, never from sequential
//!   state. Runs replay bit-identically across processes and worker
//!   counts.
//! * **Burstiness** — faults arrive as whole windows of consecutive frames
//!   ([`FaultSpec::burst_frames`]), matching how blinks, thermal
//!   throttling and bus contention behave, and exercising the controller's
//!   hysteresis instead of its single-frame reflexes.
//!
//! # Examples
//!
//! Drive a degraded frame end to end: resolve faults, derate the GPU, and
//! degrade the sensor bundle:
//!
//! ```
//! use holoar_core::SensorSample;
//! use holoar_faults::{scenario, FaultInjector};
//!
//! let injector = scenario::full_stack(7).unwrap();
//! let device = scenario::accelerated_device();
//! let faults = injector.frame(12);
//! let derated = faults.derate_device(&device);
//! assert!(derated.validate().is_ok());
//! let degraded = faults.degrade_sensors(&SensorSample::all_lost());
//! // Faults only ever remove information — a lost sensor stays lost.
//! assert!(degraded.pose.estimate().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod injector;
pub mod scenario;
pub mod spec;

pub use injector::{FaultInjector, FrameFaults};
pub use spec::{FaultKind, FaultSpec};
