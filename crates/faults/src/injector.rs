//! The deterministic injector: `(seed, frame index) → faults`, with no
//! mutable state.
//!
//! [`FaultInjector::frame`] is a *pure function* of the seed and the frame
//! index: for every spec, the frame's window index seeds a fresh
//! [`Rng`] stream (per-kind salted), which decides
//! whether the whole window is faulted. Nothing is sampled sequentially
//! across frames, so evaluating frames in any order — or concurrently on
//! any number of workers — yields bit-identical faults. That is the
//! property the replay tests pin at worker counts {1, 2, 7}.

use crate::spec::{FaultKind, FaultSpec};
use holoar_core::sensor_input::{GazeInput, PoseInput, SensorSample};
use holoar_gpusim::DeviceConfig;
use holoar_pipeline::FrameLatencies;
use holoar_sensors::angles::deg;
use holoar_sensors::rng::Rng;

/// The resolved faults affecting one frame. Obtained from
/// [`FaultInjector::frame`]; apply with the `degrade_*`/`derate_*` helpers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameFaults {
    /// Gaze reads `Lost` this frame.
    pub gaze_dropout: bool,
    /// Extra eye-tracking latency, seconds.
    pub gaze_latency_spike: f64,
    /// Pose reads `Lost` this frame.
    pub pose_dropout: bool,
    /// IMU-noise jitter applied to the pose orientation, radians
    /// (azimuth, elevation).
    pub pose_jitter: (f64, f64),
    /// Effective GPU clock scale in `(0, 1]` (1 = nominal).
    pub clock_scale: f64,
    /// Effective DRAM bandwidth scale in `(0, 1]` (1 = nominal).
    pub dram_scale: f64,
    /// Extra pose-stage latency, seconds.
    pub stage_overrun: f64,
    /// The hosting device reads dead this frame (the fleet layer latches
    /// the first dead frame into a permanent loss).
    pub device_dead: bool,
}

impl Default for FrameFaults {
    /// A nominal (fault-free) frame.
    fn default() -> Self {
        FrameFaults {
            gaze_dropout: false,
            gaze_latency_spike: 0.0,
            pose_dropout: false,
            pose_jitter: (0.0, 0.0),
            clock_scale: 1.0,
            dram_scale: 1.0,
            stage_overrun: 0.0,
            device_dead: false,
        }
    }
}

impl FrameFaults {
    /// Whether this frame is completely fault-free.
    pub fn is_nominal(&self) -> bool {
        *self == FrameFaults::default()
    }

    /// Whether the GPU is derated this frame.
    pub fn gpu_faulted(&self) -> bool {
        self.clock_scale < 1.0 || self.dram_scale < 1.0
    }

    /// Applies the sensor-layer faults to a sensor bundle: dropouts turn
    /// inputs to `Lost`, IMU jitter perturbs the pose orientation, and the
    /// latency spike is charged to the gaze estimate.
    pub fn degrade_sensors(&self, sample: &SensorSample) -> SensorSample {
        let pose = if self.pose_dropout {
            PoseInput::Lost
        } else {
            match sample.pose {
                PoseInput::Tracked(mut p) => {
                    p.orientation = p.orientation.offset(self.pose_jitter.0, self.pose_jitter.1);
                    PoseInput::Tracked(p)
                }
                PoseInput::Lost => PoseInput::Lost,
            }
        };
        let gaze = if self.gaze_dropout {
            GazeInput::Lost
        } else {
            match sample.gaze {
                GazeInput::Tracked(mut g) => {
                    g.latency += self.gaze_latency_spike;
                    GazeInput::Tracked(g)
                }
                GazeInput::Lost => GazeInput::Lost,
            }
        };
        SensorSample { pose, gaze }
    }

    /// Applies the GPU-layer faults: a derated copy of the device
    /// configuration (see [`DeviceConfig::with_slowdown`]).
    pub fn derate_device(&self, config: &DeviceConfig) -> DeviceConfig {
        config.with_slowdown(self.clock_scale, self.dram_scale)
    }

    /// Applies the pipeline-layer faults to measured stage latencies: the
    /// stage overrun lands on the pose stage, the gaze spike on the eye
    /// stage.
    pub fn perturb_latencies(&self, mut lat: FrameLatencies) -> FrameLatencies {
        lat.pose += self.stage_overrun;
        lat.eye += self.gaze_latency_spike;
        lat
    }
}

/// The deterministic fault injector: a seed plus a set of fault processes.
///
/// # Examples
///
/// Same seed, same frame ⇒ bit-identical faults, in any evaluation order:
///
/// ```
/// use holoar_faults::{FaultInjector, FaultKind, FaultSpec};
///
/// let specs = vec![FaultSpec::new(FaultKind::SmSlowdown, 0.5, 8, 0.5)];
/// let a = FaultInjector::new(42, specs.clone()).unwrap();
/// let b = FaultInjector::new(42, specs).unwrap();
/// let forward: Vec<_> = (0..50).map(|i| a.frame(i)).collect();
/// let backward: Vec<_> = (0..50).rev().map(|i| b.frame(i)).collect();
/// assert!(forward.iter().eq(backward.iter().rev()));
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
    specs: Vec<FaultSpec>,
}

impl FaultInjector {
    /// Creates an injector after validating every spec.
    ///
    /// # Errors
    ///
    /// Returns the first spec's validation error message.
    pub fn new(seed: u64, specs: Vec<FaultSpec>) -> Result<Self, String> {
        for spec in &specs {
            spec.validate()?;
        }
        Ok(FaultInjector { seed, specs })
    }

    /// The injector's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured fault processes.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Resolves the faults affecting frame `index` — a pure function of
    /// `(seed, index)`.
    pub fn frame(&self, index: u64) -> FrameFaults {
        let _span = holoar_telemetry::span_cat("faults.frame", "faults");
        let mut faults = FrameFaults::default();
        for (slot, spec) in self.specs.iter().enumerate() {
            let window = index / spec.burst_frames;
            // One RNG stream per (spec slot, kind, window): the window
            // decision never depends on other frames, other specs, or
            // evaluation order.
            let stream = self
                .seed
                .wrapping_add(spec.kind.salt())
                .wrapping_add((slot as u64).wrapping_mul(0xA076_1D64_78BD_642F))
                .wrapping_add(window.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = Rng::seeded(stream);
            if !rng.chance(spec.window_probability) {
                continue;
            }
            holoar_telemetry::counter_add("faults.injected", 1);
            match spec.kind {
                FaultKind::GazeDropout => faults.gaze_dropout = true,
                FaultKind::GazeLatencySpike => faults.gaze_latency_spike += spec.magnitude,
                FaultKind::PoseDropout => faults.pose_dropout = true,
                FaultKind::ImuNoiseBurst => {
                    // Per-frame jitter inside the burst, from a per-frame
                    // stream so it stays order-independent.
                    let mut jrng = Rng::seeded(
                        stream ^ index.wrapping_mul(0xD6E8_FEB8_6659_FD93).wrapping_add(1),
                    );
                    let sigma = deg(spec.magnitude);
                    faults.pose_jitter.0 += jrng.normal_with(0.0, sigma);
                    faults.pose_jitter.1 += jrng.normal_with(0.0, sigma);
                }
                FaultKind::SmSlowdown => {
                    faults.clock_scale = faults.clock_scale.min(spec.magnitude);
                }
                FaultKind::DramContention => {
                    faults.dram_scale = faults.dram_scale.min(spec.magnitude);
                }
                FaultKind::StageOverrun => faults.stage_overrun += spec.magnitude,
                FaultKind::DeviceKill => faults.device_dead = true,
            }
        }
        faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holoar_sensors::angles::AngularPoint;
    use holoar_sensors::pose::PoseEstimate;

    fn spec(kind: FaultKind, prob: f64, burst: u64, mag: f64) -> FaultSpec {
        FaultSpec::new(kind, prob, burst, mag)
    }

    fn tracked_sample() -> SensorSample {
        let pose = PoseEstimate { orientation: AngularPoint::CENTER, latency: 0.01375 };
        SensorSample::tracked(pose, AngularPoint::CENTER)
    }

    #[test]
    fn zero_probability_injects_nothing() {
        let inj = FaultInjector::new(
            7,
            FaultKind::ALL.iter().map(|&k| spec(k, 0.0, 4, 0.5)).collect(),
        )
        .unwrap();
        assert!((0..200).all(|i| inj.frame(i).is_nominal()));
    }

    #[test]
    fn certain_faults_cover_whole_windows() {
        let inj = FaultInjector::new(7, vec![spec(FaultKind::GazeDropout, 1.0, 5, 0.0)]).unwrap();
        assert!((0..50).all(|i| inj.frame(i).gaze_dropout));
    }

    #[test]
    fn bursts_respect_window_boundaries() {
        let inj = FaultInjector::new(11, vec![spec(FaultKind::SmSlowdown, 0.5, 8, 0.5)]).unwrap();
        for window in 0..40 {
            let first = inj.frame(window * 8).gpu_faulted();
            for offset in 1..8 {
                assert_eq!(
                    inj.frame(window * 8 + offset).gpu_faulted(),
                    first,
                    "window {window} must fault uniformly"
                );
            }
        }
        // Mid-probability faulting actually toggles across windows.
        let states: Vec<bool> = (0..40).map(|w| inj.frame(w * 8).gpu_faulted()).collect();
        assert!(states.iter().any(|&s| s) && states.iter().any(|&s| !s));
    }

    #[test]
    fn injector_is_a_pure_function_of_seed_and_index() {
        let specs: Vec<FaultSpec> = vec![
            spec(FaultKind::GazeDropout, 0.4, 3, 0.0),
            spec(FaultKind::SmSlowdown, 0.4, 6, 0.5),
            spec(FaultKind::ImuNoiseBurst, 0.4, 4, 2.0),
        ];
        let a = FaultInjector::new(99, specs.clone()).unwrap();
        let b = FaultInjector::new(99, specs.clone()).unwrap();
        for i in 0..300 {
            assert_eq!(a.frame(i), b.frame(i), "frame {i}");
        }
        let c = FaultInjector::new(100, specs).unwrap();
        assert!((0..300).any(|i| a.frame(i) != c.frame(i)), "seed must matter");
    }

    #[test]
    fn sensor_degradation_applies_dropouts_jitter_and_spikes() {
        let sample = tracked_sample();
        let faults = FrameFaults {
            gaze_dropout: true,
            stage_overrun: 0.008,
            ..FrameFaults::default()
        };
        let degraded = faults.degrade_sensors(&sample);
        assert_eq!(degraded.gaze, GazeInput::Lost);
        assert!(degraded.pose.estimate().is_some());

        let faults = FrameFaults {
            pose_dropout: true,
            gaze_latency_spike: 0.003,
            ..FrameFaults::default()
        };
        let degraded = faults.degrade_sensors(&sample);
        assert_eq!(degraded.pose, PoseInput::Lost);
        let gaze = degraded.gaze.estimate().unwrap();
        assert!((gaze.latency - (0.0044 + 0.003)).abs() < 1e-12);

        let faults = FrameFaults { pose_jitter: (0.01, -0.02), ..FrameFaults::default() };
        let p = faults.degrade_sensors(&sample).pose.estimate().unwrap();
        assert!((p.orientation.azimuth - 0.01).abs() < 1e-12);
        assert!((p.orientation.elevation + 0.02).abs() < 1e-12);
    }

    #[test]
    fn device_derating_and_latency_perturbation_apply() {
        let faults =
            FrameFaults { clock_scale: 0.5, dram_scale: 0.8, stage_overrun: 0.01, ..FrameFaults::default() };
        let nominal = DeviceConfig::default();
        let derated = faults.derate_device(&nominal);
        assert!((derated.clock_hz - nominal.clock_hz * 0.5).abs() < 1.0);
        let lat = faults.perturb_latencies(FrameLatencies {
            pose: 0.013,
            eye: 0.004,
            scene: 0.0,
            hologram: 0.02,
        });
        assert!((lat.pose - 0.023).abs() < 1e-12);
        assert!((lat.eye - 0.004).abs() < 1e-12);
    }

    #[test]
    fn invalid_specs_are_rejected_at_construction() {
        assert!(FaultInjector::new(1, vec![spec(FaultKind::SmSlowdown, 0.5, 4, 1.5)]).is_err());
    }
}
