//! Preset fault scenarios and the accelerated device they run against.
//!
//! The seed Xavier model computes a 16-plane hologram in ≈ 341.7 ms — an
//! order of magnitude over the 33 ms stage deadline even before any fault
//! is injected, so degradation against *that* device is trivially saturated
//! and uninformative. The robustness experiments therefore run on
//! [`accelerated_device`]: the same simulator with `kernel_efficiency`
//! raised 10×, modelling an accelerator-class edge GPU (or equivalently a
//! HORN-8-style offload) on which the Inter-Intra-Holo pipeline nominally
//! *meets* its deadline — leaving injected slowdowns, not the baseline
//! cost, as the thing the controller must absorb.

use crate::injector::FaultInjector;
use crate::spec::{FaultKind, FaultSpec};
use holoar_gpusim::{DeviceConfig, DeviceSpec};

/// The spec of an accelerator-class edge device: the Xavier model with
/// `kernel_efficiency` raised from 0.076 to 0.76 (10×), so one 512² plane
/// costs ≈ 2.1 ms and a typical Inter-Intra-Holo frame (~12 planes) lands
/// around 26 ms — inside the 33 ms deadline with modest headroom.
pub fn accelerated_spec() -> DeviceSpec {
    DeviceSpec::new().kernel_efficiency(0.76)
}

/// The accelerator-class device configuration derived from
/// [`accelerated_spec`].
pub fn accelerated_device() -> DeviceConfig {
    accelerated_spec().config()
}

/// GPU-contention scenario: windows of 2× SM slowdown plus occasional DRAM
/// contention. This is the acceptance scenario for the degradation
/// controller (`repro faults`).
///
/// # Errors
///
/// Never fails for the preset parameters; propagates spec validation.
pub fn gpu_slowdown(seed: u64) -> Result<FaultInjector, String> {
    FaultInjector::new(
        seed,
        vec![
            FaultSpec::new(FaultKind::SmSlowdown, 0.40, 12, 0.5),
            FaultSpec::new(FaultKind::DramContention, 0.25, 8, 0.6),
        ],
    )
}

/// Sensor-storm scenario: gaze dropouts and latency spikes, pose dropouts
/// and IMU noise bursts — exercising the planner's sensor-loss fallbacks
/// under the controller.
///
/// # Errors
///
/// Never fails for the preset parameters; propagates spec validation.
pub fn sensor_storm(seed: u64) -> Result<FaultInjector, String> {
    FaultInjector::new(
        seed,
        vec![
            FaultSpec::new(FaultKind::GazeDropout, 0.30, 6, 0.0),
            FaultSpec::new(FaultKind::GazeLatencySpike, 0.25, 4, 0.004),
            FaultSpec::new(FaultKind::PoseDropout, 0.15, 5, 0.0),
            FaultSpec::new(FaultKind::ImuNoiseBurst, 0.30, 8, 2.0),
        ],
    )
}

/// Everything at once: the GPU contention of [`gpu_slowdown`], the sensor
/// faults of [`sensor_storm`], and pipeline stage overruns.
///
/// # Errors
///
/// Never fails for the preset parameters; propagates spec validation.
pub fn full_stack(seed: u64) -> Result<FaultInjector, String> {
    let mut specs = gpu_slowdown(seed)?.specs().to_vec();
    specs.extend_from_slice(sensor_storm(seed)?.specs());
    specs.push(FaultSpec::new(FaultKind::StageOverrun, 0.20, 5, 0.008));
    FaultInjector::new(seed, specs)
}

/// Per-session fault scenario for the multi-session serving layer: mild GPU
/// interference windows plus occasional stage overruns, with the master
/// seed salted per session so co-tenant sessions fault *independently* —
/// the serving scheduler must absorb one session's bad window without
/// degrading its neighbours.
///
/// # Errors
///
/// Never fails for the preset parameters; propagates spec validation.
pub fn serve_session(seed: u64, session: u32) -> Result<FaultInjector, String> {
    // SplitMix64-style salt: distinct sessions get decorrelated streams
    // while (seed, session) stays fully deterministic.
    let salted = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(session).wrapping_add(1).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    FaultInjector::new(
        salted,
        vec![
            FaultSpec::new(FaultKind::SmSlowdown, 0.12, 6, 0.6),
            FaultSpec::new(FaultKind::StageOverrun, 0.10, 4, 0.003),
        ],
    )
}

/// Per-device fault scenario for the fleet layer: windows of SM slowdown
/// (thermal throttling) and DRAM contention (co-located SoC clients), with
/// the master seed salted per device so fleet members fault independently —
/// the placement layer must route around one device's bad window without
/// the others flinching.
///
/// # Errors
///
/// Never fails for the preset parameters; propagates spec validation.
pub fn fleet_device(seed: u64, device: u32) -> Result<FaultInjector, String> {
    // Same SplitMix64-style salting idea as `serve_session`, with distinct
    // multipliers so device streams never collide with session streams.
    let salted = seed
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(u64::from(device).wrapping_add(1).wrapping_mul(0x94D0_49BB_1331_11EB));
    FaultInjector::new(
        salted,
        vec![
            FaultSpec::new(FaultKind::SmSlowdown, 0.06, 8, 0.78),
            FaultSpec::new(FaultKind::DramContention, 0.05, 6, 0.8),
        ],
    )
}

/// The [`fleet_device`] interference plus a rare [`FaultKind::DeviceKill`]
/// process: each 32-frame window kills the device with
/// `kill_probability`, and the fleet latches the first dead window into a
/// permanent loss. This is the scenario the migration property tests run
/// under.
///
/// # Errors
///
/// Propagates spec validation (`kill_probability` must be in `[0, 1]`).
pub fn fleet_device_with_kill(
    seed: u64,
    device: u32,
    kill_probability: f64,
) -> Result<FaultInjector, String> {
    let base = fleet_device(seed, device)?;
    let mut specs = base.specs().to_vec();
    specs.push(FaultSpec::new(FaultKind::DeviceKill, kill_probability, 32, 0.0));
    FaultInjector::new(base.seed(), specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_cover_their_layers() {
        let gpu = gpu_slowdown(1).unwrap();
        assert!(gpu.specs().iter().all(|s| matches!(
            s.kind,
            FaultKind::SmSlowdown | FaultKind::DramContention
        )));
        let storm = sensor_storm(1).unwrap();
        assert!(storm.specs().iter().all(|s| !matches!(
            s.kind,
            FaultKind::SmSlowdown | FaultKind::DramContention | FaultKind::StageOverrun
        )));
        let all = full_stack(1).unwrap();
        assert_eq!(all.specs().len(), gpu.specs().len() + storm.specs().len() + 1);
    }

    #[test]
    fn serve_sessions_fault_independently_but_deterministically() {
        let a = serve_session(42, 0).unwrap();
        let b = serve_session(42, 1).unwrap();
        let a2 = serve_session(42, 0).unwrap();
        let frames = 200u64;
        let pattern = |inj: &FaultInjector| -> Vec<bool> {
            (0..frames).map(|i| !inj.frame(i).is_nominal()).collect()
        };
        assert_eq!(pattern(&a), pattern(&a2), "same (seed, session) must replay");
        assert_ne!(pattern(&a), pattern(&b), "sessions must be decorrelated");
        let faulted = pattern(&a).iter().filter(|&&f| f).count();
        assert!(faulted > 5, "scenario too quiet: {faulted}/{frames}");
        assert!(faulted < frames as usize / 2, "scenario too loud: {faulted}/{frames}");
    }

    #[test]
    fn accelerated_device_is_valid_and_10x_faster() {
        let fast = accelerated_device();
        assert!(fast.validate().is_ok());
        let ratio = fast.kernel_efficiency / DeviceConfig::default().kernel_efficiency;
        assert!((ratio - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fleet_devices_fault_independently_and_kills_latch_in_windows() {
        let a = fleet_device(42, 0).unwrap();
        let b = fleet_device(42, 1).unwrap();
        let pattern = |inj: &FaultInjector| -> Vec<bool> {
            (0..240u64).map(|i| inj.frame(i).gpu_faulted()).collect()
        };
        assert_eq!(pattern(&a), pattern(&fleet_device(42, 0).unwrap()));
        assert_ne!(pattern(&a), pattern(&b), "devices must be decorrelated");
        // No kill process in the base scenario.
        assert!((0..240u64).all(|i| !a.frame(i).device_dead));

        // With a certain kill, every window reads dead; with zero, none do.
        let dead = fleet_device_with_kill(42, 0, 1.0).unwrap();
        assert!((0..64u64).all(|i| dead.frame(i).device_dead));
        let alive = fleet_device_with_kill(42, 0, 0.0).unwrap();
        assert!((0..64u64).all(|i| !alive.frame(i).device_dead));
    }

    #[test]
    fn gpu_scenario_actually_slows_frames_down() {
        let inj = gpu_slowdown(42).unwrap();
        let faulted = (0..150).filter(|&i| inj.frame(i).gpu_faulted()).count();
        assert!(faulted > 20, "expected a meaningful faulted fraction, got {faulted}/150");
        assert!(faulted < 150, "faults must be bursts, not permanent");
    }
}
