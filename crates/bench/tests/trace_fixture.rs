//! Golden-fixture validation for the telemetry exporters.
//!
//! `fixtures/inter_intra.trace.json` and `fixtures/inter_intra.metrics.json`
//! were recorded with:
//!
//! ```text
//! repro inter-intra --frames 30 --seed 42 \
//!     --trace-out  crates/bench/fixtures/inter_intra.trace.json \
//!     --metrics-json crates/bench/fixtures/inter_intra.metrics.json
//! ```
//!
//! Span durations and counts are machine-dependent, so these tests validate
//! *structure*, not bytes: the trace must be parseable Chrome-trace JSON
//! whose span taxonomy covers every instrumented layer (fft, optics, core,
//! pipeline) plus the bridged gpusim track, and the metrics registry must
//! carry the plan-cache counters and latency histograms the ISSUE promises.

use holoar_telemetry::jsonlite::{self, Json};
use std::collections::BTreeSet;

fn fixture(name: &str) -> Json {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {path}: {e}"));
    jsonlite::parse(&text).unwrap_or_else(|e| panic!("fixture {path} is not valid JSON: {e:?}"))
}

#[test]
fn trace_fixture_covers_every_instrumented_layer() {
    let doc = fixture("inter_intra.trace.json");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("chrome trace has a traceEvents array");
    assert!(!events.is_empty(), "trace fixture has no events");

    let mut cats = BTreeSet::new();
    let mut names = BTreeSet::new();
    let mut complete = 0usize;
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("event phase");
        match ph {
            "X" => {
                complete += 1;
                let name = e.get("name").and_then(Json::as_str).expect("span name");
                let cat = e.get("cat").and_then(Json::as_str).expect("span category");
                let ts = e.get("ts").and_then(Json::as_f64).expect("span ts");
                let dur = e.get("dur").and_then(Json::as_f64).expect("span dur");
                assert!(ts >= 0.0 && dur >= 0.0, "{name}: ts/dur must be non-negative");
                cats.insert(cat.to_string());
                names.insert(name.to_string());
            }
            "M" => {} // metadata (process/thread names)
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(complete > 0, "no complete ('X') span events in fixture");

    for cat in ["fft", "optics", "core", "pipeline", "gpu"] {
        assert!(cats.contains(cat), "trace lacks category {cat:?}; has {cats:?}");
    }
    for name in [
        "fft.fft2d.forward",
        "optics.propagate_batch",
        "core.planner.plan_frame",
        "core.executor.execute_plan",
        "pipeline.run_pipelined",
    ] {
        assert!(names.contains(name), "trace lacks span {name:?}");
    }
    // The bridged gpusim kernels appear as gpu.* events on the synthetic
    // external track.
    assert!(
        names.iter().any(|n| n.starts_with("gpu.")),
        "trace lacks bridged gpu.* kernel events; has {names:?}"
    );
}

#[test]
fn metrics_fixture_carries_cache_counters_and_latency_histograms() {
    let doc = fixture("inter_intra.metrics.json");
    assert_eq!(doc.get("mode").and_then(Json::as_str), Some("full"));

    let counters = doc.get("counters").and_then(Json::as_object).expect("counters object");
    let counter_names: BTreeSet<&str> = counters.iter().map(|(k, _)| k.as_str()).collect();
    assert!(
        counter_names.contains("fft.plan_cache.miss"),
        "metrics lack FFT plan-cache miss counter; have {counter_names:?}"
    );
    assert!(
        counter_names.iter().any(|n| n.starts_with("fft.plan_cache")),
        "metrics lack FFT plan-cache counters"
    );
    assert!(counter_names.contains("gpusim.kernels.bridged"));

    let histograms =
        doc.get("histograms").and_then(Json::as_object).expect("histograms object");
    let histo_names: BTreeSet<&str> = histograms.iter().map(|(k, _)| k.as_str()).collect();
    // Per-stage latency histograms: the executor's simulated job latency
    // plus span-duration histograms for each instrumented stage.
    for h in ["core.executor.sim_latency_us", "core.executor.execute_plan", "pipeline.frame_eval"]
    {
        assert!(histo_names.contains(h), "metrics lack histogram {h:?}; have {histo_names:?}");
    }
    // Histogram invariant holds in the recorded artifact too: buckets sum
    // to the sample count.
    for (name, h) in histograms {
        let count = h.get("count").and_then(Json::as_f64).expect("histogram count");
        let buckets = h.get("buckets").and_then(Json::as_array).expect("histogram buckets");
        let sum: f64 = buckets
            .iter()
            .map(|b| b.get("count").and_then(Json::as_f64).expect("bucket count"))
            .sum();
        assert_eq!(sum, count, "histogram {name}: bucket sum != count");
    }
}
