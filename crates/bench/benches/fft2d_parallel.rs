//! Serial vs parallel 2-D FFT at hologram-scale grids (the tentpole of the
//! parallel execution engine). The parallel transform is bit-identical to
//! the serial one; this bench measures what that determinism costs and what
//! the fan-out buys at 256×256 and 512×512.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use holoar_fft::{Complex64, Fft2d, Parallelism};
use std::hint::black_box;

fn bench_fft2d_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft2d_parallel");
    group.sample_size(10);
    let pool = Parallelism::auto();
    for n in [256usize, 512] {
        let data: Vec<Complex64> = (0..n * n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
            .collect();
        let serial = Fft2d::new(n, n);
        let parallel = Fft2d::with_parallelism(n, n, pool.clone());
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                serial.forward(black_box(&mut buf));
                buf
            })
        });
        let label = format!("parallel_x{}", pool.workers());
        group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                parallel.forward(black_box(&mut buf));
                buf
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft2d_parallel);
criterion_main!(benches);
