//! Fig 4b's shape on the real math path: depthmap hologram cost versus
//! depth-plane count (the performance path measures the same sweep on the
//! GPU model; see the `gpusim` bench).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use holoar_optics::{algorithm1, ExecutionContext, OpticalConfig, VirtualObject};
use std::hint::black_box;

fn bench_plane_sweep(c: &mut Criterion) {
    let cfg = OpticalConfig::default();
    let ctx = ExecutionContext::serial();
    let depthmap = VirtualObject::Planet.render(64, 64, 0.006, 0.003);
    let mut group = c.benchmark_group("hologram_planes_64px");
    for planes in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(planes), &planes, |b, &p| {
            b.iter(|| algorithm1::depthmap_hologram(black_box(&depthmap), p, cfg, &ctx))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plane_sweep);
criterion_main!(benches);
