//! GPU-simulator benchmarks: per-kernel model evaluation cost and the
//! modeled Fig 4b plane sweep (reported via the measured *model* output, not
//! wall time — wall time here is the simulator's own overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use holoar_gpusim::hologram_kernels::{propagation_kernel, run_job, HologramJob, Step};
use holoar_gpusim::Device;
use std::hint::black_box;

fn bench_kernel_model(c: &mut Criterion) {
    let mut device = Device::xavier();
    let kernel = propagation_kernel(Step::Forward, 512 * 512);
    c.bench_function("gpusim/execute_one_kernel", |b| {
        b.iter(|| device.execute(black_box(&kernel)))
    });
}

fn bench_job_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpusim_job_planes");
    for planes in [2u32, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(planes), &planes, |b, &p| {
            let mut device = Device::xavier();
            b.iter(|| run_job(&mut device, black_box(&HologramJob::full(p))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel_model, bench_job_sweep);
criterion_main!(benches);
