//! End-to-end scheme evaluation: one (video, scheme) cell of Fig 7 per
//! iteration, exercising planner + executor + sensors together.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use holoar_core::{evaluation, Scheme};
use holoar_gpusim::Device;
use holoar_sensors::objectron::VideoCategory;
use std::hint::black_box;

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluate_video_20_frames");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |b, &s| {
                b.iter(|| {
                    let mut device = Device::xavier();
                    evaluation::evaluate_video(
                        &mut device,
                        black_box(VideoCategory::Shoe),
                        s,
                        20,
                        9,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
