//! Cost of an instrumentation point in each telemetry mode.
//!
//! The contract the workspace relies on: with telemetry **off** (the
//! default) a span site is a single relaxed atomic load — cheap enough to
//! leave in every hot path. This bench times a tight loop of span
//! open/close pairs per mode and, beyond reporting, *pins* the disabled
//! mode with a generous absolute bound so a regression that makes the
//! disabled path heavyweight fails loudly instead of silently taxing every
//! FFT row.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use holoar_telemetry::TelemetryMode;
use std::hint::black_box;

const SPANS_PER_ITER: usize = 1000;

fn spans_burst() -> usize {
    let mut n = 0;
    for _ in 0..SPANS_PER_ITER {
        let _span = holoar_telemetry::span_cat("bench.overhead.probe", "bench");
        n += 1;
    }
    black_box(n)
}

/// The histogram path now feeds a quantile sketch on every record; this
/// burst times that whole site (bucket increment + sketch key/increment)
/// so the sketch's cost stays visible in the bench report.
fn histogram_burst() -> usize {
    let mut n = 0usize;
    for i in 0..SPANS_PER_ITER {
        holoar_telemetry::histogram_record_us(
            "pipeline.sim_frame_latency_us",
            black_box(10.0 + (i % 97) as f64),
        );
        n += 1;
    }
    black_box(n)
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(20);
    for (mode, label) in [
        (TelemetryMode::Off, "off"),
        (TelemetryMode::Summary, "summary"),
        (TelemetryMode::Full, "full"),
    ] {
        group.bench_with_input(
            BenchmarkId::new("span_pair", label),
            &mode,
            |b, &mode| {
                holoar_telemetry::set_mode(mode);
                holoar_telemetry::reset();
                b.iter(spans_burst);
                holoar_telemetry::set_mode(TelemetryMode::Off);
                holoar_telemetry::reset();
            },
        );
    }
    for (mode, label) in [(TelemetryMode::Off, "off"), (TelemetryMode::Summary, "summary")] {
        group.bench_with_input(
            BenchmarkId::new("histogram_sketch", label),
            &mode,
            |b, &mode| {
                holoar_telemetry::set_mode(mode);
                holoar_telemetry::reset();
                b.iter(histogram_burst);
                holoar_telemetry::set_mode(TelemetryMode::Off);
                holoar_telemetry::reset();
            },
        );
    }
    group.finish();

    // Guard: disabled-mode spans must stay near-free. 200 ns per site is
    // ~100x the expected cost of the relaxed load on any host this runs on,
    // so the assert only trips on a real regression (e.g. someone taking a
    // lock or reading the clock before the mode check).
    holoar_telemetry::set_mode(TelemetryMode::Off);
    let rounds = 200;
    let start = holoar_telemetry::now_ns();
    for _ in 0..rounds {
        spans_burst();
    }
    let per_span_ns = holoar_telemetry::now_ns().saturating_sub(start) as f64
        / (rounds * SPANS_PER_ITER) as f64;
    println!("disabled-mode span cost: {per_span_ns:.1} ns/site");
    assert!(
        per_span_ns < 200.0,
        "disabled telemetry span costs {per_span_ns:.1} ns/site (budget 200 ns) — \
         the off-mode fast path has regressed"
    );
    assert_eq!(
        holoar_telemetry::span_count(),
        0,
        "disabled telemetry must not retain span records"
    );
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
