//! Serial vs parallel GSW synthesis across a 16-plane stack — the
//! whole-frame fan-out path (a parallel `ExecutionContext` →
//! `propagate_planes`). Output is bit-identical either way; the bench
//! measures the wall-clock win from propagating independent depth planes
//! concurrently.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use holoar_optics::{gsw, ExecutionContext, GswConfig, OpticalConfig, VirtualObject};
use std::hint::black_box;

const PLANES: usize = 16;

fn bench_gsw_parallel(c: &mut Criterion) {
    let cfg = OpticalConfig::default();
    // Two iterations keep a 512×512×16 sample affordable; the serial:parallel
    // ratio is iteration-count-independent.
    let gsw_cfg = GswConfig { iterations: 2, adaptivity: 1.0 };
    let serial_ctx = ExecutionContext::serial();
    let pooled_ctx = ExecutionContext::auto();
    let mut group = c.benchmark_group("gsw_parallel");
    group.sample_size(10);
    for n in [256usize, 512] {
        let depthmap = VirtualObject::Dice.render(n, n, 0.006, 0.002);
        let stack = depthmap.slice(PLANES, cfg);
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter(|| gsw::run(black_box(&stack), cfg, gsw_cfg, &serial_ctx))
        });
        let label = format!("parallel_x{}", pooled_ctx.parallelism().workers());
        group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
            b.iter(|| gsw::run(black_box(&stack), cfg, gsw_cfg, &pooled_ctx))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gsw_parallel);
criterion_main!(benches);
