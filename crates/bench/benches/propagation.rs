//! Angular-spectrum propagation benchmarks: the HP2DP/DP2HP kernel of the
//! quality path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use holoar_fft::Complex64;
use holoar_optics::{Field, OpticalConfig, Propagator};
use std::hint::black_box;

fn gaussian(n: usize) -> Field {
    let cfg = OpticalConfig::default();
    let mut f = Field::zeros(n, n, cfg);
    for r in 0..n {
        for c in 0..n {
            let dr = r as f64 - n as f64 / 2.0;
            let dc = c as f64 - n as f64 / 2.0;
            f.set(r, c, Complex64::new((-(dr * dr + dc * dc) / 40.0).exp(), 0.0));
        }
    }
    f
}

fn bench_propagate(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagate");
    for n in [64usize, 128, 256] {
        let field = gaussian(n);
        let mut prop = Propagator::new();
        prop.propagate(&field, 0.002); // warm the transfer-function cache
        group.bench_with_input(BenchmarkId::new("cached_tf", n), &n, |b, _| {
            b.iter(|| prop.propagate(black_box(&field), 0.002))
        });
    }
    group.finish();
}

fn bench_transfer_build(c: &mut Criterion) {
    // First-propagation cost including transfer-function construction.
    let field = gaussian(128);
    c.bench_function("propagate/cold_tf_128", |b| {
        b.iter(|| {
            let mut prop = Propagator::new();
            prop.propagate(black_box(&field), 0.0017)
        })
    });
}

criterion_group!(benches, bench_propagate, bench_transfer_build);
criterion_main!(benches);
