//! FFT substrate micro-benchmarks: the 2-D transforms every propagation
//! performs, across power-of-two (radix-2) and awkward (Bluestein) sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use holoar_fft::{Complex64, Fft2d, FftPlanner};
use std::hint::black_box;

fn bench_fft_1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_1d");
    for n in [256usize, 512, 480, 1024] {
        let plan = FftPlanner::new().plan(n);
        let signal: Vec<Complex64> =
            (0..n).map(|i| Complex64::new((i as f64).sin(), 0.0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut buf = signal.clone();
                plan.forward(black_box(&mut buf));
                buf
            })
        });
    }
    group.finish();
}

fn bench_fft_2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_2d");
    for n in [64usize, 128, 256] {
        let fft = Fft2d::new(n, n);
        let field: Vec<Complex64> =
            (0..n * n).map(|i| Complex64::new((i as f64 * 0.1).cos(), 0.0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut buf = field.clone();
                fft.forward(black_box(&mut buf));
                buf
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft_1d, bench_fft_2d);
criterion_main!(benches);
