//! GSW iteration cost: the paper profiles five iterations (§2.2.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use holoar_optics::{gsw, ExecutionContext, GswConfig, OpticalConfig, VirtualObject};
use std::hint::black_box;

fn bench_gsw(c: &mut Criterion) {
    let cfg = OpticalConfig::default();
    let ctx = ExecutionContext::serial();
    let depthmap = VirtualObject::Dice.render(48, 48, 0.006, 0.002);
    let stack = depthmap.slice(4, cfg);
    let mut group = c.benchmark_group("gsw_iterations_48px");
    group.sample_size(10);
    for iterations in [1usize, 3, 5] {
        group.bench_with_input(
            BenchmarkId::from_parameter(iterations),
            &iterations,
            |b, &iters| {
                b.iter(|| {
                    gsw::run(
                        black_box(&stack),
                        cfg,
                        GswConfig { iterations: iters, adaptivity: 1.0 },
                        &ctx,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gsw);
criterion_main!(benches);
