//! CI perf-smoke gate over the `BENCH_*.json` artifacts (parallel, serve,
//! pipeline, fleet).
//!
//! `repro parallel --bench-json` records one timing cell per (workload,
//! worker count, precision) triple plus the f32 quality gate; `repro serve
//! --serve-json` records the serving sweep. This module re-reads those
//! artifacts and enforces the floors, so CI fails when a change regresses
//! the fast path (or the serving acceptance row) rather than when someone
//! happens to eyeball the numbers:
//!
//! * **Hard invariants** — every cell bit-identical to its same-precision
//!   single-worker twin, the f32 quality gate passing, and the fixed
//!   worker/precision cell grid present. These hold on any host.
//! * **Speedup floors** — the design targets (≥1.3× single-thread from
//!   f32, ≥2× parallel GSW at 7 workers) multiplied by a generous noise
//!   margin, and only enforced on hosts with enough cores to express them:
//!   a single-core container cannot show a parallel speedup, and a scalar
//!   narrow-core measures f32 ≈ f64 (the f32 win is a bandwidth/SIMD
//!   effect). Skipped floors are reported as SKIPPED, never silently.

use holoar_telemetry::jsonlite::{self, Json};

/// Floors and conditioning for [`evaluate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// Design floor for the single-thread f32 speedup on the fft2d 256x256
    /// and gsw cells (reference: f64 single-thread).
    pub f32_floor: f64,
    /// Design floor for the parallel GSW speedup at 7 workers.
    pub par_floor: f64,
    /// Fraction of each floor actually enforced — generous margin for CI
    /// timer noise and shared runners.
    pub noise_margin: f64,
    /// Minimum `host_workers` before the speedup floors apply at all.
    pub min_host_workers: usize,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig { f32_floor: 1.3, par_floor: 2.0, noise_margin: 0.8, min_host_workers: 4 }
    }
}

/// What the gate concluded: hard failures (non-empty fails CI) plus a
/// human-readable line-per-check report.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// One entry per violated check; empty means the gate passes.
    pub failures: Vec<String>,
    /// Line-per-check report (PASS / FAIL / SKIPPED with reasons).
    pub report: String,
}

impl GateOutcome {
    /// Whether CI should go green.
    pub fn pass(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The worker counts and precisions every artifact must carry (mirrors
/// `experiments::BENCH_WORKERS` × both precisions).
const REQUIRED_WORKERS: [usize; 3] = [1, 2, 7];
const REQUIRED_PRECISIONS: [&str; 2] = ["f64", "f32"];

/// One cell pulled out of the artifact.
#[derive(Debug, Clone, PartialEq)]
struct Cell {
    label: String,
    workers: usize,
    precision: String,
    speedup: f64,
    bit_identical: bool,
}

/// Evaluates the gate over the text of a `BENCH_parallel.json` artifact.
///
/// # Errors
///
/// Returns a message when the artifact is unparseable or missing required
/// fields — CI should treat that exactly like a failed gate.
pub fn evaluate(json_text: &str, cfg: &GateConfig) -> Result<GateOutcome, String> {
    let doc = jsonlite::parse(json_text).map_err(|e| e.to_string())?;
    if doc.get("bench").and_then(Json::as_str) != Some("parallel") {
        return Err("artifact is not a parallel bench (missing \"bench\": \"parallel\")".into());
    }
    let host_workers = doc
        .get("host_workers")
        .and_then(Json::as_f64)
        .ok_or("missing numeric \"host_workers\"")? as usize;
    let gate_pass = doc
        .get("f32_quality_gate")
        .and_then(|g| g.get("pass"))
        .and_then(|p| match p {
            Json::Bool(b) => Some(*b),
            _ => None,
        })
        .ok_or("missing \"f32_quality_gate\".\"pass\"")?;
    let cells = parse_cells(&doc)?;

    let mut failures = Vec::new();
    let mut report = String::new();
    let mut check = |line: String, failed: bool| {
        report.push_str(if failed { "FAIL " } else { "pass " });
        report.push_str(&line);
        report.push('\n');
        if failed {
            failures.push(line);
        }
    };

    // Hard invariants: hold on any host.
    check(format!("f32 quality gate pass = {gate_pass}"), !gate_pass);
    for cell in &cells {
        if !cell.bit_identical {
            check(
                format!(
                    "cell {} workers={} {} is not bit-identical to its serial twin",
                    cell.label, cell.workers, cell.precision
                ),
                true,
            );
        }
    }
    let labels: Vec<&str> = {
        let mut ls: Vec<&str> = cells.iter().map(|c| c.label.as_str()).collect();
        ls.sort_unstable();
        ls.dedup();
        ls
    };
    for label in &labels {
        for workers in REQUIRED_WORKERS {
            for precision in REQUIRED_PRECISIONS {
                let present = cells.iter().any(|c| {
                    c.label == *label && c.workers == workers && c.precision == precision
                });
                if !present {
                    check(
                        format!("missing cell {label} workers={workers} {precision}"),
                        true,
                    );
                }
            }
        }
    }

    // Speedup floors: conditioned on the host being able to express them.
    let floors_apply = host_workers >= cfg.min_host_workers;
    if !floors_apply {
        report.push_str(&format!(
            "SKIPPED speedup floors: host has {host_workers} worker(s), floors need >= {} \
             (single-core hosts cannot express parallel or bandwidth wins)\n",
            cfg.min_host_workers
        ));
    } else {
        let f32_effective = cfg.f32_floor * cfg.noise_margin;
        for label in ["fft2d 256x256", "gsw 48x48 8 planes"] {
            match find(&cells, label, 1, "f32") {
                Some(cell) => check(
                    format!(
                        "f32 single-thread {label}: {:.2}x >= {f32_effective:.2}x \
                         (floor {:.2}x, noise margin {:.2})",
                        cell.speedup, cfg.f32_floor, cfg.noise_margin
                    ),
                    cell.speedup < f32_effective,
                ),
                None => check(format!("missing f32 single-thread cell for {label}"), true),
            }
        }
        let par_effective = cfg.par_floor * cfg.noise_margin;
        // Either precision may carry the parallel win; gate the best.
        let best = REQUIRED_PRECISIONS
            .iter()
            .filter_map(|p| find(&cells, "gsw 48x48 8 planes", 7, p))
            .map(|c| c.speedup)
            .fold(f64::NEG_INFINITY, f64::max);
        if best.is_finite() {
            check(
                format!(
                    "parallel gsw at 7 workers: {best:.2}x >= {par_effective:.2}x \
                     (floor {:.2}x, noise margin {:.2})",
                    cfg.par_floor, cfg.noise_margin
                ),
                best < par_effective,
            );
        } else {
            check("missing gsw cell at 7 workers".to_string(), true);
        }
    }

    Ok(GateOutcome { failures, report })
}

/// Floors for the serve artifact's 8-session acceptance row (the serving
/// tentpole's design targets, enforced by [`evaluate_serve`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeGateConfig {
    /// Batched-over-sequential speedup floor at 8 sessions.
    pub speedup_floor: f64,
    /// Deadline-hit-rate floor at 8 sessions.
    pub hit_floor: f64,
    /// Ceiling on the worst session's PSNR drift from its single-session
    /// baseline, dB.
    pub psnr_gap_ceiling: f64,
}

impl Default for ServeGateConfig {
    fn default() -> Self {
        ServeGateConfig { speedup_floor: 1.8, hit_floor: 0.95, psnr_gap_ceiling: 0.5 }
    }
}

/// Fields every `BENCH_serve.json` sweep row must carry.
const SERVE_ROW_FIELDS: [&str; 8] = [
    "sessions",
    "admitted",
    "speedup",
    "deadline_hit_rate",
    "latency_p50_s",
    "latency_p99_s",
    "psnr_gap_db",
    "launches_saved",
];

/// Evaluates the serve gate over the text of a `BENCH_serve.json`
/// artifact: schema (every sweep row complete) plus the 8-session
/// acceptance floors. The model is closed-form, so unlike the timing
/// floors these hold on any host.
///
/// # Errors
///
/// Returns a message when the artifact is unparseable or not a serve
/// bench — CI should treat that exactly like a failed gate.
pub fn evaluate_serve(json_text: &str, cfg: &ServeGateConfig) -> Result<GateOutcome, String> {
    let doc = jsonlite::parse(json_text).map_err(|e| e.to_string())?;
    if doc.get("bench").and_then(Json::as_str) != Some("serve") {
        return Err("artifact is not a serve bench (missing \"bench\": \"serve\")".into());
    }
    let rows = doc.get("sweep").and_then(Json::as_array).ok_or("missing \"sweep\" array")?;
    if rows.is_empty() {
        return Err("serve sweep is empty".into());
    }

    let mut failures = Vec::new();
    let mut report = String::new();
    let mut check = |line: String, failed: bool| {
        report.push_str(if failed { "FAIL " } else { "pass " });
        report.push_str(&line);
        report.push('\n');
        if failed {
            failures.push(line);
        }
    };

    let mut eight: Option<&Json> = None;
    for (i, row) in rows.iter().enumerate() {
        for field in SERVE_ROW_FIELDS {
            if row.get(field).and_then(Json::as_f64).is_none() {
                check(format!("sweep row {i} missing numeric \"{field}\""), true);
            }
        }
        if row.get("sessions").and_then(Json::as_f64) == Some(8.0) {
            eight = Some(row);
        }
    }
    check(format!("sweep carries {} row(s) with a complete schema", rows.len()), false);

    match eight {
        Some(row) => {
            let num = |field: &str| row.get(field).and_then(Json::as_f64).unwrap_or(f64::NAN);
            let speedup = num("speedup");
            let hit = num("deadline_hit_rate");
            let gap = num("psnr_gap_db");
            // NaN must fail the floor, so the violation test is "not >="
            // spelled NaN-explicitly (clippy rejects `!(a >= b)` on floats).
            check(
                format!("8-session speedup {speedup:.2}x >= {:.2}x", cfg.speedup_floor),
                speedup.is_nan() || speedup < cfg.speedup_floor,
            );
            check(
                format!("8-session deadline-hit rate {hit:.3} >= {:.3}", cfg.hit_floor),
                hit.is_nan() || hit < cfg.hit_floor,
            );
            check(
                format!("8-session PSNR gap {gap:.2} dB <= {:.2} dB", cfg.psnr_gap_ceiling),
                gap.is_nan() || gap > cfg.psnr_gap_ceiling,
            );
        }
        None => check("missing the 8-session acceptance row".to_string(), true),
    }

    Ok(GateOutcome { failures, report })
}

/// Floors for the staged-pipeline artifact (the staged-executor tentpole's
/// design targets, enforced by [`evaluate_pipeline`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineGateConfig {
    /// Staged-over-lockstep throughput floor under the standard faulted
    /// workload.
    pub speedup_floor: f64,
    /// Ceiling on `staged p99 / lockstep sustained p99` — the staged
    /// sensor-to-photon tail must be no worse than the lockstep loop's
    /// under the same sustained capture timeline.
    pub p99_ratio_ceiling: f64,
}

impl Default for PipelineGateConfig {
    fn default() -> Self {
        PipelineGateConfig { speedup_floor: 1.15, p99_ratio_ceiling: 1.0 }
    }
}

/// Numeric fields every `BENCH_pipeline.json` `staged` block must carry.
const PIPELINE_STAGED_FIELDS: [&str; 8] = [
    "throughput_fps",
    "mean_latency_s",
    "latency_p50_s",
    "latency_p99_s",
    "fresh_frames",
    "stale_frames",
    "compute_drops",
    "present_drops",
];

/// Evaluates the pipeline gate over the text of a `BENCH_pipeline.json`
/// artifact: schema, the bit-identity invariant across worker counts, the
/// no-silent-gap invariant (every frame presents, fresh or stale), and the
/// speedup / p99 floors. The executor runs on virtual time, so all of
/// these hold on any host.
///
/// # Errors
///
/// Returns a message when the artifact is unparseable or not a pipeline
/// bench — CI should treat that exactly like a failed gate.
pub fn evaluate_pipeline(
    json_text: &str,
    cfg: &PipelineGateConfig,
) -> Result<GateOutcome, String> {
    let doc = jsonlite::parse(json_text).map_err(|e| e.to_string())?;
    if doc.get("bench").and_then(Json::as_str) != Some("pipeline") {
        return Err("artifact is not a pipeline bench (missing \"bench\": \"pipeline\")".into());
    }
    let staged = doc.get("staged").ok_or("missing \"staged\" block")?;
    let lockstep = doc.get("lockstep").ok_or("missing \"lockstep\" block")?;

    let mut failures = Vec::new();
    let mut report = String::new();
    let mut check = |line: String, failed: bool| {
        report.push_str(if failed { "FAIL " } else { "pass " });
        report.push_str(&line);
        report.push('\n');
        if failed {
            failures.push(line);
        }
    };

    for field in PIPELINE_STAGED_FIELDS {
        if staged.get(field).and_then(Json::as_f64).is_none() {
            check(format!("staged block missing numeric \"{field}\""), true);
        }
    }
    for field in ["throughput_fps", "latency_p99_s", "sustained_p99_s"] {
        if lockstep.get(field).and_then(Json::as_f64).is_none() {
            check(format!("lockstep block missing numeric \"{field}\""), true);
        }
    }

    let bit_identical = match doc.get("bit_identical") {
        Some(Json::Bool(b)) => *b,
        _ => return Err("missing boolean \"bit_identical\"".into()),
    };
    check(
        format!("staged report bit-identical across worker counts = {bit_identical}"),
        !bit_identical,
    );

    // No silent gaps: every ingested frame presents, fresh or stale.
    let num = |node: &Json, field: &str| node.get(field).and_then(Json::as_f64);
    let frames = doc.get("frames").and_then(Json::as_f64).unwrap_or(f64::NAN);
    let presented = num(staged, "fresh_frames").unwrap_or(f64::NAN)
        + num(staged, "stale_frames").unwrap_or(f64::NAN);
    check(
        format!("presented frames {presented:.0} == ingested frames {frames:.0}"),
        presented.is_nan() || frames.is_nan() || presented != frames,
    );

    let speedup = doc.get("speedup").and_then(Json::as_f64).unwrap_or(f64::NAN);
    check(
        format!("staged-over-lockstep speedup {speedup:.2}x >= {:.2}x", cfg.speedup_floor),
        speedup.is_nan() || speedup < cfg.speedup_floor,
    );
    let ratio = doc.get("p99_ratio").and_then(Json::as_f64).unwrap_or(f64::NAN);
    check(
        format!(
            "sustained p99 ratio (staged / lockstep) {ratio:.3} <= {:.3}",
            cfg.p99_ratio_ceiling
        ),
        ratio.is_nan() || ratio > cfg.p99_ratio_ceiling,
    );

    Ok(GateOutcome { failures, report })
}

/// Floors for the fleet artifact (the K-device serving tentpole's design
/// targets, enforced by [`evaluate_fleet`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetGateConfig {
    /// Weak-scaling floor per device: the gated sweep row's aggregate
    /// throughput must reach `scaling_per_device × devices` times the
    /// 1-device row.
    pub scaling_per_device: f64,
    /// Which sweep row the scaling floor gates (device count).
    pub scaling_devices: f64,
    /// Deadline-hit-rate floor for the whole kill scenario — survival
    /// through a mid-run device death, migrations included.
    pub kill_hit_floor: f64,
}

impl Default for FleetGateConfig {
    fn default() -> Self {
        FleetGateConfig { scaling_per_device: 0.8, scaling_devices: 4.0, kill_hit_floor: 0.90 }
    }
}

/// Numeric fields every `BENCH_fleet.json` sweep row must carry.
const FLEET_ROW_FIELDS: [&str; 9] = [
    "devices",
    "offered",
    "admitted",
    "aggregate_fps",
    "scaling",
    "hit_rate",
    "latency_p50_s",
    "latency_p99_s",
    "migrations",
];

/// Evaluates the fleet gate over the text of a `BENCH_fleet.json`
/// artifact: schema (every sweep row complete, kill block present), the
/// weak-scaling floor at the gated device count, and kill survival — the
/// kill scenario must actually migrate sessions (otherwise the device died
/// hosting nobody and proved nothing) while keeping the deadline-hit rate
/// above the floor. Virtual-time model: holds on any host.
///
/// # Errors
///
/// Returns a message when the artifact is unparseable or not a fleet
/// bench — CI should treat that exactly like a failed gate.
pub fn evaluate_fleet(json_text: &str, cfg: &FleetGateConfig) -> Result<GateOutcome, String> {
    let doc = jsonlite::parse(json_text).map_err(|e| e.to_string())?;
    if doc.get("bench").and_then(Json::as_str) != Some("fleet") {
        return Err("artifact is not a fleet bench (missing \"bench\": \"fleet\")".into());
    }
    let rows = doc.get("sweep").and_then(Json::as_array).ok_or("missing \"sweep\" array")?;
    if rows.is_empty() {
        return Err("fleet sweep is empty".into());
    }
    let kill = doc.get("kill").ok_or("missing \"kill\" block")?;

    let mut failures = Vec::new();
    let mut report = String::new();
    let mut check = |line: String, failed: bool| {
        report.push_str(if failed { "FAIL " } else { "pass " });
        report.push_str(&line);
        report.push('\n');
        if failed {
            failures.push(line);
        }
    };

    let mut gated: Option<&Json> = None;
    for (i, row) in rows.iter().enumerate() {
        for field in FLEET_ROW_FIELDS {
            if row.get(field).and_then(Json::as_f64).is_none() {
                check(format!("sweep row {i} missing numeric \"{field}\""), true);
            }
        }
        if row.get("devices").and_then(Json::as_f64) == Some(cfg.scaling_devices) {
            gated = Some(row);
        }
    }
    check(format!("sweep carries {} row(s) with a complete schema", rows.len()), false);

    match gated {
        Some(row) => {
            let scaling = row.get("scaling").and_then(Json::as_f64).unwrap_or(f64::NAN);
            let floor = cfg.scaling_per_device * cfg.scaling_devices;
            // NaN must fail the floor, spelled NaN-explicitly.
            check(
                format!(
                    "{}-device aggregate-throughput scaling {scaling:.2}x >= {floor:.2}x \
                     ({:.2} per device)",
                    cfg.scaling_devices, cfg.scaling_per_device
                ),
                scaling.is_nan() || scaling < floor,
            );
        }
        None => check(
            format!("missing the {}-device scaling row", cfg.scaling_devices),
            true,
        ),
    }

    let num = |field: &str| kill.get(field).and_then(Json::as_f64).unwrap_or(f64::NAN);
    let hit = num("hit_rate");
    check(
        format!("kill-scenario deadline-hit rate {hit:.3} >= {:.3}", cfg.kill_hit_floor),
        hit.is_nan() || hit < cfg.kill_hit_floor,
    );
    let kill_migrations = num("kill_migrations");
    check(
        format!("kill scenario exercised live migration ({kill_migrations:.0} kill-forced)"),
        kill_migrations.is_nan() || kill_migrations < 1.0,
    );

    Ok(GateOutcome { failures, report })
}

fn find<'a>(cells: &'a [Cell], label: &str, workers: usize, precision: &str) -> Option<&'a Cell> {
    cells
        .iter()
        .find(|c| c.label == label && c.workers == workers && c.precision == precision)
}

fn parse_cells(doc: &Json) -> Result<Vec<Cell>, String> {
    let raw = doc.get("cells").and_then(Json::as_array).ok_or("missing \"cells\" array")?;
    let mut cells = Vec::with_capacity(raw.len());
    for (i, item) in raw.iter().enumerate() {
        let field = |key: &str| format!("cell {i} missing \"{key}\"");
        cells.push(Cell {
            label: item
                .get("label")
                .and_then(Json::as_str)
                .ok_or_else(|| field("label"))?
                .to_string(),
            workers: item.get("workers").and_then(Json::as_f64).ok_or_else(|| field("workers"))?
                as usize,
            precision: item
                .get("precision")
                .and_then(Json::as_str)
                .ok_or_else(|| field("precision"))?
                .to_string(),
            speedup: item.get("speedup").and_then(Json::as_f64).ok_or_else(|| field("speedup"))?,
            bit_identical: match item.get("bit_identical") {
                Some(Json::Bool(b)) => *b,
                _ => return Err(field("bit_identical")),
            },
        });
    }
    Ok(cells)
}

/// CLI driver for `repro perf-gate [FILE] [--serve FILE] [--pipeline FILE]
/// [--fleet FILE] [--f32-floor X] [--par-floor Y] [--min-workers N]`: gates
/// the parallel artifact (the positional path), the serve artifact
/// (`--serve`), the staged-pipeline artifact (`--pipeline`), and/or the
/// fleet artifact (`--fleet`), prints the reports and returns the process
/// exit code. At least one artifact is required.
pub fn cli(args: &[String]) -> i32 {
    let mut cfg = GateConfig::default();
    let serve_cfg = ServeGateConfig::default();
    let pipeline_cfg = PipelineGateConfig::default();
    let fleet_cfg = FleetGateConfig::default();
    let mut path: Option<&str> = None;
    let mut serve_path: Option<&str> = None;
    let mut pipeline_path: Option<&str> = None;
    let mut fleet_path: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--f32-floor" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.f32_floor = v,
                None => return usage("--f32-floor requires a number"),
            },
            "--par-floor" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.par_floor = v,
                None => return usage("--par-floor requires a number"),
            },
            "--min-workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.min_host_workers = v,
                None => return usage("--min-workers requires an integer"),
            },
            "--serve" => match it.next() {
                Some(v) => serve_path = Some(v.as_str()),
                None => return usage("--serve requires an artifact path"),
            },
            "--pipeline" => match it.next() {
                Some(v) => pipeline_path = Some(v.as_str()),
                None => return usage("--pipeline requires an artifact path"),
            },
            "--fleet" => match it.next() {
                Some(v) => fleet_path = Some(v.as_str()),
                None => return usage("--fleet requires an artifact path"),
            },
            other if path.is_none() && !other.starts_with('-') => path = Some(other),
            other => return usage(&format!("unknown argument {other}")),
        }
    }
    if path.is_none() && serve_path.is_none() && pipeline_path.is_none() && fleet_path.is_none()
    {
        return usage("missing artifact path");
    }
    let mut code = 0;
    if let Some(path) = path {
        code = code.max(run_gate(path, |text| evaluate(text, &cfg)));
    }
    if let Some(path) = serve_path {
        code = code.max(run_gate(path, |text| evaluate_serve(text, &serve_cfg)));
    }
    if let Some(path) = pipeline_path {
        code = code.max(run_gate(path, |text| evaluate_pipeline(text, &pipeline_cfg)));
    }
    if let Some(path) = fleet_path {
        code = code.max(run_gate(path, |text| evaluate_fleet(text, &fleet_cfg)));
    }
    code
}

/// Reads one artifact, runs `gate` over it, prints the outcome, and maps
/// it to an exit code (0 pass, 1 gate failure, 2 unreadable/unparseable).
fn run_gate<F>(path: &str, gate: F) -> i32
where
    F: FnOnce(&str) -> Result<GateOutcome, String>,
{
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf-gate: cannot read {path}: {e}");
            return 2;
        }
    };
    match gate(&text) {
        Ok(outcome) => {
            print!("{}", outcome.report);
            if outcome.pass() {
                println!("perf-gate: PASS ({path})");
                0
            } else {
                println!(
                    "perf-gate: FAIL ({path}, {} violation(s))",
                    outcome.failures.len()
                );
                1
            }
        }
        Err(e) => {
            eprintln!("perf-gate: {path}: {e}");
            2
        }
    }
}

fn usage(msg: &str) -> i32 {
    eprintln!(
        "perf-gate: {msg}\nusage: repro perf-gate [FILE] [--serve FILE] [--pipeline FILE] \
         [--fleet FILE] [--f32-floor X] [--par-floor Y] [--min-workers N]"
    );
    2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(host_workers: usize, gsw7: f64, f32_one: f64, identical: bool) -> String {
        let mut cells = String::new();
        for label in ["fft2d 128x128", "fft2d 256x256", "gsw 48x48 8 planes"] {
            for workers in REQUIRED_WORKERS {
                for precision in REQUIRED_PRECISIONS {
                    let speedup = if label == "gsw 48x48 8 planes" && workers == 7 {
                        gsw7
                    } else if precision == "f32" && workers == 1 {
                        f32_one
                    } else {
                        1.0
                    };
                    cells.push_str(&format!(
                        "{}{{\"label\": \"{label}\", \"workers\": {workers}, \
                         \"precision\": \"{precision}\", \"serial_ms\": 1.0, \
                         \"parallel_ms\": 1.0, \"speedup\": {speedup}, \
                         \"bit_identical\": {identical}}}",
                        if cells.is_empty() { "" } else { ",\n" },
                    ));
                }
            }
        }
        format!(
            "{{\"bench\": \"parallel\", \"host_workers\": {host_workers},\n\
             \"f32_quality_gate\": {{\"psnr_db\": 50.0, \"threshold_db\": 40.0, \
             \"pass\": true}},\n\"cells\": [{cells}]}}"
        )
    }

    #[test]
    fn healthy_artifact_on_a_big_host_passes() {
        let outcome =
            evaluate(&artifact(8, 3.0, 1.4, true), &GateConfig::default()).unwrap();
        assert!(outcome.pass(), "{}", outcome.report);
        assert!(outcome.report.contains("parallel gsw at 7 workers"));
    }

    #[test]
    fn single_core_hosts_skip_the_speedup_floors() {
        // Speedups of 1.0 would fail the floors, but a 1-worker host skips
        // them — only the hard invariants apply.
        let outcome =
            evaluate(&artifact(1, 0.9, 0.9, true), &GateConfig::default()).unwrap();
        assert!(outcome.pass(), "{}", outcome.report);
        assert!(outcome.report.contains("SKIPPED speedup floors"));
    }

    #[test]
    fn slow_parallel_gsw_fails_on_a_big_host() {
        let outcome =
            evaluate(&artifact(8, 1.1, 1.4, true), &GateConfig::default()).unwrap();
        assert!(!outcome.pass());
        assert!(outcome.failures.iter().any(|f| f.contains("parallel gsw")));
    }

    #[test]
    fn slow_f32_fails_on_a_big_host() {
        let outcome =
            evaluate(&artifact(8, 3.0, 0.8, true), &GateConfig::default()).unwrap();
        assert!(!outcome.pass());
        assert!(outcome.failures.iter().any(|f| f.contains("f32 single-thread")));
    }

    #[test]
    fn broken_bit_identity_fails_everywhere() {
        let outcome =
            evaluate(&artifact(1, 3.0, 1.4, false), &GateConfig::default()).unwrap();
        assert!(!outcome.pass());
        assert!(outcome.failures.iter().any(|f| f.contains("bit-identical")));
    }

    #[test]
    fn failed_quality_gate_fails_everywhere() {
        let json = artifact(1, 3.0, 1.4, true).replace("\"pass\": true", "\"pass\": false");
        let outcome = evaluate(&json, &GateConfig::default()).unwrap();
        assert!(!outcome.pass());
        assert!(outcome.failures.iter().any(|f| f.contains("quality gate")));
    }

    #[test]
    fn missing_cells_are_detected() {
        let thin = "{\"bench\": \"parallel\", \"host_workers\": 1,\n\
             \"f32_quality_gate\": {\"psnr_db\": 50.0, \"threshold_db\": 40.0, \"pass\": true},\n\
             \"cells\": [{\"label\": \"gsw 48x48 8 planes\", \"workers\": 1, \
             \"precision\": \"f64\", \"serial_ms\": 1.0, \"parallel_ms\": 1.0, \
             \"speedup\": 1.0, \"bit_identical\": true}]}";
        let outcome = evaluate(thin, &GateConfig::default()).unwrap();
        assert!(!outcome.pass());
        assert!(outcome.failures.iter().any(|f| f.contains("missing cell")));
    }

    #[test]
    fn real_artifact_round_trips_through_the_gate() {
        // The actual generator output must always clear the hard
        // invariants, whatever this host's speedups look like.
        let json = crate::experiments::parallel_bench_json();
        let outcome = evaluate(&json, &GateConfig::default()).unwrap();
        for failure in &outcome.failures {
            assert!(
                failure.contains("single-thread") || failure.contains("parallel gsw"),
                "hard invariant violated: {failure}"
            );
        }
    }

    #[test]
    fn garbage_artifacts_are_errors_not_passes() {
        assert!(evaluate("not json", &GateConfig::default()).is_err());
        assert!(evaluate("{}", &GateConfig::default()).is_err());
        assert!(
            evaluate("{\"bench\": \"serve\"}", &GateConfig::default()).is_err(),
            "wrong bench kind must not pass"
        );
    }

    fn serve_artifact(speedup: f64, hit: f64, gap: f64) -> String {
        let row = |sessions: u32, s: f64, h: f64, g: f64| {
            format!(
                "{{\"sessions\": {sessions}, \"admitted\": {sessions}, \
                 \"aggregate_fps\": 1000.0, \"sequential_fps\": 500.0, \"speedup\": {s}, \
                 \"deadline_hit_rate\": {h}, \"latency_p50_s\": 0.005, \
                 \"latency_p99_s\": 0.009, \"mean_occupancy\": 0.5, \
                 \"psnr_weighted_db\": 40.0, \"psnr_gap_db\": {g}, \
                 \"merged_launches\": 100, \"launches_saved\": 50, \
                 \"qos_step_downs\": 0, \"deferred\": 0}}"
            )
        };
        format!(
            "{{\"bench\": \"serve\", \"frames\": 120, \"seed\": 42, \
             \"frame_budget_s\": 0.011111,\n\"sweep\": [{},\n{}]}}",
            row(4, 1.2, 1.0, 0.1),
            row(8, speedup, hit, gap),
        )
    }

    #[test]
    fn healthy_serve_artifact_passes() {
        let outcome =
            evaluate_serve(&serve_artifact(2.1, 0.99, 0.2), &ServeGateConfig::default()).unwrap();
        assert!(outcome.pass(), "{}", outcome.report);
        assert!(outcome.report.contains("8-session speedup"));
    }

    #[test]
    fn serve_floor_violations_fail() {
        for (s, h, g, needle) in [
            (1.2, 0.99, 0.2, "speedup"),
            (2.1, 0.80, 0.2, "deadline-hit"),
            (2.1, 0.99, 1.5, "PSNR gap"),
        ] {
            let outcome =
                evaluate_serve(&serve_artifact(s, h, g), &ServeGateConfig::default()).unwrap();
            assert!(!outcome.pass(), "expected failure for {needle}");
            assert!(
                outcome.failures.iter().any(|f| f.contains(needle)),
                "missing {needle} failure: {}",
                outcome.report
            );
        }
    }

    #[test]
    fn serve_artifact_without_the_acceptance_row_fails() {
        let json = serve_artifact(2.1, 0.99, 0.2).replace("\"sessions\": 8", "\"sessions\": 9");
        let outcome = evaluate_serve(&json, &ServeGateConfig::default()).unwrap();
        assert!(!outcome.pass());
        assert!(outcome.failures.iter().any(|f| f.contains("8-session acceptance row")));
    }

    #[test]
    fn serve_schema_holes_are_reported() {
        let json = serve_artifact(2.1, 0.99, 0.2).replace("\"launches_saved\": 50, ", "");
        let outcome = evaluate_serve(&json, &ServeGateConfig::default()).unwrap();
        assert!(!outcome.pass());
        assert!(outcome.failures.iter().any(|f| f.contains("launches_saved")));
        assert!(
            evaluate_serve("{\"bench\": \"parallel\"}", &ServeGateConfig::default()).is_err(),
            "wrong bench kind must not pass"
        );
    }

    #[test]
    fn generated_serve_artifact_round_trips_through_the_gate() {
        // The acceptance fleet (8 sessions, the property-test scenario) as
        // the generator emits it must clear every serve floor.
        let cfg = crate::experiments::ExperimentConfig {
            frames: 40,
            seed: 42,
            sessions: Some(8),
        };
        let json = crate::experiments::serve_bench_json(&cfg);
        let outcome = evaluate_serve(&json, &ServeGateConfig::default()).unwrap();
        assert!(outcome.pass(), "{}", outcome.report);
    }

    fn pipeline_artifact(speedup: f64, ratio: f64, identical: bool, stale: u64) -> String {
        format!(
            "{{\"bench\": \"pipeline\", \"frames\": 150, \"seed\": 42, \
             \"workers\": [1, 2, 7], \"bit_identical\": {identical}, \
             \"present_latency_s\": 0.004, \"compute_queue\": 2, \"present_queue\": 2,\n\
             \"staged\": {{\"throughput_fps\": 17.0, \"mean_latency_s\": 0.080, \
             \"latency_p50_s\": 0.046, \"latency_p99_s\": 0.170, \
             \"fresh_frames\": {}, \"stale_frames\": {stale}, \"compute_drops\": {stale}, \
             \"present_drops\": 0, \"max_compute_depth\": 2, \"max_present_depth\": 1, \
             \"bottleneck\": \"ingest\"}},\n\
             \"lockstep\": {{\"throughput_fps\": 12.7, \"latency_p50_s\": 0.042, \
             \"latency_p99_s\": 0.168, \"sustained_p99_s\": 3.1, \
             \"deadline_hit_rate\": 0.3}},\n\
             \"speedup\": {speedup},\n\"p99_ratio\": {ratio}\n}}",
            150 - stale,
        )
    }

    #[test]
    fn healthy_pipeline_artifact_passes() {
        let outcome = evaluate_pipeline(
            &pipeline_artifact(1.35, 0.055, true, 3),
            &PipelineGateConfig::default(),
        )
        .unwrap();
        assert!(outcome.pass(), "{}", outcome.report);
        assert!(outcome.report.contains("speedup"));
    }

    #[test]
    fn pipeline_floor_violations_fail() {
        for (s, r, identical, needle) in [
            (1.05, 0.055, true, "speedup"),
            (1.35, 1.2, true, "p99 ratio"),
            (1.35, 0.055, false, "bit-identical"),
        ] {
            let outcome = evaluate_pipeline(
                &pipeline_artifact(s, r, identical, 0),
                &PipelineGateConfig::default(),
            )
            .unwrap();
            assert!(!outcome.pass(), "expected failure for {needle}");
            assert!(
                outcome.failures.iter().any(|f| f.contains(needle)),
                "missing {needle} failure: {}",
                outcome.report
            );
        }
    }

    #[test]
    fn pipeline_silent_presentation_gaps_fail() {
        // fresh + stale short of the ingested frame count means a frame
        // vanished without even a stale reprojection.
        let json = pipeline_artifact(1.35, 0.055, true, 0)
            .replace("\"fresh_frames\": 150", "\"fresh_frames\": 149");
        let outcome = evaluate_pipeline(&json, &PipelineGateConfig::default()).unwrap();
        assert!(!outcome.pass());
        assert!(outcome.failures.iter().any(|f| f.contains("presented frames")));
    }

    #[test]
    fn pipeline_schema_holes_are_reported() {
        let json =
            pipeline_artifact(1.35, 0.055, true, 0).replace("\"compute_drops\": 0, ", "");
        let outcome = evaluate_pipeline(&json, &PipelineGateConfig::default()).unwrap();
        assert!(!outcome.pass());
        assert!(outcome.failures.iter().any(|f| f.contains("compute_drops")));
        assert!(
            evaluate_pipeline("{\"bench\": \"serve\"}", &PipelineGateConfig::default()).is_err(),
            "wrong bench kind must not pass"
        );
    }

    #[test]
    fn generated_pipeline_artifact_round_trips_through_the_gate() {
        let cfg = crate::experiments::ExperimentConfig { frames: 30, seed: 42, sessions: None };
        let json = crate::experiments::pipeline_bench_json(&cfg);
        let outcome = evaluate_pipeline(&json, &PipelineGateConfig::default()).unwrap();
        assert!(outcome.pass(), "{}", outcome.report);
    }

    #[test]
    fn checked_in_pipeline_artifact_clears_the_gate() {
        // `BENCH_pipeline.json` at the repo root is regenerated by `repro
        // pipeline --bench-json BENCH_pipeline.json`; stale or hand-edited
        // copies must not sneak past the floors.
        let json = include_str!("../../../BENCH_pipeline.json");
        let outcome = evaluate_pipeline(json, &PipelineGateConfig::default()).unwrap();
        assert!(outcome.pass(), "{}", outcome.report);
        // And it must match what this tree generates at the recorded
        // budget — a byte-level drift check against the generator.
        let cfg = crate::experiments::ExperimentConfig::default();
        assert_eq!(
            json,
            crate::experiments::pipeline_bench_json(&cfg),
            "BENCH_pipeline.json is stale; regenerate with \
             `repro pipeline --bench-json BENCH_pipeline.json`"
        );
    }

    fn fleet_artifact(scaling4: f64, kill_hit: f64, kill_migrations: u64) -> String {
        let row = |k: u32, scaling: f64| {
            format!(
                "{{\"devices\": {k}, \"offered\": {}, \"admitted\": {}, \"rejected\": 0, \
                 \"fresh_frames\": 1000, \"aggregate_fps\": {:.1}, \"scaling\": {scaling}, \
                 \"hit_rate\": 0.97, \"latency_p50_s\": 0.007, \"latency_p99_s\": 0.010, \
                 \"migrations\": 0, \"reprobes\": 60}}",
                12 * k,
                12 * k,
                600.0 * scaling,
            )
        };
        format!(
            "{{\"bench\": \"fleet\", \"frames\": 150, \"seed\": 42, \
             \"sessions_per_device\": 12, \"frame_budget_s\": 0.011111,\n\
             \"sweep\": [{},\n{},\n{},\n{}],\n\
             \"kill\": {{\"devices\": 4, \"offered\": 48, \"kill_device\": 0, \
             \"kill_tick\": 75, \"migrations\": {kill_migrations}, \
             \"kill_migrations\": {kill_migrations}, \"overload_migrations\": 0, \
             \"orphaned\": 0, \"hit_rate\": {kill_hit}, \"latency_p99_s\": 0.013, \
             \"aggregate_fps\": 2300.0}},\n\
             \"scale\": {{\"devices\": 8, \"offered\": 1536, \"frames\": 30, \
             \"admitted\": 156, \"peak_active\": 119, \"rejected\": 1380, \
             \"aggregate_fps\": 8652.0, \"hit_rate\": 0.94, \"migrations\": 0}}\n}}",
            row(1, 1.0),
            row(2, 1.9),
            row(4, scaling4),
            row(8, 7.4),
        )
    }

    #[test]
    fn healthy_fleet_artifact_passes() {
        let outcome =
            evaluate_fleet(&fleet_artifact(3.9, 0.93, 9), &FleetGateConfig::default()).unwrap();
        assert!(outcome.pass(), "{}", outcome.report);
        assert!(outcome.report.contains("4-device aggregate-throughput scaling"));
        assert!(outcome.report.contains("kill-scenario deadline-hit"));
    }

    #[test]
    fn fleet_floor_violations_fail() {
        for (scaling, hit, migrations, needle) in [
            (2.9, 0.93, 9, "scaling"),
            (3.9, 0.85, 9, "deadline-hit"),
            (3.9, 0.93, 0, "live migration"),
        ] {
            let outcome = evaluate_fleet(
                &fleet_artifact(scaling, hit, migrations),
                &FleetGateConfig::default(),
            )
            .unwrap();
            assert!(!outcome.pass(), "expected failure for {needle}");
            assert!(
                outcome.failures.iter().any(|f| f.contains(needle)),
                "missing {needle} failure: {}",
                outcome.report
            );
        }
    }

    #[test]
    fn fleet_schema_holes_are_reported() {
        let json = fleet_artifact(3.9, 0.93, 9).replace("\"hit_rate\": 0.97, ", "");
        let outcome = evaluate_fleet(&json, &FleetGateConfig::default()).unwrap();
        assert!(!outcome.pass());
        assert!(outcome.failures.iter().any(|f| f.contains("hit_rate")));
        assert!(
            evaluate_fleet("{\"bench\": \"serve\"}", &FleetGateConfig::default()).is_err(),
            "wrong bench kind must not pass"
        );
        let no_kill = fleet_artifact(3.9, 0.93, 9).replace("\"kill\":", "\"killed\":");
        assert!(evaluate_fleet(&no_kill, &FleetGateConfig::default()).is_err());
    }

    #[test]
    fn generated_fleet_artifact_round_trips_through_the_gate() {
        let cfg = crate::experiments::ExperimentConfig::default();
        let json = crate::experiments::fleet_bench_json(&cfg);
        let outcome = evaluate_fleet(&json, &FleetGateConfig::default()).unwrap();
        assert!(outcome.pass(), "{}", outcome.report);
    }

    #[test]
    fn checked_in_fleet_artifact_clears_the_gate() {
        // `BENCH_fleet.json` at the repo root is regenerated by `repro
        // fleet --json BENCH_fleet.json`; stale or hand-edited copies must
        // not sneak past the floors.
        let json = include_str!("../../../BENCH_fleet.json");
        let outcome = evaluate_fleet(json, &FleetGateConfig::default()).unwrap();
        assert!(outcome.pass(), "{}", outcome.report);
        // And it must match what this tree generates at the recorded
        // budget — a byte-level drift check against the generator.
        let cfg = crate::experiments::ExperimentConfig::default();
        assert_eq!(
            json,
            crate::experiments::fleet_bench_json(&cfg),
            "BENCH_fleet.json is stale; regenerate with `repro fleet --json BENCH_fleet.json`"
        );
    }

    #[test]
    fn checked_in_serve_artifact_clears_the_gate() {
        // `BENCH_serve.json` at the repo root is regenerated by `repro
        // serve --frames 120 --serve-json BENCH_serve.json`; stale or
        // hand-edited copies must not sneak past the floors.
        let json = include_str!("../../../BENCH_serve.json");
        let outcome = evaluate_serve(json, &ServeGateConfig::default()).unwrap();
        assert!(outcome.pass(), "{}", outcome.report);
    }
}
