//! One function per paper artifact: each regenerates the table/figure's
//! rows/series and returns a text report with the paper's number alongside.
//!
//! Frame budgets are scaled down from the published videos' hundreds of
//! thousands of frames (the generators are stationary, so a few hundred
//! frames estimate the same means); the `frames` parameter of
//! [`ExperimentConfig`] controls the budget.

use crate::report::{ms, pct, Table};
use holoar_core::{evaluation, quality, ExecutionContext, Horn8Model, HoloArConfig, Planner, Scheme};
use holoar_gpusim::hologram_kernels::{self, HologramJob};
use holoar_gpusim::{calibration, Device, Profiler};
use holoar_optics::{algorithm1, reconstruct, OpticalConfig, Propagator, Pupil, VirtualObject};
use holoar_pipeline::characterize::characterize;
use holoar_pipeline::task::TaskKind;
use holoar_sensors::angles::{deg, AngularPoint};
use holoar_sensors::objectron::VideoCategory;
use holoar_sensors::pose::PoseEstimate;
use holoar_sensors::stats::{dataset_study, gaze_study};

/// Budget knobs for the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Frames evaluated per (video, scheme) cell.
    pub frames: u64,
    /// Master seed.
    pub seed: u64,
    /// Restrict the `serve` experiment to one fleet size instead of the
    /// default [`SERVE_SWEEP`], and override the `fleet` experiment's
    /// offered sessions per device (`--sessions` on the CLI). Other
    /// experiments ignore it.
    pub sessions: Option<u32>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig { frames: 150, seed: 42, sessions: None }
    }
}

/// Table 1: ideal latency requirements.
pub fn table1(_cfg: &ExperimentConfig) -> String {
    let mut t = Table::new(["Task", "Ideal Latency (ms)", "Algo."]);
    for kind in TaskKind::ALL {
        t.row([kind.name().to_string(), ms(kind.ideal_latency()), kind.algorithm().to_string()]);
    }
    format!("== Table 1: ideal latency requirements ==\n{}", t.render())
}

/// Fig 2: practical vs ideal latency per pipeline task.
pub fn fig2(_cfg: &ExperimentConfig) -> String {
    let mut device = Device::xavier();
    let rows = characterize(&mut device);
    let mut t = Table::new(["Task", "Ideal (ms)", "Measured (ms)", "Gap", "Meets?"]);
    for r in &rows {
        t.row([
            r.kind.name().to_string(),
            ms(r.ideal),
            ms(r.measured),
            format!("{:.1}x", r.gap()),
            if r.meets_deadline() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    format!(
        "== Fig 2: pipeline characterization ==\n{}\
         paper: pose 13.8 ms, eye 4.4 ms, scene-reconstruct 120 ms, hologram 341.7 ms (~10x gap)\n",
        t.render()
    )
}

/// Fig 3: the dataset study (object statistics + gaze temporal locality).
pub fn fig3(cfg: &ExperimentConfig) -> String {
    let rows = dataset_study(cfg.seed, cfg.frames.max(500));
    let mut t = Table::new([
        "Video",
        "Obj/Frame",
        "(paper)",
        "Cam2ObjDist m",
        "(paper)",
        "ObjSize m",
        "(paper)",
    ]);
    for r in &rows {
        t.row([
            r.category.name().to_string(),
            format!("{:.2}", r.measured.objects_per_frame),
            format!("{:.1}", r.expected_objects_per_frame),
            format!("{:.2}", r.measured.mean_distance),
            format!("{:.2}", r.expected_distance),
            format!("{:.2}", r.measured.mean_size),
            format!("{:.2}", r.expected_size),
        ]);
    }
    let users = gaze_study(cfg.seed, 10.0);
    let mut g = Table::new(["User", "Locality (5°, 1 s)", "Centroid az°", "Centroid el°"]);
    for u in &users {
        let c = u.trace.centroid();
        g.row([
            format!("User{}", u.user),
            format!("{:.2}", u.locality),
            format!("{:.1}", c.azimuth.to_degrees()),
            format!("{:.1}", c.elevation.to_degrees()),
        ]);
    }
    let sim13 =
        holoar_sensors::gaze::heatmap_overlap(&users[0].heatmap, &users[2].heatmap);
    let sim12 =
        holoar_sensors::gaze::heatmap_overlap(&users[0].heatmap, &users[1].heatmap);
    format!(
        "== Fig 3a: object statistics per category ==\n{}\n\
         == Fig 3b: gaze temporal locality (10 s @ 30 Hz) ==\n{}\
         heatmap overlap User1~User3: {sim13:.2}, User1~User2: {sim12:.2} \
         (paper: User1 similar to User3, User2 bottom-left)\n",
        t.render(),
        g.render()
    )
}

/// Fig 4b: hologram latency versus depth-plane count (forward vs backward).
pub fn fig4(_cfg: &ExperimentConfig) -> String {
    let mut device = Device::xavier();
    let mut t =
        Table::new(["Planes", "Forward (ms)", "Backward (ms)", "Total (ms)", "vs 2x planes"]);
    let plane_counts = [2u32, 4, 8, 16, 32];
    let mut totals = Vec::new();
    for &p in &plane_counts {
        let (fwd, bwd) =
            hologram_kernels::step_latencies(&mut device, calibration::HOLOGRAM_PIXELS, p);
        totals.push(fwd + bwd);
        t.row([
            p.to_string(),
            ms(fwd),
            ms(bwd),
            ms(fwd + bwd),
            if totals.len() >= 2 {
                format!("{:.2}x", totals[totals.len() - 1] / totals[totals.len() - 2])
            } else {
                "-".to_string()
            },
        ]);
    }
    format!(
        "== Fig 4b: latency vs depth planes (512², 5 GSW iterations) ==\n{}\
         paper: the two steps take similar times; 2x planes ≈ 2x latency; 16 planes > 300 ms\n",
        t.render()
    )
}

/// Fig 5: the three approximation scenarios on a worked 3-object example.
pub fn fig5(_cfg: &ExperimentConfig) -> String {
    use holoar_sensors::objectron::{Frame, ObjectAnnotation};
    // Soccer ball near center, football right of gaze, box far outside.
    let ball = ObjectAnnotation {
        track_id: 1,
        direction: AngularPoint::new(deg(-4.0), 0.0),
        distance: 1.4,
        size: 0.22,
    };
    let football = ObjectAnnotation {
        track_id: 2,
        direction: AngularPoint::new(deg(12.0), deg(-4.0)),
        distance: 0.6,
        size: 0.28,
    };
    let boxobj = ObjectAnnotation {
        track_id: 3,
        direction: AngularPoint::new(deg(45.0), deg(10.0)),
        distance: 1.0,
        size: 0.4,
    };
    let frame = Frame { index: 0, objects: vec![ball, football, boxobj] };
    let pose = PoseEstimate { orientation: AngularPoint::CENTER, latency: 0.01375 };
    let gaze = ball.direction;

    let mut out = String::from("== Fig 5: three approximation opportunities ==\n");
    for scheme in Scheme::ALL {
        let mut planner = Planner::new(HoloArConfig::for_scheme(scheme)).unwrap();
        let plan = planner.plan_frame(&frame, &pose, gaze, 0.0044);
        let mut t = Table::new(["Object", "Coverage", "In RoF", "Planes"]);
        for (item, name) in plan.items.iter().zip(["soccer ball", "football", "box"]) {
            t.row([
                name.to_string(),
                format!("{:.2}", item.coverage),
                if item.in_rof { "yes" } else { "no" }.to_string(),
                item.planes.to_string(),
            ]);
        }
        out.push_str(&format!("-- {} --\n{}", scheme.name(), t.render()));
    }
    out.push_str(
        "paper: box skipped by the viewing window; unattended objects approximated by \
         Inter-Holo; far/small objects approximated by Intra-Holo\n",
    );
    out
}

/// §3's NVPROF profile: SM utilization, L1 hit rate and stall breakdowns.
pub fn sec3(_cfg: &ExperimentConfig) -> String {
    let mut device = Device::xavier();
    let mut profiler = Profiler::new();
    let kernels = hologram_kernels::job_kernels(&HologramJob::full(16));
    for stats in device.execute_all(&kernels) {
        profiler.record(&stats);
    }
    let mut out = String::from("== Section 3: hologram kernel profile ==\n");
    out.push_str(&profiler.report());
    out.push_str(
        "paper: SM util 74% fwd / 90% bwd; L1 hit 99%; fwd stalls led by Data Request (21%), \
         Execution Dependency (19%), Instruction Fetch (15%), Sync (10%); bwd by Read-only \
         Loads (42%), Sync (24%), Data Request (16%), Execution Dependency (6%)\n",
    );
    out
}

/// Table 2: the six videos' statistics as generated.
pub fn table2(cfg: &ExperimentConfig) -> String {
    let rows = dataset_study(cfg.seed, cfg.frames.max(500));
    let mut t =
        Table::new(["No.", "Video", "#Frames (paper)", "#Obj/Frame", "Distance", "ObjSize"]);
    for (i, r) in rows.iter().enumerate() {
        let spec = r.category.spec();
        t.row([
            (i + 1).to_string(),
            r.category.name().to_string(),
            format!("{}k", spec.frames / 1000),
            format!("{:.2} ({:.1})", r.measured.objects_per_frame, spec.objects_per_frame),
            format!("{:.2}m ({:.2}m)", r.measured.mean_distance, spec.distance),
            format!("{:.2}m ({:.2}m)", r.measured.mean_size, spec.size),
        ]);
    }
    format!("== Table 2: videos (measured vs paper) ==\n{}", t.render())
}

/// Fig 7: power, latency and energy across videos and configurations, plus
/// the fleet headline numbers.
pub fn fig7(cfg: &ExperimentConfig) -> String {
    let mut device = Device::xavier();
    let matrix = evaluation::evaluate_matrix(&mut device, cfg.frames, cfg.seed);
    let mut out = String::from("== Fig 7: power / latency / energy per video and config ==\n");
    let mut t = Table::new([
        "Video",
        "Config",
        "Power (W)",
        "Latency (ms)",
        "Energy (mJ)",
        "Planes",
    ]);
    for &v in &VideoCategory::ALL {
        for &s in &Scheme::ALL {
            let c = matrix.cell(v, s).expect("full matrix");
            t.row([
                v.name().to_string(),
                s.name().to_string(),
                format!("{:.2}", c.mean_power),
                ms(c.mean_latency),
                format!("{:.0}", c.mean_energy * 1e3),
                format!("{:.1}", c.mean_planes),
            ]);
        }
    }
    out.push_str(&t.render());

    let mut h = Table::new([
        "Config",
        "Speedup",
        "(paper)",
        "Power red.",
        "(paper)",
        "Energy sav.",
        "(paper)",
    ]);
    let paper = [
        (Scheme::InterHolo, "1.15x", "3.9%", "18%"),
        (Scheme::IntraHolo, "2.42x", "27.7%", "70%"),
        (Scheme::InterIntraHolo, "2.68x", "29.0%", "73%"),
    ];
    for (s, sp, pw, en) in paper {
        h.row([
            s.name().to_string(),
            format!("{:.2}x", matrix.fleet_speedup(s)),
            sp.to_string(),
            pct(matrix.fleet_power_reduction(s)),
            pw.to_string(),
            pct(matrix.fleet_energy_savings(s)),
            en.to_string(),
        ]);
    }
    out.push_str("\n-- fleet headline numbers --\n");
    out.push_str(&h.render());
    out
}

/// Fig 8: (a) power breakdown versus plane count; (b) average plane counts
/// per configuration.
pub fn fig8(cfg: &ExperimentConfig) -> String {
    let device = Device::xavier();
    let power = device.config().power;
    let mut a = Table::new(["Planes", "SoC (W)", "CPU (W)", "GPU (W)", "Mem (W)", "Total (W)"]);
    for planes in [2u32, 4, 8, 12, 16] {
        let rails = power.rails(holoar_gpusim::Activity::for_hologram(planes as f64, &power));
        a.row([
            planes.to_string(),
            format!("{:.2}", rails.soc),
            format!("{:.2}", rails.cpu),
            format!("{:.2}", rails.gpu),
            format!("{:.2}", rails.mem),
            format!("{:.2}", rails.total()),
        ]);
    }

    let mut dev = Device::xavier();
    let matrix = evaluation::evaluate_matrix(&mut dev, cfg.frames, cfg.seed);
    let mut b = Table::new(["Config", "Avg planes/frame", "(paper)"]);
    let paper = [
        (Scheme::Baseline, "23.6"),
        (Scheme::InterHolo, "19.8"),
        (Scheme::IntraHolo, "7.1"),
        (Scheme::InterIntraHolo, "6.7"),
    ];
    for (s, p) in paper {
        b.row([
            s.name().to_string(),
            format!("{:.1}", matrix.fleet_mean(s, |c| c.mean_planes)),
            p.to_string(),
        ]);
    }
    format!(
        "== Fig 8a: power breakdown vs planes ==\n{}\n== Fig 8b: avg depth planes per config ==\n{}",
        a.render(),
        b.render()
    )
}

/// Fig 9: W-CGH / S-CGH reconstructions versus pupil position and focal
/// distance for the Planet hologram.
pub fn fig9(_cfg: &ExperimentConfig) -> String {
    let optics = OpticalConfig::default();
    let n = 64;
    let z_center = 0.006;
    let depthmap = VirtualObject::Planet.render(n, n, z_center, 0.003);
    let stack = depthmap.slice(16, optics);
    let ctx = ExecutionContext::serial();
    let w_cgh = algorithm1::hologram_from_planes(&stack, optics, &ctx).hologram;
    // S-CGH from planes 9..=12 (1-based) as in the figure.
    let s_cgh = algorithm1::hologram_from_planes(&stack.subset(8, 11), optics, &ctx).hologram;

    let mut prop = Propagator::new();
    let sharpness = |img: &[f64]| {
        // Peak-to-mean ratio: focused reconstructions concentrate energy.
        let peak = img.iter().cloned().fold(0.0, f64::max);
        let mean = img.iter().sum::<f64>() / img.len() as f64;
        peak / mean.max(f64::MIN_POSITIVE)
    };

    let mut a = Table::new(["Pupil position", "Collected energy", "Sharpness"]);
    for (name, px, py) in
        [("center", 0.0, 0.0), ("left", -0.35, 0.0), ("right", 0.35, 0.0), ("up", 0.0, 0.35)]
    {
        let img =
            reconstruct::view_through_pupil(&w_cgh, z_center, Pupil::new(px, py, 0.45), &mut prop);
        a.row([
            name.to_string(),
            format!("{:.3}", img.iter().sum::<f64>()),
            format!("{:.1}", sharpness(&img)),
        ]);
    }

    let mut b = Table::new(["Focal distance (mm)", "W-CGH sharpness", "S-CGH sharpness"]);
    for dz in [-0.002f64, -0.001, 0.0, 0.001, 0.002] {
        let z = z_center + dz;
        let w = reconstruct::reconstruct_intensity(&w_cgh, z, &mut prop);
        let s = reconstruct::reconstruct_intensity(&s_cgh, z, &mut prop);
        b.row([
            format!("{:.1}", z * 1e3),
            format!("{:.1}", sharpness(&w)),
            format!("{:.1}", sharpness(&s)),
        ]);
    }
    format!(
        "== Fig 9a: viewing the W-CGH from different pupil positions ==\n{}\n\
         == Fig 9b/9c: W-CGH vs S-CGH (planes 9-12) across focal distances ==\n{}\
         paper: every pupil position sees the object; the S-CGH reconstructs \
         only its plane subset's content\n",
        a.render(),
        b.render()
    )
}

/// Fig 10: (a) PSNR per configuration; (b) the α energy/quality trade-off.
pub fn fig10(cfg: &ExperimentConfig) -> String {
    let sample_frames = (cfg.frames / 30).clamp(2, 8);
    let ctx = ExecutionContext::serial();
    let mut a = Table::new(["Config", "Mean PSNR (dB, capped 50)", "(paper)"]);
    for (scheme, paper) in [
        (Scheme::InterHolo, "high (approximates only periphery)"),
        (Scheme::IntraHolo, "mid-30s"),
        (Scheme::InterIntraHolo, "30.7 avg"),
    ] {
        let mut sum = 0.0;
        let mut count = 0;
        for &v in &VideoCategory::ALL {
            let vq = quality::video_quality(
                v,
                HoloArConfig::for_scheme(scheme),
                sample_frames,
                cfg.seed,
                &ctx,
            );
            if let Some(p) = vq.mean_psnr_capped() {
                sum += p;
                count += 1;
            }
        }
        a.row([
            scheme.name().to_string(),
            format!("{:.1}", sum / count.max(1) as f64),
            paper.to_string(),
        ]);
    }

    let design_points = quality::DesignPoint::fig10b_points();
    let points = quality::design_sweep(&design_points, sample_frames, cfg.seed, &ctx);
    let mut b = Table::new(["alpha", "theta scale", "Mean PSNR (dB)", "Mean planes/object"]);
    for (dp, p) in design_points.iter().zip(&points) {
        b.row([
            format!("{:.3}", dp.alpha),
            format!("{:.2}", dp.theta_scale),
            format!("{:.1}", p.mean_psnr),
            format!("{:.1}", p.mean_planes),
        ]);
    }
    format!(
        "== Fig 10a: reconstruction quality per config ==\n{}\n\
         == Fig 10b: alpha sensitivity (more savings <-> more quality drop) ==\n{}\
         paper: clear trade-off; even the most aggressive setting stays usable (~30 dB)\n",
        a.render(),
        b.render()
    )
}

/// §5.3's HORN-8 energy comparison.
pub fn horn8(cfg: &ExperimentConfig) -> String {
    let mut device = Device::xavier();
    let matrix = evaluation::evaluate_matrix(&mut device, cfg.frames, cfg.seed);
    let model = Horn8Model::default();
    let base = matrix.fleet_mean(Scheme::Baseline, |c| c.mean_energy);
    let holoar = matrix.fleet_mean(Scheme::InterIntraHolo, |c| c.mean_energy);
    let mut t = Table::new(["Design", "Energy/frame (mJ)", "Savings vs baseline"]);
    t.row(["Baseline (GPU)".to_string(), format!("{:.0}", base * 1e3), "-".to_string()]);
    t.row([
        "HORN-8 (estimated)".to_string(),
        format!("{:.0}", model.mean_energy(&matrix) * 1e3),
        pct(model.energy_savings(&matrix)),
    ]);
    t.row([
        "HoloAR (Inter-Intra)".to_string(),
        format!("{:.0}", holoar * 1e3),
        pct(matrix.fleet_energy_savings(Scheme::InterIntraHolo)),
    ]);
    format!(
        "== HORN-8 comparison ==\n{}\
         HoloAR saves {} more of the baseline energy than HORN-8 (paper: ~25%)\n\
         (HORN-8 numbers are estimates from published FPGA/GPU data, as in the paper)\n",
        t.render(),
        pct(model.holoar_advantage(&matrix))
    )
}

/// Ablation: the §5.5 hybrid accelerator/GPU plane partitioning.
pub fn hybrid(_cfg: &ExperimentConfig) -> String {
    let mut t = Table::new(["PUs", "Accel planes", "GPU planes", "Relative makespan"]);
    for pus in [0u32, 1, 2, 4, 8] {
        let s = holoar_core::horn8::plan_hybrid(16, pus, 1.5);
        t.row([
            pus.to_string(),
            s.accelerator_planes.to_string(),
            s.gpu_planes.to_string(),
            format!("{:.2}", s.relative_makespan),
        ]);
    }
    format!("== §5.5 ablation: hybrid accelerator/GPU partitioning (16 planes) ==\n{}", t.render())
}

/// Quality demo exercised by Fig 9's pipeline but at PSNR level: reports the
/// PSNR ladder across plane budgets for one object (used by EXPERIMENTS.md).
pub fn psnr_ladder(_cfg: &ExperimentConfig) -> String {
    use holoar_sensors::objectron::ObjectAnnotation;
    let obj = ObjectAnnotation {
        track_id: 3, // Planet
        direction: AngularPoint::CENTER,
        distance: 0.6,
        size: 0.25,
    };
    let config = HoloArConfig::default();
    let ctx = ExecutionContext::serial();
    let mut t = Table::new(["Planes", "PSNR vs 16-plane baseline (dB)"]);
    for planes in [2u32, 4, 6, 8, 12, 16] {
        let p = quality::object_psnr(&obj, planes, &config, &ctx);
        t.row([planes.to_string(), if p.is_finite() { format!("{p:.1}") } else { "inf".into() }]);
    }
    format!("== PSNR ladder (Planet at 0.6 m) ==\n{}", t.render())
}

/// Ablation: §5.5's power-gating and DVFS knobs on approximated workloads.
pub fn gating(_cfg: &ExperimentConfig) -> String {
    use holoar_gpusim::gating::{dvfs_sweep, run_job_gated, DvfsPoint, GatingPolicy};

    // Gating matters for small sub-holograms (approximated or partially
    // visible objects whose grids cannot fill the device).
    let mut t = Table::new(["Workload", "Energy ungated (mJ)", "Energy gated (mJ)", "Savings"]);
    for (name, job) in [
        ("full 16-plane hologram", HologramJob::full(16)),
        ("8-plane hologram", HologramJob::full(8)),
        ("tiny sub-hologram (0.4% aperture)", HologramJob { coverage: 0.004, ..HologramJob::full(4) }),
    ] {
        let mut d1 = Device::xavier();
        let plain = hologram_kernels::run_job(&mut d1, &job);
        let mut d2 = Device::xavier();
        let gated = run_job_gated(&mut d2, &job, GatingPolicy::default());
        t.row([
            name.to_string(),
            format!("{:.2}", plain.energy * 1e3),
            format!("{:.2}", gated.energy * 1e3),
            pct(1.0 - gated.energy / plain.energy.max(f64::MIN_POSITIVE)),
        ]);
    }

    let points: Vec<DvfsPoint> =
        [0.5, 0.75, 1.0].iter().map(|&f| DvfsPoint::new(f)).collect();
    let outcomes = dvfs_sweep(&holoar_gpusim::DeviceConfig::default(), &HologramJob::full(8), &points);
    let mut d = Table::new(["Clock scale", "Latency (ms)", "Energy (mJ)"]);
    for o in &outcomes {
        d.row([
            format!("{:.2}", o.point.frequency_scale),
            ms(o.latency),
            format!("{:.0}", o.energy * 1e3),
        ]);
    }
    format!(
        "== §5.5 ablation: power gating and DVFS ==\n{}\n-- DVFS sweep (8-plane hologram) --\n{}\
         takeaway: gating pays on small grids; mild down-clocking finds an energy sweet \
         spot, but deep down-clocking loses to the board's static power\n",
        t.render(),
        d.render()
    )
}

/// Ablation: the viewing-window reuse cache's contribution (Fig 5a's
/// Frame-II "skip the soccer ball" logic).
pub fn reuse(cfg: &ExperimentConfig) -> String {
    let mut t = Table::new([
        "Config",
        "Latency w/ reuse (ms)",
        "w/o reuse (ms)",
        "Reuse fraction",
        "Latency saved",
    ]);
    let mut device = Device::xavier();
    for &scheme in &[Scheme::Baseline, Scheme::InterIntraHolo] {
        let mut sum_with = 0.0;
        let mut sum_without = 0.0;
        let mut reuse_frac = 0.0;
        for &v in &VideoCategory::ALL {
            let mut with = Planner::new(HoloArConfig::for_scheme(scheme)).unwrap();
            let r_with = evaluation::evaluate_with_planner(
                &mut device, &mut with, v, cfg.frames, cfg.seed);
            let mut without =
                Planner::new(HoloArConfig::for_scheme(scheme).without_reuse()).unwrap();
            let r_without = evaluation::evaluate_with_planner(
                &mut device, &mut without, v, cfg.frames, cfg.seed);
            sum_with += r_with.mean_latency;
            sum_without += r_without.mean_latency;
            reuse_frac += r_with.reuse_fraction;
        }
        let n = VideoCategory::ALL.len() as f64;
        t.row([
            scheme.name().to_string(),
            ms(sum_with / n),
            ms(sum_without / n),
            format!("{:.2}", reuse_frac / n),
            pct(1.0 - sum_with / sum_without),
        ]);
    }
    format!(
        "== ablation: cross-frame sub-hologram reuse ==\n{}\
         reuse contributes a modest, scene-motion-dependent saving on top of the \
         approximation schemes\n",
        t.render()
    )
}

/// Ablation: kernel fusion versus approximation (the engineering
/// alternative §3's stall analysis invites).
pub fn fusion(_cfg: &ExperimentConfig) -> String {
    use holoar_gpusim::hologram_kernels::{run_job, run_job_fused};
    let mut t = Table::new(["Planes", "Per-plane kernels (ms)", "Fused (ms)", "Fusion saves"]);
    for planes in [4u32, 8, 16] {
        let mut d1 = Device::xavier();
        let plain = run_job(&mut d1, &HologramJob::full(planes)).latency;
        let mut d2 = Device::xavier();
        let fused = run_job_fused(&mut d2, &HologramJob::full(planes)).latency;
        t.row([
            planes.to_string(),
            ms(plain),
            ms(fused),
            pct(1.0 - fused / plain),
        ]);
    }
    format!(
        "== ablation: kernel fusion vs approximation ==\n{}\
         fusing all plane kernels recovers only launch/drain overheads (a few percent); \
         halving the plane count recovers ~50% — approximation, not kernel engineering, \
         is the lever (the paper's §4 premise)\n",
        t.render()
    )
}

/// Supplementary: stream-level plane parallelism on the event-driven
/// timeline — the mechanism behind Fig 8a's activity-vs-planes curve.
pub fn streams(_cfg: &ExperimentConfig) -> String {
    use holoar_gpusim::timeline::{plane_stream_ops, simulate};
    let cfg = holoar_gpusim::DeviceConfig::default();
    let mut t = Table::new([
        "Planes (streams)",
        "Makespan (ms)",
        "Mean occupancy",
        "Serial makespan (ms)",
    ]);
    for planes in [1u32, 2, 4, 8, 16] {
        // Sub-hologram-sized planes (small grids) so concurrency matters.
        let pixels = 8 * 256;
        let parallel = simulate(&plane_stream_ops(pixels, planes), &cfg);
        let serial_ops: Vec<_> = plane_stream_ops(pixels, planes)
            .into_iter()
            .map(|mut op| {
                op.stream = 0;
                op
            })
            .collect();
        let serial = simulate(&serial_ops, &cfg);
        t.row([
            planes.to_string(),
            format!("{:.3}", parallel.makespan * 1e3),
            format!("{:.2}", parallel.mean_occupancy()),
            format!("{:.3}", serial.makespan * 1e3),
        ]);
    }
    format!(
        "== supplementary: plane-level stream parallelism (event-driven timeline) ==\n{}\
         more planes in flight keep more block slots occupied — the occupancy curve \
         the power model's activity(planes) term encodes\n",
        t.render()
    )
}

/// Worker counts every parallel-bench sweep records, at each precision.
/// `BENCH_parallel.json` always carries one cell per (workload, worker
/// count, precision) triple regardless of the host's core count, so CI can
/// gate on fixed cells.
pub const BENCH_WORKERS: [usize; 3] = [1, 2, 7];

/// One timing cell of the [`parallel`] experiment: a (workload, worker
/// count, precision) configuration measured against the f64 single-thread
/// reference.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelCell {
    /// What was measured (workload and size).
    pub label: String,
    /// Worker count the cell ran with (`Parallelism::new(workers)`).
    pub workers: usize,
    /// Hot-loop scalar precision the cell ran at (`"f32"` / `"f64"`).
    pub precision: &'static str,
    /// Best-of-three f64 single-thread reference wall time, milliseconds
    /// (shared by every cell of the same workload).
    pub serial_ms: f64,
    /// Best-of-three wall time of this cell's configuration, milliseconds.
    pub parallel_ms: f64,
    /// Whether the cell's output matched its same-precision single-worker
    /// twin bit-for-bit (the determinism guarantee).
    pub bit_identical: bool,
}

impl ParallelCell {
    /// Reference (f64 single-thread) time over this cell's time.
    pub fn speedup(&self) -> f64 {
        self.serial_ms / self.parallel_ms.max(f64::MIN_POSITIVE)
    }
}

/// Best-of-three wall time of `f`, in milliseconds, on the telemetry
/// monotonic clock (the workspace's single time source).
fn best_of_three_ms<F: FnMut()>(mut f: F) -> f64 {
    (0..3)
        .map(|_| {
            let t0 = holoar_telemetry::now_ns();
            f();
            holoar_telemetry::now_ns().saturating_sub(t0) as f64 * 1e-6
        })
        .fold(f64::INFINITY, f64::min)
}

/// Measures the hot-path engine: the 2-D FFT and GSW synthesis at every
/// [`BENCH_WORKERS`] worker count and both precisions, each against the f64
/// single-thread reference, verifying same-precision bit-identity on every
/// cell. Returns the host pool's worker count alongside the cells.
pub fn parallel_measurements() -> (usize, Vec<ParallelCell>) {
    use holoar_fft::{Complex32, Complex64, Fft2d, Parallelism, Precision};
    use holoar_optics::gsw;
    let host_workers = Parallelism::auto().workers();
    let mut cells = Vec::new();

    for n in [128usize, 256] {
        let data: Vec<Complex64> = (0..n * n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
            .collect();
        let data32: Vec<Complex32> = data.iter().map(|z| z.to_c32()).collect();
        let serial_fft = Fft2d::new(n, n);
        let mut reference = data.clone();
        serial_fft.forward(&mut reference);
        let serial_ms = best_of_three_ms(|| {
            let mut buf = data.clone();
            serial_fft.forward(&mut buf);
        });
        let serial_fft32 = Fft2d::<f32>::new(n, n);
        let mut reference32 = data32.clone();
        serial_fft32.forward(&mut reference32);
        for workers in BENCH_WORKERS {
            let pool = Parallelism::new(workers);
            let fft = Fft2d::with_parallelism(n, n, pool.clone());
            let mut out = data.clone();
            fft.forward(&mut out);
            cells.push(ParallelCell {
                label: format!("fft2d {n}x{n}"),
                workers,
                precision: Precision::F64.as_str(),
                serial_ms,
                parallel_ms: best_of_three_ms(|| {
                    let mut buf = data.clone();
                    fft.forward(&mut buf);
                }),
                bit_identical: out == reference,
            });
            let fft32 = Fft2d::<f32>::with_parallelism(n, n, pool);
            let mut out32 = data32.clone();
            fft32.forward(&mut out32);
            cells.push(ParallelCell {
                label: format!("fft2d {n}x{n}"),
                workers,
                precision: Precision::F32.as_str(),
                serial_ms,
                parallel_ms: best_of_three_ms(|| {
                    let mut buf = data32.clone();
                    fft32.forward(&mut buf);
                }),
                bit_identical: out32 == reference32,
            });
        }
    }

    let optics = OpticalConfig::default();
    let gsw_cfg = holoar_optics::GswConfig { iterations: 2, adaptivity: 1.0 };
    let stack = VirtualObject::Dice.render(48, 48, 0.006, 0.002).slice(8, optics);
    let serial_ctx = ExecutionContext::serial();
    gsw::run(&stack, optics, gsw_cfg, &serial_ctx); // warm the context caches
    let serial_ms = best_of_three_ms(|| {
        gsw::run(&stack, optics, gsw_cfg, &serial_ctx);
    });
    for precision in [Precision::F64, Precision::F32] {
        let reference = gsw::run(
            &stack,
            optics,
            gsw_cfg,
            &ExecutionContext::builder().workers(1).precision(precision).build(),
        );
        for workers in BENCH_WORKERS {
            let ctx = ExecutionContext::builder().workers(workers).precision(precision).build();
            let result = gsw::run(&stack, optics, gsw_cfg, &ctx);
            cells.push(ParallelCell {
                label: "gsw 48x48 8 planes".to_string(),
                workers,
                precision: precision.as_str(),
                serial_ms,
                parallel_ms: best_of_three_ms(|| {
                    gsw::run(&stack, optics, gsw_cfg, &ctx);
                }),
                bit_identical: result.hologram.samples() == reference.hologram.samples(),
            });
        }
    }

    (host_workers, cells)
}

/// Outcome of the f32 quality gate: occupancy-weighted PSNR of the f32
/// reconstruction path against the f64 reference on the repro scenes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F32QualityGate {
    /// Occupancy-weighted mean PSNR (dB), capped at
    /// [`holoar_serve::PSNR_CAP`].
    pub psnr_db: f64,
    /// Floor `psnr_db` must clear for the f32 path to count as
    /// quality-transparent.
    pub threshold_db: f64,
}

impl F32QualityGate {
    /// Whether the f32 path clears the floor.
    pub fn pass(&self) -> bool {
        self.psnr_db >= self.threshold_db
    }
}

/// Stated tolerance of the f32 path: its reconstructions must stay within
/// 10 dB of the [`holoar_serve::PSNR_CAP`] transparency cap against the f64
/// reference (i.e. ≥ 40 dB — comfortably past visually-lossless for the
/// repro scenes, with margin for accumulation differences).
pub const F32_GATE_THRESHOLD_DB: f64 = holoar_serve::PSNR_CAP - 10.0;

/// Runs the f32 quality gate on the repro scenes: slices two virtual
/// objects into 8-plane stacks, reconstructs the incoherent focal stack
/// through the propagation hot path at both precisions, and compares
/// per-distance intensity images with PSNR weighted by each source plane's
/// lit-pixel occupancy (empty planes carry no weight).
pub fn f32_quality_gate() -> F32QualityGate {
    use holoar_fft::Precision;
    let optics = OpticalConfig::default();
    let mut weighted = 0.0;
    let mut weight = 0.0;
    for object in [VirtualObject::Dice, VirtualObject::Planet] {
        let stack = object.render(48, 48, 0.006, 0.002).slice(8, optics);
        let distances: Vec<f64> = stack.iter().map(|p| p.z).collect();
        let mut wide = Propagator::new();
        let mut narrow = wide.with_precision(Precision::F32);
        let reference = reconstruct::incoherent_focal_stack(&stack, &distances, &mut wide);
        let test = reconstruct::incoherent_focal_stack(&stack, &distances, &mut narrow);
        for ((plane, r), t) in stack.iter().zip(&reference).zip(&test) {
            if plane.lit_pixels == 0 {
                continue;
            }
            weighted += intensity_psnr_capped(r, t) * plane.lit_pixels as f64;
            weight += plane.lit_pixels as f64;
        }
    }
    let psnr_db = if weight > 0.0 { weighted / weight } else { holoar_serve::PSNR_CAP };
    F32QualityGate { psnr_db, threshold_db: F32_GATE_THRESHOLD_DB }
}

/// PSNR (dB) of `test` against `reference`, peak-referenced to the
/// reference image and capped at [`holoar_serve::PSNR_CAP`] (the exact
/// match would otherwise be infinite).
fn intensity_psnr_capped(reference: &[f64], test: &[f64]) -> f64 {
    let peak = reference.iter().cloned().fold(0.0f64, f64::max);
    let mse = reference
        .iter()
        .zip(test)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        / reference.len().max(1) as f64;
    if mse <= 0.0 || peak <= 0.0 {
        return holoar_serve::PSNR_CAP;
    }
    (10.0 * (peak * peak / mse).log10()).min(holoar_serve::PSNR_CAP)
}

/// Tentpole self-check: the parallel FFT/propagation engine against its
/// serial twin — wall time plus the determinism guarantee, on this machine's
/// pool (`HOLOAR_THREADS` overrides the sizing).
pub fn parallel(_cfg: &ExperimentConfig) -> String {
    let (host_workers, cells) = parallel_measurements();
    let gate = f32_quality_gate();
    let mut t = Table::new([
        "Workload",
        "Workers",
        "Precision",
        "Ref f64 (ms)",
        "Cell (ms)",
        "Speedup",
        "Identical?",
    ]);
    for cell in &cells {
        t.row([
            cell.label.clone(),
            cell.workers.to_string(),
            cell.precision.to_string(),
            format!("{:.3}", cell.serial_ms),
            format!("{:.3}", cell.parallel_ms),
            format!("{:.2}x", cell.speedup()),
            if cell.bit_identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    format!(
        "== supplementary: hot-path engine (host pool: {host_workers} workers) ==\n{}\
         f32 quality gate: occupancy-weighted PSNR {:.1} dB vs the f64 reference \
         (threshold {:.1} dB) — {}\n\
         every cell is bit-identical to its same-precision single-worker twin by \
         construction; multi-worker speedups track the host's core count\n",
        t.render(),
        gate.psnr_db,
        gate.threshold_db,
        if gate.pass() { "PASS" } else { "FAIL" },
    )
}

/// The [`parallel`] experiment's measurements as a JSON artifact
/// (`BENCH_parallel.json`), hand-serialized to keep the workspace
/// dependency-free.
pub fn parallel_bench_json() -> String {
    let (host_workers, cells) = parallel_measurements();
    let gate = f32_quality_gate();
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"parallel\",\n");
    out.push_str(&format!("  \"host_workers\": {host_workers},\n"));
    out.push_str(&format!(
        "  \"f32_quality_gate\": {{\"psnr_db\": {:.2}, \"threshold_db\": {:.2}, \
         \"pass\": {}}},\n",
        gate.psnr_db,
        gate.threshold_db,
        gate.pass(),
    ));
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"workers\": {}, \"precision\": \"{}\", \
             \"serial_ms\": {:.4}, \"parallel_ms\": {:.4}, \
             \"speedup\": {:.3}, \"bit_identical\": {}}}{}\n",
            cell.label,
            cell.workers,
            cell.precision,
            cell.serial_ms,
            cell.parallel_ms,
            cell.speedup(),
            cell.bit_identical,
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// End-to-end Inter-Intra-Holo run instrumented for the telemetry
/// timeline: planner → executor → quality/view → pipelined QoS, with the
/// simulated GPU kernel profile bridged onto the trace as its own track.
///
/// This is the experiment the observability docs point at: run it under
/// `repro inter-intra --trace-out trace.json --metrics-json metrics.json`
/// and the exported trace carries spans from every layer (`fft.*`,
/// `optics.*`, `core.*`, `pipeline.*`) plus the bridged `gpu.*` events.
pub fn inter_intra(cfg: &ExperimentConfig) -> String {
    use holoar_core::{executor, view};
    use holoar_pipeline::schedule::FrameLatencies;
    use holoar_sensors::objectron::FrameGenerator;

    // The full pipeline per frame is heavyweight; a handful of frames is
    // enough to populate every span category and the kernel profile.
    let frames = (cfg.frames / 10).clamp(2, 12) as usize;
    let ctx = ExecutionContext::serial();
    let config = HoloArConfig::for_scheme(Scheme::InterIntraHolo);
    let mut device = Device::xavier();
    let mut planner = Planner::new(config).unwrap();
    let mut profiler = Profiler::new();
    // Shoe is the busiest category (2.3 objects/frame) — the plan reliably
    // has computed objects for the profiler/quality/view passes below.
    let mut gen = FrameGenerator::new(VideoCategory::Shoe, cfg.seed);
    let pose = PoseEstimate { orientation: AngularPoint::CENTER, latency: 0.01375 };

    let mut latencies = Vec::with_capacity(frames);
    let mut psnr_sum = 0.0;
    let mut psnr_n = 0u32;
    let mut view_luminance = 0.0;
    let mut planes_total = 0u32;
    let mut quality_done = false;
    for _ in 0..frames {
        let frame = gen.next().expect("generator is infinite");
        let plan = planner.plan_frame(&frame, &pose, AngularPoint::CENTER, 0.0044);
        planes_total += plan.total_planes();
        // Profile every frame's kernel sequence so the bridged GPU track
        // carries the same workload the executor accounts.
        for item in plan.items.iter().filter(|it| it.needs_compute()) {
            let job = HologramJob {
                pixels: calibration::HOLOGRAM_PIXELS,
                plane_count: item.planes,
                coverage: item.coverage.clamp(f64::MIN_POSITIVE, 1.0),
                gsw_iterations: calibration::GSW_ITERATIONS,
            };
            for stats in device.execute_all(&hologram_kernels::job_kernels(&job)) {
                profiler.record(&stats);
            }
        }
        // One optical quality + view pass (on the first frame that displays
        // anything) exercises the fft/optics span taxonomy without
        // dominating the run.
        if !quality_done && plan.items.iter().any(|it| it.planes > 0 && it.coverage > 0.0) {
            quality_done = true;
            for item in plan.items.iter().filter(|it| it.planes > 0) {
                let p = quality::object_psnr(&item.object, item.planes, &config, &ctx);
                if p.is_finite() {
                    psnr_sum += p;
                    psnr_n += 1;
                }
            }
            let viewport = view::render_view(&plan.items, &pose.viewing_window(), 32, 48, &ctx);
            view_luminance = viewport.total_luminance();
        }
        let perf = executor::execute_plan(&mut device, &plan);
        latencies.push(FrameLatencies {
            pose: pose.latency,
            eye: 0.0044,
            scene: 0.120,
            hologram: perf.latency,
        });
    }

    let report =
        holoar_pipeline::run_pipelined(frames as u64, |i| latencies[i as usize], &ctx);
    let bridged = holoar_gpusim::bridge_profiler(&profiler);

    let mut t = Table::new(["Quantity", "Value"]);
    t.row(["frames simulated".to_string(), frames.to_string()]);
    t.row(["planes planned (total)".to_string(), planes_total.to_string()]);
    t.row([
        "mean object PSNR (finite)".to_string(),
        if psnr_n > 0 { format!("{:.1} dB", psnr_sum / f64::from(psnr_n)) } else { "n/a".into() },
    ]);
    t.row(["view luminance".to_string(), format!("{view_luminance:.2}")]);
    t.row(["throughput".to_string(), format!("{:.2} fps", report.throughput_fps)]);
    t.row(["motion-to-photon".to_string(), format!("{:.1} ms", report.mean_latency * 1e3)]);
    t.row(["bottleneck".to_string(), format!("{:?}", report.bottleneck)]);
    t.row(["GPU kernels bridged".to_string(), bridged.to_string()]);
    format!(
        "== supplementary: Inter-Intra-Holo end-to-end (telemetry showcase) ==\n{}\
         run with --trace-out/--metrics-json to export the spans this pass emits\n",
        t.render()
    )
}

/// Robustness study: the deadline-aware degradation controller under
/// injected faults (`repro faults`).
///
/// Runs the Inter-Intra-Holo pipeline on the accelerator-class device of
/// [`holoar_faults::scenario::accelerated_device`] — where the nominal
/// frame *meets* its 33 ms deadline — and injects the GPU-contention
/// scenario (windows of 2× SM slowdown plus DRAM contention). Every frame
/// the controller predicts the hologram cost, walks the degradation ladder
/// when an overrun looms, and recovers hysteretically once headroom
/// returns. The report compares deadline-hit rate and capped PSNR with the
/// controller on versus off, lists every ladder transition, checks the
/// "never two consecutive overruns without a step-down" contract, and
/// prints the per-stage worst-case latencies of the degraded run. A second
/// pass under the full-stack scenario adds sensor dropouts and stage
/// overruns to exercise the planner's sensor-loss fallbacks.
///
/// Deterministic: two runs with the same `--seed` are byte-identical.
/// A fixated nominal sensor sample for the fault studies (gaze on the first
/// object, pose centered — as in the quality studies): the attended object
/// plans full planes, the periphery is approximated.
fn faulted_nominal(frame: &holoar_sensors::objectron::Frame) -> holoar_core::SensorSample {
    use holoar_core::{GazeInput, PoseInput, SensorSample};
    use holoar_sensors::eyetrack::GazeEstimate;
    let gaze = frame.objects.first().map(|o| o.direction).unwrap_or(AngularPoint::CENTER);
    SensorSample {
        pose: PoseInput::Tracked(PoseEstimate {
            orientation: AngularPoint::CENTER,
            latency: 0.01375,
        }),
        gaze: GazeInput::Tracked(GazeEstimate { direction: gaze, latency: 0.0044 }),
    }
}

/// Hologram-stage cost of planning `frame` at `config` on the derated
/// device: the sum of the simulated kernel latencies, without the fixed
/// executor overhead (the stage deadline budgets the hologram kernels).
fn faulted_stage_cost(
    config: &HoloArConfig,
    frame: &holoar_sensors::objectron::Frame,
    sample: &holoar_core::SensorSample,
    flt: &holoar_faults::FrameFaults,
    device_cfg: &holoar_gpusim::DeviceConfig,
) -> f64 {
    let mut planner = Planner::new(*config).expect("ladder configs stay valid");
    let plan = planner.plan_frame_with(frame, sample);
    let mut device =
        Device::new(flt.derate_device(device_cfg)).expect("derated device stays valid");
    let mut latency = 0.0;
    for item in plan.items.iter().filter(|it| it.needs_compute()) {
        let job = HologramJob {
            pixels: calibration::HOLOGRAM_PIXELS,
            plane_count: item.planes,
            coverage: item.coverage.clamp(f64::MIN_POSITIVE, 1.0),
            gsw_iterations: calibration::GSW_ITERATIONS,
        };
        latency += hologram_kernels::run_job(&mut device, &job).latency;
    }
    latency
}

/// The standard faulted workload: the GPU-contention acceptance scenario
/// (2× SM slowdown plus DRAM contention bursts) with the degradation
/// controller on, collapsed into a per-frame stage-latency stream. Shared
/// by the `faults` study (which reads the QoS accounting) and the
/// `pipeline` study (which replays the latency stream through the lockstep
/// and staged executors).
pub struct FaultedWorkload {
    /// Fault-perturbed per-frame stage latencies; the hologram stage is the
    /// controller-on planned cost on the derated device.
    pub latencies: Vec<holoar_pipeline::FrameLatencies>,
    /// Frames meeting the stage budget with the controller on.
    pub hits_on: u64,
    /// Frames meeting the stage budget with the controller off (always
    /// planning full quality).
    pub hits_off: u64,
    /// Frames the controller spent at each ladder level, shallow to deep.
    pub level_frames: [u64; 4],
    /// The controller after the run (transitions, overrun accounting).
    pub controller: holoar_core::degrade::DegradationController,
}

/// Replays the standard faulted workload (see [`FaultedWorkload`]) for
/// `cfg.frames` frames at `cfg.seed`.
pub fn faulted_workload(cfg: &ExperimentConfig) -> FaultedWorkload {
    use holoar_core::degrade::{DegradationController, DegradationLadder};
    use holoar_faults::scenario;
    use holoar_pipeline::schedule::FrameLatencies;
    use holoar_sensors::objectron::FrameGenerator;

    let base = HoloArConfig::for_scheme(Scheme::InterIntraHolo).without_reuse();
    let device_cfg = scenario::accelerated_device();
    let ladder = DegradationLadder::default();
    let budget = ladder.frame_budget;

    let injector = scenario::gpu_slowdown(cfg.seed).expect("preset scenario is valid");
    let mut ctl = DegradationController::new(ladder).expect("default ladder is valid");
    let mut gen = FrameGenerator::new(VideoCategory::Shoe, cfg.seed);
    let mut hits_on = 0u64;
    let mut hits_off = 0u64;
    let mut level_frames = [0u64; 4];
    let mut latencies = Vec::with_capacity(cfg.frames as usize);
    for i in 0..cfg.frames {
        let frame = gen.next().expect("generator is infinite");
        let flt = injector.frame(i);
        let sample = flt.degrade_sensors(&faulted_nominal(&frame));

        // Controller off: always plan at full quality.
        let full_cost = faulted_stage_cost(&base, &frame, &sample, &flt, &device_cfg);
        if full_cost <= budget {
            hits_off += 1;
        }

        // Controller on: plan at the level decide() picks.
        let level = ctl.decide(i);
        level_frames[level.index()] += 1;
        let cost = match ctl.config_for(&base) {
            // Full level plans the same frame the off-run just did.
            Some(config) if config == base => full_cost,
            Some(config) => faulted_stage_cost(&config, &frame, &sample, &flt, &device_cfg),
            // LastGood: re-present the cached hologram, reprojected.
            None => ladder.reproject_latency,
        };
        if cost <= budget {
            hits_on += 1;
        }
        ctl.observe(i, cost);
        latencies.push(flt.perturb_latencies(FrameLatencies {
            pose: 0.01375,
            eye: 0.0044,
            scene: 0.120,
            hologram: cost,
        }));
    }
    FaultedWorkload { latencies, hits_on, hits_off, level_frames, controller: ctl }
}

pub fn faults(cfg: &ExperimentConfig) -> String {
    use holoar_core::degrade::{DegradationController, DegradationLadder, DegradationLevel};
    use holoar_core::{GazeInput, PoseInput};
    use holoar_faults::scenario;
    use holoar_sensors::objectron::FrameGenerator;

    let base = HoloArConfig::for_scheme(Scheme::InterIntraHolo).without_reuse();
    let device_cfg = scenario::accelerated_device();
    let ctx = ExecutionContext::serial();
    let ladder = DegradationLadder::default();
    let budget = ladder.frame_budget;

    // -- acceptance pass: GPU contention, controller on vs off -----------
    let workload = faulted_workload(cfg);
    let FaultedWorkload { latencies, hits_on, hits_off, level_frames, controller: ctl } =
        workload;
    let pipelined =
        holoar_pipeline::run_pipelined(cfg.frames, |i| latencies[i as usize], &ctx);

    // -- full-stack pass: add sensor dropouts and stage overruns ---------
    let storm = scenario::full_stack(cfg.seed).expect("preset scenario is valid");
    let mut storm_ctl = DegradationController::new(ladder).expect("default ladder is valid");
    let mut storm_gen = FrameGenerator::new(VideoCategory::Shoe, cfg.seed);
    let storm_frames = cfg.frames.min(60);
    let mut storm_hits = 0u64;
    let mut gaze_lost = 0u64;
    let mut pose_lost = 0u64;
    for i in 0..storm_frames {
        let frame = storm_gen.next().expect("generator is infinite");
        let flt = storm.frame(i);
        let sample = flt.degrade_sensors(&faulted_nominal(&frame));
        gaze_lost += u64::from(matches!(sample.gaze, GazeInput::Lost));
        pose_lost += u64::from(matches!(sample.pose, PoseInput::Lost));
        storm_ctl.decide(i);
        let cost = match storm_ctl.config_for(&base) {
            Some(config) => faulted_stage_cost(&config, &frame, &sample, &flt, &device_cfg),
            None => ladder.reproject_latency,
        };
        if cost + flt.stage_overrun <= budget {
            storm_hits += 1;
        }
        storm_ctl.observe(i, cost + flt.stage_overrun);
    }

    // Display quality, Fig 10a methodology: fleet-mean capped PSNR of each
    // ladder configuration, weighted by the frames the controller spent
    // there. LastGood maps to the floor-beta configuration (the hologram it
    // re-presents was computed at that level or better).
    let sample_frames = (cfg.frames / 30).clamp(2, 8);
    let fleet_psnr = |config: &HoloArConfig| -> f64 {
        let mut sum = 0.0;
        let mut n = 0u32;
        for &v in &VideoCategory::ALL {
            let vq = quality::video_quality(v, *config, sample_frames, cfg.seed, &ctx);
            if let Some(p) = vq.mean_psnr_capped() {
                sum += p;
                n += 1;
            }
        }
        sum / f64::from(n.max(1))
    };
    let full_psnr = fleet_psnr(&base);
    let mut weighted_psnr = 0.0;
    let mut lvl = Table::new(["Ladder level", "Frames", "Fleet PSNR (dB, capped 50)"]);
    for level in DegradationLevel::ALL {
        let frames_at = level_frames[level.index()];
        let psnr = if level == DegradationLevel::Full {
            full_psnr
        } else if frames_at > 0 {
            fleet_psnr(&ladder.apply(level, &base))
        } else {
            f64::NAN
        };
        weighted_psnr += if frames_at > 0 { psnr * frames_at as f64 } else { 0.0 };
        lvl.row([
            level.name().to_string(),
            frames_at.to_string(),
            if psnr.is_nan() { "-".to_string() } else { format!("{psnr:.1}") },
        ]);
    }
    weighted_psnr /= cfg.frames as f64;

    let mut t = Table::new(["Quantity", "controller on", "controller off"]);
    t.row([
        "deadline hit rate".to_string(),
        pct(hits_on as f64 / cfg.frames as f64),
        pct(hits_off as f64 / cfg.frames as f64),
    ]);
    t.row([
        "display PSNR (occupancy-weighted)".to_string(),
        format!("{weighted_psnr:.1} dB"),
        format!("{full_psnr:.1} dB"),
    ]);
    t.row([
        "overruns".to_string(),
        ctl.overruns().to_string(),
        (cfg.frames - hits_off).to_string(),
    ]);

    let mut trans = String::new();
    for tr in ctl.transitions().iter().take(10) {
        trans.push_str(&format!(
            "  frame {:>4}: {} -> {} ({})\n",
            tr.frame,
            tr.from.name(),
            tr.to.name(),
            tr.reason.name()
        ));
    }
    if ctl.transitions().len() > 10 {
        trans.push_str(&format!("  ... {} more\n", ctl.transitions().len() - 10));
    }

    let worst = &pipelined.worst;
    format!(
        "== supplementary: graceful degradation under injected faults ==\n\
         scenario: GPU contention (2x SM slowdown + DRAM contention bursts), \
         seed {}, {} frames, {} stage budget\n{}\n\
         ladder transitions ({}):\n{}\
         max consecutive overruns without step-down: {} (contract: <= 1)\n\
         worst-case stage latency: pose {} | eye {} | scene {} | hologram {} \
         | frame {}\n\
         full-stack scenario ({} frames): hit rate {}, gaze lost {} frames, \
         pose lost {} frames, transitions {}\n",
        cfg.seed,
        cfg.frames,
        ms(budget),
        t.render(),
        ctl.transitions().len(),
        trans,
        ctl.max_overruns_without_stepdown(),
        ms(worst.pose),
        ms(worst.eye),
        ms(worst.scene),
        ms(worst.hologram),
        ms(worst.total),
        storm_frames,
        pct(storm_hits as f64 / storm_frames as f64),
        gaze_lost,
        pose_lost,
        storm_ctl.transitions().len(),
    ) + &lvl.render()
}

/// Measurements behind the `pipeline` experiment: the staged
/// producer–consumer executor versus the lockstep frame loop over the same
/// standard faulted workload (see [`faulted_workload`]).
pub struct PipelineMeasurements {
    /// Frames replayed.
    pub frames: u64,
    /// Staged-executor report (identical at every [`BENCH_WORKERS`] count
    /// when `bit_identical` holds; this is the serial-context run).
    pub staged: holoar_pipeline::StagedReport,
    /// Whether the staged report was bit-identical across all
    /// [`BENCH_WORKERS`] worker counts.
    pub bit_identical: bool,
    /// Queue bounds and present costs the staged run used.
    pub config: holoar_pipeline::StagedConfig,
    /// Lockstep baseline over the same latency stream.
    pub lockstep: holoar_pipeline::QosReport,
    /// Lockstep throughput with the present stage charged serially
    /// (`1 / (mean frame latency + present cost)`): the lockstep loop does
    /// not model display composition, so the staged figures — which do —
    /// are compared against this corrected baseline.
    pub lockstep_fps: f64,
    /// Lockstep p99 *service time* (frame latency plus the serial present
    /// cost). This is the generous baseline: it starts each frame's clock
    /// only when the loop gets around to it, hiding the backlog a serial
    /// loop accumulates under sustained sensor input.
    pub lockstep_p99: f64,
    /// Lockstep p99 *sensor-to-photon* latency under sustained input: both
    /// executors are fed the identical capture timeline (the sensor
    /// front-end emits a fused sample each time it finishes the previous
    /// one — exactly the staged executor's ingest pace), and latency is
    /// measured from capture to present. The staged executor is
    /// ingest-bound, so it consumes samples at the rate the front-end
    /// produces them; the lockstep loop's service time exceeds the sample
    /// interval, so its backlog — and this figure — grows with the run.
    pub lockstep_sustained_p99: f64,
    /// `staged.throughput_fps / lockstep_fps`.
    pub speedup: f64,
    /// `staged.latency_p99 / lockstep_sustained_p99` — the like-for-like
    /// sensor-to-photon tail comparison (must stay ≤ 1: "p99 no worse").
    pub p99_ratio: f64,
}

/// Replays the standard faulted workload through the lockstep loop and the
/// staged executor at every [`BENCH_WORKERS`] count, asserting bit-identity
/// of the staged report across worker counts.
pub fn pipeline_measurements(cfg: &ExperimentConfig) -> PipelineMeasurements {
    let workload = faulted_workload(cfg);
    let latencies = workload.latencies;
    let config = holoar_pipeline::StagedConfig::default();

    let staged = holoar_pipeline::run_staged(
        cfg.frames,
        &config,
        |i| latencies[i as usize],
        &ExecutionContext::serial(),
    );
    let mut bit_identical = true;
    for workers in BENCH_WORKERS {
        let ctx = ExecutionContext::with_workers(workers);
        let report =
            holoar_pipeline::run_staged(cfg.frames, &config, |i| latencies[i as usize], &ctx);
        bit_identical &= report == staged;
    }

    let lockstep = holoar_pipeline::run_loop(cfg.frames, |i| latencies[i as usize]);
    // The staged latencies span ingest-start to present-done; the lockstep
    // loop stops at hologram-done. Charge the lockstep baseline the same
    // serial present cost so both sides measure sensor-to-photon.
    let lockstep_fps = 1.0 / (lockstep.mean_frame_latency + config.present_latency);
    let lockstep_p99 = lockstep.latency_p99 + config.present_latency;

    // Sustained-input lockstep: sample i is captured at `capture[i]` (the
    // sensor front-end paces itself — same timeline the staged ingest
    // stage runs on), the loop picks it up when it finishes frame i-1, and
    // latency is capture-to-present. Serial per-frame service exceeds the
    // capture interval, so the loop falls progressively behind.
    let mut sustained = holoar_telemetry::QuantileSketch::default();
    let mut capture = 0.0f64;
    let mut free = 0.0f64;
    for i in 0..cfg.frames {
        let lat = holoar_pipeline::apply_scene_cadence(i, latencies[i as usize]);
        let start = if free > capture { free } else { capture };
        let finish = start + lat.ingest() + lat.hologram + config.present_latency;
        sustained.record(finish - capture);
        free = finish;
        capture += lat.ingest();
    }
    let lockstep_sustained_p99 = sustained.p99().unwrap_or(0.0);

    let speedup = staged.throughput_fps / lockstep_fps;
    let p99_ratio = staged.latency_p99 / lockstep_sustained_p99.max(f64::MIN_POSITIVE);
    PipelineMeasurements {
        frames: cfg.frames,
        staged,
        bit_identical,
        config,
        lockstep,
        lockstep_fps,
        lockstep_p99,
        lockstep_sustained_p99,
        speedup,
        p99_ratio,
    }
}

/// Staged pipeline study: lockstep vs ingest ∥ compute ∥ present over the
/// standard faulted workload, with the bit-identity check across
/// [`BENCH_WORKERS`].
pub fn pipeline(cfg: &ExperimentConfig) -> String {
    let m = pipeline_measurements(cfg);
    let s = &m.staged;

    let mut t = Table::new(["Quantity", "lockstep (serial present)", "staged"]);
    t.row([
        "throughput".to_string(),
        format!("{:.1} fps", m.lockstep_fps),
        format!("{:.1} fps", s.throughput_fps),
    ]);
    t.row([
        "mean sensor-to-photon".to_string(),
        ms(m.lockstep.mean_frame_latency + m.config.present_latency),
        ms(s.mean_latency),
    ]);
    t.row([
        "p50 latency".to_string(),
        ms(m.lockstep.latency_p50 + m.config.present_latency),
        ms(s.latency_p50),
    ]);
    t.row(["p99 service time".to_string(), ms(m.lockstep_p99), ms(s.latency_p99)]);
    t.row([
        "p99 sensor-to-photon (sustained input)".to_string(),
        ms(m.lockstep_sustained_p99),
        ms(s.latency_p99),
    ]);
    t.row([
        "fresh / stale frames".to_string(),
        format!("{} / 0", m.frames),
        format!("{} / {}", s.fresh_frames, s.stale_frames),
    ]);

    format!(
        "== staged pipeline executor: lockstep vs ingest || compute || present ==\n\
         workload: standard faulted scenario (GPU contention, controller on), \
         seed {}, {} frames; queues compute {} / present {}\n{}\
         speedup: {:.2}x (floor 1.15x) | sustained p99 ratio: {:.3} (must stay <= 1)\n\
         (staged keeps up with the sensor front-end; the lockstep loop falls \
         behind sustained capture, so its true tail grows with the run)\n\
         queue drops: compute {} (oldest-first, presented stale), present {} \
         | high water: compute {} / present {}\n\
         bottleneck stage: {} | bit-identical across workers {:?}: {}\n",
        cfg.seed,
        m.frames,
        m.config.compute_queue,
        m.config.present_queue,
        t.render(),
        m.speedup,
        m.p99_ratio,
        s.compute_drops,
        s.present_drops,
        s.max_compute_depth,
        s.max_present_depth,
        s.bottleneck,
        BENCH_WORKERS,
        if m.bit_identical { "yes" } else { "NO" },
    )
}

/// `BENCH_pipeline.json`: the `pipeline` experiment as a machine-readable
/// artifact for the perf gate. Deterministic — byte-identical across reruns
/// and worker counts at a fixed seed.
pub fn pipeline_bench_json(cfg: &ExperimentConfig) -> String {
    let m = pipeline_measurements(cfg);
    let s = &m.staged;
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"pipeline\",\n");
    out.push_str(&format!("  \"frames\": {},\n", m.frames));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!(
        "  \"workers\": [{}],\n",
        BENCH_WORKERS.map(|w| w.to_string()).join(", ")
    ));
    out.push_str(&format!("  \"bit_identical\": {},\n", m.bit_identical));
    out.push_str(&format!("  \"present_latency_s\": {:.6},\n", m.config.present_latency));
    out.push_str(&format!("  \"compute_queue\": {},\n", m.config.compute_queue));
    out.push_str(&format!("  \"present_queue\": {},\n", m.config.present_queue));
    out.push_str(&format!(
        "  \"staged\": {{\"throughput_fps\": {:.6}, \"mean_latency_s\": {:.9}, \
         \"latency_p50_s\": {:.9}, \"latency_p99_s\": {:.9}, \"fresh_frames\": {}, \
         \"stale_frames\": {}, \"compute_drops\": {}, \"present_drops\": {}, \
         \"max_compute_depth\": {}, \"max_present_depth\": {}, \"bottleneck\": \"{}\"}},\n",
        s.throughput_fps,
        s.mean_latency,
        s.latency_p50,
        s.latency_p99,
        s.fresh_frames,
        s.stale_frames,
        s.compute_drops,
        s.present_drops,
        s.max_compute_depth,
        s.max_present_depth,
        s.bottleneck,
    ));
    out.push_str(&format!(
        "  \"lockstep\": {{\"throughput_fps\": {:.6}, \"latency_p50_s\": {:.9}, \
         \"latency_p99_s\": {:.9}, \"sustained_p99_s\": {:.9}, \
         \"deadline_hit_rate\": {:.6}}},\n",
        m.lockstep_fps,
        m.lockstep.latency_p50 + m.config.present_latency,
        m.lockstep_p99,
        m.lockstep_sustained_p99,
        m.lockstep.deadline_hit_rate,
    ));
    out.push_str(&format!("  \"speedup\": {:.6},\n", m.speedup));
    out.push_str(&format!("  \"p99_ratio\": {:.6}\n", m.p99_ratio));
    out.push('}');
    out.push('\n');
    out
}

/// Fleet sizes the `serve` experiment visits when `--sessions` is not
/// given: the 1 → 16 sweep from the serving-layer study, extended past the
/// 90 Hz saturation point so the report shows QoS shedding engage.
pub const SERVE_SWEEP: [u32; 7] = [1, 2, 4, 8, 12, 16, 24];

/// Runs the multi-session serving load generator once per fleet size and
/// returns `(sessions, report)` rows. Serial execution context: the closed
/// form device model makes every figure independent of the host, so the
/// rows — and the JSON artifact built from them — are byte-stable at a
/// fixed seed.
pub fn serve_measurements(cfg: &ExperimentConfig) -> Vec<(u32, holoar_serve::ServeReport)> {
    let ctx = ExecutionContext::serial();
    let counts: Vec<u32> =
        cfg.sessions.map_or_else(|| SERVE_SWEEP.to_vec(), |n| vec![n]);
    counts
        .into_iter()
        .map(|n| {
            let config = holoar_serve::ServeConfig::fleet(
                holoar_serve::DeviceSpec::edge(),
                holoar_serve::SessionSpec::fleet(n, cfg.seed),
                cfg.frames,
            );
            let report =
                holoar_serve::run_serve(&config, &ctx).expect("fleet configs are valid");
            (n, report)
        })
        .collect()
}

/// Worst per-session gap between occupancy-weighted PSNR and the session's
/// own full-quality baseline, in dB (the acceptance bound is 0.5 dB while
/// the fleet fits the device).
fn serve_worst_psnr_gap(report: &holoar_serve::ServeReport) -> f64 {
    report
        .sessions
        .iter()
        .map(|s| (s.psnr_weighted - s.psnr_full).abs())
        .fold(0.0, f64::max)
}

/// Tentpole study: N concurrent AR sessions multiplexed onto one serving
/// device with cross-session plane batching, versus the same fleet run as
/// independent per-plane sequential pipelines.
pub fn serve(cfg: &ExperimentConfig) -> String {
    let rows = serve_measurements(cfg);
    let mut t = Table::new([
        "Sessions", "Admitted", "Agg fps", "Seq fps", "Speedup", "Hit rate", "p50", "p99",
        "Occup", "ΔPSNR", "QoS", "Deferred",
    ]);
    for (n, r) in &rows {
        let qos: u64 = r.sessions.iter().map(|s| s.qos_step_downs).sum();
        let deferred: u64 = r.sessions.iter().map(|s| s.deferred).sum();
        t.row([
            n.to_string(),
            r.admitted.to_string(),
            format!("{:.0}", r.aggregate_fps),
            format!("{:.0}", r.sequential_fps),
            format!("{:.2}x", r.speedup_vs_sequential),
            pct(r.deadline_hit_rate),
            ms(r.latency_p50),
            ms(r.latency_p99),
            format!("{:.2}", r.mean_occupancy),
            format!("{:.2} dB", serve_worst_psnr_gap(r)),
            qos.to_string(),
            deferred.to_string(),
        ]);
    }
    format!(
        "== serving layer: cross-session plane batching (seed {}, {} frames, 90 Hz budget) ==\n{}\
         speedup is batched aggregate throughput over the per-plane sequential schedule; \
         ΔPSNR is the worst session's occupancy-weighted drift from its single-session \
         baseline; QoS counts focus-guided single-victim step-downs \
         (export the sweep with --serve-json BENCH_serve.json)\n",
        cfg.seed,
        cfg.frames,
        t.render(),
    )
}

/// The [`serve`] sweep as a JSON artifact (`BENCH_serve.json`),
/// hand-serialized like [`parallel_bench_json`] to keep the workspace
/// dependency-free. Byte-identical across reruns at a fixed seed.
pub fn serve_bench_json(cfg: &ExperimentConfig) -> String {
    let rows = serve_measurements(cfg);
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"serve\",\n");
    out.push_str(&format!("  \"frames\": {},\n", cfg.frames));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!(
        "  \"frame_budget_s\": {:.6},\n",
        holoar_serve::SERVE_FRAME_BUDGET
    ));
    out.push_str("  \"sweep\": [\n");
    for (i, (n, r)) in rows.iter().enumerate() {
        let qos: u64 = r.sessions.iter().map(|s| s.qos_step_downs).sum();
        let deferred: u64 = r.sessions.iter().map(|s| s.deferred).sum();
        let psnr_weighted = r.sessions.iter().map(|s| s.psnr_weighted).sum::<f64>()
            / r.sessions.len().max(1) as f64;
        out.push_str(&format!(
            "    {{\"sessions\": {n}, \"admitted\": {}, \"aggregate_fps\": {:.4}, \
             \"sequential_fps\": {:.4}, \"speedup\": {:.4}, \"deadline_hit_rate\": {:.6}, \
             \"latency_p50_s\": {:.6}, \"latency_p99_s\": {:.6}, \"mean_occupancy\": {:.6}, \
             \"psnr_weighted_db\": {:.4}, \"psnr_gap_db\": {:.4}, \"merged_launches\": {}, \
             \"launches_saved\": {}, \"qos_step_downs\": {qos}, \"deferred\": {deferred}}}{}\n",
            r.admitted,
            r.aggregate_fps,
            r.sequential_fps,
            r.speedup_vs_sequential,
            r.deadline_hit_rate,
            r.latency_p50,
            r.latency_p99,
            r.mean_occupancy,
            psnr_weighted,
            serve_worst_psnr_gap(r),
            r.merged_launches,
            r.launches_saved,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the SLO observability fleet once: `--sessions` sessions (default 8)
/// with full per-session SLO tracking. Uses the auto execution context
/// (`HOLOAR_THREADS` sizes the pool) so the byte-identity CI check
/// genuinely exercises worker counts; the serving engine guarantees the
/// report is bit-identical regardless.
pub fn slo_measurements(cfg: &ExperimentConfig) -> (u32, holoar_serve::ServeReport) {
    let ctx = ExecutionContext::auto();
    let sessions = cfg.sessions.unwrap_or(8);
    let config = holoar_serve::ServeConfig::fleet(
        holoar_serve::DeviceSpec::edge(),
        holoar_serve::SessionSpec::fleet(sessions, cfg.seed),
        cfg.frames,
    );
    let report = holoar_serve::run_serve(&config, &ctx).expect("fleet configs are valid");
    (sessions, report)
}

/// Observability study: the SLO dashboard for one serving fleet —
/// per-session sketch quantiles, error budgets, burn-rate alerts,
/// signal-annotated step-downs, and critical-path stage attribution
/// (`repro slo`, exported with `--slo-json BENCH_slo.json`).
pub fn slo(cfg: &ExperimentConfig) -> String {
    let (sessions, report) = slo_measurements(cfg);
    let fleet = &report.slo;
    let mut out = format!(
        "== SLO dashboard: {sessions}-session fleet (seed {}, {} frames, target {:.0}%, \
         sketch α {:.1}%) ==\n\
         fleet latency p50 {} | p90 {} | p99 {} | p99.9 {}\n\
         error budget remaining {:.1}% — burn alerts: {} fast, {} slow\n\
         recent window ({} ticks): hit rate {}, queue depth {:.2}, occupancy {:.2}\n\n",
        cfg.seed,
        cfg.frames,
        fleet.target * 100.0,
        fleet.sketch_alpha * 100.0,
        ms(fleet.latency_p50),
        ms(fleet.latency_p90),
        ms(fleet.latency_p99),
        ms(fleet.latency_p999),
        fleet.error_budget_remaining * 100.0,
        fleet.fast_burn_events,
        fleet.slow_burn_events,
        holoar_serve::SloConfig::default().fast_window,
        pct(fleet.recent_hit_rate),
        fleet.recent_queue_depth,
        fleet.recent_occupancy,
    );

    let mut t = Table::new([
        "Session",
        "Video",
        "p50",
        "p99",
        "p99.9",
        "Budget left",
        "Burns",
        "Step-downs",
        "Recent lvl",
        "Worst tick",
        "Dominant stage",
    ]);
    for s in &report.sessions {
        let dominant = s
            .slo
            .worst_frame_path
            .last()
            .map_or_else(|| "-".to_string(), |(name, _)| name.clone());
        t.row([
            s.id.to_string(),
            s.video.to_string(),
            ms(s.slo.latency_p50),
            ms(s.slo.latency_p99),
            ms(s.slo.latency_p999),
            pct(s.slo.error_budget_remaining),
            s.slo.burn_events.len().to_string(),
            s.slo.step_downs.len().to_string(),
            format!("{:.2}", s.slo.recent_level),
            s.slo.worst_frame.to_string(),
            dominant,
        ]);
    }
    out.push_str(&t.render());

    // Fleet-wide critical-path attribution: per-stage self time summed over
    // every session's synthesized span trees.
    let mut totals: std::collections::BTreeMap<&str, f64> = std::collections::BTreeMap::new();
    for s in &report.sessions {
        for row in &s.slo.stages {
            *totals.entry(row.stage.as_str()).or_insert(0.0) += row.total_s;
        }
    }
    let grand: f64 = totals.values().sum();
    let mut rows: Vec<(&str, f64)> = totals.into_iter().collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
    let mut stage_table = Table::new(["Stage", "Total (ms)", "Share"]);
    for (stage, total_s) in &rows {
        stage_table.row([
            (*stage).to_string(),
            format!("{:.2}", total_s * 1e3),
            pct(total_s / grand.max(f64::MIN_POSITIVE)),
        ]);
    }
    out.push_str("\n-- critical-path stage attribution (fleet) --\n");
    out.push_str(&stage_table.render());

    // Every step-down names its triggering signal (the acceptance bar).
    let mut signals = String::new();
    let mut shown = 0usize;
    let mut total_downs = 0usize;
    for s in &report.sessions {
        for tr in &s.slo.step_downs {
            total_downs += 1;
            if shown < 12 {
                signals.push_str(&format!(
                    "  session {:>2} frame {:>4}: {} -> {} ({}, signal: {})\n",
                    s.id,
                    tr.frame,
                    tr.from.name(),
                    tr.to.name(),
                    tr.reason.name(),
                    tr.signal,
                ));
                shown += 1;
            }
        }
    }
    if total_downs > shown {
        signals.push_str(&format!("  ... {} more\n", total_downs - shown));
    }
    out.push_str(&format!("\n-- degradation step-downs ({total_downs}), each with its SLO signal --\n"));
    out.push_str(if signals.is_empty() { "  (none — the fleet fit its budget)\n" } else { &signals });
    out
}

/// The [`slo`] run as a JSON artifact (`BENCH_slo.json`): session-level
/// p50/p99/p99.9, burn-rate events, signal-annotated step-downs, and the
/// critical-path stage breakdown. Hand-serialized; byte-identical across
/// reruns and worker counts at a fixed seed.
pub fn slo_bench_json(cfg: &ExperimentConfig) -> String {
    let (sessions, report) = slo_measurements(cfg);
    let fleet = &report.slo;
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"slo\",\n");
    out.push_str(&format!("  \"sessions\": {sessions},\n"));
    out.push_str(&format!("  \"frames\": {},\n", cfg.frames));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"target\": {:.4},\n", fleet.target));
    out.push_str(&format!("  \"sketch_alpha\": {:.4},\n", fleet.sketch_alpha));
    out.push_str(&format!(
        "  \"fleet\": {{\"latency_p50_s\": {:.6}, \"latency_p90_s\": {:.6}, \
         \"latency_p99_s\": {:.6}, \"latency_p999_s\": {:.6}, \
         \"error_budget_remaining\": {:.6}, \"fast_burn_events\": {}, \
         \"slow_burn_events\": {}, \"recent_hit_rate\": {:.6}, \
         \"recent_queue_depth\": {:.4}, \"recent_occupancy\": {:.6}}},\n",
        fleet.latency_p50,
        fleet.latency_p90,
        fleet.latency_p99,
        fleet.latency_p999,
        fleet.error_budget_remaining,
        fleet.fast_burn_events,
        fleet.slow_burn_events,
        fleet.recent_hit_rate,
        fleet.recent_queue_depth,
        fleet.recent_occupancy,
    ));
    out.push_str("  \"session_slo\": [\n");
    for (i, s) in report.sessions.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": {}, \"video\": \"{}\", \"latency_p50_s\": {:.6}, \
             \"latency_p99_s\": {:.6}, \"latency_p999_s\": {:.6}, \
             \"error_budget_remaining\": {:.6}, \"recent_level\": {:.4}, \
             \"worst_frame\": {}, \"worst_frame_latency_s\": {:.6},\n",
            s.id,
            s.video,
            s.slo.latency_p50,
            s.slo.latency_p99,
            s.slo.latency_p999,
            s.slo.error_budget_remaining,
            s.slo.recent_level,
            s.slo.worst_frame,
            s.slo.worst_frame_latency,
        ));
        out.push_str("     \"burn_events\": [");
        for (j, e) in s.slo.burn_events.iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"frame\": {}, \"window\": \"{}\", \"burn_rate\": {:.4}, \
                 \"budget_remaining\": {:.6}}}",
                if j > 0 { ", " } else { "" },
                e.frame,
                e.window,
                e.burn_rate,
                e.budget_remaining,
            ));
        }
        out.push_str("],\n     \"step_downs\": [");
        for (j, tr) in s.slo.step_downs.iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"frame\": {}, \"from\": \"{}\", \"to\": \"{}\", \
                 \"reason\": \"{}\", \"signal\": \"{}\"}}",
                if j > 0 { ", " } else { "" },
                tr.frame,
                tr.from.name(),
                tr.to.name(),
                tr.reason.name(),
                tr.signal,
            ));
        }
        out.push_str("],\n     \"stages\": [");
        for (j, row) in s.slo.stages.iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"stage\": \"{}\", \"total_s\": {:.6}, \"share\": {:.6}}}",
                if j > 0 { ", " } else { "" },
                row.stage,
                row.total_s,
                row.share,
            ));
        }
        out.push_str("],\n     \"critical_path\": [");
        for (j, (name, secs)) in s.slo.worst_frame_path.iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"span\": \"{}\", \"dur_s\": {:.6}}}",
                if j > 0 { ", " } else { "" },
                name,
                secs,
            ));
        }
        out.push_str(&format!("]}}{}\n", if i + 1 < report.sessions.len() { "," } else { "" }));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Device counts the `fleet` experiment sweeps: weak scaling, with
/// [`FLEET_SESSIONS_PER_DEVICE`] sessions offered per device.
pub const FLEET_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Offered sessions per device in the [`FLEET_SWEEP`] (overridable with
/// `--sessions`).
pub const FLEET_SESSIONS_PER_DEVICE: u32 = 12;

/// Everything the `fleet` experiment measures: the weak-scaling sweep, the
/// mid-run device-kill scenario, and the thousands-of-sessions scale probe.
pub struct FleetMeasurements {
    /// `(devices, report)` per sweep point, sessions ∝ devices.
    pub rows: Vec<(usize, holoar_serve::FleetReport)>,
    /// The kill scenario's fleet report (4 devices, device 0 killed
    /// mid-run).
    pub kill: holoar_serve::FleetReport,
    /// Device index killed in the kill scenario.
    pub kill_device: usize,
    /// Tick the kill fires.
    pub kill_tick: u64,
    /// `(offered sessions, report)` of the scale probe: a short run with a
    /// thousands-strong session population on the widest fleet.
    pub scale: (u32, holoar_serve::FleetReport),
}

/// Runs the fleet sweep + kill + scale scenarios. Sequential virtual-time
/// loops make every row byte-stable at a fixed seed regardless of
/// `HOLOAR_THREADS`.
pub fn fleet_measurements(cfg: &ExperimentConfig) -> FleetMeasurements {
    let per_device = cfg.sessions.unwrap_or(FLEET_SESSIONS_PER_DEVICE);
    let rows = FLEET_SWEEP
        .iter()
        .map(|&k| {
            let config = holoar_serve::FleetConfig::sweep(
                k,
                per_device * k as u32,
                cfg.frames,
                cfg.seed,
            );
            let report = holoar_serve::run_fleet(&config).expect("sweep configs are valid");
            (k, report)
        })
        .collect();
    // The acceptance scenario: a 4-device fleet loses device 0 halfway
    // through; live migration must carry its tenants to the survivors.
    let kill_device = 0usize;
    let kill_tick = cfg.frames / 2;
    let kill_config = holoar_serve::FleetConfig {
        kill: Some((kill_device, kill_tick)),
        ..holoar_serve::FleetConfig::sweep(4, per_device * 4, cfg.frames, cfg.seed)
    };
    let kill = holoar_serve::run_fleet(&kill_config).expect("kill config is valid");
    // Scale probe: the session population the paper's edge deployments talk
    // about — thousands of sessions churning across the widest fleet, run
    // short since only admission/placement throughput is under test.
    let scale_sessions = per_device * 128;
    let scale_config = holoar_serve::FleetConfig::sweep(
        8,
        scale_sessions,
        (cfg.frames / 5).max(10),
        cfg.seed,
    );
    let scale = holoar_serve::run_fleet(&scale_config).expect("scale config is valid");
    FleetMeasurements { rows, kill, kill_device, kill_tick, scale: (scale_sessions, scale) }
}

/// Tentpole study: session multiplexing across K simulated edge devices —
/// least-loaded locality-aware placement, periodic admission re-probing,
/// and live migration through overloads and a mid-run device kill.
pub fn fleet(cfg: &ExperimentConfig) -> String {
    let m = fleet_measurements(cfg);
    let base_fps = m.rows[0].1.aggregate_fps;
    let mut t = Table::new([
        "Devices", "Offered", "Admitted", "Agg fps", "Scaling", "Hit rate", "p50", "p99",
        "Migr", "Reprobes",
    ]);
    for (k, r) in &m.rows {
        t.row([
            k.to_string(),
            r.offered.to_string(),
            r.admitted.to_string(),
            format!("{:.0}", r.aggregate_fps),
            format!("{:.2}x", r.aggregate_fps / base_fps.max(f64::MIN_POSITIVE)),
            pct(r.hit_rate),
            ms(r.latency_p50),
            ms(r.latency_p99),
            r.migrations.to_string(),
            r.reprobes.to_string(),
        ]);
    }
    let kill = &m.kill;
    let (scale_sessions, scale) = &m.scale;
    format!(
        "== fleet serving: K-device placement, re-probing, live migration \
         (seed {}, {} frames, 90 Hz budget) ==\n{}\
         scaling is aggregate throughput over the 1-device row (weak scaling: \
         offered sessions grow with K)\n\n\
         -- device-kill scenario: 4 devices, device {} killed at tick {} --\n\
         migrations {} ({} kill-forced, {} overload), orphaned {}, \
         hit rate {} through the kill, p99 {}\n\n\
         -- scale probe: {} sessions offered to 8 devices ({} ticks) --\n\
         admitted {}, peak active {}, rejected {}, aggregate {:.0} fps, hit rate {}\n\
         (export the sweep with --json BENCH_fleet.json)\n",
        cfg.seed,
        cfg.frames,
        t.render(),
        m.kill_device,
        m.kill_tick,
        kill.migrations,
        kill.kill_migrations,
        kill.overload_migrations,
        kill.orphaned,
        pct(kill.hit_rate),
        ms(kill.latency_p99),
        scale_sessions,
        scale.frames,
        scale.admitted,
        scale.peak_active,
        scale.rejected,
        scale.aggregate_fps,
        pct(scale.hit_rate),
    )
}

/// The [`fleet`] study as a JSON artifact (`BENCH_fleet.json`),
/// hand-serialized like the other artifacts. Byte-identical across reruns
/// and `HOLOAR_THREADS` at a fixed seed; `repro perf-gate --fleet` enforces
/// the scaling and kill-survival floors on it.
pub fn fleet_bench_json(cfg: &ExperimentConfig) -> String {
    let m = fleet_measurements(cfg);
    let base_fps = m.rows[0].1.aggregate_fps;
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"fleet\",\n");
    out.push_str(&format!("  \"frames\": {},\n", cfg.frames));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!(
        "  \"sessions_per_device\": {},\n",
        cfg.sessions.unwrap_or(FLEET_SESSIONS_PER_DEVICE)
    ));
    out.push_str(&format!(
        "  \"frame_budget_s\": {:.6},\n",
        holoar_serve::EDGE_FRAME_BUDGET
    ));
    out.push_str("  \"sweep\": [\n");
    for (i, (k, r)) in m.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"devices\": {k}, \"offered\": {}, \"admitted\": {}, \"rejected\": {}, \
             \"fresh_frames\": {}, \"aggregate_fps\": {:.4}, \"scaling\": {:.4}, \
             \"hit_rate\": {:.6}, \"latency_p50_s\": {:.6}, \"latency_p99_s\": {:.6}, \
             \"migrations\": {}, \"reprobes\": {}}}{}\n",
            r.offered,
            r.admitted,
            r.rejected,
            r.fresh,
            r.aggregate_fps,
            r.aggregate_fps / base_fps.max(f64::MIN_POSITIVE),
            r.hit_rate,
            r.latency_p50,
            r.latency_p99,
            r.migrations,
            r.reprobes,
            if i + 1 < m.rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    let kill = &m.kill;
    out.push_str(&format!(
        "  \"kill\": {{\"devices\": {}, \"offered\": {}, \"kill_device\": {}, \
         \"kill_tick\": {}, \"migrations\": {}, \"kill_migrations\": {}, \
         \"overload_migrations\": {}, \"orphaned\": {}, \"hit_rate\": {:.6}, \
         \"latency_p99_s\": {:.6}, \"aggregate_fps\": {:.4}}},\n",
        kill.devices,
        kill.offered,
        m.kill_device,
        m.kill_tick,
        kill.migrations,
        kill.kill_migrations,
        kill.overload_migrations,
        kill.orphaned,
        kill.hit_rate,
        kill.latency_p99,
        kill.aggregate_fps,
    ));
    let (scale_sessions, scale) = &m.scale;
    out.push_str(&format!(
        "  \"scale\": {{\"devices\": {}, \"offered\": {scale_sessions}, \"frames\": {}, \
         \"admitted\": {}, \"peak_active\": {}, \"rejected\": {}, \
         \"aggregate_fps\": {:.4}, \"hit_rate\": {:.6}, \"migrations\": {}}}\n",
        scale.devices,
        scale.frames,
        scale.admitted,
        scale.peak_active,
        scale.rejected,
        scale.aggregate_fps,
        scale.hit_rate,
        scale.migrations,
    ));
    out.push_str("}\n");
    out
}

/// Names of all experiments, in run order.
pub const ALL_EXPERIMENTS: [&str; 24] = [
    "table1", "fig2", "fig3", "fig4", "fig5", "sec3", "table2", "fig7", "fig8", "fig9", "fig10",
    "horn8", "hybrid", "gating", "reuse", "fusion", "streams", "parallel", "inter-intra", "faults",
    "pipeline", "serve", "slo", "fleet",
];

/// Runs one experiment by id.
///
/// # Errors
///
/// Returns an error message listing valid ids when `id` is unknown.
pub fn run(id: &str, cfg: &ExperimentConfig) -> Result<String, String> {
    match id {
        "table1" => Ok(table1(cfg)),
        "fig2" => Ok(fig2(cfg)),
        "fig3" => Ok(fig3(cfg)),
        "fig4" => Ok(fig4(cfg)),
        "fig5" => Ok(fig5(cfg)),
        "sec3" => Ok(sec3(cfg)),
        "table2" => Ok(table2(cfg)),
        "fig7" => Ok(fig7(cfg)),
        "fig8" => Ok(fig8(cfg)),
        "fig9" => Ok(fig9(cfg)),
        "fig10" => Ok(fig10(cfg)),
        "horn8" => Ok(horn8(cfg)),
        "hybrid" => Ok(hybrid(cfg)),
        "gating" => Ok(gating(cfg)),
        "reuse" => Ok(reuse(cfg)),
        "fusion" => Ok(fusion(cfg)),
        "streams" => Ok(streams(cfg)),
        "parallel" => Ok(parallel(cfg)),
        "inter-intra" => Ok(inter_intra(cfg)),
        "faults" => Ok(faults(cfg)),
        "pipeline" => Ok(pipeline(cfg)),
        "serve" => Ok(serve(cfg)),
        "slo" => Ok(slo(cfg)),
        "fleet" => Ok(fleet(cfg)),
        "psnr" => Ok(psnr_ladder(cfg)),
        other => Err(format!(
            "unknown experiment '{other}'; valid: {} (or 'all')",
            ALL_EXPERIMENTS.join(", ")
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentConfig {
        ExperimentConfig { frames: 25, seed: 7, sessions: Some(4) }
    }

    #[test]
    fn every_experiment_runs_and_mentions_its_artifact() {
        let cfg = quick();
        for id in ALL_EXPERIMENTS {
            let report = run(id, &cfg).unwrap();
            assert!(!report.is_empty(), "{id} produced no report");
            assert!(report.contains("=="), "{id} report lacks a header");
        }
    }

    #[test]
    fn parallel_bench_json_is_well_formed_and_identical() {
        let json = parallel_bench_json();
        assert!(json.contains("\"bench\": \"parallel\""));
        assert!(json.contains("\"host_workers\""));
        // Every (worker count, precision) cell is present regardless of the
        // host's core count — CI gates on fixed cells.
        for workers in BENCH_WORKERS {
            for precision in ["f32", "f64"] {
                assert!(
                    json.contains(&format!(
                        "\"workers\": {workers}, \"precision\": \"{precision}\""
                    )),
                    "missing cell workers={workers} precision={precision}"
                );
            }
        }
        assert!(json.contains("\"f32_quality_gate\""));
        assert!(json.contains("\"pass\": true"), "f32 quality gate failed:\n{json}");
        assert!(json.contains("\"bit_identical\": true"));
        assert!(!json.contains("\"bit_identical\": false"));
    }

    #[test]
    fn f32_quality_gate_clears_its_threshold_with_margin() {
        let gate = f32_quality_gate();
        assert!(gate.pass(), "gate at {:.1} dB vs {:.1} dB", gate.psnr_db, gate.threshold_db);
        // The f32 propagation path should be far above the floor, not
        // scraping it — a regression that halves the margin still passes
        // the gate but deserves a look.
        assert!(gate.psnr_db >= gate.threshold_db + 5.0, "thin margin: {:.1} dB", gate.psnr_db);
    }

    #[test]
    fn pipeline_bench_json_is_well_formed_and_reproducible() {
        let cfg = ExperimentConfig { frames: 30, seed: 42, sessions: None };
        let json = pipeline_bench_json(&cfg);
        assert!(json.contains("\"bench\": \"pipeline\""));
        assert!(json.contains("\"bit_identical\": true"), "not bit-identical:\n{json}");
        for field in
            ["\"staged\"", "\"lockstep\"", "\"speedup\"", "\"p99_ratio\"", "\"bottleneck\""]
        {
            assert!(json.contains(field), "artifact misses {field}:\n{json}");
        }
        assert_eq!(json, pipeline_bench_json(&cfg), "artifact must be byte-identical");
    }

    #[test]
    fn pipeline_clears_the_perf_gate_floors() {
        // The same floors `repro perf-gate --pipeline` enforces on the
        // checked-in artifact, validated here at the default budget.
        let m = pipeline_measurements(&ExperimentConfig::default());
        assert!(m.bit_identical, "staged report varies across worker counts");
        assert!(m.speedup >= 1.15, "staged speedup {:.3}x below the 1.15x floor", m.speedup);
        assert!(m.p99_ratio <= 1.0 + 1e-9, "staged p99 worse than lockstep: {:.3}", m.p99_ratio);
        // Drop-oldest keeps presentation gap-free: every frame presents.
        assert_eq!(m.staged.fresh_frames + m.staged.stale_frames, m.frames);
    }

    #[test]
    fn serve_bench_json_is_well_formed_and_reproducible() {
        let cfg = ExperimentConfig { frames: 12, seed: 7, sessions: None };
        let json = serve_bench_json(&cfg);
        assert!(json.contains("\"bench\": \"serve\""));
        for n in SERVE_SWEEP {
            assert!(json.contains(&format!("\"sessions\": {n}")), "sweep misses {n}");
        }
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"psnr_gap_db\""));
        assert_eq!(json, serve_bench_json(&cfg), "artifact must be byte-identical");
    }

    #[test]
    fn slo_bench_json_is_well_formed_and_reproducible() {
        let cfg = ExperimentConfig { frames: 40, seed: 42, sessions: Some(8) };
        let json = slo_bench_json(&cfg);
        assert!(json.contains("\"bench\": \"slo\""));
        assert!(json.contains("\"sessions\": 8"));
        for field in [
            "\"latency_p50_s\"",
            "\"latency_p99_s\"",
            "\"latency_p999_s\"",
            "\"error_budget_remaining\"",
            "\"burn_events\"",
            "\"step_downs\"",
            "\"stages\"",
            "\"critical_path\"",
            "\"fast_burn_events\"",
        ] {
            assert!(json.contains(field), "artifact misses {field}:\n{json}");
        }
        // Critical-path attribution names a profile stage somewhere.
        assert!(json.contains("profile.stage."), "no stage attribution:\n{json}");
        assert_eq!(json, slo_bench_json(&cfg), "artifact must be byte-identical");
    }

    #[test]
    fn fleet_bench_json_is_well_formed_and_reproducible() {
        let cfg = ExperimentConfig { frames: 24, seed: 7, sessions: Some(4) };
        let json = fleet_bench_json(&cfg);
        assert!(json.contains("\"bench\": \"fleet\""));
        for k in FLEET_SWEEP {
            assert!(json.contains(&format!("\"devices\": {k}")), "sweep misses K={k}");
        }
        for field in [
            "\"scaling\"",
            "\"hit_rate\"",
            "\"migrations\"",
            "\"reprobes\"",
            "\"kill\"",
            "\"kill_migrations\"",
            "\"scale\"",
            "\"peak_active\"",
        ] {
            assert!(json.contains(field), "artifact misses {field}:\n{json}");
        }
        assert_eq!(json, fleet_bench_json(&cfg), "artifact must be byte-identical");
    }

    #[test]
    fn fleet_report_covers_kill_and_scale_scenarios() {
        let report = fleet(&ExperimentConfig { frames: 24, seed: 7, sessions: Some(4) });
        assert!(report.contains("== fleet serving"));
        assert!(report.contains("device-kill scenario"));
        assert!(report.contains("scale probe"));
        assert!(report.contains("BENCH_fleet.json"));
    }

    #[test]
    fn slo_dashboard_reports_quantiles_and_signals() {
        let report = slo(&ExperimentConfig { frames: 40, seed: 42, sessions: Some(8) });
        assert!(report.contains("== SLO dashboard"));
        assert!(report.contains("p99.9"));
        assert!(report.contains("error budget"));
        assert!(report.contains("critical-path stage attribution"));
        assert!(report.contains("degradation step-downs"));
    }

    #[test]
    fn serve_report_restricts_to_the_requested_fleet_size() {
        let report = serve(&quick());
        assert!(report.contains("== serving layer"));
        // `--sessions 4` pins the sweep to a single data row.
        let data_rows = report.lines().filter(|l| l.starts_with(char::is_numeric)).count();
        assert_eq!(data_rows, 1, "expected one row, report:\n{report}");
    }

    #[test]
    fn unknown_experiment_is_an_error() {
        let err = run("fig99", &quick()).unwrap_err();
        assert!(err.contains("fig99"));
        assert!(err.contains("table1"));
    }

    #[test]
    fn fig7_reports_all_configs() {
        let report = fig7(&quick());
        for s in Scheme::ALL {
            assert!(report.contains(s.name()), "missing {}", s.name());
        }
        assert!(report.contains("fleet headline"));
    }

    #[test]
    fn fig4_shows_doubling() {
        let report = fig4(&quick());
        assert!(report.contains("32"));
        assert!(report.contains("2."));
    }

    #[test]
    fn table2_includes_every_video() {
        let report = table2(&quick());
        for v in VideoCategory::ALL {
            assert!(report.contains(v.name()));
        }
    }

    #[test]
    fn image_type_is_reachable_from_reports() {
        // Compile-time guard that the bench crate links the metrics crate.
        let _ = holoar_metrics::Image::new(1, 1, vec![0.0]).unwrap();
    }
}
