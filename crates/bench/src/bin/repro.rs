//! Regenerates the paper's tables and figures.
//!
//! Usage: `repro [<experiment>...] [--frames N] [--seed S]`
//! where `<experiment>` is one of the ids in
//! [`holoar_bench::ALL_EXPERIMENTS`] or `all` (the default).
//!
//! Artifacts: `--json FILE` writes the machine-readable artifact of the
//! explicitly selected experiment — `parallel`, `pipeline`, `serve`, `slo`,
//! or `fleet` — to FILE. Exactly one artifact experiment must be named on
//! the command line; the artifact schemas are unchanged from the old
//! per-experiment flags (`--bench-json` / `--serve-json` / `--slo-json`),
//! which remain as deprecated aliases for one release.
//!
//! Serving layer: `repro serve [--sessions N] [--json FILE]` runs the
//! multi-session load generator (sweeping fleet sizes unless `--sessions`
//! pins one) and optionally exports the sweep as `BENCH_serve.json`.
//!
//! Fleet serving: `repro fleet [--sessions N] [--json FILE]` sweeps session
//! multiplexing across K devices — placement, re-probing, live migration
//! through a mid-run device kill — and exports `BENCH_fleet.json`
//! (`--sessions` overrides the offered sessions per device).
//!
//! Observability: `repro slo [--sessions N] [--json FILE]` renders the
//! SLO dashboard for one fleet (default 8 sessions) — sketch quantiles,
//! error budgets, burn-rate alerts, critical-path attribution — and writes
//! `BENCH_slo.json` (the default path when the `slo` experiment is
//! requested explicitly; `--json` overrides it).
//!
//! `repro lint [...]` runs the workspace static-analysis pass instead
//! (see the `holoar-lint` crate); remaining arguments go to the linter.
//!
//! Telemetry: `--trace-out FILE` exports a Chrome-trace (Perfetto) timeline
//! of every span the run emitted; `--metrics-json FILE` exports the counter
//! / gauge / histogram registry plus per-frame rows. Either flag implies
//! full telemetry unless `HOLOAR_TELEMETRY` already selects a mode.

use holoar_bench::{experiments, ExperimentConfig};
use holoar_telemetry::TelemetryMode;

/// Experiments that own a JSON artifact `--json` can export.
const ARTIFACT_EXPERIMENTS: [&str; 5] = ["parallel", "pipeline", "serve", "slo", "fleet"];

fn main() {
    // `repro lint` delegates to the static-analysis crate so the lint gate
    // is reachable from the same binary CI already builds.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("lint") {
        std::process::exit(holoar_lint::cli(&raw[1..]));
    }
    // `repro perf-gate FILE` re-reads a BENCH_parallel.json artifact and
    // enforces the hot-path floors (the CI perf smoke step).
    if raw.first().map(String::as_str) == Some("perf-gate") {
        std::process::exit(holoar_bench::perfgate::cli(&raw[1..]));
    }

    let mut cfg = ExperimentConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut csv_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut bench_json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut serve_json_path: Option<String> = None;
    let mut slo_json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--csv" => {
                csv_path =
                    Some(args.next().unwrap_or_else(|| die("--csv requires a file path")));
            }
            "--json" => {
                json_path =
                    Some(args.next().unwrap_or_else(|| die("--json requires a file path")));
            }
            "--bench-json" => {
                eprintln!(
                    "warning: --bench-json is deprecated; use `repro parallel --json FILE` \
                     (or `repro pipeline --json FILE` for the staged-pipeline artifact)"
                );
                bench_json_path = Some(
                    args.next().unwrap_or_else(|| die("--bench-json requires a file path")),
                );
            }
            "--trace-out" => {
                trace_path = Some(
                    args.next().unwrap_or_else(|| die("--trace-out requires a file path")),
                );
            }
            "--metrics-json" => {
                metrics_path = Some(
                    args.next().unwrap_or_else(|| die("--metrics-json requires a file path")),
                );
            }
            "--serve-json" => {
                eprintln!("warning: --serve-json is deprecated; use `repro serve --json FILE`");
                serve_json_path = Some(
                    args.next().unwrap_or_else(|| die("--serve-json requires a file path")),
                );
            }
            "--slo-json" => {
                eprintln!("warning: --slo-json is deprecated; use `repro slo --json FILE`");
                slo_json_path = Some(
                    args.next().unwrap_or_else(|| die("--slo-json requires a file path")),
                );
            }
            "--sessions" => {
                cfg.sessions = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| die("--sessions requires a positive integer")),
                );
            }
            "--frames" => {
                cfg.frames = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--frames requires a positive integer"));
            }
            "--seed" => {
                cfg.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed requires an integer"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [<experiment>...] [--frames N] [--seed S] [--sessions N] \
                     [--json FILE] [--csv FILE] [--trace-out FILE] [--metrics-json FILE]\n\
                     experiments: {} all\n\
                     --json writes the selected experiment's artifact as JSON to FILE \
                     (requires exactly one of: {} on the command line)\n\
                     --sessions pins the serve/slo experiments to one fleet size and sets \
                     the fleet experiment's offered sessions per device\n\
                     --csv writes the Fig 7/8 evaluation matrix as CSV to FILE\n\
                     --trace-out writes a Chrome-trace (Perfetto) span timeline to FILE\n\
                     --metrics-json writes the counters/gauges/histograms registry to FILE\n\
                     --bench-json/--serve-json/--slo-json are deprecated aliases for \
                     `parallel|pipeline --json` / `serve --json` / `slo --json`\n\
                     repro lint [--format json] runs the workspace static-analysis pass\n\
                     repro perf-gate [FILE] [--serve FILE] [--pipeline FILE] [--fleet FILE] \
                     [--f32-floor X] [--par-floor Y] [--min-workers N] enforces the floors \
                     over the JSON artifacts\n\
                     HOLOAR_TELEMETRY=off|summary|full selects the telemetry mode \
                     (either export flag implies full)",
                    experiments::ALL_EXPERIMENTS.join(" "),
                    ARTIFACT_EXPERIMENTS.join(", "),
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }

    // Telemetry is opt-in: the env var selects a mode; asking for an export
    // with the env var *unset* upgrades to full so the trace is not empty.
    // An explicit HOLOAR_TELEMETRY=off wins over the flags.
    holoar_telemetry::init_from_env();
    let wants_telemetry = trace_path.is_some() || metrics_path.is_some();
    let env_unset = std::env::var_os(holoar_telemetry::TELEMETRY_ENV_VAR).is_none();
    if wants_telemetry && env_unset && holoar_telemetry::mode() == TelemetryMode::Off {
        holoar_telemetry::set_mode(TelemetryMode::Full);
    }

    // `--json` is scoped to the experiment the user *explicitly* selected —
    // riding along in the `all` expansion does not count, so the artifact
    // written is never a surprise.
    let json_kind = json_path.as_ref().map(|_| {
        let wanted: Vec<&str> = ARTIFACT_EXPERIMENTS
            .iter()
            .copied()
            .filter(|k| ids.iter().any(|i| i == k))
            .collect();
        match wanted.as_slice() {
            [] => die(&format!(
                "--json needs exactly one artifact experiment selected explicitly \
                 (one of: {})",
                ARTIFACT_EXPERIMENTS.join(", ")
            )),
            [one] => *one,
            many => die(&format!(
                "--json is ambiguous: {} are all selected; pick one",
                many.join(", ")
            )),
        }
    });
    // "explicitly requested" means the user typed `slo`, not that it rode
    // along in the `all` expansion — only the former writes BENCH_slo.json
    // without an export flag.
    let slo_explicit = ids.iter().any(|i| i == "slo");
    // Deprecated `--bench-json` keeps its historical split: the
    // staged-pipeline artifact when the user explicitly asked for the
    // `pipeline` experiment (and not `parallel`), the parallel-engine
    // timing cells otherwise.
    let pipeline_bench = ids.iter().any(|i| i == "pipeline") && !ids.iter().any(|i| i == "parallel");
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = experiments::ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        match experiments::run(id, &cfg) {
            Ok(report) => println!("{report}"),
            Err(e) => die(&e),
        }
    }
    if let (Some(path), Some(kind)) = (&json_path, json_kind) {
        let (json, what) = artifact(kind, &cfg);
        if let Err(e) = std::fs::write(path, json) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("wrote {what} to {path}");
    }
    if let Some(path) = bench_json_path {
        let (json, what) = if pipeline_bench {
            artifact("pipeline", &cfg)
        } else {
            artifact("parallel", &cfg)
        };
        if let Err(e) = std::fs::write(&path, json) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("wrote {what} to {path}");
    }
    if let Some(path) = serve_json_path {
        let json = experiments::serve_bench_json(&cfg);
        if let Err(e) = std::fs::write(&path, json) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("wrote serving sweep to {path}");
    }
    // An explicit `slo` run emits its artifact by default; `--json` (or the
    // deprecated `--slo-json`) overrides the path.
    let slo_json_path = slo_json_path.or_else(|| {
        (slo_explicit && json_kind != Some("slo")).then(|| "BENCH_slo.json".to_string())
    });
    if let Some(path) = slo_json_path {
        let json = experiments::slo_bench_json(&cfg);
        if let Err(e) = std::fs::write(&path, json) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("wrote SLO dashboard artifact to {path}");
    }
    if let Some(path) = csv_path {
        let matrix = holoar_core::evaluation::evaluate_matrix(
            &mut holoar_gpusim::Device::xavier(),
            cfg.frames,
            cfg.seed,
        );
        let csv = holoar_bench::csv::matrix_to_csv(&matrix);
        if let Err(e) = std::fs::write(&path, csv) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("wrote evaluation matrix to {path}");
    }
    if let Some(path) = trace_path {
        let trace = holoar_telemetry::export_chrome_trace();
        if let Err(e) = std::fs::write(&path, trace) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!(
            "wrote chrome trace ({} spans) to {path} — open in https://ui.perfetto.dev",
            holoar_telemetry::span_count()
        );
    }
    if let Some(path) = metrics_path {
        let json = holoar_telemetry::export_metrics_json();
        if let Err(e) = std::fs::write(&path, json) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("wrote metrics registry to {path}");
    }
}

/// Renders one experiment's JSON artifact and its human name.
fn artifact(kind: &str, cfg: &ExperimentConfig) -> (String, &'static str) {
    match kind {
        "parallel" => (experiments::parallel_bench_json(), "parallel bench cells"),
        "pipeline" => (experiments::pipeline_bench_json(cfg), "staged pipeline bench"),
        "serve" => (experiments::serve_bench_json(cfg), "serving sweep"),
        "slo" => (experiments::slo_bench_json(cfg), "SLO dashboard artifact"),
        "fleet" => (experiments::fleet_bench_json(cfg), "fleet serving artifact"),
        other => die(&format!("no artifact for experiment '{other}'")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
