//! Regenerates the paper's tables and figures.
//!
//! Usage: `repro [<experiment>...] [--frames N] [--seed S]`
//! where `<experiment>` is one of the ids in
//! [`holoar_bench::ALL_EXPERIMENTS`] or `all` (the default).

use holoar_bench::{experiments, ExperimentConfig};

fn main() {
    let mut cfg = ExperimentConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut csv_path: Option<String> = None;
    let mut bench_json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--csv" => {
                csv_path =
                    Some(args.next().unwrap_or_else(|| die("--csv requires a file path")));
            }
            "--bench-json" => {
                bench_json_path = Some(
                    args.next().unwrap_or_else(|| die("--bench-json requires a file path")),
                );
            }
            "--frames" => {
                cfg.frames = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--frames requires a positive integer"));
            }
            "--seed" => {
                cfg.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed requires an integer"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [<experiment>...] [--frames N] [--seed S] [--csv FILE] \
                     [--bench-json FILE]\n\
                     experiments: {} all\n\
                     --csv writes the Fig 7/8 evaluation matrix as CSV to FILE\n\
                     --bench-json writes the parallel-engine timing cells as JSON to FILE",
                    experiments::ALL_EXPERIMENTS.join(" ")
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = experiments::ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        match experiments::run(id, &cfg) {
            Ok(report) => println!("{report}"),
            Err(e) => die(&e),
        }
    }
    if let Some(path) = bench_json_path {
        let json = experiments::parallel_bench_json();
        if let Err(e) = std::fs::write(&path, json) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("wrote parallel bench cells to {path}");
    }
    if let Some(path) = csv_path {
        let matrix = holoar_core::evaluation::evaluate_matrix(
            &mut holoar_gpusim::Device::xavier(),
            cfg.frames,
            cfg.seed,
        );
        let csv = holoar_bench::csv::matrix_to_csv(&matrix);
        if let Err(e) = std::fs::write(&path, csv) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("wrote evaluation matrix to {path}");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
