//! Regenerates the paper's tables and figures.
//!
//! Usage: `repro [<experiment>...] [--frames N] [--seed S]`
//! where `<experiment>` is one of the ids in
//! [`holoar_bench::ALL_EXPERIMENTS`] or `all` (the default).
//!
//! Serving layer: `repro serve [--sessions N] [--serve-json FILE]` runs the
//! multi-session load generator (sweeping fleet sizes unless `--sessions`
//! pins one) and optionally exports the sweep as `BENCH_serve.json`.
//!
//! Observability: `repro slo [--sessions N] [--slo-json FILE]` renders the
//! SLO dashboard for one fleet (default 8 sessions) — sketch quantiles,
//! error budgets, burn-rate alerts, critical-path attribution — and writes
//! `BENCH_slo.json` (the default path when the `slo` experiment is
//! requested explicitly; `--slo-json` overrides it).
//!
//! `repro lint [...]` runs the workspace static-analysis pass instead
//! (see the `holoar-lint` crate); remaining arguments go to the linter.
//!
//! Telemetry: `--trace-out FILE` exports a Chrome-trace (Perfetto) timeline
//! of every span the run emitted; `--metrics-json FILE` exports the counter
//! / gauge / histogram registry plus per-frame rows. Either flag implies
//! full telemetry unless `HOLOAR_TELEMETRY` already selects a mode.

use holoar_bench::{experiments, ExperimentConfig};
use holoar_telemetry::TelemetryMode;

fn main() {
    // `repro lint` delegates to the static-analysis crate so the lint gate
    // is reachable from the same binary CI already builds.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("lint") {
        std::process::exit(holoar_lint::cli(&raw[1..]));
    }
    // `repro perf-gate FILE` re-reads a BENCH_parallel.json artifact and
    // enforces the hot-path floors (the CI perf smoke step).
    if raw.first().map(String::as_str) == Some("perf-gate") {
        std::process::exit(holoar_bench::perfgate::cli(&raw[1..]));
    }

    let mut cfg = ExperimentConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut csv_path: Option<String> = None;
    let mut bench_json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut serve_json_path: Option<String> = None;
    let mut slo_json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--csv" => {
                csv_path =
                    Some(args.next().unwrap_or_else(|| die("--csv requires a file path")));
            }
            "--bench-json" => {
                bench_json_path = Some(
                    args.next().unwrap_or_else(|| die("--bench-json requires a file path")),
                );
            }
            "--trace-out" => {
                trace_path = Some(
                    args.next().unwrap_or_else(|| die("--trace-out requires a file path")),
                );
            }
            "--metrics-json" => {
                metrics_path = Some(
                    args.next().unwrap_or_else(|| die("--metrics-json requires a file path")),
                );
            }
            "--serve-json" => {
                serve_json_path = Some(
                    args.next().unwrap_or_else(|| die("--serve-json requires a file path")),
                );
            }
            "--slo-json" => {
                slo_json_path = Some(
                    args.next().unwrap_or_else(|| die("--slo-json requires a file path")),
                );
            }
            "--sessions" => {
                cfg.sessions = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| die("--sessions requires a positive integer")),
                );
            }
            "--frames" => {
                cfg.frames = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--frames requires a positive integer"));
            }
            "--seed" => {
                cfg.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed requires an integer"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [<experiment>...] [--frames N] [--seed S] [--sessions N] \
                     [--csv FILE] [--bench-json FILE] [--serve-json FILE] [--slo-json FILE] \
                     [--trace-out FILE] [--metrics-json FILE]\n\
                     experiments: {} all\n\
                     --sessions pins the serve/slo experiments to one fleet size\n\
                     --csv writes the Fig 7/8 evaluation matrix as CSV to FILE\n\
                     --bench-json writes the parallel-engine timing cells as JSON to FILE \
                     (with an explicit `pipeline` experiment it writes the staged-pipeline \
                     artifact instead)\n\
                     --serve-json writes the multi-session serving sweep as JSON to FILE\n\
                     --slo-json writes the SLO dashboard artifact as JSON to FILE \
                     (an explicit `slo` experiment writes BENCH_slo.json by default)\n\
                     --trace-out writes a Chrome-trace (Perfetto) span timeline to FILE\n\
                     --metrics-json writes the counters/gauges/histograms registry to FILE\n\
                     repro lint [--format json] runs the workspace static-analysis pass\n\
                     repro perf-gate [FILE] [--serve FILE] [--pipeline FILE] [--f32-floor X] \
                     [--par-floor Y] [--min-workers N] enforces the floors over the JSON \
                     artifacts\n\
                     HOLOAR_TELEMETRY=off|summary|full selects the telemetry mode \
                     (either export flag implies full)",
                    experiments::ALL_EXPERIMENTS.join(" ")
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }

    // Telemetry is opt-in: the env var selects a mode; asking for an export
    // with the env var *unset* upgrades to full so the trace is not empty.
    // An explicit HOLOAR_TELEMETRY=off wins over the flags.
    holoar_telemetry::init_from_env();
    let wants_telemetry = trace_path.is_some() || metrics_path.is_some();
    let env_unset = std::env::var_os(holoar_telemetry::TELEMETRY_ENV_VAR).is_none();
    if wants_telemetry && env_unset && holoar_telemetry::mode() == TelemetryMode::Off {
        holoar_telemetry::set_mode(TelemetryMode::Full);
    }

    // "explicitly requested" means the user typed `slo`, not that it rode
    // along in the `all` expansion — only the former writes BENCH_slo.json
    // without --slo-json.
    let slo_explicit = ids.iter().any(|i| i == "slo");
    // `--bench-json` writes the staged-pipeline artifact when the user
    // explicitly asked for the `pipeline` experiment (and not `parallel`);
    // in every other case it keeps its original meaning, the
    // parallel-engine timing cells.
    let pipeline_bench = ids.iter().any(|i| i == "pipeline") && !ids.iter().any(|i| i == "parallel");
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = experiments::ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        match experiments::run(id, &cfg) {
            Ok(report) => println!("{report}"),
            Err(e) => die(&e),
        }
    }
    if let Some(path) = bench_json_path {
        let (json, what) = if pipeline_bench {
            (experiments::pipeline_bench_json(&cfg), "staged pipeline bench")
        } else {
            (experiments::parallel_bench_json(), "parallel bench cells")
        };
        if let Err(e) = std::fs::write(&path, json) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("wrote {what} to {path}");
    }
    if let Some(path) = serve_json_path {
        let json = experiments::serve_bench_json(&cfg);
        if let Err(e) = std::fs::write(&path, json) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("wrote serving sweep to {path}");
    }
    // An explicit `slo` run emits its artifact by default; `--slo-json`
    // overrides the path (and forces the export for any experiment set).
    let slo_json_path =
        slo_json_path.or_else(|| slo_explicit.then(|| "BENCH_slo.json".to_string()));
    if let Some(path) = slo_json_path {
        let json = experiments::slo_bench_json(&cfg);
        if let Err(e) = std::fs::write(&path, json) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("wrote SLO dashboard artifact to {path}");
    }
    if let Some(path) = csv_path {
        let matrix = holoar_core::evaluation::evaluate_matrix(
            &mut holoar_gpusim::Device::xavier(),
            cfg.frames,
            cfg.seed,
        );
        let csv = holoar_bench::csv::matrix_to_csv(&matrix);
        if let Err(e) = std::fs::write(&path, csv) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("wrote evaluation matrix to {path}");
    }
    if let Some(path) = trace_path {
        let trace = holoar_telemetry::export_chrome_trace();
        if let Err(e) = std::fs::write(&path, trace) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!(
            "wrote chrome trace ({} spans) to {path} — open in https://ui.perfetto.dev",
            holoar_telemetry::span_count()
        );
    }
    if let Some(path) = metrics_path {
        let json = holoar_telemetry::export_metrics_json();
        if let Err(e) = std::fs::write(&path, json) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("wrote metrics registry to {path}");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
