//! Small text-table formatting helpers shared by the experiment reports.

use std::fmt::Write as _;

/// A left-aligned text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}");
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Formats a seconds value as milliseconds with one decimal.
pub fn ms(seconds: f64) -> String {
    format!("{:.1}", seconds * 1e3)
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "22222"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("alpha"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(0.3417), "341.7");
        assert_eq!(pct(0.289), "28.9%");
    }
}
