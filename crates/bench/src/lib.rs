//! Experiment harness regenerating every table and figure of the HoloAR
//! paper's evaluation.
//!
//! Each artifact has a generator in [`experiments`]; the `repro` binary
//! dispatches on experiment id:
//!
//! ```text
//! cargo run -p holoar-bench --release --bin repro -- all
//! cargo run -p holoar-bench --release --bin repro -- fig7 --frames 300
//! ```
//!
//! Criterion micro-benchmarks for the substrate layers live under
//! `benches/`.

#![forbid(unsafe_code)]

pub mod csv;
pub mod experiments;
pub mod perfgate;
pub mod report;

pub use experiments::{run, ExperimentConfig, ALL_EXPERIMENTS};
