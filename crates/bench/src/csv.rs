//! CSV export of the Fig 7 / Fig 8 evaluation matrix, for external plotting.

use holoar_core::evaluation::EvaluationMatrix;

/// Renders the matrix as CSV with one row per (video, scheme) cell.
///
/// Columns: `video, scheme, frames, latency_ms, power_w, energy_mj,
/// planes, reuse_fraction`.
///
/// # Examples
///
/// ```
/// use holoar_bench::csv::matrix_to_csv;
/// use holoar_core::evaluation::evaluate_matrix;
/// use holoar_gpusim::Device;
///
/// let matrix = evaluate_matrix(&mut Device::xavier(), 5, 1);
/// let csv = matrix_to_csv(&matrix);
/// assert!(csv.lines().count() == 25); // header + 24 cells
/// ```
pub fn matrix_to_csv(matrix: &EvaluationMatrix) -> String {
    let mut out =
        String::from("video,scheme,frames,latency_ms,power_w,energy_mj,planes,reuse_fraction\n");
    for cell in &matrix.cells {
        out.push_str(&format!(
            "{},{},{},{:.3},{:.4},{:.3},{:.2},{:.4}\n",
            cell.category.name(),
            cell.scheme.name(),
            cell.frames,
            cell.mean_latency * 1e3,
            cell.mean_power,
            cell.mean_energy * 1e3,
            cell.mean_planes,
            cell.reuse_fraction,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use holoar_core::evaluation::evaluate_matrix;
    use holoar_gpusim::Device;

    #[test]
    fn csv_has_header_and_all_cells() {
        let matrix = evaluate_matrix(&mut Device::xavier(), 4, 9);
        let csv = matrix_to_csv(&matrix);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 25);
        assert!(lines[0].starts_with("video,scheme"));
        assert!(lines[1].starts_with("bike,Baseline,4,"));
        // Every row has the full column count.
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 8, "bad row: {line}");
        }
    }
}
