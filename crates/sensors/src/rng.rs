//! A small deterministic RNG (xoshiro256++) used by every synthetic sensor.
//!
//! The substituted datasets must be reproducible byte-for-byte across runs
//! and platforms, so the sensor crate carries its own generator rather than
//! depending on an external crate's stability guarantees.

/// Deterministic xoshiro256++ generator.
///
/// # Examples
///
/// ```
/// use holoar_sensors::rng::Rng;
/// let mut a = Rng::seeded(42);
/// let mut b = Rng::seeded(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a seed (expanded with splitmix64).
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng { s: [next(), next(), next(), next()] }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // The scrambler works on locals so the state updates stay free of
        // slice-index sites (the generator feeds fault injection on the
        // serving path, which must be panic-free end to end).
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi && lo.is_finite() && hi.is_finite(), "invalid range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// A standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.uniform().max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// A normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.normal()
    }

    /// An exponential sample with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        -mean * self.uniform().max(f64::MIN_POSITIVE).ln()
    }

    /// A Bernoulli sample with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.uniform() < p
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range must be non-empty");
        // Multiply-shift; bias is negligible for the ranges used here.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..5).map({ let mut r = Rng::seeded(7); move |_| r.next_u64() }).collect();
        let b: Vec<u64> = (0..5).map({ let mut r = Rng::seeded(7); move |_| r.next_u64() }).collect();
        assert_eq!(a, b);
        let c: Vec<u64> = (0..5).map({ let mut r = Rng::seeded(8); move |_| r.next_u64() }).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_is_in_unit_interval_with_sane_mean() {
        let mut r = Rng::seeded(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.uniform();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::seeded(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng::seeded(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(2.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn chance_frequency() {
        let mut r = Rng::seeded(4);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::seeded(5);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "range must be non-empty")]
    fn below_zero_panics() {
        Rng::seeded(0).below(0);
    }
}
