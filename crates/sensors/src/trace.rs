//! Session traces: recording and replaying a full sensing session.
//!
//! Reproducible evaluation wants the *exact* sensor streams pinned down, not
//! just a seed — a trace file survives generator changes and can be shared
//! alongside results. The format is a line-oriented text format
//! (dependency-free, diffable):
//!
//! ```text
//! holoar-trace v1
//! F <index>                          # frame start
//! O <track> <az> <el> <dist> <size>  # one object annotation
//! P <az> <el> <latency>              # the frame's pose estimate
//! G <az> <el>                        # the frame's gaze estimate
//! ```
//!
//! Angles are radians, distances meters, latency seconds, all as `f64`
//! decimal text round-tripped losslessly via Rust's shortest-representation
//! float formatting.

use crate::angles::AngularPoint;
use crate::eyetrack::EyeTracker;
use crate::imu::HeadMotion;
use crate::objectron::{Frame, FrameGenerator, ObjectAnnotation, VideoCategory};
use crate::pose::{PoseEstimate, PoseEstimator};

/// One recorded frame: the scene plus the frame's sensor estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFrame {
    /// The annotated scene.
    pub frame: Frame,
    /// Pose estimate for this frame.
    pub pose: PoseEstimate,
    /// Estimated gaze direction for this frame.
    pub gaze: AngularPoint,
}

/// A recorded session.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SessionTrace {
    /// Frames in time order.
    pub frames: Vec<TraceFrame>,
}

/// Error parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// A frame being assembled during parsing: index, objects so far, and the
/// not-yet-seen pose/gaze records.
type PendingFrame = (u64, Vec<ObjectAnnotation>, Option<PoseEstimate>, Option<AngularPoint>);

impl SessionTrace {
    /// Records a session: `frames` frames of one video category with the
    /// full sensing stack (IMU → pose estimator, attention-free gaze on the
    /// first object, eye-tracker noise).
    ///
    /// # Panics
    ///
    /// Panics if `frames == 0`.
    pub fn record(category: VideoCategory, frames: u64, seed: u64) -> SessionTrace {
        assert!(frames > 0, "cannot record an empty session");
        let generator = FrameGenerator::new(category, seed);
        let mut imu = HeadMotion::new(210.0, seed ^ 0xABCD);
        let mut vio = PoseEstimator::new(seed ^ 0x1234);
        let mut tracker = EyeTracker::new(seed ^ 0x77);
        let mut out = Vec::with_capacity(frames as usize);
        for frame in generator.take(frames as usize) {
            let mut pose = None;
            for sample in imu.samples(7) {
                pose = Some(vio.update(&sample));
            }
            let pose = pose.expect("seven IMU samples per frame");
            let true_gaze =
                frame.objects.first().map(|o| o.direction).unwrap_or(AngularPoint::CENTER);
            let gaze = tracker.estimate(true_gaze).direction;
            out.push(TraceFrame { frame, pose, gaze });
        }
        SessionTrace { frames: out }
    }

    /// Number of recorded frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Serializes to the text format.
    pub fn serialize(&self) -> String {
        let mut out = String::from("holoar-trace v1\n");
        for tf in &self.frames {
            out.push_str(&format!("F {}\n", tf.frame.index));
            for o in &tf.frame.objects {
                out.push_str(&format!(
                    "O {} {} {} {} {}\n",
                    o.track_id, o.direction.azimuth, o.direction.elevation, o.distance, o.size
                ));
            }
            out.push_str(&format!(
                "P {} {} {}\n",
                tf.pose.orientation.azimuth, tf.pose.orientation.elevation, tf.pose.latency
            ));
            out.push_str(&format!("G {} {}\n", tf.gaze.azimuth, tf.gaze.elevation));
        }
        out
    }

    /// Parses the text format.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] with the offending line on malformed
    /// input.
    pub fn parse(text: &str) -> Result<SessionTrace, ParseTraceError> {
        let err = |line: usize, message: &str| ParseTraceError {
            line,
            message: message.to_string(),
        };
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, "holoar-trace v1")) => {}
            Some((i, other)) => {
                return Err(err(i + 1, &format!("bad header '{other}'")));
            }
            None => return Err(err(1, "empty trace")),
        }

        let mut frames: Vec<TraceFrame> = Vec::new();
        let mut current: Option<PendingFrame> = None;

        fn finish(
            current: Option<PendingFrame>,
            frames: &mut Vec<TraceFrame>,
            line: usize,
        ) -> Result<(), ParseTraceError> {
            if let Some((index, objects, pose, gaze)) = current {
                let pose = pose.ok_or(ParseTraceError {
                    line,
                    message: format!("frame {index} has no pose record"),
                })?;
                let gaze = gaze.ok_or(ParseTraceError {
                    line,
                    message: format!("frame {index} has no gaze record"),
                })?;
                frames.push(TraceFrame { frame: Frame { index, objects }, pose, gaze });
            }
            Ok(())
        }

        for (i, raw) in lines {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let parse_f64 = |s: &str| -> Result<f64, ParseTraceError> {
                s.parse().map_err(|_| err(line_no, &format!("bad number '{s}'")))
            };
            match fields[0] {
                "F" => {
                    if fields.len() != 2 {
                        return Err(err(line_no, "F expects one field"));
                    }
                    finish(current.take(), &mut frames, line_no)?;
                    let index = fields[1]
                        .parse()
                        .map_err(|_| err(line_no, "bad frame index"))?;
                    current = Some((index, Vec::new(), None, None));
                }
                "O" => {
                    if fields.len() != 6 {
                        return Err(err(line_no, "O expects five fields"));
                    }
                    let Some(state) = current.as_mut() else {
                        return Err(err(line_no, "O outside a frame"));
                    };
                    state.1.push(ObjectAnnotation {
                        track_id: fields[1]
                            .parse()
                            .map_err(|_| err(line_no, "bad track id"))?,
                        direction: AngularPoint::new(
                            parse_f64(fields[2])?,
                            parse_f64(fields[3])?,
                        ),
                        distance: parse_f64(fields[4])?,
                        size: parse_f64(fields[5])?,
                    });
                }
                "P" => {
                    if fields.len() != 4 {
                        return Err(err(line_no, "P expects three fields"));
                    }
                    let Some(state) = current.as_mut() else {
                        return Err(err(line_no, "P outside a frame"));
                    };
                    state.2 = Some(PoseEstimate {
                        orientation: AngularPoint::new(
                            parse_f64(fields[1])?,
                            parse_f64(fields[2])?,
                        ),
                        latency: parse_f64(fields[3])?,
                    });
                }
                "G" => {
                    if fields.len() != 3 {
                        return Err(err(line_no, "G expects two fields"));
                    }
                    let Some(state) = current.as_mut() else {
                        return Err(err(line_no, "G outside a frame"));
                    };
                    state.3 =
                        Some(AngularPoint::new(parse_f64(fields[1])?, parse_f64(fields[2])?));
                }
                other => return Err(err(line_no, &format!("unknown record '{other}'"))),
            }
        }
        finish(current, &mut frames, text.lines().count())?;
        Ok(SessionTrace { frames })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_produces_frames() {
        let trace = SessionTrace::record(VideoCategory::Cup, 12, 3);
        assert_eq!(trace.len(), 12);
        assert!(!trace.is_empty());
        assert!(trace.frames.iter().any(|f| !f.frame.objects.is_empty()));
    }

    #[test]
    fn serialize_parse_roundtrip_is_lossless() {
        let trace = SessionTrace::record(VideoCategory::Shoe, 20, 7);
        let text = trace.serialize();
        let back = SessionTrace::parse(&text).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(SessionTrace::parse("").is_err());
        assert!(SessionTrace::parse("not-a-trace\n").is_err());
        let no_pose = "holoar-trace v1\nF 0\nG 0.0 0.0\n";
        let e = SessionTrace::parse(no_pose).unwrap_err();
        assert!(e.to_string().contains("no pose"));
        let orphan = "holoar-trace v1\nO 1 0 0 1 0.1\n";
        assert!(SessionTrace::parse(orphan).is_err());
        let bad_number = "holoar-trace v1\nF 0\nP x 0 0\nG 0 0\n";
        assert!(SessionTrace::parse(bad_number).is_err());
        let unknown = "holoar-trace v1\nF 0\nZ 1 2\n";
        assert!(SessionTrace::parse(unknown).is_err());
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "holoar-trace v1\nF 0\nO bad-line\n";
        let e = SessionTrace::parse(text).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn empty_trailing_lines_are_tolerated() {
        let trace = SessionTrace::record(VideoCategory::Book, 3, 1);
        let text = format!("{}\n\n", trace.serialize());
        assert_eq!(SessionTrace::parse(&text).unwrap(), trace);
    }

    #[test]
    fn recording_is_deterministic() {
        let a = SessionTrace::record(VideoCategory::Laptop, 10, 5);
        let b = SessionTrace::record(VideoCategory::Laptop, 10, 5);
        assert_eq!(a, b);
    }
}
