//! Eye-tracking estimation — the NVGaze \[26\] substitute.
//!
//! The paper uses NVGaze for two published properties: ~2.06° gaze accuracy
//! across a wide field of view, and ~4.4 ms execution latency on the edge
//! GPU (§2.2.1, §4.3). The tracker here wraps a true gaze direction with
//! noise matched to that accuracy and reports the modeled latency, which the
//! pipeline charges as Inter-Holo's per-frame overhead.

use crate::angles::AngularPoint;
use crate::calibrated_noise::angular_error_sigma;
use crate::rng::Rng;

/// Published characteristics of the substituted tracker.
pub mod spec {
    /// Mean angular error, degrees (NVGaze's reported accuracy).
    pub const MEAN_ERROR_DEG: f64 = 2.06;
    /// Execution latency on the edge GPU, seconds.
    pub const LATENCY: f64 = 0.0044;
}

/// One tracker output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GazeEstimate {
    /// Estimated gaze direction.
    pub direction: AngularPoint,
    /// Modeled inference latency, seconds.
    pub latency: f64,
}

/// An NVGaze-like gaze estimator.
///
/// # Examples
///
/// ```
/// use holoar_sensors::angles::AngularPoint;
/// use holoar_sensors::eyetrack::EyeTracker;
///
/// let mut tracker = EyeTracker::new(3);
/// let estimate = tracker.estimate(AngularPoint::CENTER);
/// assert!(estimate.latency > 0.004);
/// ```
#[derive(Debug, Clone)]
pub struct EyeTracker {
    rng: Rng,
}

impl EyeTracker {
    /// Creates a tracker with a deterministic noise stream.
    pub fn new(seed: u64) -> Self {
        EyeTracker { rng: Rng::seeded(seed.wrapping_mul(0xE1E_7AC3)) }
    }

    /// Estimates the gaze direction from the true direction, adding the
    /// calibrated angular error.
    pub fn estimate(&mut self, truth: AngularPoint) -> GazeEstimate {
        let sigma = angular_error_sigma(spec::MEAN_ERROR_DEG);
        let direction = truth.offset(
            self.rng.normal_with(0.0, sigma),
            self.rng.normal_with(0.0, sigma),
        );
        GazeEstimate { direction, latency: spec::LATENCY }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angles::deg;

    #[test]
    fn mean_error_matches_published_accuracy() {
        let mut tracker = EyeTracker::new(1);
        let n = 20_000;
        let mean_err: f64 = (0..n)
            .map(|_| tracker.estimate(AngularPoint::CENTER).direction.distance_to(AngularPoint::CENTER))
            .sum::<f64>()
            / n as f64;
        let target = deg(spec::MEAN_ERROR_DEG);
        assert!(
            (mean_err - target).abs() / target < 0.05,
            "mean error {:.3}° vs published {:.2}°",
            mean_err.to_degrees(),
            spec::MEAN_ERROR_DEG
        );
    }

    #[test]
    fn latency_matches_published_number() {
        let mut tracker = EyeTracker::new(2);
        assert_eq!(tracker.estimate(AngularPoint::CENTER).latency, 0.0044);
    }

    #[test]
    fn estimate_is_unbiased() {
        let mut tracker = EyeTracker::new(3);
        let truth = AngularPoint::new(deg(5.0), deg(-3.0));
        let n = 20_000;
        let mut az = 0.0;
        let mut el = 0.0;
        for _ in 0..n {
            let e = tracker.estimate(truth).direction;
            az += e.azimuth;
            el += e.elevation;
        }
        assert!((az / n as f64 - truth.azimuth).abs() < deg(0.1));
        assert!((el / n as f64 - truth.elevation).abs() < deg(0.1));
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = EyeTracker::new(9);
        let mut b = EyeTracker::new(9);
        assert_eq!(a.estimate(AngularPoint::CENTER), b.estimate(AngularPoint::CENTER));
    }
}
