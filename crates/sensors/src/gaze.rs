//! Synthetic gaze traces with temporal locality — the MPIIDPEye \[58\]
//! substitute.
//!
//! The paper's Fig 3b observation: within a short window (10 s) a user's
//! gaze stays inside a small region of focus, and different users prefer
//! different regions. The model here is the standard fixation/saccade
//! process: dwell at a fixation point (exponential dwell time, small tremor)
//! and occasionally saccade to a new point drawn around the user's preferred
//! region.

use crate::angles::{deg, AngularPoint};
use crate::rng::Rng;

/// A user profile: where this user's interest concentrates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserProfile {
    /// Center of the user's preferred gaze region.
    pub preferred: AngularPoint,
    /// Spread of fixation targets around the preferred center, radians.
    pub spread: f64,
    /// Mean fixation dwell time, seconds.
    pub mean_dwell: f64,
}

impl UserProfile {
    /// The three users of Fig 3b: User1 and User3 share similar interests
    /// (near center), User2 focuses on the bottom-left corner.
    pub fn study_users() -> [UserProfile; 3] {
        [
            UserProfile { preferred: AngularPoint::new(deg(2.0), deg(1.0)), spread: deg(3.5), mean_dwell: 1.2 },
            UserProfile {
                preferred: AngularPoint::new(deg(-13.0), deg(-10.0)),
                spread: deg(3.0),
                mean_dwell: 1.4,
            },
            UserProfile { preferred: AngularPoint::new(deg(3.0), deg(0.0)), spread: deg(3.5), mean_dwell: 1.1 },
        ]
    }
}

impl Default for UserProfile {
    fn default() -> Self {
        UserProfile { preferred: AngularPoint::CENTER, spread: deg(6.0), mean_dwell: 2.0 }
    }
}

/// Generates gaze samples at a fixed rate for one user.
///
/// # Examples
///
/// ```
/// use holoar_sensors::gaze::{GazeModel, UserProfile};
///
/// let mut gaze = GazeModel::new(UserProfile::default(), 30.0, 1);
/// let trace: Vec<_> = (0..300).map(|_| gaze.sample()).collect();
/// assert_eq!(trace.len(), 300);
/// ```
#[derive(Debug, Clone)]
pub struct GazeModel {
    profile: UserProfile,
    sample_period: f64,
    rng: Rng,
    fixation: AngularPoint,
    dwell_remaining: f64,
}

impl GazeModel {
    /// Creates a model sampling at `rate_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not positive and finite.
    pub fn new(profile: UserProfile, rate_hz: f64, seed: u64) -> Self {
        assert!(rate_hz > 0.0 && rate_hz.is_finite(), "sample rate must be positive");
        let mut rng = Rng::seeded(seed);
        let fixation = Self::pick_fixation(&profile, &mut rng);
        let dwell_remaining = rng.exponential(profile.mean_dwell);
        GazeModel { profile, sample_period: 1.0 / rate_hz, rng, fixation, dwell_remaining }
    }

    fn pick_fixation(profile: &UserProfile, rng: &mut Rng) -> AngularPoint {
        AngularPoint::new(
            rng.normal_with(profile.preferred.azimuth, profile.spread),
            rng.normal_with(profile.preferred.elevation, profile.spread),
        )
    }

    /// The user profile.
    pub fn profile(&self) -> UserProfile {
        self.profile
    }

    /// Produces the next gaze sample (true gaze, before tracker noise).
    pub fn sample(&mut self) -> AngularPoint {
        self.dwell_remaining -= self.sample_period;
        if self.dwell_remaining <= 0.0 {
            self.fixation = Self::pick_fixation(&self.profile, &mut self.rng);
            self.dwell_remaining = self.rng.exponential(self.profile.mean_dwell);
        }
        // Fixational tremor/drift: a fraction of a degree.
        self.fixation.offset(
            self.rng.normal_with(0.0, deg(0.15)),
            self.rng.normal_with(0.0, deg(0.15)),
        )
    }
}

/// Spontaneous-blink process: humans blink ~15–20 times per minute, and
/// each blink blanks the eye tracker for a few frames — the natural source
/// of the `GazeInput::Lost` dropouts the planner must survive.
///
/// # Examples
///
/// ```
/// use holoar_sensors::gaze::BlinkModel;
///
/// let mut blinks = BlinkModel::new(30.0, 4);
/// let blanked = (0..3000).filter(|_| blinks.sample()).count();
/// assert!(blanked > 0, "100 s of samples should contain blinks");
/// ```
#[derive(Debug, Clone)]
pub struct BlinkModel {
    sample_period: f64,
    rng: Rng,
    time_to_next: f64,
    blink_remaining: f64,
}

impl BlinkModel {
    /// Mean time between blinks, seconds (~17 blinks/minute).
    pub const MEAN_INTERVAL: f64 = 3.5;
    /// Blink duration, seconds (lid closed + tracker reacquisition).
    pub const DURATION: f64 = 0.15;

    /// Creates a blink process sampled at `rate_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not positive and finite.
    pub fn new(rate_hz: f64, seed: u64) -> Self {
        assert!(rate_hz > 0.0 && rate_hz.is_finite(), "sample rate must be positive");
        let mut rng = Rng::seeded(seed.wrapping_mul(0x000B_114C));
        let time_to_next = rng.exponential(Self::MEAN_INTERVAL);
        BlinkModel { sample_period: 1.0 / rate_hz, rng, time_to_next, blink_remaining: 0.0 }
    }

    /// Advances one sample period; returns `true` while a blink blanks the
    /// tracker.
    pub fn sample(&mut self) -> bool {
        if self.blink_remaining > 0.0 {
            self.blink_remaining -= self.sample_period;
            return true;
        }
        self.time_to_next -= self.sample_period;
        if self.time_to_next <= 0.0 {
            self.blink_remaining = Self::DURATION;
            self.time_to_next = self.rng.exponential(Self::MEAN_INTERVAL);
            return true;
        }
        false
    }
}

/// A recorded gaze trace and its locality statistics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GazeTrace {
    /// Samples in time order.
    pub samples: Vec<AngularPoint>,
}

impl GazeTrace {
    /// Records `n` samples from a model.
    pub fn record(model: &mut GazeModel, n: usize) -> Self {
        GazeTrace { samples: (0..n).map(|_| model.sample()).collect() }
    }

    /// Fraction of samples within `radius` of the trace's running centroid
    /// over sliding windows of `window` samples — the Fig 3b temporal
    /// locality measure. Returns 0 for traces shorter than the window.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn temporal_locality(&self, window: usize, radius: f64) -> f64 {
        assert!(window > 0, "window must be non-empty");
        if self.samples.len() < window {
            return 0.0;
        }
        let mut inside = 0u64;
        let mut total = 0u64;
        for chunk in self.samples.windows(window) {
            let centroid = AngularPoint::new(
                chunk.iter().map(|p| p.azimuth).sum::<f64>() / window as f64,
                chunk.iter().map(|p| p.elevation).sum::<f64>() / window as f64,
            );
            for p in chunk {
                total += 1;
                if p.distance_to(centroid) <= radius {
                    inside += 1;
                }
            }
        }
        inside as f64 / total.max(1) as f64
    }

    /// Bins samples into a `bins × bins` heatmap over
    /// `[-extent, extent]²` (azimuth × elevation), normalized to sum to 1
    /// (Fig 3b's per-user heat maps). Out-of-range samples are clamped to
    /// edge bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `extent` is not positive.
    pub fn heatmap(&self, bins: usize, extent: f64) -> Vec<f64> {
        assert!(bins > 0, "heatmap needs at least one bin");
        assert!(extent > 0.0, "heatmap extent must be positive");
        let mut map = vec![0.0; bins * bins];
        if self.samples.is_empty() {
            return map;
        }
        for p in &self.samples {
            let fx = ((p.azimuth + extent) / (2.0 * extent)).clamp(0.0, 1.0);
            let fy = ((p.elevation + extent) / (2.0 * extent)).clamp(0.0, 1.0);
            let cx = ((fx * bins as f64) as usize).min(bins - 1);
            let cy = ((fy * bins as f64) as usize).min(bins - 1);
            map[cy * bins + cx] += 1.0;
        }
        let total: f64 = map.iter().sum();
        for v in &mut map {
            *v /= total;
        }
        map
    }

    /// The centroid of the whole trace.
    pub fn centroid(&self) -> AngularPoint {
        if self.samples.is_empty() {
            return AngularPoint::CENTER;
        }
        let n = self.samples.len() as f64;
        AngularPoint::new(
            self.samples.iter().map(|p| p.azimuth).sum::<f64>() / n,
            self.samples.iter().map(|p| p.elevation).sum::<f64>() / n,
        )
    }
}

/// Overlap between two heatmaps (histogram intersection in `[0, 1]`),
/// used to show User1 ≈ User3 ≠ User2 as in Fig 3b.
///
/// # Panics
///
/// Panics if the maps have different lengths.
pub fn heatmap_overlap(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "heatmaps must have matching shapes");
    a.iter().zip(b).map(|(x, y)| x.min(*y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(profile: UserProfile, seed: u64, n: usize) -> GazeTrace {
        GazeTrace::record(&mut GazeModel::new(profile, 30.0, seed), n)
    }

    #[test]
    fn deterministic_per_seed() {
        let a = trace(UserProfile::default(), 42, 100);
        let b = trace(UserProfile::default(), 42, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn gaze_has_strong_temporal_locality() {
        // 10 seconds at 30 Hz; locality within a 5° radius over 1 s windows.
        let t = trace(UserProfile::default(), 7, 300);
        let locality = t.temporal_locality(30, deg(5.0));
        assert!(locality > 0.8, "temporal locality {locality} too weak");
    }

    #[test]
    fn shuffled_gaze_would_have_less_locality() {
        // Same marginal distribution, destroyed time structure: compare the
        // model against an i.i.d. draw from the fixation distribution.
        let t = trace(UserProfile::default(), 7, 300);
        let mut rng = Rng::seeded(1234);
        let p = UserProfile::default();
        let iid = GazeTrace {
            samples: (0..300)
                .map(|_| {
                    AngularPoint::new(
                        rng.normal_with(p.preferred.azimuth, p.spread),
                        rng.normal_with(p.preferred.elevation, p.spread),
                    )
                })
                .collect(),
        };
        let real = t.temporal_locality(30, deg(3.0));
        let shuffled = iid.temporal_locality(30, deg(3.0));
        assert!(real > shuffled, "fixations ({real}) should beat i.i.d. ({shuffled})");
    }

    #[test]
    fn users_have_distinct_regions() {
        let [u1, u2, u3] = UserProfile::study_users();
        let t1 = trace(u1, 1, 1500).heatmap(8, deg(25.0));
        let t2 = trace(u2, 2, 1500).heatmap(8, deg(25.0));
        let t3 = trace(u3, 3, 1500).heatmap(8, deg(25.0));
        let sim13 = heatmap_overlap(&t1, &t3);
        let sim12 = heatmap_overlap(&t1, &t2);
        assert!(
            sim13 > sim12,
            "User1/User3 overlap ({sim13:.2}) should beat User1/User2 ({sim12:.2})"
        );
    }

    #[test]
    fn blink_rate_is_physiological() {
        let mut blinks = BlinkModel::new(30.0, 9);
        let samples = 30 * 600; // 10 minutes
        let mut events = 0u32;
        let mut prev = false;
        let mut blanked = 0u32;
        for _ in 0..samples {
            let b = blinks.sample();
            if b && !prev {
                events += 1;
            }
            if b {
                blanked += 1;
            }
            prev = b;
        }
        // ~17/min ± a wide band.
        let per_minute = events as f64 / 10.0;
        assert!((8.0..30.0).contains(&per_minute), "blink rate {per_minute}/min");
        // Duty cycle ≈ duration / interval ≈ 4%.
        let duty = blanked as f64 / samples as f64;
        assert!((0.01..0.12).contains(&duty), "blink duty cycle {duty}");
    }

    #[test]
    fn blinks_are_deterministic_per_seed() {
        let mut a = BlinkModel::new(30.0, 5);
        let mut b = BlinkModel::new(30.0, 5);
        for _ in 0..500 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn heatmap_is_normalized() {
        let t = trace(UserProfile::default(), 5, 200);
        let m = t.heatmap(10, deg(25.0));
        assert_eq!(m.len(), 100);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn centroid_tracks_preference() {
        let [_, u2, _] = UserProfile::study_users();
        let c = trace(u2, 9, 2000).centroid();
        assert!(c.azimuth < 0.0, "User2 centroid should lean left");
        assert!(c.elevation < 0.0, "User2 centroid should lean down");
    }

    #[test]
    fn empty_trace_behaves() {
        let t = GazeTrace::default();
        assert_eq!(t.centroid(), AngularPoint::CENTER);
        assert_eq!(t.temporal_locality(10, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "matching shapes")]
    fn overlap_shape_mismatch_panics() {
        heatmap_overlap(&[0.5], &[0.2, 0.3]);
    }
}
