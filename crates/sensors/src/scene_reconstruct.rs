//! Scene reconstruction — the InfiniTAM \[50\] substitute.
//!
//! In the paper's pipeline characterization (Fig 2), scene reconstruction
//! fuses RGB-D frames into a consistent map, costs ~120 ms per run, and only
//! needs to run once every 2–3 frames (Table 1 allows 100 ms). The HoloAR
//! schemes themselves never read the map — it appears only in the pipeline
//! experiment — so the substitute is a compact TSDF-style voxel fusion that
//! exercises a real data path with the published cost/cadence model.

use crate::rng::Rng;

/// Published characteristics of the substituted reconstruction.
pub mod spec {
    /// Measured execution latency on the edge GPU, seconds (§2.2.1).
    pub const LATENCY: f64 = 0.120;
    /// Table 1 ideal latency, seconds (run once per 2–3 frames).
    pub const DEADLINE: f64 = 0.100;
    /// Frames between runs (the paper cites once per 2–3 frames).
    pub const FRAME_CADENCE: u64 = 3;
}

/// A depth observation: distance readings over a small grid of rays.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthObservation {
    /// Row-major depth readings, meters.
    pub depths: Vec<f64>,
    /// Grid side length (the observation is `side × side`).
    pub side: usize,
}

impl DepthObservation {
    /// Generates a synthetic observation of a room-like scene.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0`.
    pub fn synthetic(side: usize, seed: u64) -> Self {
        assert!(side > 0, "observation must be non-empty");
        let mut rng = Rng::seeded(seed);
        let mut depths = Vec::with_capacity(side * side);
        for r in 0..side {
            for c in 0..side {
                // A wall ~3 m away with gentle slant and sensor noise.
                let base = 3.0 + 0.3 * (r as f64 / side as f64) - 0.2 * (c as f64 / side as f64);
                depths.push((base + rng.normal_with(0.0, 0.01)).max(0.2));
            }
        }
        DepthObservation { depths, side }
    }
}

/// A truncated-signed-distance voxel column map: for each ray we keep a
/// running weighted depth estimate, the 1-D core of TSDF fusion.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneMap {
    side: usize,
    fused_depth: Vec<f64>,
    weights: Vec<f64>,
    fusions: u64,
}

impl SceneMap {
    /// Creates an empty map for `side × side` rays.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0`.
    pub fn new(side: usize) -> Self {
        assert!(side > 0, "map must be non-empty");
        SceneMap {
            side,
            fused_depth: vec![0.0; side * side],
            weights: vec![0.0; side * side],
            fusions: 0,
        }
    }

    /// Fuses one observation with running-average weights (TSDF-style),
    /// returning the modeled execution latency.
    ///
    /// # Panics
    ///
    /// Panics if the observation shape differs from the map's.
    pub fn integrate(&mut self, obs: &DepthObservation) -> f64 {
        assert_eq!(obs.side, self.side, "observation shape must match the map");
        const MAX_WEIGHT: f64 = 64.0;
        for (i, &d) in obs.depths.iter().enumerate() {
            let w = self.weights[i];
            self.fused_depth[i] = (self.fused_depth[i] * w + d) / (w + 1.0);
            self.weights[i] = (w + 1.0).min(MAX_WEIGHT);
        }
        self.fusions += 1;
        spec::LATENCY
    }

    /// Number of observations fused so far.
    pub fn fusion_count(&self) -> u64 {
        self.fusions
    }

    /// The fused depth estimate for one ray.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn depth_at(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.side && col < self.side, "ray index out of bounds");
        self.fused_depth[row * self.side + col]
    }

    /// RMS deviation between the fused map and an observation — drops as
    /// noise averages out.
    pub fn rms_error_against(&self, reference: &DepthObservation) -> f64 {
        assert_eq!(reference.side, self.side, "observation shape must match the map");
        let n = self.fused_depth.len() as f64;
        (self
            .fused_depth
            .iter()
            .zip(&reference.depths)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / n)
            .sqrt()
    }

    /// Whether reconstruction should run on this frame index, per the
    /// published cadence.
    pub fn due_on_frame(frame_index: u64) -> bool {
        frame_index.is_multiple_of(spec::FRAME_CADENCE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fusion_reduces_noise() {
        let mut map = SceneMap::new(16);
        // Noise-free reference.
        let mut clean = DepthObservation::synthetic(16, 0);
        for d in &mut clean.depths {
            *d = d.round_ties_even().clamp(3.0, 3.2); // coarse stand-in
        }
        // Fuse many noisy observations of the same scene.
        for seed in 0..20 {
            map.integrate(&DepthObservation::synthetic(16, seed));
        }
        let one_shot = {
            let mut m = SceneMap::new(16);
            m.integrate(&DepthObservation::synthetic(16, 999));
            m
        };
        // Compare both against yet another observation: the fused map should
        // be at least as consistent as a single noisy frame.
        let probe = DepthObservation::synthetic(16, 1234);
        assert!(map.rms_error_against(&probe) <= one_shot.rms_error_against(&probe) + 1e-9);
    }

    #[test]
    fn integrate_reports_published_latency() {
        let mut map = SceneMap::new(8);
        let latency = map.integrate(&DepthObservation::synthetic(8, 1));
        assert_eq!(latency, spec::LATENCY);
        assert!(latency > spec::DEADLINE, "practical latency exceeds Table 1 ideal");
    }

    #[test]
    fn cadence_matches_spec() {
        let due: Vec<u64> = (0..10).filter(|&f| SceneMap::due_on_frame(f)).collect();
        assert_eq!(due, vec![0, 3, 6, 9]);
    }

    #[test]
    fn fusion_count_tracks_integrations() {
        let mut map = SceneMap::new(4);
        for s in 0..5 {
            map.integrate(&DepthObservation::synthetic(4, s));
        }
        assert_eq!(map.fusion_count(), 5);
    }

    #[test]
    fn depth_estimates_are_plausible() {
        let mut map = SceneMap::new(8);
        map.integrate(&DepthObservation::synthetic(8, 3));
        let d = map.depth_at(4, 4);
        assert!((2.0..4.0).contains(&d), "fused wall depth {d}");
    }

    #[test]
    #[should_panic(expected = "shape must match")]
    fn shape_mismatch_panics() {
        SceneMap::new(4).integrate(&DepthObservation::synthetic(8, 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_ray_index_panics() {
        SceneMap::new(4).depth_at(4, 0);
    }
}
