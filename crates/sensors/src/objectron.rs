//! Synthetic object-centric video dataset — the Objectron \[1\] substitute.
//!
//! The paper evaluates on six Objectron categories whose salient statistics
//! it publishes as Table 2 (#frames, mean objects per frame, mean
//! camera-to-object distance, mean object size). HoloAR's schemes consume
//! exactly those per-frame object annotations: count, angular position,
//! metric distance and depth extent. This module generates deterministic
//! videos matched to the published statistics, with the temporal coherence
//! (objects persisting and drifting across frames) that the viewing-window
//! reuse logic depends on.

use crate::angles::{deg, AngularPoint};
use crate::rng::Rng;

/// The six Objectron categories of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VideoCategory {
    /// Large outdoor object, ~1 per frame, far and big.
    Bike,
    /// Table-top object, close and small.
    Book,
    /// Table-top object, closest in the set.
    Bottle,
    /// Most objects per frame after shoe; smallest size.
    Cup,
    /// Mid-size table-top object.
    Laptop,
    /// Most objects per frame (2.3).
    Shoe,
}

/// Table 2 row: the published statistics for one category.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VideoSpec {
    /// Category.
    pub category: VideoCategory,
    /// Total frames in the published dataset.
    pub frames: u64,
    /// Mean objects per frame.
    pub objects_per_frame: f64,
    /// Mean camera-to-object distance, meters (`Cam2ObjDist` in Fig 3a).
    pub distance: f64,
    /// Mean object size (`farmost − nearest`), meters (`ObjSize` in Fig 3a).
    pub size: f64,
}

impl VideoCategory {
    /// All categories in Table 2 order.
    pub const ALL: [VideoCategory; 6] = [
        VideoCategory::Bike,
        VideoCategory::Book,
        VideoCategory::Bottle,
        VideoCategory::Cup,
        VideoCategory::Laptop,
        VideoCategory::Shoe,
    ];

    /// Lower-case name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            VideoCategory::Bike => "bike",
            VideoCategory::Book => "book",
            VideoCategory::Bottle => "bottle",
            VideoCategory::Cup => "cup",
            VideoCategory::Laptop => "laptop",
            VideoCategory::Shoe => "shoe",
        }
    }

    /// The Table 2 statistics for this category.
    pub fn spec(self) -> VideoSpec {
        let (frames, objects_per_frame, distance, size) = match self {
            VideoCategory::Bike => (150_000, 1.1, 2.08, 1.54),
            VideoCategory::Book => (576_000, 1.5, 0.64, 0.28),
            VideoCategory::Bottle => (476_000, 1.1, 0.47, 0.22),
            VideoCategory::Cup => (546_000, 1.6, 0.47, 0.16),
            VideoCategory::Laptop => (485_000, 1.3, 0.58, 0.38),
            VideoCategory::Shoe => (557_000, 2.3, 0.65, 0.21),
        };
        VideoSpec { category: self, frames, objects_per_frame, distance, size }
    }
}

/// One annotated object in one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectAnnotation {
    /// Stable track id across frames.
    pub track_id: u64,
    /// Direction of the object center in the camera frame.
    pub direction: AngularPoint,
    /// Camera-to-object distance, meters.
    pub distance: f64,
    /// Object size (depth extent, `farmost − nearest`), meters.
    pub size: f64,
}

impl ObjectAnnotation {
    /// The object's apparent angular radius: how big it looks to the user.
    ///
    /// Objectron's `size` is the depth extent (`farmost − nearest`); the
    /// transverse half-extent of everyday objects is a moderate fraction of
    /// it (a cup is wider in depth than its silhouette radius), modeled here
    /// as `0.3 × size`.
    pub fn angular_radius(&self) -> f64 {
        (self.size * 0.3 / self.distance.max(1e-6)).atan()
    }

    /// The object's depth extent relative to its distance — the paper's
    /// intuition that "objects which are far from the user and with
    /// small-sized shapes require less information" (§2.2.3).
    pub fn angular_depth(&self) -> f64 {
        self.size / self.distance.max(1e-6)
    }
}

/// One video frame: the set of visible annotated objects.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Frame {
    /// Frame index within the video.
    pub index: u64,
    /// Visible objects.
    pub objects: Vec<ObjectAnnotation>,
}

/// Streaming generator of synthetic frames for one category.
///
/// Frames are produced lazily (the published videos run to 576 k frames;
/// materializing them all would be wasteful). The generator maintains a set
/// of live object tracks that drift smoothly and occasionally leave/arrive,
/// keeping the per-frame expectation at the Table 2 value.
///
/// # Examples
///
/// ```
/// use holoar_sensors::objectron::{FrameGenerator, VideoCategory};
///
/// let frames: Vec<_> = FrameGenerator::new(VideoCategory::Shoe, 99).take(100).collect();
/// assert_eq!(frames.len(), 100);
/// let mean_objs: f64 =
///     frames.iter().map(|f| f.objects.len() as f64).sum::<f64>() / 100.0;
/// assert!(mean_objs > 1.0); // shoe averages 2.3 objects per frame
/// ```
#[derive(Debug, Clone)]
pub struct FrameGenerator {
    spec: VideoSpec,
    rng: Rng,
    next_index: u64,
    next_track: u64,
    live: Vec<ObjectAnnotation>,
}

impl FrameGenerator {
    /// Object tracks survive each frame with this probability (mean track
    /// length ≈ 200 frames ≈ 6.7 s at 30 fps, matching hand-held
    /// object-centric footage).
    const PERSISTENCE: f64 = 0.995;

    /// Creates a generator for one category and seed.
    pub fn new(category: VideoCategory, seed: u64) -> Self {
        FrameGenerator {
            spec: category.spec(),
            rng: Rng::seeded(seed ^ (category as u64).wrapping_mul(0x9E37_79B9)),
            next_index: 0,
            next_track: 0,
            live: Vec::new(),
        }
    }

    /// The category statistics this generator targets.
    pub fn spec(&self) -> VideoSpec {
        self.spec
    }

    fn spawn_object(&mut self) -> ObjectAnnotation {
        let spec = self.spec;
        let distance = self
            .rng
            .normal_with(spec.distance, spec.distance * 0.25)
            .clamp(spec.distance * 0.4, spec.distance * 2.0);
        let size = self
            .rng
            .normal_with(spec.size, spec.size * 0.2)
            .clamp(spec.size * 0.4, spec.size * 1.8);
        let direction = AngularPoint::new(
            self.rng.normal_with(0.0, deg(12.0)),
            self.rng.normal_with(0.0, deg(8.0)),
        );
        let track_id = self.next_track;
        self.next_track += 1;
        ObjectAnnotation { track_id, direction, distance, size }
    }
}

impl Iterator for FrameGenerator {
    type Item = Frame;

    fn next(&mut self) -> Option<Frame> {
        // Retire departing tracks.
        let mut survivors = Vec::with_capacity(self.live.len());
        for obj in self.live.drain(..) {
            if self.rng.chance(Self::PERSISTENCE) {
                survivors.push(obj);
            }
        }
        self.live = survivors;
        // Drift the survivors smoothly.
        for obj in &mut self.live {
            obj.direction = obj.direction.offset(
                self.rng.normal_with(0.0, deg(0.6)),
                self.rng.normal_with(0.0, deg(0.45)),
            );
            obj.distance = (obj.distance + self.rng.normal_with(0.0, obj.distance * 0.004))
                .max(self.spec.distance * 0.3);
        }
        // A symmetric proportional controller keeps the live count at the
        // Table 2 expectation: spawn when below the mean, retire the oldest
        // track when above, with a gain low enough that tracks stay coherent
        // for many frames.
        const GAIN: f64 = 0.25;
        let deficit = self.spec.objects_per_frame - self.live.len() as f64;
        if deficit > 0.0 {
            if self.rng.chance((deficit * GAIN).min(1.0)) {
                let obj = self.spawn_object();
                self.live.push(obj);
            }
        } else if !self.live.is_empty() && self.rng.chance(((-deficit) * GAIN).min(1.0)) {
            self.live.remove(0);
        }
        let frame = Frame { index: self.next_index, objects: self.live.clone() };
        self.next_index += 1;
        Some(frame)
    }
}

/// Measured statistics of a generated frame sample, for validating the
/// generator against Table 2 (Fig 3a's dataset study).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampleStats {
    /// Frames measured.
    pub frames: u64,
    /// Mean objects per frame.
    pub objects_per_frame: f64,
    /// Mean camera-to-object distance over object observations.
    pub mean_distance: f64,
    /// Mean object size over object observations.
    pub mean_size: f64,
}

/// Measures statistics over the first `frames` frames of a category.
///
/// # Panics
///
/// Panics if `frames == 0`.
pub fn sample_stats(category: VideoCategory, seed: u64, frames: u64) -> SampleStats {
    assert!(frames > 0, "cannot measure zero frames");
    let mut object_count = 0u64;
    let mut dist_sum = 0.0;
    let mut size_sum = 0.0;
    for frame in FrameGenerator::new(category, seed).take(frames as usize) {
        for obj in &frame.objects {
            object_count += 1;
            dist_sum += obj.distance;
            size_sum += obj.size;
        }
    }
    let denom = object_count.max(1) as f64;
    SampleStats {
        frames,
        objects_per_frame: object_count as f64 / frames as f64,
        mean_distance: dist_sum / denom,
        mean_size: size_sum / denom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table2() {
        let bike = VideoCategory::Bike.spec();
        assert_eq!(bike.frames, 150_000);
        assert_eq!(bike.objects_per_frame, 1.1);
        assert_eq!(bike.distance, 2.08);
        assert_eq!(bike.size, 1.54);
        let shoe = VideoCategory::Shoe.spec();
        assert_eq!(shoe.objects_per_frame, 2.3);
        assert_eq!(VideoCategory::ALL.len(), 6);
    }

    #[test]
    fn generator_is_deterministic() {
        let a: Vec<Frame> = FrameGenerator::new(VideoCategory::Cup, 5).take(50).collect();
        let b: Vec<Frame> = FrameGenerator::new(VideoCategory::Cup, 5).take(50).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<Frame> = FrameGenerator::new(VideoCategory::Cup, 5).take(50).collect();
        let b: Vec<Frame> = FrameGenerator::new(VideoCategory::Cup, 6).take(50).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn stats_converge_to_table2() {
        for category in VideoCategory::ALL {
            let spec = category.spec();
            let stats = sample_stats(category, 11, 4000);
            let obj_err = (stats.objects_per_frame - spec.objects_per_frame).abs()
                / spec.objects_per_frame;
            let dist_err = (stats.mean_distance - spec.distance).abs() / spec.distance;
            let size_err = (stats.mean_size - spec.size).abs() / spec.size;
            assert!(obj_err < 0.25, "{}: objs/frame {} vs {}", spec.category.name(), stats.objects_per_frame, spec.objects_per_frame);
            assert!(dist_err < 0.15, "{}: distance {} vs {}", spec.category.name(), stats.mean_distance, spec.distance);
            assert!(size_err < 0.15, "{}: size {} vs {}", spec.category.name(), stats.mean_size, spec.size);
        }
    }

    #[test]
    fn tracks_persist_across_frames() {
        let frames: Vec<Frame> = FrameGenerator::new(VideoCategory::Book, 3).take(20).collect();
        // Some track id from frame 5 should still exist in frame 10.
        let early: Vec<u64> = frames[5].objects.iter().map(|o| o.track_id).collect();
        let later: Vec<u64> = frames[10].objects.iter().map(|o| o.track_id).collect();
        assert!(
            early.iter().any(|id| later.contains(id)),
            "expected temporal coherence between frames"
        );
    }

    #[test]
    fn tracks_drift_smoothly() {
        let frames: Vec<Frame> = FrameGenerator::new(VideoCategory::Laptop, 9).take(30).collect();
        for pair in frames.windows(2) {
            for obj in &pair[1].objects {
                if let Some(prev) =
                    pair[0].objects.iter().find(|o| o.track_id == obj.track_id)
                {
                    let step = prev.direction.distance_to(obj.direction);
                    assert!(step < deg(2.0), "object jumped {step} rad in one frame");
                }
            }
        }
    }

    #[test]
    fn frames_are_indexed_sequentially() {
        let frames: Vec<Frame> = FrameGenerator::new(VideoCategory::Bike, 1).take(10).collect();
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.index, i as u64);
        }
    }

    #[test]
    fn angular_helpers_behave() {
        let near_large = ObjectAnnotation {
            track_id: 0,
            direction: AngularPoint::CENTER,
            distance: 0.5,
            size: 0.4,
        };
        let far_small = ObjectAnnotation {
            track_id: 1,
            direction: AngularPoint::CENTER,
            distance: 2.0,
            size: 0.1,
        };
        assert!(near_large.angular_radius() > far_small.angular_radius());
        assert!(near_large.angular_depth() > far_small.angular_depth());
    }

    #[test]
    #[should_panic(expected = "zero frames")]
    fn zero_frame_stats_panic() {
        sample_stats(VideoCategory::Bike, 0, 0);
    }
}
