//! Synthetic sensing and dataset substrates for the HoloAR reproduction.
//!
//! The paper's inputs — the Objectron and MPIIDPEye datasets, NVGaze eye
//! tracking, Kimera-VIO pose estimation, InfiniTAM scene reconstruction —
//! are unavailable here, so each is substituted with a deterministic
//! synthetic model matched to the statistics the paper actually relies on
//! (see `DESIGN.md` for the substitution table):
//!
//! * [`objectron`] — per-frame object annotations matching Table 2,
//! * [`gaze`] — fixation/saccade gaze with Fig 3b's temporal locality,
//! * [`eyetrack`] — an estimator with NVGaze's 2.06° accuracy and 4.4 ms
//!   latency,
//! * [`imu`]/[`pose`] — head motion and a Kimera-like filter (13.75 ms),
//! * [`scene_reconstruct`] — TSDF-style fusion with InfiniTAM's 120 ms cost,
//! * [`stats`] — the Fig 3 dataset study computed over all of the above.
//!
//! # Examples
//!
//! ```
//! use holoar_sensors::objectron::{FrameGenerator, VideoCategory};
//!
//! let frame = FrameGenerator::new(VideoCategory::Shoe, 7).next().unwrap();
//! for object in &frame.objects {
//!     assert!(object.distance > 0.0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod angles;
pub mod calibrated_noise;
pub mod eyetrack;
pub mod gaze;
pub mod imu;
pub mod objectron;
pub mod pose;
pub mod rng;
pub mod scene_reconstruct;
pub mod stats;
pub mod trace;

pub use angles::{AngularPoint, AngularRect};
pub use eyetrack::{EyeTracker, GazeEstimate};
pub use gaze::{BlinkModel, GazeModel, GazeTrace, UserProfile};
pub use imu::{HeadMotion, ImuSample};
pub use objectron::{Frame, FrameGenerator, ObjectAnnotation, VideoCategory, VideoSpec};
pub use pose::{PoseEstimate, PoseEstimator};
pub use rng::Rng;
pub use scene_reconstruct::{DepthObservation, SceneMap};
pub use trace::{ParseTraceError, SessionTrace, TraceFrame};
