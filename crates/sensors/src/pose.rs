//! Pose estimation — the Kimera-VIO \[53\] substitute.
//!
//! HoloAR needs two things from pose estimation (§4.4): the user's head
//! orientation (which defines the viewing window) and the camera-to-object
//! distances. The estimator here integrates the synthetic gyro stream with a
//! complementary-filter correction toward sporadic "visual" fixes — the same
//! role VIO plays — and reports the paper's measured 13.75 ms latency.

use crate::angles::{deg, AngularPoint, AngularRect};
use crate::imu::ImuSample;
use crate::rng::Rng;

/// Published characteristics of the substituted estimator.
pub mod spec {
    /// Kimera-VIO execution latency on the edge GPU, seconds (§4.4).
    pub const LATENCY: f64 = 0.01375;
    /// The paper's Table 1 deadline for pose estimation, seconds.
    pub const DEADLINE: f64 = 0.033;
}

/// The AR display's field of view, which the estimated head orientation
/// positions in the world — HoloLens-2-class optics.
pub const DISPLAY_FOV_WIDTH: f64 = deg(43.0);
/// Vertical field of view of the display.
pub const DISPLAY_FOV_HEIGHT: f64 = deg(29.0);

/// One pose estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoseEstimate {
    /// Estimated head orientation.
    pub orientation: AngularPoint,
    /// Modeled estimation latency, seconds.
    pub latency: f64,
}

impl PoseEstimate {
    /// The viewing window this head orientation defines (Fig 5a): the
    /// display FoV centered on the estimated orientation.
    pub fn viewing_window(&self) -> AngularRect {
        AngularRect::new(self.orientation, DISPLAY_FOV_WIDTH, DISPLAY_FOV_HEIGHT)
    }
}

/// Complementary-filter pose estimator fed by IMU samples.
///
/// # Examples
///
/// ```
/// use holoar_sensors::imu::HeadMotion;
/// use holoar_sensors::pose::PoseEstimator;
///
/// let mut imu = HeadMotion::new(200.0, 1);
/// let mut vio = PoseEstimator::new(2);
/// let mut estimate = None;
/// for sample in imu.samples(200) {
///     estimate = Some(vio.update(&sample));
/// }
/// assert!(estimate.unwrap().latency > 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct PoseEstimator {
    rng: Rng,
    estimate: AngularPoint,
    last_time: f64,
    /// Visual fixes arrive at camera rate; fraction of drift corrected each
    /// fix.
    correction_gain: f64,
    samples_since_fix: u32,
    samples_per_fix: u32,
}

impl PoseEstimator {
    /// Creates an estimator with a deterministic noise stream.
    pub fn new(seed: u64) -> Self {
        PoseEstimator {
            rng: Rng::seeded(seed.wrapping_mul(0x53A1_D90F)),
            estimate: AngularPoint::CENTER,
            last_time: 0.0,
            correction_gain: 0.25,
            samples_since_fix: 0,
            samples_per_fix: 7, // ~30 Hz camera against a 200 Hz IMU
        }
    }

    /// Folds in one IMU sample and returns the current estimate.
    pub fn update(&mut self, sample: &ImuSample) -> PoseEstimate {
        let dt = (sample.time - self.last_time).max(0.0);
        self.last_time = sample.time;
        // Dead-reckon on the gyro.
        self.estimate = self
            .estimate
            .offset(sample.angular_rate.0 * dt, sample.angular_rate.1 * dt);
        // Periodic visual correction toward truth, with feature-matching
        // noise.
        self.samples_since_fix += 1;
        if self.samples_since_fix >= self.samples_per_fix {
            self.samples_since_fix = 0;
            let vis_noise = deg(0.3);
            let observed = sample.true_orientation.offset(
                self.rng.normal_with(0.0, vis_noise),
                self.rng.normal_with(0.0, vis_noise),
            );
            self.estimate = AngularPoint::new(
                self.estimate.azimuth
                    + self.correction_gain * (observed.azimuth - self.estimate.azimuth),
                self.estimate.elevation
                    + self.correction_gain * (observed.elevation - self.estimate.elevation),
            );
        }
        PoseEstimate { orientation: self.estimate, latency: spec::LATENCY }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imu::HeadMotion;

    fn run(seed: u64, n: usize) -> (Vec<AngularPoint>, Vec<PoseEstimate>) {
        let mut imu = HeadMotion::new(200.0, seed);
        let mut vio = PoseEstimator::new(seed + 100);
        let mut truth = Vec::new();
        let mut est = Vec::new();
        for s in imu.samples(n) {
            truth.push(s.true_orientation);
            est.push(vio.update(&s));
        }
        (truth, est)
    }

    #[test]
    fn estimate_tracks_truth() {
        let (truth, est) = run(1, 4000);
        // After warm-up, the error should stay small.
        let errs: Vec<f64> = truth
            .iter()
            .zip(&est)
            .skip(400)
            .map(|(t, e)| t.distance_to(e.orientation))
            .collect();
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean_err < deg(1.5), "mean pose error {:.2}°", mean_err.to_degrees());
        let max_err = errs.iter().cloned().fold(0.0, f64::max);
        assert!(max_err < deg(6.0), "max pose error {:.2}°", max_err.to_degrees());
    }

    #[test]
    fn latency_meets_table1_deadline() {
        let (_, est) = run(2, 10);
        assert!(est[0].latency < spec::DEADLINE);
        assert_eq!(est[0].latency, 0.01375);
    }

    #[test]
    fn viewing_window_is_centered_on_orientation() {
        let (_, est) = run(3, 500);
        let e = est.last().unwrap();
        let w = e.viewing_window();
        assert_eq!(w.center, e.orientation);
        assert!(w.contains(e.orientation));
        assert!((w.width - DISPLAY_FOV_WIDTH).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let (_, a) = run(4, 100);
        let (_, b) = run(4, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn window_moves_when_head_moves() {
        // Fig 5a: lifting the head shifts the window.
        let (truth, est) = run(5, 6000);
        let first = est[500].viewing_window().center;
        let last = est[5999].viewing_window().center;
        let truth_moved = truth[500].distance_to(truth[5999]);
        if truth_moved > deg(2.0) {
            assert!(first.distance_to(last) > deg(0.5));
        }
    }
}
