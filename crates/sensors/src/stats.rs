//! The paper's dataset study (Fig 3, Table 2) computed over the synthetic
//! substitutes.

use crate::angles::deg;
use crate::gaze::{GazeModel, GazeTrace, UserProfile};
use crate::objectron::{sample_stats, SampleStats, VideoCategory};

/// Summary of one category's object statistics — a Fig 3a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryStudy {
    /// Category studied.
    pub category: VideoCategory,
    /// Measured statistics over the sampled frames.
    pub measured: SampleStats,
    /// Published Table 2 expectations.
    pub expected_objects_per_frame: f64,
    /// Published mean distance, meters.
    pub expected_distance: f64,
    /// Published mean size, meters.
    pub expected_size: f64,
}

/// Runs the Fig 3a study: per-category distance and size statistics.
///
/// # Examples
///
/// ```
/// use holoar_sensors::stats::dataset_study;
/// let rows = dataset_study(17, 500);
/// assert_eq!(rows.len(), 6);
/// ```
///
/// # Panics
///
/// Panics if `frames == 0`.
pub fn dataset_study(seed: u64, frames: u64) -> Vec<CategoryStudy> {
    VideoCategory::ALL
        .iter()
        .map(|&category| {
            let spec = category.spec();
            CategoryStudy {
                category,
                measured: sample_stats(category, seed, frames),
                expected_objects_per_frame: spec.objects_per_frame,
                expected_distance: spec.distance,
                expected_size: spec.size,
            }
        })
        .collect()
}

/// One user's 10-second gaze study — a Fig 3b panel.
#[derive(Debug, Clone)]
pub struct GazeStudy {
    /// User index (1-based, as in the figure).
    pub user: usize,
    /// The recorded trace.
    pub trace: GazeTrace,
    /// Normalized heatmap over the viewing window.
    pub heatmap: Vec<f64>,
    /// Temporal locality: fraction of samples within 5° of the 1-second
    /// running centroid.
    pub locality: f64,
}

/// Heatmap side length used by the study.
pub const HEATMAP_BINS: usize = 12;

/// Runs the Fig 3b study: three users viewing the same scene for
/// `seconds` at 30 Hz.
///
/// # Panics
///
/// Panics if `seconds` is not positive.
pub fn gaze_study(seed: u64, seconds: f64) -> Vec<GazeStudy> {
    assert!(seconds > 0.0, "study duration must be positive");
    let samples = (seconds * 30.0).ceil() as usize;
    UserProfile::study_users()
        .into_iter()
        .enumerate()
        .map(|(i, profile)| {
            let mut model = GazeModel::new(profile, 30.0, seed.wrapping_add(i as u64));
            let trace = GazeTrace::record(&mut model, samples);
            let heatmap = trace.heatmap(HEATMAP_BINS, deg(25.0));
            let locality = trace.temporal_locality(30, deg(5.0));
            GazeStudy { user: i + 1, trace, heatmap, locality }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaze::heatmap_overlap;

    #[test]
    fn dataset_study_covers_all_categories() {
        let rows = dataset_study(3, 400);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.measured.objects_per_frame > 0.0);
            // Bike should be the farthest/biggest; verify ordering vs cup.
        }
        let bike = rows.iter().find(|r| r.category == VideoCategory::Bike).unwrap();
        let cup = rows.iter().find(|r| r.category == VideoCategory::Cup).unwrap();
        assert!(bike.measured.mean_distance > cup.measured.mean_distance);
        assert!(bike.measured.mean_size > cup.measured.mean_size);
    }

    #[test]
    fn gaze_study_reproduces_fig3b_structure() {
        let studies = gaze_study(5, 10.0);
        assert_eq!(studies.len(), 3);
        for s in &studies {
            assert_eq!(s.trace.samples.len(), 300);
            assert!(s.locality > 0.7, "user {} locality {}", s.user, s.locality);
        }
        // User1 resembles User3 more than User2.
        let sim13 = heatmap_overlap(&studies[0].heatmap, &studies[2].heatmap);
        let sim12 = heatmap_overlap(&studies[0].heatmap, &studies[1].heatmap);
        assert!(sim13 > sim12);
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_study_panics() {
        gaze_study(1, 0.0);
    }
}
