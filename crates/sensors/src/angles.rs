//! Angular geometry shared by the gaze, pose and dataset models.
//!
//! Everything the HoloAR schemes consume is angular: gaze directions, head
//! orientations, object positions in the field of view. An
//! [`AngularPoint`] is an (azimuth, elevation) pair in radians, with azimuth
//! positive rightward and elevation positive upward.

/// Converts degrees to radians.
///
/// # Examples
///
/// ```
/// use holoar_sensors::angles::deg;
/// assert!((deg(180.0) - std::f64::consts::PI).abs() < 1e-12);
/// ```
pub const fn deg(degrees: f64) -> f64 {
    degrees * std::f64::consts::PI / 180.0
}

/// A direction expressed as azimuth/elevation, radians.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AngularPoint {
    /// Azimuth (yaw), positive rightward.
    pub azimuth: f64,
    /// Elevation (pitch), positive upward.
    pub elevation: f64,
}

impl AngularPoint {
    /// The straight-ahead direction.
    pub const CENTER: AngularPoint = AngularPoint { azimuth: 0.0, elevation: 0.0 };

    /// Creates a direction.
    pub const fn new(azimuth: f64, elevation: f64) -> Self {
        AngularPoint { azimuth, elevation }
    }

    /// Small-angle angular distance to another direction, radians.
    ///
    /// For the narrow fields of view AR headsets use (≲ 60°), the Euclidean
    /// approximation on the azimuth/elevation plane is accurate to well under
    /// the eye-tracker noise floor.
    ///
    /// # Examples
    ///
    /// ```
    /// use holoar_sensors::angles::{deg, AngularPoint};
    /// let a = AngularPoint::new(0.0, 0.0);
    /// let b = AngularPoint::new(deg(3.0), deg(4.0));
    /// assert!((a.distance_to(b) - deg(5.0)).abs() < 1e-9);
    /// ```
    pub fn distance_to(self, other: AngularPoint) -> f64 {
        (self.azimuth - other.azimuth).hypot(self.elevation - other.elevation)
    }

    /// Component-wise offset.
    pub fn offset(self, d_azimuth: f64, d_elevation: f64) -> AngularPoint {
        AngularPoint { azimuth: self.azimuth + d_azimuth, elevation: self.elevation + d_elevation }
    }
}

/// An axis-aligned angular rectangle — the viewing window the head pose
/// defines (Fig 5a), or the display's field of view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AngularRect {
    /// Center direction.
    pub center: AngularPoint,
    /// Full width (azimuth extent), radians.
    pub width: f64,
    /// Full height (elevation extent), radians.
    pub height: f64,
}

impl AngularRect {
    /// Creates a rectangle centered on `center`.
    ///
    /// # Panics
    ///
    /// Panics if width or height is not positive and finite.
    pub fn new(center: AngularPoint, width: f64, height: f64) -> Self {
        assert!(width > 0.0 && width.is_finite(), "width must be positive");
        assert!(height > 0.0 && height.is_finite(), "height must be positive");
        AngularRect { center, width, height }
    }

    /// Whether a direction falls inside the rectangle.
    pub fn contains(&self, p: AngularPoint) -> bool {
        (p.azimuth - self.center.azimuth).abs() <= self.width / 2.0
            && (p.elevation - self.center.elevation).abs() <= self.height / 2.0
    }

    /// The fraction of a disc of angular radius `radius` centered at `p`
    /// that lies inside the rectangle, in `[0, 1]`.
    ///
    /// Approximated by the 1-D overlap product along each axis, which is
    /// exact for fully-in / fully-out and smooth for edge crossings — the
    /// partial-object coverage of Fig 5a Frame-II.
    pub fn coverage_of_disc(&self, p: AngularPoint, radius: f64) -> f64 {
        assert!(radius >= 0.0, "disc radius must be non-negative");
        if radius == 0.0 {
            return if self.contains(p) { 1.0 } else { 0.0 };
        }
        let overlap = |delta: f64, half_extent: f64| -> f64 {
            // Overlap of [delta-radius, delta+radius] with [-half, half],
            // normalized by the disc diameter.
            let lo = (delta - radius).max(-half_extent);
            let hi = (delta + radius).min(half_extent);
            ((hi - lo) / (2.0 * radius)).clamp(0.0, 1.0)
        };
        overlap(p.azimuth - self.center.azimuth, self.width / 2.0)
            * overlap(p.elevation - self.center.elevation, self.height / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = AngularPoint::new(0.1, -0.2);
        let b = AngularPoint::new(-0.3, 0.4);
        assert_eq!(a.distance_to(b), b.distance_to(a));
        assert_eq!(a.distance_to(a), 0.0);
    }

    #[test]
    fn rect_containment() {
        let r = AngularRect::new(AngularPoint::CENTER, deg(40.0), deg(30.0));
        assert!(r.contains(AngularPoint::CENTER));
        assert!(r.contains(AngularPoint::new(deg(19.9), deg(14.9))));
        assert!(!r.contains(AngularPoint::new(deg(20.1), 0.0)));
        assert!(!r.contains(AngularPoint::new(0.0, deg(-15.1))));
    }

    #[test]
    fn disc_coverage_extremes() {
        let r = AngularRect::new(AngularPoint::CENTER, deg(40.0), deg(30.0));
        // Fully inside.
        assert_eq!(r.coverage_of_disc(AngularPoint::CENTER, deg(5.0)), 1.0);
        // Fully outside.
        assert_eq!(r.coverage_of_disc(AngularPoint::new(deg(60.0), 0.0), deg(5.0)), 0.0);
        // Straddling the right edge: about half covered.
        let half = r.coverage_of_disc(AngularPoint::new(deg(20.0), 0.0), deg(5.0));
        assert!((half - 0.5).abs() < 0.05, "edge coverage {half}");
    }

    #[test]
    fn zero_radius_disc_degenerates_to_containment() {
        let r = AngularRect::new(AngularPoint::CENTER, 1.0, 1.0);
        assert_eq!(r.coverage_of_disc(AngularPoint::CENTER, 0.0), 1.0);
        assert_eq!(r.coverage_of_disc(AngularPoint::new(2.0, 0.0), 0.0), 0.0);
    }

    #[test]
    fn coverage_decreases_moving_out() {
        let r = AngularRect::new(AngularPoint::CENTER, deg(40.0), deg(30.0));
        let mut last = 1.1;
        for az_deg in [0.0, 10.0, 18.0, 20.0, 22.0, 30.0] {
            let c = r.coverage_of_disc(AngularPoint::new(deg(az_deg), 0.0), deg(4.0));
            assert!(c <= last + 1e-12, "coverage should not increase moving out");
            last = c;
        }
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn rect_rejects_bad_width() {
        AngularRect::new(AngularPoint::CENTER, 0.0, 1.0);
    }
}
