//! IMU synthesis: smooth head-motion trajectories and their noisy
//! gyroscope observations.
//!
//! The pose estimator ([`crate::pose`]) consumes these samples the way
//! Kimera-VIO consumes a real IMU stream. Head motion follows a smoothed
//! random walk in yaw/pitch — the "user lifts her head a bit" dynamics that
//! moves the viewing window between frames (Fig 5a).

use crate::angles::{deg, AngularPoint};
use crate::rng::Rng;

/// True head orientation plus the noisy angular-rate observation for one
/// sample instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImuSample {
    /// Sample time, seconds.
    pub time: f64,
    /// Ground-truth head orientation.
    pub true_orientation: AngularPoint,
    /// Observed angular rate (yaw, pitch), rad/s, with gyro noise.
    pub angular_rate: (f64, f64),
}

/// Generates a continuous head-motion trajectory and IMU observations.
///
/// # Examples
///
/// ```
/// use holoar_sensors::imu::HeadMotion;
///
/// let mut imu = HeadMotion::new(200.0, 4);
/// let s0 = imu.sample();
/// let s1 = imu.sample();
/// assert!(s1.time > s0.time);
/// ```
#[derive(Debug, Clone)]
pub struct HeadMotion {
    rng: Rng,
    period: f64,
    time: f64,
    orientation: AngularPoint,
    velocity: (f64, f64),
    gyro_noise_sigma: f64,
}

impl HeadMotion {
    /// Creates a trajectory sampled at `rate_hz` (IMUs typically run
    /// 200–1000 Hz).
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not positive and finite.
    pub fn new(rate_hz: f64, seed: u64) -> Self {
        assert!(rate_hz > 0.0 && rate_hz.is_finite(), "IMU rate must be positive");
        HeadMotion {
            rng: Rng::seeded(seed.wrapping_mul(0x1331_11EB)),
            period: 1.0 / rate_hz,
            time: 0.0,
            orientation: AngularPoint::CENTER,
            velocity: (0.0, 0.0),
            gyro_noise_sigma: deg(0.5), // rad/s noise density, MEMS-class
        }
    }

    /// The ground-truth orientation right now (what a perfect tracker would
    /// report).
    pub fn true_orientation(&self) -> AngularPoint {
        self.orientation
    }

    /// Advances one sample period and returns the observation.
    pub fn sample(&mut self) -> ImuSample {
        // Ornstein–Uhlenbeck-style velocity: smooth, mean-reverting head
        // motion bounded to a comfortable range.
        let restoring = 0.4;
        let agitation = deg(18.0); // rad/s² drive
        self.velocity.0 += self.period
            * (-restoring * self.velocity.0 - 0.8 * self.orientation.azimuth
                + self.rng.normal_with(0.0, agitation));
        self.velocity.1 += self.period
            * (-restoring * self.velocity.1 - 0.8 * self.orientation.elevation
                + self.rng.normal_with(0.0, agitation * 0.6));
        self.orientation = self
            .orientation
            .offset(self.velocity.0 * self.period, self.velocity.1 * self.period);
        self.time += self.period;
        ImuSample {
            time: self.time,
            true_orientation: self.orientation,
            angular_rate: (
                self.velocity.0 + self.rng.normal_with(0.0, self.gyro_noise_sigma),
                self.velocity.1 + self.rng.normal_with(0.0, self.gyro_noise_sigma),
            ),
        }
    }

    /// Collects `n` consecutive samples.
    pub fn samples(&mut self, n: usize) -> Vec<ImuSample> {
        (0..n).map(|_| self.sample()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = HeadMotion::new(200.0, 1);
        let mut b = HeadMotion::new(200.0, 1);
        assert_eq!(a.samples(50), b.samples(50));
    }

    #[test]
    fn time_advances_uniformly() {
        let mut imu = HeadMotion::new(100.0, 2);
        let s = imu.samples(10);
        for pair in s.windows(2) {
            assert!((pair[1].time - pair[0].time - 0.01).abs() < 1e-12);
        }
    }

    #[test]
    fn motion_is_smooth() {
        let mut imu = HeadMotion::new(200.0, 3);
        let s = imu.samples(2000);
        for pair in s.windows(2) {
            let step = pair[0].true_orientation.distance_to(pair[1].true_orientation);
            assert!(step < deg(0.5), "head jumped {step} rad in 5 ms");
        }
    }

    #[test]
    fn motion_stays_bounded() {
        let mut imu = HeadMotion::new(200.0, 4);
        for s in imu.samples(10_000) {
            assert!(
                s.true_orientation.distance_to(AngularPoint::CENTER) < deg(60.0),
                "head wandered beyond a plausible range"
            );
        }
    }

    #[test]
    fn gyro_observation_tracks_velocity_noisily() {
        let mut imu = HeadMotion::new(200.0, 5);
        let s = imu.samples(4000);
        // The observation should correlate with true motion: integrate the
        // observed rates and compare to the true displacement.
        let integrated: f64 = s.iter().map(|x| x.angular_rate.0 * (1.0 / 200.0)).sum();
        let truth = s.last().unwrap().true_orientation.azimuth;
        assert!((integrated - truth).abs() < deg(5.0), "integrated {integrated} vs {truth}");
    }
}
