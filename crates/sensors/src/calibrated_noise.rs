//! Noise calibration helpers shared by the sensor substitutes.

use crate::angles::deg;

/// Converts a published *mean* angular error (degrees) into the per-axis
/// Gaussian σ (radians) that produces it.
///
/// With independent Gaussian error on each axis, the angular error magnitude
/// is Rayleigh-distributed with mean `σ·√(π/2)`, so `σ = mean / √(π/2)`.
///
/// # Examples
///
/// ```
/// use holoar_sensors::calibrated_noise::angular_error_sigma;
/// let sigma = angular_error_sigma(2.06);
/// assert!(sigma > 0.0);
/// ```
///
/// # Panics
///
/// Panics if `mean_error_deg` is negative or non-finite.
pub fn angular_error_sigma(mean_error_deg: f64) -> f64 {
    assert!(
        mean_error_deg >= 0.0 && mean_error_deg.is_finite(),
        "mean error must be non-negative and finite"
    );
    deg(mean_error_deg) / (std::f64::consts::PI / 2.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn sigma_reproduces_mean_error() {
        let mean_deg = 2.06;
        let sigma = angular_error_sigma(mean_deg);
        let mut rng = Rng::seeded(77);
        let n = 50_000;
        let mean: f64 = (0..n)
            .map(|_| rng.normal_with(0.0, sigma).hypot(rng.normal_with(0.0, sigma)))
            .sum::<f64>()
            / n as f64;
        assert!((mean.to_degrees() - mean_deg).abs() < 0.05, "mean {}°", mean.to_degrees());
    }

    #[test]
    fn zero_error_gives_zero_sigma() {
        assert_eq!(angular_error_sigma(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_error_panics() {
        angular_error_sigma(-1.0);
    }
}
