//! The workspace model: pass 1 of the interprocedural analyzer.
//!
//! [`build`] turns every scanned source file into a [`WorkspaceModel`]:
//! a symbol table of function definitions, a heuristically-resolved call
//! graph, per-function effect summaries (intrinsic and transitive), a
//! lock-ordering edge set, and per-file pre-sizing evidence. Pass 2 (the
//! `check_model` rules in [`crate::rules`]) runs over this model.
//!
//! Everything is stored in `BTreeMap`s keyed by [`FnId`] so the model is
//! bit-identical regardless of the order files were walked in — a
//! property test in `crates/lint/tests` shuffles the input ordering and
//! compares JSON dumps byte-for-byte.
//!
//! ## Name-resolution heuristic (and its known limits)
//!
//! There is no type information here; resolution is name-based with
//! scope preference:
//!
//! - `Type::assoc(...)` resolves among methods whose surrounding `impl`
//!   names `Type`.
//! - `module::f(...)` resolves among functions whose file is `module.rs`
//!   or lives under a `module/` directory; `holoar_x::f` maps to
//!   `crates/x/`. `self::`/`super::`/`crate::` fall back to same-crate
//!   preference.
//! - `self.m(...)` prefers methods of the caller's own impl type.
//! - Bare and method calls prefer same-file, then same-crate, then a
//!   workspace-unique definition. Method names that collide with
//!   ubiquitous std methods (`unwrap`, `len`, `clone`, ...) are never
//!   resolved — see [`METHOD_BLOCKLIST`].
//! - Ambiguity inside the narrowest matching scope links the call to
//!   *all* candidates (a sound over-approximation for may-effects).
//!
//! Consequences: calls through function pointers, closures, trait
//! objects, and macro bodies are invisible; a workspace method named
//! like a std method is not traversed. DESIGN.md ("Static analysis")
//! documents these limits next to the rules that depend on them.

pub mod extract;

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::collections::VecDeque;

use holoar_telemetry::jsonlite::Json;

use crate::config::Config;
use crate::source::SourceFile;
use extract::{FnFacts, RawCall};

/// Unique key for one function definition.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnId {
    /// Workspace-relative file path.
    pub path: String,
    /// Function name (unqualified).
    pub name: String,
    /// 1-based line of the definition (disambiguates same-name fns in
    /// one file, e.g. methods of two impl blocks).
    pub line: usize,
}

impl FnId {
    /// `path::name`, the form diagnostics print chains in.
    pub fn display(&self) -> String {
        format!("{}::{}", self.path, self.name)
    }
}

/// One resolved call-graph edge.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ResolvedCall {
    /// The callee.
    pub callee: FnId,
    /// 1-based line of the call site.
    pub line: usize,
    /// Whether the call site sits inside a loop body.
    pub in_loop: bool,
    /// Lock names held at the call.
    pub held_locks: Vec<String>,
}

/// May-effect summary bits for one function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Effects {
    /// May panic (`unwrap`, `panic!`, panic-prone indexing, ...).
    pub panics: bool,
    /// May heap-allocate (`Vec::new`, `format!`, `clone`, ...).
    pub allocates: bool,
    /// May block (lock acquisition, `recv`, `join`).
    pub blocks: bool,
    /// Calls transcendental math (`sin`/`cos`/`exp`/`powf`/...).
    pub transcendental: bool,
    /// Performs `Parallelism` fan-out.
    pub fans_out: bool,
    /// Sends on a channel.
    pub sends: bool,
}

impl Effects {
    fn union(self, other: Effects) -> Effects {
        Effects {
            panics: self.panics || other.panics,
            allocates: self.allocates || other.allocates,
            blocks: self.blocks || other.blocks,
            transcendental: self.transcendental || other.transcendental,
            fans_out: self.fans_out || other.fans_out,
            sends: self.sends || other.sends,
        }
    }
}

/// One edge of the lock-ordering graph: `to` acquired while `from` held.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// The function whose body (or whose callee) produced the edge.
    pub path: String,
    /// 1-based line of the acquisition or the call that reaches it.
    pub line: usize,
    /// For interprocedural edges, the callee that transitively acquires
    /// `to`; empty for direct acquisitions.
    pub via: String,
}

/// The pass-1 workspace model.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceModel {
    /// Every function definition, with its extracted facts.
    pub fns: BTreeMap<FnId, FnFacts>,
    /// Resolved call edges per function, in source order.
    pub calls: BTreeMap<FnId, Vec<ResolvedCall>>,
    /// Intrinsic (own-body) effects per function.
    pub intrinsic: BTreeMap<FnId, Effects>,
    /// Transitive effects (own body plus everything reachable through
    /// the resolved call graph, stopping at rule-exempt paths).
    pub closure: BTreeMap<FnId, Effects>,
    /// Lock names transitively acquired per function.
    pub locks_acquired: BTreeMap<FnId, BTreeSet<String>>,
    /// Lock-ordering graph: `(held, acquired) -> first witnessing site`.
    pub lock_edges: BTreeMap<(String, String), LockEdge>,
    /// Per-file identifiers with pre-sizing evidence (`with_capacity`,
    /// `reserve`, `resize`), consulted by `hot-loop-alloc`.
    pub presized: BTreeMap<String, Vec<String>>,
}

/// Method names never resolved as workspace calls: ubiquitous std
/// methods a name-only heuristic would mis-link.
pub const METHOD_BLOCKLIST: &[&str] = &[
    "abs", "all", "and_then", "any", "as_bytes", "as_mut", "as_ref", "as_slice", "as_str",
    "atan2", "bytes", "ceil", "chain", "chars", "checked_add", "checked_mul", "checked_sub",
    "chunks", "chunks_exact", "chunks_exact_mut", "chunks_mut", "clamp", "clear", "clone",
    "cloned", "cmp", "collect", "contains", "contains_key", "copied", "copy_from_slice",
    "cos", "count", "dedup", "display", "drain", "drop", "end", "ends_with", "entry",
    "enumerate", "eq", "err", "exp", "extend", "extend_from_slice", "filter", "filter_map",
    "find", "first", "flat_map", "flatten", "floor", "fold", "for_each", "from_bits", "get",
    "get_mut", "get_or_insert_with", "hash", "hypot", "insert", "into", "into_iter",
    "is_empty", "is_err", "is_finite", "is_nan", "is_none", "is_ok", "is_some", "iter",
    "iter_mut", "join", "keys", "last", "len", "ln", "lock", "log10", "log2", "map",
    "map_err", "max", "max_by", "max_by_key", "min", "min_by", "min_by_key", "mul_add",
    "next", "nth", "ok", "ok_or", "ok_or_else", "or_else", "or_insert", "or_insert_with",
    "parse", "partial_cmp", "peek", "pop", "position", "powf", "powi", "push", "push_str",
    "read", "recv", "rem_euclid", "remove", "replace", "reserve", "resize", "retain", "rev",
    "round", "rsplit", "saturating_add", "saturating_sub", "send", "signum", "sin",
    "sin_cos", "skip", "sort", "sort_by", "sort_by_key", "sort_unstable", "split",
    "split_at", "split_at_mut", "split_once", "split_whitespace", "sqrt", "start",
    "starts_with", "step_by", "sum", "swap", "swap_remove", "take", "take_while", "tan",
    "to_bits", "to_owned", "to_string", "to_vec", "trim", "trim_end", "trim_start",
    "truncate", "try_into", "unwrap", "unwrap_err", "unwrap_or", "unwrap_or_default",
    "unwrap_or_else", "values", "values_mut", "windows", "wrapping_add", "wrapping_sub",
    "write", "zip",
];

/// Builds the workspace model from pre-scanned sources. Output is
/// independent of the order of `sources`.
pub fn build(sources: &[SourceFile], cfg: &Config) -> WorkspaceModel {
    let mut model = WorkspaceModel::default();

    // Symbol table + per-file facts.
    for file in sources {
        if file.rel.starts_with("crates/lint/") {
            // The analyzer's own sources are full of effect-pattern
            // literals; modeling them would be self-referential noise.
            continue;
        }
        for facts in extract::extract_file(file, cfg) {
            let id =
                FnId { path: facts.path.clone(), name: facts.name.clone(), line: facts.line };
            model.fns.insert(id, facts);
        }
        let presized = extract::presized_idents(file);
        if !presized.is_empty() {
            model.presized.insert(file.rel.clone(), presized);
        }
    }

    // Resolution indices over non-test definitions.
    let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
    let mut methods_by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
    for (id, facts) in &model.fns {
        if facts.in_test {
            continue;
        }
        by_name.entry(facts.name.as_str()).or_default().push(id.clone());
        if facts.owner.is_some() {
            methods_by_name.entry(facts.name.as_str()).or_default().push(id.clone());
        }
    }

    // Resolve calls.
    for (id, facts) in &model.fns {
        if facts.in_test {
            continue;
        }
        let mut resolved: Vec<ResolvedCall> = Vec::new();
        for call in &facts.calls {
            for callee in resolve(call, id, facts, &model.fns, &by_name, &methods_by_name) {
                if callee == *id {
                    continue; // direct recursion adds nothing to may-effects
                }
                resolved.push(ResolvedCall {
                    callee,
                    line: call.line,
                    in_loop: call.in_loop,
                    held_locks: call.held_locks.clone(),
                });
            }
        }
        model.calls.insert(id.clone(), resolved);
    }

    // Intrinsic effects.
    for (id, facts) in &model.fns {
        model.intrinsic.insert(
            id.clone(),
            Effects {
                panics: !facts.panic_sites.is_empty(),
                allocates: !facts.alloc_sites.is_empty(),
                blocks: !facts.block_sites.is_empty(),
                transcendental: !facts.transcendental_sites.is_empty(),
                fans_out: !facts.fanout_sites.is_empty(),
                sends: !facts.send_sites.is_empty(),
            },
        );
    }

    // Transitive effects and lock sets, by fixpoint. Traversal stops at
    // rule-exempt paths (telemetry instrumentation, vendored shims) and
    // never enters test code (test fns have no resolved calls).
    for (id, facts) in &model.fns {
        let mut locks: BTreeSet<String> = BTreeSet::new();
        for l in &facts.locks {
            locks.insert(l.lock.clone());
        }
        model.locks_acquired.insert(id.clone(), locks);
    }
    model.closure = model.intrinsic.clone();
    loop {
        let mut changed = false;
        for (id, calls) in &model.calls {
            let mut eff = model.closure[id];
            let mut locks = model.locks_acquired[id].clone();
            for c in calls {
                if cfg.is_rule_exempt(&c.callee.path) {
                    continue;
                }
                if let Some(callee_eff) = model.closure.get(&c.callee) {
                    eff = eff.union(*callee_eff);
                }
                if let Some(callee_locks) = model.locks_acquired.get(&c.callee) {
                    locks.extend(callee_locks.iter().cloned());
                }
            }
            if eff != model.closure[id] {
                model.closure.insert(id.clone(), eff);
                changed = true;
            }
            if locks.len() != model.locks_acquired[id].len() {
                model.locks_acquired.insert(id.clone(), locks);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Lock-ordering edges: direct (acquire b while a held) and
    // interprocedural (call, while a held, a fn that transitively
    // acquires b).
    for (id, facts) in &model.fns {
        for site in &facts.locks {
            for held in &site.held {
                if *held == site.lock {
                    continue; // self-edge handled as reacquisition below
                }
                edge(&mut model.lock_edges, held, &site.lock, &id.path, site.line, "");
            }
        }
        for c in model.calls.get(id).map(Vec::as_slice).unwrap_or(&[]) {
            if c.held_locks.is_empty() {
                continue;
            }
            let Some(acquired) = model.locks_acquired.get(&c.callee) else { continue };
            for held in &c.held_locks {
                for lock in acquired {
                    if lock != held {
                        edge(
                            &mut model.lock_edges,
                            held,
                            lock,
                            &id.path,
                            c.line,
                            &c.callee.display(),
                        );
                    }
                }
            }
        }
    }

    model
}

fn edge(
    edges: &mut BTreeMap<(String, String), LockEdge>,
    from: &str,
    to: &str,
    path: &str,
    line: usize,
    via: &str,
) {
    edges.entry((from.to_string(), to.to_string())).or_insert_with(|| LockEdge {
        path: path.to_string(),
        line,
        via: via.to_string(),
    });
}

impl WorkspaceModel {
    /// Facts for `id`.
    pub fn facts(&self, id: &FnId) -> &FnFacts {
        &self.fns[id]
    }

    /// Resolved callees of `id` (empty slice if none).
    pub fn callees(&self, id: &FnId) -> &[ResolvedCall] {
        self.calls.get(id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Designated hot entry points, sorted.
    pub fn entries(&self) -> Vec<FnId> {
        self.fns
            .iter()
            .filter(|(_, f)| f.is_entry && !f.in_test)
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// Designated per-frame loop functions, sorted.
    pub fn frame_loop_fns(&self) -> Vec<FnId> {
        self.fns
            .iter()
            .filter(|(_, f)| f.is_frame_loop && !f.in_test)
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// BFS from `from`, returning the set of reachable functions and the
    /// parent pointers of a shortest call chain to each. Traversal skips
    /// rule-exempt callees.
    pub fn reach(&self, from: &FnId, cfg: &Config) -> BTreeMap<FnId, Option<FnId>> {
        let mut parents: BTreeMap<FnId, Option<FnId>> = BTreeMap::new();
        parents.insert(from.clone(), None);
        let mut queue: VecDeque<FnId> = VecDeque::new();
        queue.push_back(from.clone());
        while let Some(cur) = queue.pop_front() {
            for call in self.callees(&cur) {
                if cfg.is_rule_exempt(&call.callee.path) {
                    continue;
                }
                if !parents.contains_key(&call.callee) {
                    parents.insert(call.callee.clone(), Some(cur.clone()));
                    queue.push_back(call.callee.clone());
                }
            }
        }
        parents
    }

    /// Reconstructs the chain `from → ... → to` out of [`WorkspaceModel::reach`]'s parent
    /// map, as `path::name` strings.
    pub fn chain(parents: &BTreeMap<FnId, Option<FnId>>, to: &FnId) -> Vec<String> {
        let mut chain = Vec::new();
        let mut cur = Some(to.clone());
        while let Some(id) = cur {
            chain.push(id.display());
            cur = parents.get(&id).cloned().flatten();
        }
        chain.reverse();
        chain
    }

    /// The model as a `jsonlite` value (the `--graph-out` payload).
    pub fn to_json(&self) -> Json {
        let functions: Vec<Json> = self
            .fns
            .iter()
            .map(|(id, facts)| {
                let calls: Vec<Json> = self
                    .callees(id)
                    .iter()
                    .map(|c| {
                        Json::Object(vec![
                            ("path".into(), Json::String(c.callee.path.clone())),
                            ("name".into(), Json::String(c.callee.name.clone())),
                            ("line".into(), Json::Number(c.callee.line as f64)),
                            ("at".into(), Json::Number(c.line as f64)),
                            ("in_loop".into(), Json::Bool(c.in_loop)),
                            (
                                "held_locks".into(),
                                Json::Array(
                                    c.held_locks
                                        .iter()
                                        .map(|l| Json::String(l.clone()))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect();
                let locks: Vec<Json> = self.locks_acquired[id]
                    .iter()
                    .map(|l| Json::String(l.clone()))
                    .collect();
                Json::Object(vec![
                    ("path".into(), Json::String(id.path.clone())),
                    ("name".into(), Json::String(id.name.clone())),
                    ("line".into(), Json::Number(id.line as f64)),
                    ("end_line".into(), Json::Number(facts.end_line as f64)),
                    (
                        "owner".into(),
                        facts
                            .owner
                            .as_ref()
                            .map(|o| Json::String(o.clone()))
                            .unwrap_or(Json::Null),
                    ),
                    ("in_test".into(), Json::Bool(facts.in_test)),
                    ("hot_entry".into(), Json::Bool(facts.is_entry)),
                    ("frame_loop".into(), Json::Bool(facts.is_frame_loop)),
                    ("effects".into(), effects_json(self.intrinsic[id])),
                    ("transitive".into(), effects_json(self.closure[id])),
                    ("calls".into(), Json::Array(calls)),
                    ("locks_acquired".into(), Json::Array(locks)),
                ])
            })
            .collect();
        let lock_edges: Vec<Json> = self
            .lock_edges
            .iter()
            .map(|((from, to), site)| {
                Json::Object(vec![
                    ("held".into(), Json::String(from.clone())),
                    ("acquired".into(), Json::String(to.clone())),
                    ("path".into(), Json::String(site.path.clone())),
                    ("line".into(), Json::Number(site.line as f64)),
                    ("via".into(), Json::String(site.via.clone())),
                ])
            })
            .collect();
        Json::Object(vec![
            ("version".into(), Json::Number(1.0)),
            ("functions".into(), Json::Array(functions)),
            ("lock_edges".into(), Json::Array(lock_edges)),
        ])
    }
}

fn effects_json(e: Effects) -> Json {
    Json::Object(vec![
        ("panics".into(), Json::Bool(e.panics)),
        ("allocates".into(), Json::Bool(e.allocates)),
        ("blocks".into(), Json::Bool(e.blocks)),
        ("transcendental".into(), Json::Bool(e.transcendental)),
        ("fans_out".into(), Json::Bool(e.fans_out)),
        ("sends".into(), Json::Bool(e.sends)),
    ])
}

/// The crate-scope prefix of a workspace path (`crates/fft/src/a.rs` →
/// `crates/fft/`).
fn crate_prefix(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.len() >= 2 && parts[0] == "crates" {
        format!("{}/{}/", parts[0], parts[1])
    } else {
        format!("{}/", parts.first().copied().unwrap_or(""))
    }
}

/// Resolves one raw call to zero or more definitions (see the module docs
/// for the heuristic).
fn resolve(
    call: &RawCall,
    caller: &FnId,
    caller_facts: &FnFacts,
    fns: &BTreeMap<FnId, FnFacts>,
    by_name: &BTreeMap<&str, Vec<FnId>>,
    methods_by_name: &BTreeMap<&str, Vec<FnId>>,
) -> Vec<FnId> {
    if call.is_method && METHOD_BLOCKLIST.contains(&call.name.as_str()) {
        return Vec::new();
    }
    let empty: Vec<FnId> = Vec::new();
    let pool: &Vec<FnId> = if call.is_method {
        methods_by_name.get(call.name.as_str()).unwrap_or(&empty)
    } else {
        by_name.get(call.name.as_str()).unwrap_or(&empty)
    };
    if pool.is_empty() {
        return Vec::new();
    }

    if !call.qualifier.is_empty() {
        let q = call.qualifier.as_str();
        if q.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            // `Type::assoc` — owner must match.
            return pool
                .iter()
                .filter(|id| fns[id].owner.as_deref() == Some(q))
                .cloned()
                .collect();
        }
        if q == "self" || q == "super" || q == "crate" {
            return prefer_scopes(pool, caller);
        }
        // Module path: `module.rs`, a `module/` dir, or `holoar_x` crate.
        let crate_dir = q.strip_prefix("holoar_").map(|c| format!("crates/{c}/"));
        let file_suffix = format!("/{q}.rs");
        let dir_infix = format!("/{q}/");
        let matched: Vec<FnId> = pool
            .iter()
            .filter(|id| {
                id.path.ends_with(&file_suffix)
                    || id.path.contains(&dir_infix)
                    || crate_dir.as_ref().is_some_and(|p| id.path.starts_with(p.as_str()))
            })
            .cloned()
            .collect();
        return if matched.is_empty() { prefer_scopes(pool, caller) } else { matched };
    }

    if call.is_method && call.on_self {
        if let Some(owner) = &caller_facts.owner {
            let own: Vec<FnId> = pool
                .iter()
                .filter(|id| fns[id].owner.as_ref() == Some(owner))
                .cloned()
                .collect();
            if !own.is_empty() {
                return own;
            }
        }
    }
    prefer_scopes(pool, caller)
}

/// Same-file, then same-crate, then workspace-unique. Multiple candidates
/// in the narrowest non-empty file/crate scope all link (sound
/// over-approximation); global ambiguity stays unresolved.
fn prefer_scopes(pool: &[FnId], caller: &FnId) -> Vec<FnId> {
    let same_file: Vec<FnId> =
        pool.iter().filter(|id| id.path == caller.path).cloned().collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let prefix = crate_prefix(&caller.path);
    let same_crate: Vec<FnId> =
        pool.iter().filter(|id| id.path.starts_with(&prefix)).cloned().collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    if pool.len() == 1 {
        return pool.to_vec();
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(files: &[(&str, &str)]) -> WorkspaceModel {
        let sources: Vec<SourceFile> =
            files.iter().map(|(rel, src)| SourceFile::scan(rel, src)).collect();
        let cfg = Config::new(std::path::PathBuf::from("/nonexistent"));
        build(&sources, &cfg)
    }

    #[test]
    fn transitive_panic_crosses_files() {
        let m = model_of(&[
            (
                "crates/a/src/lib.rs",
                "pub fn entry() { holoar_b::helper(); }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub fn helper() { inner(); }\nfn inner(x: Option<u32>) { x.unwrap(); }\n",
            ),
        ]);
        let entry = FnId { path: "crates/a/src/lib.rs".into(), name: "entry".into(), line: 1 };
        assert!(m.closure[&entry].panics, "closure: {:?}", m.closure);
        assert!(!m.intrinsic[&entry].panics);
        let cfg = Config::new(std::path::PathBuf::from("/nonexistent"));
        let parents = m.reach(&entry, &cfg);
        let inner = FnId { path: "crates/b/src/lib.rs".into(), name: "inner".into(), line: 2 };
        let chain = WorkspaceModel::chain(&parents, &inner);
        assert_eq!(
            chain,
            vec![
                "crates/a/src/lib.rs::entry",
                "crates/b/src/lib.rs::helper",
                "crates/b/src/lib.rs::inner",
            ]
        );
    }

    #[test]
    fn method_blocklist_stops_false_links() {
        let m = model_of(&[(
            "crates/a/src/lib.rs",
            "impl W {\n\
             \x20   fn unwrap(&self) { panic!(\"boom\"); }\n\
             \x20   fn caller(&self, r: Result<u32, ()>) { r.unwrap(); }\n\
             }\n",
        )]);
        let caller = FnId { path: "crates/a/src/lib.rs".into(), name: "caller".into(), line: 3 };
        assert!(m.callees(&caller).is_empty());
        // The call *is* still an intrinsic panic site on the caller's line.
        assert!(m.intrinsic[&caller].panics);
    }

    #[test]
    fn type_qualified_resolution() {
        let m = model_of(&[(
            "crates/a/src/lib.rs",
            "impl A {\n\
             \x20   pub fn build() {}\n\
             }\n\
             impl B {\n\
             \x20   pub fn build() { loop_forever(); }\n\
             }\n\
             fn loop_forever() {}\n\
             fn caller() { B::build(); }\n",
        )]);
        let caller = FnId { path: "crates/a/src/lib.rs".into(), name: "caller".into(), line: 8 };
        let callees = m.callees(&caller);
        assert_eq!(callees.len(), 1);
        assert_eq!(callees[0].callee.line, 5);
    }

    #[test]
    fn lock_edges_direct_and_interprocedural() {
        let m = model_of(&[(
            "crates/a/src/lib.rs",
            "fn f(&self) {\n\
             \x20   let g = self.alpha.lock();\n\
             \x20   let h = self.beta.lock();\n\
             \x20   helper();\n\
             }\n\
             fn helper(&self) { let k = self.gamma.lock(); }\n",
        )]);
        assert!(m
            .lock_edges
            .contains_key(&("crates/a/alpha".to_string(), "crates/a/beta".to_string())));
        let inter = m
            .lock_edges
            .get(&("crates/a/alpha".to_string(), "crates/a/gamma".to_string()))
            .expect("interprocedural edge");
        assert!(inter.via.contains("helper"));
    }

    #[test]
    fn json_dump_is_deterministic_under_shuffle() {
        let files = [
            ("crates/a/src/lib.rs", "pub fn one() { two(); }\nfn two() {}\n"),
            ("crates/b/src/lib.rs", "pub fn three(x: Option<u32>) { x.unwrap(); }\n"),
            ("crates/c/src/lib.rs", "pub fn four() { holoar_b::three(None); }\n"),
        ];
        let forward = model_of(&files);
        let mut reversed_files = files;
        reversed_files.reverse();
        let reversed = model_of(&reversed_files);
        assert_eq!(
            forward.to_json().render_pretty(),
            reversed.to_json().render_pretty()
        );
    }
}
