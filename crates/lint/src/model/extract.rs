//! Pass-1 extraction: turns scanned source lines into per-function facts.
//!
//! This walks each file's scanned lines once, tracking brace depth, open
//! `fn` bodies, `impl` blocks, loop nesting, and live lock guards, and
//! records for every function definition:
//!
//! - its extent (`line..=end_line`), impl owner, and test-ness;
//! - intrinsic effect sites (may-panic, may-allocate, may-block,
//!   calls-transcendental), each with the line and the matched pattern;
//! - raw call sites (bare, `path::qualified`, and `.method(...)` calls)
//!   with loop nesting and the set of locks held at the call;
//! - lock acquisitions with the set of locks already held (the intra-
//!   procedural half of the lock-ordering graph), plus channel sends and
//!   `Parallelism` fan-out performed while a guard is live.
//!
//! The extraction is heuristic in the same spirit as the per-line rules:
//! the scanner has already separated code from comments and blanked
//! string contents, so substring matching here is sound against real
//! token text. Known limits are documented in DESIGN.md ("Static
//! analysis" — the model build).

use crate::config::Config;
use crate::source::{Line, SourceFile};

/// One effect site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Site {
    /// 1-based line number.
    pub line: usize,
    /// The matched pattern (e.g. `.unwrap()`, `Vec::new(`, `.sin()`).
    pub what: String,
    /// Whether the site sits inside a `for`/`while`/`loop` body.
    pub in_loop: bool,
}

/// One raw (unresolved) call site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RawCall {
    /// Callee name (last path segment / method name).
    pub name: String,
    /// For `a::b::name(...)`, the segment right before the name (`b`);
    /// empty for bare and method calls.
    pub qualifier: String,
    /// Whether this is `.name(...)` method-call syntax.
    pub is_method: bool,
    /// Whether the receiver chain starts with `self`.
    pub on_self: bool,
    /// 1-based line number.
    pub line: usize,
    /// Whether the call sits inside a loop body.
    pub in_loop: bool,
    /// Lock names held when the call happens.
    pub held_locks: Vec<String>,
}

/// One `.push(...)` site (tracked separately for the pre-sizing check).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PushSite {
    /// Last identifier of the receiver chain (`st.rels.push` → `rels`).
    pub receiver: String,
    /// 1-based line number.
    pub line: usize,
    /// Whether the push sits inside a loop body.
    pub in_loop: bool,
}

/// One lock acquisition.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockSite {
    /// Heuristic lock identity: `crate-dir/field-name`.
    pub lock: String,
    /// 1-based line number.
    pub line: usize,
    /// Lock names already held at this acquisition.
    pub held: Vec<String>,
}

/// Everything extracted about one function definition.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    /// Function name (unqualified).
    pub name: String,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based last line of the body.
    pub end_line: usize,
    /// Surrounding `impl` type name, if any.
    pub owner: Option<String>,
    /// Whether the definition sits in test code.
    pub in_test: bool,
    /// Designated hot entry (config list or `hot-entry` marker).
    pub is_entry: bool,
    /// Designated per-frame loop fn (config list or `frame-loop` marker).
    pub is_frame_loop: bool,
    /// Panic-capable sites (`.unwrap()`, `panic!`, panicky indexing, ...).
    pub panic_sites: Vec<Site>,
    /// Allocation sites (`Vec::new`, `format!`, `.clone()`, ...).
    pub alloc_sites: Vec<Site>,
    /// Blocking sites (lock acquisition, `.recv()`, `.join()`, ...).
    pub block_sites: Vec<Site>,
    /// Transcendental-math sites (`.sin()`, `.powf(`, ...).
    pub transcendental_sites: Vec<Site>,
    /// Raw call sites, in source order.
    pub calls: Vec<RawCall>,
    /// `.push(...)` sites, in source order.
    pub pushes: Vec<PushSite>,
    /// Lock acquisitions, in source order.
    pub locks: Vec<LockSite>,
    /// Channel sends while a lock guard is live: `(line, held locks)`.
    pub sends_under_lock: Vec<(usize, Vec<String>)>,
    /// `Parallelism` fan-out while a guard is live: `(line, held locks)`.
    pub fanout_under_lock: Vec<(usize, Vec<String>)>,
    /// All channel-send sites (held or not), for the transitive check.
    pub send_sites: Vec<Site>,
    /// All `Parallelism` fan-out sites, for the transitive check.
    pub fanout_sites: Vec<Site>,
}

/// Allocation patterns shared by the effect summaries and `hot-loop-alloc`.
pub const ALLOC_PATTERNS: &[&str] = &[
    "Vec::new(",
    "vec![",
    "Box::new(",
    "format!(",
    ".to_string()",
    ".to_owned()",
    ".to_vec()",
    "String::new(",
    "String::from(",
    ".collect(",
    ".clone()",
];

/// Blocking patterns for the may-block effect summary.
const BLOCK_PATTERNS: &[&str] = &["lock_unpoisoned(", ".lock()", ".recv()", ".join()", ".wait("];

/// Transcendental-call patterns for `float-determinism`. `.exp()` is
/// matched with both parens so `.expect(...)` can never collide.
pub const TRANSCENDENTAL_PATTERNS: &[&str] =
    &[".sin()", ".cos()", ".sin_cos()", ".tan()", ".exp()", ".powf(", ".atan2("];

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] =
    &["if", "while", "for", "match", "loop", "return", "fn", "in", "as", "move", "else"];

/// Marker directives (parsed here, ignored by the waiver parser).
pub const MARKER_HOT_ENTRY: &str = "hot-entry";
/// Marker comment tag that declares the next loop a per-frame hot loop
/// for the `hot-loop-alloc` rule.
pub const MARKER_FRAME_LOOP: &str = "frame-loop";

struct OpenFn {
    facts: FnFacts,
    start_depth: i64,
    loop_depths: Vec<i64>,
    // (binding name, lock name, depth at acquisition)
    guards: Vec<(String, String, i64)>,
}

/// Extracts per-function facts for every function defined in `file`.
///
/// Whole-file facts (the pre-sized identifier set for the push check) are
/// returned alongside so the rules can consult them.
pub fn extract_file(file: &SourceFile, cfg: &Config) -> Vec<FnFacts> {
    let crate_dir = crate_dir(&file.rel);
    let rwlocks = rwlock_names(file);
    let mut done: Vec<FnFacts> = Vec::new();
    let mut open: Vec<OpenFn> = Vec::new();
    let mut pending_fn: Option<FnFacts> = None;
    let mut impl_stack: Vec<(String, i64)> = Vec::new();
    let mut pending_impl: Option<String> = None;
    let mut depth: i64 = 0;
    let mut marker_entry = false;
    let mut marker_frame = false;

    for (line_no, line) in file.numbered() {
        let code = line.code.as_str();
        if let Some(pos) = line.comment.find("holoar-lint:") {
            let directive = line.comment[pos + "holoar-lint:".len()..].trim();
            if directive == MARKER_HOT_ENTRY {
                marker_entry = true;
            } else if directive == MARKER_FRAME_LOOP {
                marker_frame = true;
            }
        }

        if pending_fn.is_none() {
            if let Some(name) = fn_def_name(code) {
                let is_entry = marker_entry || cfg.is_hot_entry(&file.rel, &name);
                let is_frame_loop = marker_frame || cfg.is_frame_loop_fn(&file.rel, &name);
                marker_entry = false;
                marker_frame = false;
                pending_fn = Some(FnFacts {
                    name,
                    path: file.rel.clone(),
                    line: line_no,
                    owner: impl_stack.last().map(|(t, _)| t.clone()),
                    in_test: line.in_test,
                    is_entry,
                    is_frame_loop,
                    ..FnFacts::default()
                });
            } else if pending_impl.is_none() && !code.contains("fn ") {
                if let Some(ty) = impl_type(code) {
                    pending_impl = Some(ty);
                }
            }
        }

        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;

        if let Some(p) = pending_fn.take() {
            if opens > 0 {
                open.push(OpenFn {
                    facts: p,
                    start_depth: depth,
                    loop_depths: Vec::new(),
                    guards: Vec::new(),
                });
            } else if !code.contains(';') {
                pending_fn = Some(p); // multi-line signature, keep waiting
            } // `;` before `{`: trait method declaration — drop it
        } else if let Some(ty) = pending_impl.take() {
            if opens > 0 {
                impl_stack.push((ty, depth));
            } else if !code.contains(';') {
                pending_impl = Some(ty);
            }
        }

        // Attach events to the innermost open fn (skipping test lines —
        // the model describes shipping code only).
        if let Some(top) = open.last_mut() {
            if !line.in_test {
                record_line_events(top, line, line_no, &crate_dir, &rwlocks, depth);
            }
            if opens > 0 && is_loop_header(code) {
                top.loop_depths.push(depth);
            }
        }

        depth += opens - closes;

        // Close loops, guards, fns, and impl blocks whose block ended.
        if let Some(top) = open.last_mut() {
            top.loop_depths.retain(|&d| depth > d);
            top.guards.retain(|&(_, _, d)| depth >= d);
        }
        while open.last().is_some_and(|f| depth <= f.start_depth) {
            let mut f = open.pop().expect("non-empty");
            f.facts.end_line = line_no;
            done.push(f.facts);
        }
        while impl_stack.last().is_some_and(|&(_, d)| depth <= d) {
            impl_stack.pop();
        }
    }
    // Unclosed function at EOF (truncated file): close it at the last line.
    while let Some(mut f) = open.pop() {
        f.facts.end_line = file.lines.len();
        done.push(f.facts);
    }
    done.sort_by_key(|a| a.line);
    done
}

/// Identifiers in `file` with pre-sizing evidence: any identifier bound or
/// addressed on a line that calls `with_capacity`, `reserve`, or `resize`.
/// Used by `hot-loop-alloc` to allow `.push(...)` onto pre-sized buffers.
pub fn presized_idents(file: &SourceFile) -> Vec<String> {
    let mut names = Vec::new();
    for line in &file.lines {
        let code = line.code.as_str();
        if !(code.contains("with_capacity") || code.contains(".reserve(") || code.contains(".resize("))
        {
            continue;
        }
        // `let mut xs = Vec::with_capacity(n)` / `rels: Vec::with_capacity(n)`
        // / `xs.reserve(n)` — harvest the identifier left of `=`, `:`, or `.`.
        for sep in ['=', ':'] {
            if let Some(pos) = code.find(sep) {
                if let Some(name) = last_ident(&code[..pos]) {
                    push_unique(&mut names, name);
                }
            }
        }
        for pat in [".reserve(", ".resize("] {
            if let Some(pos) = code.find(pat) {
                if let Some(name) = last_ident(&code[..pos]) {
                    push_unique(&mut names, name);
                }
            }
        }
    }
    names.sort();
    names
}

fn push_unique(names: &mut Vec<String>, name: String) {
    if !name.is_empty() && !names.contains(&name) {
        names.push(name);
    }
}

fn record_line_events(
    top: &mut OpenFn,
    line: &Line,
    line_no: usize,
    crate_dir: &str,
    rwlocks: &[String],
    depth: i64,
) {
    let code = line.code.as_str();
    let in_loop = !top.loop_depths.is_empty();
    let held: Vec<String> =
        top.guards.iter().map(|(_, lock, _)| lock.clone()).collect();

    // Effect sites.
    for (pat, why) in crate::rules::no_panic::CALLS {
        if code.contains(pat) {
            top.facts.panic_sites.push(Site { line: line_no, what: (*why).to_string(), in_loop });
        }
    }
    for mac in crate::rules::no_panic::MACROS {
        if !crate::rules::find_token(code, mac.trim_end_matches('!')).is_empty()
            && code.contains(mac)
        {
            top.facts.panic_sites.push(Site {
                line: line_no,
                what: format!("`{mac}`"),
                in_loop,
            });
        }
    }
    for idx in crate::rules::no_panic::panicky_indexing(code) {
        top.facts.panic_sites.push(Site {
            line: line_no,
            what: format!("panic-prone index `[{idx}]`"),
            in_loop,
        });
    }
    for pat in ALLOC_PATTERNS {
        if code.contains(pat) {
            top.facts.alloc_sites.push(Site {
                line: line_no,
                what: pat.trim_end_matches('(').to_string(),
                in_loop,
            });
        }
    }
    for pat in BLOCK_PATTERNS {
        if code.contains(pat) {
            top.facts.block_sites.push(Site {
                line: line_no,
                what: pat.trim_end_matches('(').to_string(),
                in_loop,
            });
        }
    }
    for pat in TRANSCENDENTAL_PATTERNS {
        if code.contains(pat) {
            top.facts.transcendental_sites.push(Site {
                line: line_no,
                what: pat.trim_end_matches('(').to_string(),
                in_loop,
            });
        }
    }

    // Lock acquisitions: `lock_unpoisoned(&x.y)`, `x.lock()`, and
    // `.read()`/`.write()` on identifiers declared as RwLock in this file.
    let mut acquired: Vec<String> = Vec::new();
    let mut start = 0;
    while let Some(pos) = code[start..].find("lock_unpoisoned(") {
        let at = start + pos + "lock_unpoisoned(".len();
        let arg: String = code[at..]
            .chars()
            .take_while(|&c| c != ')' && c != ',')
            .collect();
        if let Some(name) = last_ident(&arg) {
            acquired.push(format!("{crate_dir}/{name}"));
        }
        start = at;
    }
    for pat in [".lock()"] {
        let mut from = 0;
        while let Some(pos) = code[from..].find(pat) {
            let at = from + pos;
            if let Some(name) = last_ident(&code[..at]) {
                acquired.push(format!("{crate_dir}/{name}"));
            }
            from = at + pat.len();
        }
    }
    for pat in [".read()", ".write()"] {
        let mut from = 0;
        while let Some(pos) = code[from..].find(pat) {
            let at = from + pos;
            if let Some(name) = last_ident(&code[..at]) {
                if rwlocks.contains(&name) {
                    acquired.push(format!("{crate_dir}/{name}"));
                }
            }
            from = at + pat.len();
        }
    }
    let is_binding = code.trim_start().starts_with("let ");
    for lock in acquired {
        top.facts.locks.push(LockSite { lock: lock.clone(), line: line_no, held: held.clone() });
        if is_binding {
            let binding = code
                .trim_start()
                .trim_start_matches("let ")
                .trim_start_matches("mut ")
                .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .next()
                .unwrap_or("")
                .to_string();
            top.guards.push((binding, lock, depth));
        }
    }

    // Explicit `drop(guard)` releases.
    let mut from = 0;
    while let Some(pos) = code[from..].find("drop(") {
        let at = from + pos + "drop(".len();
        let name: String = code[at..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        top.guards.retain(|(binding, _, _)| *binding != name);
        from = at;
    }

    // Sends and fan-out (and whether a guard was live at the time).
    if code.contains(".send(") {
        top.facts.send_sites.push(Site { line: line_no, what: ".send".to_string(), in_loop });
        if !held.is_empty() {
            top.facts.sends_under_lock.push((line_no, held.clone()));
        }
    }
    if code.contains("for_each_chunk(") {
        top.facts
            .fanout_sites
            .push(Site { line: line_no, what: "for_each_chunk".to_string(), in_loop });
        if !held.is_empty() {
            top.facts.fanout_under_lock.push((line_no, held.clone()));
        }
    }

    // Call sites.
    for mut call in extract_calls(code) {
        call.line = line_no;
        call.in_loop = in_loop;
        call.held_locks = held.clone();
        top.facts.calls.push(call);
    }
    let mut from = 0;
    while let Some(pos) = code[from..].find(".push(") {
        let at = from + pos;
        if let Some(receiver) = last_ident(&code[..at]) {
            top.facts.pushes.push(PushSite { receiver, line: line_no, in_loop });
        }
        from = at + ".push(".len();
    }
}

/// The `crates/<name>` (or top-level dir) prefix used to namespace locks.
fn crate_dir(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.len() >= 2 && parts[0] == "crates" {
        format!("{}/{}", parts[0], parts[1])
    } else {
        parts.first().copied().unwrap_or("").to_string()
    }
}

/// Identifiers declared as `RwLock` somewhere in this file.
fn rwlock_names(file: &SourceFile) -> Vec<String> {
    let mut names = Vec::new();
    for line in &file.lines {
        let code = line.code.as_str();
        let Some(pos) =
            ["RwLock<", "RwLock::new"].iter().filter_map(|p| code.find(p)).min()
        else {
            continue;
        };
        let before = &code[..pos];
        let name = if let Some(let_pos) = before.rfind("let ") {
            before[let_pos + 4..]
                .trim_start()
                .trim_start_matches("mut ")
                .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .next()
                .unwrap_or("")
                .to_string()
        } else if let Some(colon) = before.rfind(':') {
            last_ident(&before[..colon]).unwrap_or_default()
        } else {
            String::new()
        };
        push_unique(&mut names, name);
    }
    names
}

/// The trailing identifier of an expression fragment (`&self.pool` → `pool`,
/// `st.rels` → `rels`). Returns `None` when the fragment ends elsewhere.
fn last_ident(fragment: &str) -> Option<String> {
    let trimmed = fragment.trim_end();
    let tail: String = trimmed
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if tail.is_empty() || tail.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(tail)
    }
}

/// If `code` defines a function, its name.
fn fn_def_name(code: &str) -> Option<String> {
    for pos in crate::rules::find_token(code, "fn") {
        let rest = code[pos + 2..].trim_start();
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            return Some(name);
        }
    }
    None
}

/// If `code` opens an `impl` block, the implemented type's last path
/// segment (`impl<T> Fft2d<T>` → `Fft2d`, `impl Default for Foo` → `Foo`).
fn impl_type(code: &str) -> Option<String> {
    let pos = *crate::rules::find_token(code, "impl").first()?;
    let mut rest = &code[pos + 4..];
    // Skip a generic parameter list directly after `impl`.
    if rest.starts_with('<') {
        let mut depth = 0usize;
        let mut end = 0;
        for (i, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &rest[end..];
    }
    let rest = rest.trim_start();
    let target = match rest.find(" for ") {
        Some(p) => &rest[p + 5..],
        None => rest,
    };
    let head: &str = target
        .split(|c: char| c == '<' || c == '{' || c.is_whitespace())
        .next()
        .unwrap_or("");
    let name = head.rsplit("::").next().unwrap_or("").trim_end_matches('&');
    if name.is_empty() || !name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
        None
    } else {
        Some(name.to_string())
    }
}

/// Whether this line opens a loop body.
fn is_loop_header(code: &str) -> bool {
    !crate::rules::find_token(code, "for").is_empty()
        || !crate::rules::find_token(code, "while").is_empty()
        || !crate::rules::find_token(code, "loop").is_empty()
}

/// Extracts raw call sites from one code line.
fn extract_calls(code: &str) -> Vec<RawCall> {
    let bytes = code.as_bytes();
    let mut calls = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'(' {
            continue;
        }
        // Scan the identifier directly before the paren.
        let mut start = i;
        while start > 0
            && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_')
        {
            start -= 1;
        }
        if start == i {
            continue; // no identifier: grouping paren, tuple, closure call
        }
        let name = &code[start..i];
        if CALL_KEYWORDS.contains(&name) {
            continue;
        }
        let before = &code[..start];
        if before.ends_with('!') {
            continue; // macro invocation
        }
        // `fn name(` is a definition, not a call.
        if before.trim_end().ends_with("fn") {
            continue;
        }
        if before.ends_with("::") {
            // Qualified call: harvest the segment before the `::`.
            let path_part = before.trim_end_matches("::");
            let qualifier = last_ident(path_part).unwrap_or_default();
            calls.push(RawCall {
                name: name.to_string(),
                qualifier,
                is_method: false,
                on_self: false,
                line: 0,
                in_loop: false,
                held_locks: Vec::new(),
            });
        } else if before.ends_with('.') {
            // Method call: note whether the receiver chain starts at self.
            let chain: String = before
                .trim_end_matches('.')
                .chars()
                .rev()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '.')
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect();
            let on_self = chain == "self" || chain.starts_with("self.");
            calls.push(RawCall {
                name: name.to_string(),
                qualifier: String::new(),
                is_method: true,
                on_self,
                line: 0,
                in_loop: false,
                held_locks: Vec::new(),
            });
        } else {
            // Bare call. Uppercase-initial bare names are tuple-struct or
            // enum constructors (`Some(`, `FnId(`) — never workspace fns.
            if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                continue;
            }
            calls.push(RawCall {
                name: name.to_string(),
                qualifier: String::new(),
                is_method: false,
                on_self: false,
                line: 0,
                in_loop: false,
                held_locks: Vec::new(),
            });
        }
    }
    calls
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extract(src: &str) -> Vec<FnFacts> {
        let file = SourceFile::scan("crates/x/src/a.rs", src);
        let cfg = Config::new(std::path::PathBuf::from("/nonexistent"));
        extract_file(&file, &cfg)
    }

    #[test]
    fn fn_extents_and_owner() {
        let facts = extract(
            "impl<T: Real> Fft2d<T> {\n\
             \x20   pub fn forward(&self) {\n\
             \x20       self.pass();\n\
             \x20   }\n\
             }\n\
             fn free(\n\
             \x20   x: usize,\n\
             ) -> usize {\n\
             \x20   x\n\
             }\n",
        );
        assert_eq!(facts.len(), 2);
        assert_eq!(facts[0].name, "forward");
        assert_eq!(facts[0].owner.as_deref(), Some("Fft2d"));
        assert_eq!((facts[0].line, facts[0].end_line), (2, 4));
        assert_eq!(facts[1].name, "free");
        assert_eq!((facts[1].line, facts[1].end_line), (6, 10));
        assert!(facts[1].owner.is_none());
    }

    #[test]
    fn effect_sites_and_loops() {
        let facts = extract(
            "fn f(v: &[u32]) {\n\
             \x20   let a = v.first().unwrap();\n\
             \x20   for i in 0..4 {\n\
             \x20       let s = format!(\"x\");\n\
             \x20       let t = (0.5f64).sin();\n\
             \x20   }\n\
             \x20   let b = Vec::new();\n\
             }\n",
        );
        let f = &facts[0];
        assert_eq!(f.panic_sites.len(), 1);
        assert!(!f.panic_sites[0].in_loop);
        let fmt = f.alloc_sites.iter().find(|s| s.what == "format!").unwrap();
        assert!(fmt.in_loop);
        let vecnew = f.alloc_sites.iter().find(|s| s.what == "Vec::new").unwrap();
        assert!(!vecnew.in_loop);
        assert_eq!(f.transcendental_sites.len(), 1);
        assert!(f.transcendental_sites[0].in_loop);
    }

    #[test]
    fn call_kinds() {
        let facts = extract(
            "fn f() {\n\
             \x20   helper();\n\
             \x20   module::qualified();\n\
             \x20   Type::assoc();\n\
             \x20   self.method();\n\
             \x20   value.other();\n\
             \x20   mac!(arg);\n\
             \x20   Some(3);\n\
             }\n",
        );
        let calls = &facts[0].calls;
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["helper", "qualified", "assoc", "method", "other"]);
        assert_eq!(calls[1].qualifier, "module");
        assert_eq!(calls[2].qualifier, "Type");
        assert!(calls[3].is_method && calls[3].on_self);
        assert!(calls[4].is_method && !calls[4].on_self);
    }

    #[test]
    fn lock_liveness_and_ordering() {
        let facts = extract(
            "fn f(&self) {\n\
             \x20   let a = lock_unpoisoned(&self.pool);\n\
             \x20   let b = self.cache.lock();\n\
             \x20   helper();\n\
             \x20   drop(a);\n\
             \x20   other();\n\
             }\n",
        );
        let f = &facts[0];
        assert_eq!(f.locks.len(), 2);
        assert_eq!(f.locks[0].lock, "crates/x/pool");
        assert!(f.locks[0].held.is_empty());
        assert_eq!(f.locks[1].held, vec!["crates/x/pool".to_string()]);
        let helper = f.calls.iter().find(|c| c.name == "helper").unwrap();
        assert_eq!(helper.held_locks.len(), 2);
        let other = f.calls.iter().find(|c| c.name == "other").unwrap();
        assert_eq!(other.held_locks, vec!["crates/x/cache".to_string()]);
    }

    #[test]
    fn guard_scope_ends_with_block() {
        let facts = extract(
            "fn f(&self) {\n\
             \x20   {\n\
             \x20       let g = self.m.lock();\n\
             \x20   }\n\
             \x20   after();\n\
             }\n",
        );
        let after = facts[0].calls.iter().find(|c| c.name == "after").unwrap();
        assert!(after.held_locks.is_empty(), "{:?}", after.held_locks);
    }

    #[test]
    fn presized_evidence() {
        let file = SourceFile::scan(
            "crates/x/src/a.rs",
            "let mut xs = Vec::with_capacity(8);\n\
             rels: Vec::with_capacity(cap),\n\
             ys.reserve(16);\n",
        );
        let names = presized_idents(&file);
        assert!(names.contains(&"xs".to_string()));
        assert!(names.contains(&"rels".to_string()));
        assert!(names.contains(&"ys".to_string()));
    }

    #[test]
    fn markers_designate_fns() {
        let facts = extract(
            "// holoar-lint: hot-entry\n\
             pub fn entry() { helper(); }\n\
             // holoar-lint: frame-loop\n\
             fn frame() {}\n\
             fn plain() {}\n",
        );
        assert!(facts[0].is_entry && !facts[0].is_frame_loop);
        assert!(facts[1].is_frame_loop && !facts[1].is_entry);
        assert!(!facts[2].is_entry && !facts[2].is_frame_loop);
    }

    #[test]
    fn test_code_is_opaque() {
        let facts = extract(
            "fn hot() { x.unwrap(); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t() { y.unwrap(); }\n\
             }\n",
        );
        assert_eq!(facts.len(), 2);
        assert_eq!(facts[0].panic_sites.len(), 1);
        assert!(facts[1].in_test);
        assert!(facts[1].panic_sites.is_empty());
    }
}
