//! Lint configuration: which modules are hot paths, where the determinism
//! and concurrency rules apply, and which telemetry categories exist.
//!
//! The sets below are checked-in policy, not discovery: adding a module to
//! a hot set is a deliberate, reviewable act (see DESIGN.md, "Static
//! analysis").

use std::path::PathBuf;

/// Real-time hot-path modules: the no-panic rule applies to every non-test
/// line of these files. Paths are workspace-relative.
pub const HOT_PATHS: &[&str] = &[
    "crates/fft/src/radix2.rs",
    "crates/fft/src/bluestein.rs",
    "crates/fft/src/fft2d.rs",
    "crates/fft/src/parallel.rs",
    "crates/fft/src/plan.rs",
    "crates/optics/src/gsw.rs",
    "crates/optics/src/propagate.rs",
    "crates/optics/src/fresnel.rs",
    "crates/gpusim/src/sm.rs",
];

/// The one module allowed to call `std::thread::{spawn, scope}`: the
/// `Parallelism` worker pool every other crate must go through.
pub const PARALLELISM_HOME: &str = "crates/fft/src/parallel.rs";

/// Path prefixes exempt from the determinism and telemetry-discipline
/// rules: the telemetry crate owns the clock, the vendored shims are
/// outside workspace policy, and this crate's own tests embed violation
/// snippets on purpose.
pub const RULE_EXEMPT_PREFIXES: &[&str] = &["crates/telemetry/", "vendor/", "crates/lint/"];

/// Designated hot-path *entry points* for the interprocedural rules: the
/// per-frame compute entries whose whole transitive call closure (through
/// any number of crates) must be panic-free. Pairs are
/// `(workspace-relative file, fn name)`. Functions can also be designated
/// in-source with a `// holoar-lint: hot-entry` marker comment.
pub const HOT_ENTRY_POINTS: &[(&str, &str)] = &[
    ("crates/fft/src/fft2d.rs", "forward"),
    ("crates/fft/src/fft2d.rs", "forward_real"),
    ("crates/fft/src/fft2d.rs", "inverse"),
    ("crates/fft/src/fft2d.rs", "forward_batch"),
    ("crates/fft/src/fft2d.rs", "inverse_batch"),
    ("crates/optics/src/gsw.rs", "run"),
    ("crates/optics/src/gsw.rs", "run_batch"),
    ("crates/optics/src/propagate.rs", "propagate_planes"),
    ("crates/gpusim/src/sm.rs", "block_cost"),
    ("crates/pipeline/src/pipelined.rs", "run_pipelined"),
    ("crates/serve/src/engine.rs", "run_serve"),
];

/// Designated per-frame loop functions for the `hot-loop-alloc` rule: the
/// loops inside these functions run once per frame (or per GSW iteration)
/// and must work on pre-sized buffers — no fresh allocation per trip.
/// Functions can also be designated in-source with a
/// `// holoar-lint: frame-loop` marker comment.
pub const FRAME_LOOP_FNS: &[(&str, &str)] = &[
    ("crates/optics/src/gsw.rs", "run_batch"),
    ("crates/pipeline/src/pipelined.rs", "summarize"),
    ("crates/serve/src/batcher.rs", "merged_session_kernels"),
];

/// Modules allowed to call transcendental math (`sin`/`cos`/`exp`/`powf`):
/// plan-time table builders and seeded noise generators, where the f32/f64
/// bit-identity story says all trig must live. Everything else flags under
/// `float-determinism`. Prefix match on the workspace-relative path.
pub const PLAN_TIME_PREFIXES: &[&str] = &[
    "crates/fft/src/complex.rs",   // cis/from_polar/exp primitives (plan-time twiddles)
    "crates/fft/src/real.rs",      // precision-generic sin_cos trait plumbing
    "crates/fft/src/plan.rs",      // twiddle-table construction
    "crates/fft/src/dft.rs",       // reference DFT (plan-time Bluestein kernels)
    "crates/optics/src/propagate.rs", // transfer-function cache build
    "crates/optics/src/fresnel.rs",   // lens/aperture construction
    "crates/optics/src/scene.rs",  // synthetic scene/content generation (same class as sensors)
    "crates/sensors/",             // seeded noise generation (Box–Muller)
    "crates/bench/",               // experiment drivers, synthetic inputs
];

/// Valid leading segments for telemetry span/counter names (`category.name`
/// convention; `gpu` is the synthetic simulated-GPU track).
pub const CATEGORIES: &[&str] = &[
    "fft", "optics", "core", "pipeline", "gpusim", "gpu", "bench", "telemetry", "faults", "serve",
    "fleet", "slo", "profile",
];

/// Every rule id the engine knows; waivers naming anything else are
/// diagnosed as malformed.
pub const RULE_IDS: &[&str] = &[
    "no-panic",
    "no-panic-transitive",
    "determinism",
    "float-determinism",
    "thread-discipline",
    "lock-order",
    "hot-loop-alloc",
    "telemetry-discipline",
    "deprecated-wrapper",
    "unsafe-hygiene",
];

/// Resolved lint configuration for one run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (directory holding the `[workspace]` Cargo.toml).
    pub root: PathBuf,
    /// Telemetry name registry, workspace-relative.
    pub registry_rel: String,
    /// Baseline file, workspace-relative.
    pub baseline_rel: String,
}

impl Config {
    /// The default configuration rooted at `root`.
    pub fn new(root: PathBuf) -> Config {
        Config {
            root,
            registry_rel: "crates/lint/telemetry.names".to_string(),
            baseline_rel: "lint.baseline".to_string(),
        }
    }

    /// Whether `rel` is a designated hot-path module.
    pub fn is_hot_path(&self, rel: &str) -> bool {
        HOT_PATHS.contains(&rel)
    }

    /// Whether `rel` is exempt from the determinism / telemetry rules.
    pub fn is_rule_exempt(&self, rel: &str) -> bool {
        RULE_EXEMPT_PREFIXES.iter().any(|p| rel.starts_with(p))
    }

    /// Whether `(rel, name)` is a designated interprocedural hot entry.
    pub fn is_hot_entry(&self, rel: &str, name: &str) -> bool {
        HOT_ENTRY_POINTS.iter().any(|&(p, n)| p == rel && n == name)
    }

    /// Whether `(rel, name)` is a designated per-frame loop function.
    pub fn is_frame_loop_fn(&self, rel: &str, name: &str) -> bool {
        FRAME_LOOP_FNS.iter().any(|&(p, n)| p == rel && n == name)
    }

    /// Whether `rel` is a plan-time module (transcendentals allowed).
    pub fn is_plan_time(&self, rel: &str) -> bool {
        PLAN_TIME_PREFIXES.iter().any(|p| rel.starts_with(p))
    }
}

/// Finds the workspace root by walking up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table appears.
pub fn find_workspace_root(start: &std::path::Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}
