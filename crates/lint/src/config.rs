//! Lint configuration: which modules are hot paths, where the determinism
//! and concurrency rules apply, and which telemetry categories exist.
//!
//! The sets below are checked-in policy, not discovery: adding a module to
//! a hot set is a deliberate, reviewable act (see DESIGN.md, "Static
//! analysis").

use std::path::PathBuf;

/// Real-time hot-path modules: the no-panic rule applies to every non-test
/// line of these files. Paths are workspace-relative.
pub const HOT_PATHS: &[&str] = &[
    "crates/fft/src/radix2.rs",
    "crates/fft/src/bluestein.rs",
    "crates/fft/src/fft2d.rs",
    "crates/fft/src/parallel.rs",
    "crates/fft/src/plan.rs",
    "crates/optics/src/gsw.rs",
    "crates/optics/src/propagate.rs",
    "crates/optics/src/fresnel.rs",
    "crates/gpusim/src/sm.rs",
];

/// The one module allowed to call `std::thread::{spawn, scope}`: the
/// `Parallelism` worker pool every other crate must go through.
pub const PARALLELISM_HOME: &str = "crates/fft/src/parallel.rs";

/// Path prefixes exempt from the determinism and telemetry-discipline
/// rules: the telemetry crate owns the clock, the vendored shims are
/// outside workspace policy, and this crate's own tests embed violation
/// snippets on purpose.
pub const RULE_EXEMPT_PREFIXES: &[&str] = &["crates/telemetry/", "vendor/", "crates/lint/"];

/// Valid leading segments for telemetry span/counter names (`category.name`
/// convention; `gpu` is the synthetic simulated-GPU track).
pub const CATEGORIES: &[&str] = &[
    "fft", "optics", "core", "pipeline", "gpusim", "gpu", "bench", "telemetry", "faults", "serve",
    "slo", "profile",
];

/// Every rule id the engine knows; waivers naming anything else are
/// diagnosed as malformed.
pub const RULE_IDS: &[&str] = &[
    "no-panic",
    "determinism",
    "thread-discipline",
    "telemetry-discipline",
    "deprecated-wrapper",
    "unsafe-hygiene",
];

/// Resolved lint configuration for one run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (directory holding the `[workspace]` Cargo.toml).
    pub root: PathBuf,
    /// Telemetry name registry, workspace-relative.
    pub registry_rel: String,
    /// Baseline file, workspace-relative.
    pub baseline_rel: String,
}

impl Config {
    /// The default configuration rooted at `root`.
    pub fn new(root: PathBuf) -> Config {
        Config {
            root,
            registry_rel: "crates/lint/telemetry.names".to_string(),
            baseline_rel: "lint.baseline".to_string(),
        }
    }

    /// Whether `rel` is a designated hot-path module.
    pub fn is_hot_path(&self, rel: &str) -> bool {
        HOT_PATHS.contains(&rel)
    }

    /// Whether `rel` is exempt from the determinism / telemetry rules.
    pub fn is_rule_exempt(&self, rel: &str) -> bool {
        RULE_EXEMPT_PREFIXES.iter().any(|p| rel.starts_with(p))
    }
}

/// Finds the workspace root by walking up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table appears.
pub fn find_workspace_root(start: &std::path::Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}
