//! Walks the workspace, runs every rule, and resolves waivers and the
//! baseline into a [`Report`].

use std::path::Path;

use crate::baseline::Baseline;
use crate::config::Config;
use crate::diag::{Finding, Report, Status};
use crate::source::SourceFile;
use crate::{baseline, model, rules, waiver};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", ".github"];

/// Scans every workspace `.rs` file under `root` (skipping `target`,
/// `.git`, `fixtures` and `.github` directories).
pub fn scan_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut sources = Vec::new();
    collect_rs_files(root, root, &mut sources)?;
    sources.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(sources)
}

/// Lints the workspace rooted at `cfg.root`, reading sources, the name
/// registry, and the baseline from disk.
pub fn lint_workspace(cfg: &Config) -> Result<Report, String> {
    let sources = scan_workspace(&cfg.root)?;
    let registry_text = std::fs::read_to_string(cfg.root.join(&cfg.registry_rel))
        .map_err(|e| format!("cannot read {}: {e}", cfg.registry_rel))?;
    let baseline_text =
        std::fs::read_to_string(cfg.root.join(&cfg.baseline_rel)).unwrap_or_default();
    Ok(lint_sources(&sources, cfg, &registry_text, &baseline_text))
}

/// Lints pre-scanned sources (the in-memory entry point the fixture tests
/// use). `registry_text`/`baseline_text` are the file contents.
pub fn lint_sources(
    sources: &[SourceFile],
    cfg: &Config,
    registry_text: &str,
    baseline_text: &str,
) -> Report {
    let mut findings: Vec<Finding> = Vec::new();
    let mut waivers: Vec<(String, waiver::Waiver)> = Vec::new(); // (path, waiver)
    let mut rules = rules::all(registry_text, &cfg.registry_rel);
    let mut baseline = Baseline::parse(baseline_text, &cfg.baseline_rel, &mut findings);

    for file in sources {
        // The lint crate's own sources document waiver syntax in prose;
        // don't parse those examples as directives.
        if !file.rel.starts_with("crates/lint/") {
            for w in waiver::collect(file, &mut findings) {
                waivers.push((file.rel.clone(), w));
            }
        }
        for rule in rules.iter_mut() {
            rule.check_file(file, cfg, &mut findings);
        }
    }
    // Pass 2: the interprocedural rules run over the workspace model.
    let workspace_model = model::build(sources, cfg);
    for rule in rules.iter_mut() {
        rule.check_model(&workspace_model, cfg, &mut findings);
    }
    for rule in rules.iter_mut() {
        rule.finish(cfg, &mut findings);
    }

    // Resolve each finding: inline waiver first, then baseline.
    let mut used_waivers: Vec<bool> = vec![false; waivers.len()];
    for f in findings.iter_mut() {
        if f.rule == "waiver-syntax" {
            continue; // meta-findings are never suppressible
        }
        if let Some(i) = waivers
            .iter()
            .position(|(path, w)| *path == f.path && w.applies_to == f.line && w.rule == f.rule)
        {
            used_waivers[i] = true;
            f.status = Status::Waived(waivers[i].1.reason.clone());
            continue;
        }
        let line_code = sources
            .iter()
            .find(|s| s.rel == f.path)
            .and_then(|s| s.lines.get(f.line.saturating_sub(1)))
            .map(|l| l.code.as_str())
            .unwrap_or("");
        if baseline.covers(f.rule, &f.path, line_code) {
            f.status = Status::Baselined;
        }
    }

    // A waiver whose violation no longer exists, or a baseline entry that
    // matches nothing, must not linger silently.
    for (i, (path, w)) in waivers.iter().enumerate() {
        if !used_waivers[i] {
            findings.push(Finding::active(
                "waiver-syntax",
                path.clone(),
                w.declared_at,
                format!(
                    "unused waiver: no `{}` finding on line {} of {}; the violation was \
                     fixed — remove the waiver",
                    w.rule, w.applies_to, path
                ),
            ));
        }
    }
    for (line, rule, path) in baseline.stale() {
        findings.push(Finding::active(
            "waiver-syntax",
            cfg.baseline_rel.clone(),
            line,
            format!(
                "stale baseline entry: no `{rule}` finding in {path} matches this code \
                 anymore; remove the entry"
            ),
        ));
    }

    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Report { findings, files_scanned: sources.len() }
}

/// Builds the interprocedural workspace model for `cfg.root` and returns
/// its JSON dump (the `--graph-out` payload).
pub fn dump_model(cfg: &Config) -> Result<String, String> {
    let sources = scan_workspace(&cfg.root)?;
    let workspace_model = model::build(&sources, cfg);
    let mut out = workspace_model.to_json().render_pretty();
    out.push('\n');
    Ok(out)
}

/// Renders a baseline file that would suppress every currently-active
/// finding (see `--write-baseline`).
pub fn render_baseline(report: &Report, sources: &[SourceFile]) -> String {
    baseline::write(&report.findings, sources)
}

/// Reads every `.rs` file under `dir` (skipping [`SKIP_DIRS`]) into scanned
/// sources with workspace-relative paths.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("path {} escapes root: {e}", path.display()))?
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile::scan(&rel, &text));
        }
    }
    Ok(())
}
