//! Checked-in baseline: grandfathered findings that don't fail the run.
//!
//! Format, one entry per line (tab-separated so code text can hold spaces):
//!
//! ```text
//! rule<TAB>path<TAB>normalized code text of the offending line
//! ```
//!
//! Entries match on *content*, not line numbers, so unrelated edits that
//! shift a file don't invalidate the baseline. `#` starts a comment line.
//! Policy (enforced by review, and by the acceptance tests for the
//! `no-panic` and `determinism` rules): the baseline is for migration
//! only — new code fixes or waives findings instead of baselining them.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::{Finding, Status};
use crate::source::SourceFile;

/// A loaded baseline. Entries remember the line they were declared on and
/// whether they matched anything, so stale entries can be reported.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// `(rule, path, normalized code) -> baseline-file line`.
    entries: BTreeMap<(String, String, String), usize>,
    /// Keys that covered at least one finding this run.
    used: BTreeSet<(String, String, String)>,
}

impl Baseline {
    /// Parses baseline text. Unparseable lines are returned as findings
    /// against the baseline file itself.
    pub fn parse(text: &str, rel: &str, out: &mut Vec<Finding>) -> Baseline {
        let mut entries = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            match (parts.next(), parts.next(), parts.next()) {
                (Some(rule), Some(path), Some(code)) if !rule.is_empty() && !path.is_empty() => {
                    entries.insert(
                        (rule.to_string(), path.to_string(), normalize(code)),
                        i + 1,
                    );
                }
                _ => out.push(Finding::active(
                    "waiver-syntax",
                    rel,
                    i + 1,
                    "malformed baseline entry (want `rule<TAB>path<TAB>code`)",
                )),
            }
        }
        Baseline { entries, used: BTreeSet::new() }
    }

    /// Whether a finding at `line_code` is grandfathered; marks the entry
    /// as used.
    pub fn covers(&mut self, rule: &str, path: &str, line_code: &str) -> bool {
        let key = (rule.to_string(), path.to_string(), normalize(line_code));
        if self.entries.contains_key(&key) {
            self.used.insert(key);
            true
        } else {
            false
        }
    }

    /// Entries that matched nothing, as `(line, rule, path)` sorted by
    /// baseline-file line.
    pub fn stale(&self) -> Vec<(usize, String, String)> {
        let mut stale: Vec<(usize, String, String)> = self
            .entries
            .iter()
            .filter(|(key, _)| !self.used.contains(*key))
            .map(|((rule, path, _), line)| (*line, rule.clone(), path.clone()))
            .collect();
        stale.sort();
        stale
    }

    /// Number of entries (used by tests and `--write-baseline` reporting).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Renders a baseline file covering every active finding in `findings`,
/// looking the offending code text up in `sources`.
pub fn write(findings: &[Finding], sources: &[SourceFile]) -> String {
    let mut out = String::from(
        "# holoar-lint baseline — grandfathered findings (rule<TAB>path<TAB>code).\n\
         # Regenerate with `repro lint --write-baseline`. Keep this file shrinking:\n\
         # new code fixes or waives findings instead of adding entries here.\n",
    );
    let mut lines: Vec<String> = findings
        .iter()
        .filter(|f| f.status == Status::Active && f.rule != "waiver-syntax")
        .filter_map(|f| {
            let code = sources
                .iter()
                .find(|s| s.rel == f.path)
                .and_then(|s| s.lines.get(f.line.saturating_sub(1)))
                .map(|l| normalize(&l.code))?;
            Some(format!("{}\t{}\t{}", f.rule, f.path, code))
        })
        .collect();
    lines.sort();
    lines.dedup();
    for l in lines {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

/// Squeezes runs of whitespace to single spaces so formatting churn doesn't
/// break matches.
fn normalize(code: &str) -> String {
    code.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_match_and_malformed() {
        let mut out = Vec::new();
        let mut b = Baseline::parse(
            "# comment\n\
             no-panic\tcrates/x/src/a.rs\tv.unwrap();\n\
             not-enough-fields\n",
            "lint.baseline",
            &mut out,
        );
        assert_eq!(b.len(), 1);
        assert!(b.covers("no-panic", "crates/x/src/a.rs", "  v.unwrap();  "));
        assert!(!b.covers("no-panic", "crates/x/src/b.rs", "v.unwrap();"));
        assert!(!b.covers("determinism", "crates/x/src/a.rs", "v.unwrap();"));
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("malformed baseline"));
    }

    #[test]
    fn unused_entries_are_stale() {
        let mut out = Vec::new();
        let mut b = Baseline::parse(
            "no-panic\tcrates/x/src/a.rs\tv.unwrap();\n\
             determinism\tcrates/x/src/b.rs\tlet t = now();\n",
            "lint.baseline",
            &mut out,
        );
        assert!(b.covers("no-panic", "crates/x/src/a.rs", "v.unwrap();"));
        let stale = b.stale();
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0], (2, "determinism".to_string(), "crates/x/src/b.rs".to_string()));
    }
}
