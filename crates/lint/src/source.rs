//! A lightweight line-oriented Rust scanner.
//!
//! This is deliberately **not** a full Rust lexer: the rules in this crate
//! are substring and token heuristics, so all the scanner has to get right
//! is the part that makes substring matching sound — separating *code* from
//! *comments* and *string-literal contents*. Per input line it produces:
//!
//! - `code`: the line with comments removed and string/char literal
//!   *contents* blanked (the quotes remain, so `.expect("...")` keeps its
//!   call shape while the message can never false-positive a rule);
//! - `comment`: the concatenated comment text (for `SAFETY:` and waiver
//!   parsing);
//! - `strings`: the string literals that *start* on the line, verbatim
//!   (for the telemetry-name rules);
//! - `in_test`: whether the line sits inside `#[cfg(test)]` / `#[test]`
//!   regions, or the whole file is a test/bench/example target.
//!
//! Handled: line comments, nested block comments, doc comments, plain and
//! raw strings (any `#` count), byte strings, char literals vs. lifetimes,
//! multi-line strings. Not handled (and not needed): macros that generate
//! code containing violations, and exotic token positions inside
//! `macro_rules!` definitions.

/// One scanned source line.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code text: comments stripped, literal contents blanked.
    pub code: String,
    /// Comment text on this line (markers stripped).
    pub comment: String,
    /// String literals that start on this line, in order.
    pub strings: Vec<String>,
    /// Inside a `#[cfg(test)]`/`#[test]` region (or a test-like file).
    pub in_test: bool,
}

/// A scanned file: workspace-relative path plus scanned lines.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (e.g. `crates/fft/src/plan.rs`).
    pub rel: String,
    /// Scanned lines, index 0 = line 1.
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Scans `content` as the file at workspace-relative path `rel`.
    pub fn scan(rel: &str, content: &str) -> SourceFile {
        let mut lines = scan_lines(content);
        let testlike = is_testlike_path(rel);
        mark_test_regions(&mut lines, testlike);
        SourceFile { rel: rel.to_string(), lines }
    }

    /// 1-based line iteration: `(line_no, line)`.
    pub fn numbered(&self) -> impl Iterator<Item = (usize, &Line)> {
        self.lines.iter().enumerate().map(|(i, l)| (i + 1, l))
    }
}

/// Whether every line of a file at this path counts as test code
/// (integration tests, benches, examples).
fn is_testlike_path(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    parts.iter().any(|p| *p == "tests" || *p == "benches" || *p == "examples")
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    /// Inside a string literal; `None` = escaped string, `Some(n)` = raw
    /// string closed by `"` followed by `n` hashes.
    Str(Option<u32>),
}

fn scan_lines(content: &str) -> Vec<Line> {
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Code;
    // (line index the literal started on, contents so far)
    let mut literal: (usize, String) = (0, String::new());

    let chars: Vec<char> = content.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // Line comments end at the newline; everything else carries over.
            if state == State::LineComment {
                state = State::Code;
            }
            if matches!(state, State::Str(_)) {
                literal.1.push('\n');
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    i += 2;
                    // Skip doc-comment and inner-doc markers.
                    while chars.get(i) == Some(&'/') || chars.get(i) == Some(&'!') {
                        i += 1;
                    }
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    cur.code.push('"');
                    state = State::Str(None);
                    literal = (lines.len(), String::new());
                    i += 1;
                    continue;
                }
                // Raw / byte strings: r"", r#""#, br"", b"".
                if (c == 'r' || c == 'b') && !prev_is_ident(&cur.code) {
                    if let Some(skip) = raw_string_prefix(&chars[i..]) {
                        let hashes = skip.1;
                        cur.code.push('"');
                        state = State::Str(if skip.2 { Some(hashes) } else { None });
                        literal = (lines.len(), String::new());
                        i += skip.0;
                        continue;
                    }
                }
                if c == '\'' {
                    // Char literal vs lifetime: 'x' or '\n' is a literal,
                    // 'a (no closing quote nearby) is a lifetime.
                    if chars.get(i + 1) == Some(&'\\') {
                        i += 2; // consume '\ and the escape lead-in
                        while i < chars.len() && chars[i] != '\'' {
                            i += 1;
                        }
                        i += 1; // closing quote
                        cur.code.push_str("' '");
                        continue;
                    }
                    if chars.get(i + 2) == Some(&'\'') {
                        cur.code.push_str("' '");
                        i += 3;
                        continue;
                    }
                    cur.code.push('\''); // lifetime marker
                    i += 1;
                    continue;
                }
                cur.code.push(c);
                i += 1;
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    let d = depth - 1;
                    state = if d == 0 { State::Code } else { State::BlockComment(d) };
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str(raw) => {
                match raw {
                    None => {
                        if c == '\\' {
                            // Escaped newlines keep their '\n' in the main
                            // loop so line accounting stays aligned.
                            if let Some(&next) = chars.get(i + 1) {
                                if next != '\n' {
                                    literal.1.push(c);
                                    literal.1.push(next);
                                    i += 2;
                                    continue;
                                }
                            }
                            literal.1.push(c);
                            i += 1;
                            continue;
                        }
                        if c == '"' {
                            cur.code.push('"');
                            attach_literal(&mut lines, &mut cur, &mut literal);
                            state = State::Code;
                            i += 1;
                            continue;
                        }
                        literal.1.push(c);
                        i += 1;
                    }
                    Some(hashes) => {
                        if c == '"' && closes_raw(&chars[i..], hashes) {
                            cur.code.push('"');
                            attach_literal(&mut lines, &mut cur, &mut literal);
                            state = State::Code;
                            i += 1 + hashes as usize;
                            continue;
                        }
                        literal.1.push(c);
                        i += 1;
                    }
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() || !cur.strings.is_empty() {
        lines.push(cur);
    }
    lines
}

fn prev_is_ident(code: &str) -> bool {
    code.chars().last().is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// If `chars` starts a raw/byte string prefix (`r"`, `r#"`, `br"`, `b"`),
/// returns `(chars_to_skip, hash_count, is_raw)`.
fn raw_string_prefix(chars: &[char]) -> Option<(usize, u32, bool)> {
    let mut i = 0;
    if chars.first() == Some(&'b') {
        i += 1;
    }
    let raw = chars.get(i) == Some(&'r');
    if raw {
        i += 1;
    }
    if i == 0 {
        return None; // plain '"' handled by the caller
    }
    let mut hashes = 0u32;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) == Some(&'"') {
        if !raw && hashes > 0 {
            return None; // `b#` is not a string prefix
        }
        Some((i + 1, hashes, raw))
    } else {
        None
    }
}

fn closes_raw(chars: &[char], hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(k) == Some(&'#'))
}

fn attach_literal(lines: &mut [Line], cur: &mut Line, literal: &mut (usize, String)) {
    let (start, text) = std::mem::take(literal);
    if start == lines.len() {
        cur.strings.push(text);
    } else if let Some(line) = lines.get_mut(start) {
        line.strings.push(text);
    }
}

/// Marks lines inside `#[cfg(test)]` / `#[test]` brace regions.
fn mark_test_regions(lines: &mut [Line], whole_file: bool) {
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    let mut region_starts: Vec<i64> = Vec::new();
    for line in lines.iter_mut() {
        let code = line.code.as_str();
        if code.contains("#[cfg(test") || code.contains("#[test]") {
            pending_attr = true;
        }
        line.in_test = whole_file || pending_attr || !region_starts.is_empty();
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        if pending_attr && opens > 0 {
            region_starts.push(depth);
            pending_attr = false;
        }
        depth += opens - closes;
        while region_starts.last().is_some_and(|&d| depth <= d) {
            region_starts.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_blanks_strings() {
        let f = SourceFile::scan(
            "crates/x/src/a.rs",
            "let x = v.expect(\"call .unwrap() here\"); // .unwrap() too\n",
        );
        assert_eq!(f.lines.len(), 1);
        assert!(f.lines[0].code.contains(".expect(\"\")"));
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].comment.contains(".unwrap() too"));
        assert_eq!(f.lines[0].strings, vec!["call .unwrap() here".to_string()]);
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let src = "/* outer /* inner */ still */ let s = r#\"raw \"q\" text\"#;\n";
        let f = SourceFile::scan("crates/x/src/a.rs", src);
        assert!(f.lines[0].code.contains("let s ="));
        assert!(f.lines[0].comment.contains("inner"));
        assert_eq!(f.lines[0].strings, vec!["raw \"q\" text".to_string()]);
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let f = SourceFile::scan("crates/x/src/a.rs", "let c = '\"'; let l: &'static str = x;\n");
        assert!(f.lines[0].code.contains("let l: &'static str"));
        assert!(f.lines[0].strings.is_empty());
    }

    #[test]
    fn cfg_test_region_tracking() {
        let src = "fn hot() { v.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { v.unwrap(); }\n\
                   }\n\
                   fn hot2() {}\n";
        let f = SourceFile::scan("crates/x/src/a.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test && f.lines[2].in_test && f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn bench_files_are_whole_file_test() {
        let f = SourceFile::scan("crates/bench/benches/fft.rs", "fn main() {}\n");
        assert!(f.lines[0].in_test);
    }

    #[test]
    fn multiline_string_attaches_to_start_line() {
        let src = "let s = \"line one\nline two\";\nlet t = 1;\n";
        let f = SourceFile::scan("crates/x/src/a.rs", src);
        assert_eq!(f.lines[0].strings, vec!["line one\nline two".to_string()]);
        assert!(f.lines[1].strings.is_empty());
    }
}
