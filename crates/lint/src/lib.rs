//! `holoar-lint` — workspace static analysis for the HoloAR reproduction.
//!
//! A pure-std lexer/line-scanner plus a rule engine that walks every
//! workspace `.rs` file and enforces the domain invariants the compiler
//! cannot check (and the paper's headline numbers rest on):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `no-panic` | designated FFT/optics/gpusim hot paths are panic-free |
//! | `determinism` | simulator/kernel code reads one clock, iterates no hash maps |
//! | `thread-discipline` | all fan-out goes through `holoar_fft::Parallelism` |
//! | `telemetry-discipline` | span/counter names unique, registered, `category.name` |
//! | `unsafe-hygiene` | `unsafe` justified with `// SAFETY:`; clean crates forbid it |
//!
//! Findings can be waived inline —
//! `// holoar-lint: allow(rule, reason = "...")` — or grandfathered in the
//! checked-in `lint.baseline`. Run it as `repro lint` or
//! `cargo run -p holoar-lint`; `--format json` emits machine-readable
//! diagnostics for CI. See DESIGN.md, "Static analysis".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod config;
pub mod diag;
pub mod engine;
pub mod model;
pub mod rules;
pub mod source;
pub mod waiver;

pub use config::{find_workspace_root, Config};
pub use diag::{Finding, Report, Status};
pub use engine::{lint_sources, lint_workspace};
pub use source::SourceFile;

/// Command-line entry point shared by the `holoar-lint` binary and the
/// `repro lint` subcommand. Returns the process exit code: 0 when no
/// active findings, 1 when the lint gate fails, 2 on usage/setup errors.
pub fn cli(args: &[String]) -> i32 {
    let mut format_json = false;
    let mut verbose = false;
    let mut write_baseline = false;
    let mut out_path: Option<String> = None;
    let mut graph_out: Option<String> = None;
    let mut root_arg: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => format_json = true,
                Some("human") => format_json = false,
                other => {
                    eprintln!("--format wants `human` or `json`, got {other:?}");
                    return 2;
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("--out requires a file path");
                    return 2;
                }
            },
            "--graph-out" => match it.next() {
                Some(p) => graph_out = Some(p.clone()),
                None => {
                    eprintln!("--graph-out requires a file path");
                    return 2;
                }
            },
            "--root" => match it.next() {
                Some(p) => root_arg = Some(p.clone()),
                None => {
                    eprintln!("--root requires a directory");
                    return 2;
                }
            },
            "--verbose" | "-v" => verbose = true,
            "--write-baseline" => write_baseline = true,
            "--help" | "-h" => {
                println!(
                    "usage: repro lint [--format human|json] [--out FILE] [--graph-out FILE] \
                     [--root DIR] [--verbose] [--write-baseline]\n\
                     Enforces hot-path no-panic (per-line and transitive through the call\n\
                     graph), determinism (wall clocks, hash iteration, transcendental math\n\
                     outside plan time), lock ordering, per-frame allocation, thread,\n\
                     telemetry-naming, and unsafe-hygiene invariants across the workspace.\n\
                     Exit 1 on any active (non-waived, non-baselined) finding. Waive inline\n\
                     with `// holoar-lint: allow(rule, reason = \"...\")`.\n\
                     --graph-out dumps the interprocedural model (call graph + effect\n\
                     summaries + lock-order edges) as JSON."
                );
                return 0;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return 2;
            }
        }
    }

    let root = match root_arg {
        Some(r) => std::path::PathBuf::from(r),
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("cannot determine working directory: {e}");
                    return 2;
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("no workspace Cargo.toml found above {}", cwd.display());
                    return 2;
                }
            }
        }
    };

    let cfg = Config::new(root);
    if let Some(p) = &graph_out {
        match engine::dump_model(&cfg) {
            Ok(json) => {
                if let Err(e) = std::fs::write(p, &json) {
                    eprintln!("cannot write {p}: {e}");
                    return 2;
                }
                eprintln!("wrote workspace model to {p}");
            }
            Err(e) => {
                eprintln!("holoar-lint: {e}");
                return 2;
            }
        }
    }
    let report = match engine::lint_workspace(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("holoar-lint: {e}");
            return 2;
        }
    };

    if write_baseline {
        // Re-scan to hand the renderer the sources (cheap, and keeps the
        // report type free of source text).
        let sources = match engine::scan_workspace(&cfg.root) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("holoar-lint: {e}");
                return 2;
            }
        };
        let text = engine::render_baseline(&report, &sources);
        let path = cfg.root.join(&cfg.baseline_rel);
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("cannot write {}: {e}", path.display());
            return 2;
        }
        eprintln!("wrote baseline to {}", path.display());
        return 0;
    }

    let rendered =
        if format_json { report.render_json() } else { report.render_human(verbose) };
    match out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, &rendered) {
                eprintln!("cannot write {p}: {e}");
                return 2;
            }
            // Keep the human summary on stderr so CI logs stay readable.
            eprint!("{}", report.render_human(false));
        }
        None => print!("{rendered}"),
    }
    if report.active().next().is_some() {
        1
    } else {
        0
    }
}
