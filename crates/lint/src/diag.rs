//! Findings and their two output formats: human `file:line` diagnostics
//! and machine-readable JSON (built with the telemetry crate's `jsonlite`
//! serializer and consumed by CI).

use holoar_telemetry::jsonlite::Json;

/// What happened to a finding after waiver/baseline resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// Fails the lint run.
    Active,
    /// Suppressed by an inline `holoar-lint: allow(...)` waiver.
    Waived(String),
    /// Suppressed by a checked-in baseline entry (grandfathered).
    Baselined,
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (one of [`crate::config::RULE_IDS`], or `waiver-syntax`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// For interprocedural findings, the call chain from the designated
    /// entry point to the offending site (`path::fn` per hop, entry
    /// first). Empty for per-line findings.
    pub chain: Vec<String>,
    /// Resolution after waivers and baseline are applied.
    pub status: Status,
}

impl Finding {
    /// A new active finding with no call chain.
    pub fn active(
        rule: &'static str,
        path: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line,
            message: message.into(),
            chain: Vec::new(),
            status: Status::Active,
        }
    }

    /// Attaches an interprocedural call chain.
    pub fn with_chain(mut self, chain: Vec<String>) -> Finding {
        self.chain = chain;
        self
    }
}

/// The result of one lint run.
#[derive(Debug, Clone)]
pub struct Report {
    /// All findings, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings that fail the run.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.status == Status::Active)
    }

    /// Counts as `(active, waived, baselined)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for f in &self.findings {
            match f.status {
                Status::Active => c.0 += 1,
                Status::Waived(_) => c.1 += 1,
                Status::Baselined => c.2 += 1,
            }
        }
        c
    }

    /// Human-readable rendering, one diagnostic per line plus a summary.
    /// Interprocedural findings print their call chain indented below the
    /// diagnostic.
    pub fn render_human(&self, verbose: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let shown = match &f.status {
                Status::Active => {
                    out.push_str(&format!("{}:{}: {}: {}\n", f.path, f.line, f.rule, f.message));
                    true
                }
                Status::Waived(reason) if verbose => {
                    out.push_str(&format!(
                        "{}:{}: {}: {} [waived: {}]\n",
                        f.path, f.line, f.rule, f.message, reason
                    ));
                    true
                }
                Status::Baselined if verbose => {
                    out.push_str(&format!(
                        "{}:{}: {}: {} [baselined]\n",
                        f.path, f.line, f.rule, f.message
                    ));
                    true
                }
                _ => false,
            };
            if shown && !f.chain.is_empty() {
                out.push_str(&format!("    call chain: {}\n", f.chain.join(" -> ")));
            }
        }
        let (active, waived, baselined) = self.counts();
        out.push_str(&format!(
            "holoar-lint: {active} active, {waived} waived, {baselined} baselined \
             ({} files scanned)\n",
            self.files_scanned
        ));
        out
    }

    /// The report as a `jsonlite` value (shape is stable: `version`,
    /// `findings[]`, `summary{}`; interprocedural findings add `chain`).
    pub fn to_json(&self) -> Json {
        let findings: Vec<Json> = self
            .findings
            .iter()
            .map(|f| {
                let mut obj: Vec<(String, Json)> = vec![
                    ("rule".into(), Json::String(f.rule.to_string())),
                    ("path".into(), Json::String(f.path.clone())),
                    ("line".into(), Json::Number(f.line as f64)),
                    ("message".into(), Json::String(f.message.clone())),
                ];
                if !f.chain.is_empty() {
                    obj.push((
                        "chain".into(),
                        Json::Array(f.chain.iter().map(|c| Json::String(c.clone())).collect()),
                    ));
                }
                let status = match &f.status {
                    Status::Active => "active",
                    Status::Waived(_) => "waived",
                    Status::Baselined => "baselined",
                };
                obj.push(("status".into(), Json::String(status.to_string())));
                if let Status::Waived(reason) = &f.status {
                    obj.push(("reason".into(), Json::String(reason.clone())));
                }
                Json::Object(obj)
            })
            .collect();
        let (active, waived, baselined) = self.counts();
        Json::Object(vec![
            ("version".into(), Json::Number(1.0)),
            ("findings".into(), Json::Array(findings)),
            (
                "summary".into(),
                Json::Object(vec![
                    ("active".into(), Json::Number(active as f64)),
                    ("waived".into(), Json::Number(waived as f64)),
                    ("baselined".into(), Json::Number(baselined as f64)),
                    ("files_scanned".into(), Json::Number(self.files_scanned as f64)),
                ]),
            ),
        ])
    }

    /// Machine-readable JSON rendering of [`Report::to_json`].
    pub fn render_json(&self) -> String {
        let mut out = self.to_json().render_pretty();
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holoar_telemetry::jsonlite;

    #[test]
    fn json_round_trips_through_jsonlite() {
        let report = Report {
            findings: vec![
                Finding::active(
                    "no-panic",
                    "crates/x/src/a.rs",
                    7,
                    "message with \"quotes\", a\ttab and a\nnewline",
                ),
                Finding {
                    status: Status::Waived("checked \\ elsewhere".to_string()),
                    ..Finding::active("determinism", "crates/x/src/b.rs", 9, "clock")
                },
                Finding::active("no-panic-transitive", "crates/y/src/c.rs", 3, "panics").with_chain(
                    vec!["crates/x/src/a.rs::entry".to_string(), "crates/y/src/c.rs::inner".to_string()],
                ),
            ],
            files_scanned: 3,
        };
        let text = report.render_json();
        let parsed = jsonlite::parse(&text).expect("valid JSON");
        let findings = parsed.get("findings").and_then(Json::as_array).expect("findings");
        assert_eq!(findings.len(), 3);
        assert_eq!(
            findings[0].get("message").and_then(Json::as_str),
            Some("message with \"quotes\", a\ttab and a\nnewline")
        );
        assert_eq!(findings[1].get("reason").and_then(Json::as_str), Some("checked \\ elsewhere"));
        let chain = findings[2].get("chain").and_then(Json::as_array).expect("chain");
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].as_str(), Some("crates/x/src/a.rs::entry"));
        assert_eq!(
            parsed.get("summary").and_then(|s| s.get("active")).and_then(Json::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn human_output_prints_chain() {
        let report = Report {
            findings: vec![Finding::active("no-panic-transitive", "crates/y/src/c.rs", 3, "p")
                .with_chain(vec!["a::f".to_string(), "b::g".to_string()])],
            files_scanned: 1,
        };
        let text = report.render_human(false);
        assert!(text.contains("call chain: a::f -> b::g"), "{text}");
    }
}
