//! Findings and their two output formats: human `file:line` diagnostics
//! and machine-readable JSON (consumed by CI and validated in tests via
//! the telemetry crate's `jsonlite` parser).

/// What happened to a finding after waiver/baseline resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// Fails the lint run.
    Active,
    /// Suppressed by an inline `holoar-lint: allow(...)` waiver.
    Waived(String),
    /// Suppressed by a checked-in baseline entry (grandfathered).
    Baselined,
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (one of [`crate::config::RULE_IDS`], or `waiver-syntax`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// Resolution after waivers and baseline are applied.
    pub status: Status,
}

/// The result of one lint run.
#[derive(Debug, Clone)]
pub struct Report {
    /// All findings, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings that fail the run.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.status == Status::Active)
    }

    /// Counts as `(active, waived, baselined)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for f in &self.findings {
            match f.status {
                Status::Active => c.0 += 1,
                Status::Waived(_) => c.1 += 1,
                Status::Baselined => c.2 += 1,
            }
        }
        c
    }

    /// Human-readable rendering, one diagnostic per line plus a summary.
    pub fn render_human(&self, verbose: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            match &f.status {
                Status::Active => {
                    out.push_str(&format!("{}:{}: {}: {}\n", f.path, f.line, f.rule, f.message));
                }
                Status::Waived(reason) if verbose => {
                    out.push_str(&format!(
                        "{}:{}: {}: {} [waived: {}]\n",
                        f.path, f.line, f.rule, f.message, reason
                    ));
                }
                Status::Baselined if verbose => {
                    out.push_str(&format!(
                        "{}:{}: {}: {} [baselined]\n",
                        f.path, f.line, f.rule, f.message
                    ));
                }
                _ => {}
            }
        }
        let (active, waived, baselined) = self.counts();
        out.push_str(&format!(
            "holoar-lint: {active} active, {waived} waived, {baselined} baselined \
             ({} files scanned)\n",
            self.files_scanned
        ));
        out
    }

    /// Machine-readable JSON rendering (stable shape, version field first).
    pub fn render_json(&self) -> String {
        let (active, waived, baselined) = self.counts();
        let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (status, reason) = match &f.status {
                Status::Active => ("active", None),
                Status::Waived(r) => ("waived", Some(r.as_str())),
                Status::Baselined => ("baselined", None),
            };
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \
                 \"message\": \"{}\", \"status\": \"{}\"",
                json_escape(f.rule),
                json_escape(&f.path),
                f.line,
                json_escape(&f.message),
                status
            ));
            if let Some(r) = reason {
                out.push_str(&format!(", \"reason\": \"{}\"", json_escape(r)));
            }
            out.push('}');
        }
        out.push_str(&format!(
            "\n  ],\n  \"summary\": {{\"active\": {active}, \"waived\": {waived}, \
             \"baselined\": {baselined}, \"files_scanned\": {}}}\n}}\n",
            self.files_scanned
        ));
        out
    }
}

/// Escapes a string for embedding in a JSON double-quoted literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
