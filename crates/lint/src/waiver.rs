//! Inline waivers: `// holoar-lint: allow(rule, reason = "...")`.
//!
//! A waiver on a code line suppresses matching findings on that line; a
//! waiver on a comment-only line suppresses findings on the next code line
//! (so long messages don't have to share a line with the code they waive).
//! The reason is mandatory — a waiver without one is itself a finding, as
//! is a waiver naming an unknown rule.

use crate::config::RULE_IDS;
use crate::diag::Finding;
use crate::source::SourceFile;

/// One parsed waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule id the waiver applies to.
    pub rule: String,
    /// Mandatory justification.
    pub reason: String,
    /// 1-based line the waiver suppresses findings on.
    pub applies_to: usize,
    /// 1-based line the waiver comment sits on (where an unused-waiver
    /// finding anchors).
    pub declared_at: usize,
}

const MARKER: &str = "holoar-lint:";

/// Extracts all waivers in `file`, appending malformed-waiver findings to
/// `out`.
pub fn collect(file: &SourceFile, out: &mut Vec<Finding>) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for (line_no, line) in file.numbered() {
        let Some(pos) = line.comment.find(MARKER) else {
            continue;
        };
        let directive = line.comment[pos + MARKER.len()..].trim();
        if directive == crate::model::extract::MARKER_HOT_ENTRY
            || directive == crate::model::extract::MARKER_FRAME_LOOP
        {
            continue; // designation markers, parsed by the model build
        }
        let comment_only = line.code.trim().is_empty();
        let applies_to = if comment_only {
            // Next line with actual code (skipping further comment-only lines).
            file.lines
                .iter()
                .enumerate()
                .skip(line_no) // line_no is 1-based == index of the next line
                .find(|(_, l)| !l.code.trim().is_empty())
                .map(|(i, _)| i + 1)
                .unwrap_or(line_no)
        } else {
            line_no
        };
        match parse_directive(directive) {
            Ok((rule, reason)) => {
                if RULE_IDS.contains(&rule.as_str()) {
                    waivers.push(Waiver { rule, reason, applies_to, declared_at: line_no });
                } else {
                    out.push(Finding::active(
                        "waiver-syntax",
                        file.rel.clone(),
                        line_no,
                        format!(
                            "waiver names unknown rule `{rule}` (known: {})",
                            RULE_IDS.join(", ")
                        ),
                    ));
                }
            }
            Err(why) => out.push(Finding::active(
                "waiver-syntax",
                file.rel.clone(),
                line_no,
                format!("malformed waiver: {why}"),
            )),
        }
    }
    waivers
}

/// Parses `allow(rule, reason = "...")`, returning `(rule, reason)`.
fn parse_directive(directive: &str) -> Result<(String, String), String> {
    let rest = directive
        .strip_prefix("allow(")
        .ok_or_else(|| "expected `allow(rule, reason = \"...\")`".to_string())?;
    let rest = rest
        .strip_suffix(')')
        .ok_or_else(|| "missing closing `)`".to_string())?;
    let (rule, tail) = rest
        .split_once(',')
        .ok_or_else(|| "missing `, reason = \"...\"` after the rule name".to_string())?;
    let rule = rule.trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return Err(format!("`{rule}` is not a valid rule name"));
    }
    let tail = tail.trim();
    let reason_expr = tail
        .strip_prefix("reason")
        .map(|t| t.trim_start())
        .and_then(|t| t.strip_prefix('='))
        .map(|t| t.trim_start())
        .ok_or_else(|| "expected `reason = \"...\"`".to_string())?;
    let reason = reason_expr
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| "reason must be a double-quoted string".to_string())?;
    if reason.trim().is_empty() {
        return Err("reason must not be empty".to_string());
    }
    Ok((rule.to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> SourceFile {
        SourceFile::scan("crates/x/src/a.rs", src)
    }

    #[test]
    fn same_line_waiver() {
        let f = scan("v.unwrap(); // holoar-lint: allow(no-panic, reason = \"length checked\")\n");
        let mut out = Vec::new();
        let ws = collect(&f, &mut out);
        assert!(out.is_empty());
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].rule, "no-panic");
        assert_eq!(ws[0].reason, "length checked");
        assert_eq!(ws[0].applies_to, 1);
    }

    #[test]
    fn standalone_waiver_applies_to_next_code_line() {
        let f = scan(
            "// holoar-lint: allow(determinism, reason = \"bench wall time\")\n\
             // more commentary\n\
             let t = now();\n",
        );
        let mut out = Vec::new();
        let ws = collect(&f, &mut out);
        assert!(out.is_empty());
        assert_eq!(ws[0].applies_to, 3);
    }

    #[test]
    fn malformed_and_unknown_rule_waivers_are_findings() {
        let f = scan(
            "// holoar-lint: allow(no-panic)\n\
             // holoar-lint: allow(made-up-rule, reason = \"x\")\n\
             // holoar-lint: allow(no-panic, reason = )\n",
        );
        let mut out = Vec::new();
        let ws = collect(&f, &mut out);
        assert!(ws.is_empty());
        assert_eq!(out.len(), 3);
        assert!(out[0].message.contains("missing"));
        assert!(out[1].message.contains("unknown rule"));
        assert!(out[2].message.contains("double-quoted"));
    }
}
