//! Standalone entry point: `cargo run -p holoar-lint -- [args]`.
//! The same CLI is reachable as `repro lint`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(holoar_lint::cli(&args));
}
