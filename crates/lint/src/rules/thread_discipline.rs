//! `thread-discipline`: all fan-out goes through the `Parallelism` pool.
//!
//! Raw `std::thread::spawn`/`scope` outside `holoar-fft`'s pool bypasses
//! the `HOLOAR_THREADS` override, the shared scratch arena, and the
//! deterministic chunking that keeps parallel results bit-identical to
//! serial. Only [`crate::config::PARALLELISM_HOME`] may touch std threads;
//! test code is exempt (tests legitimately spawn to probe thread-safety).

use crate::config::{Config, PARALLELISM_HOME};
use crate::diag::Finding;
use crate::source::SourceFile;

use super::Rule;

/// Rule: all fan-out goes through `holoar_fft::Parallelism` — no ad-hoc
/// `std::thread::spawn` in library code.
pub struct ThreadDiscipline;

const PATTERNS: &[&str] = &["thread::spawn(", "thread::scope(", "thread::Builder"];

impl Rule for ThreadDiscipline {
    fn id(&self) -> &'static str {
        "thread-discipline"
    }

    fn check_file(&mut self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
        if file.rel == PARALLELISM_HOME || file.rel.starts_with("vendor/") || cfg.is_rule_exempt(&file.rel) {
            return;
        }
        for (line_no, line) in file.numbered() {
            if line.in_test {
                continue;
            }
            for pat in PATTERNS {
                if line.code.contains(pat) {
                    out.push(Finding::active(
                        "thread-discipline",
                        file.rel.clone(),
                        line_no,
                        format!(
                            "raw `{}` outside the Parallelism pool; use \
                             `holoar_fft::Parallelism` so worker count, scratch reuse, and \
                             deterministic chunking stay centralized",
                            pat.trim_end_matches('(')
                        ),
                    ));
                }
            }
        }
    }
}
