//! The rule engine: one module per rule, a shared trait, and the registry
//! the engine iterates.

use crate::config::Config;
use crate::diag::Finding;
use crate::model::WorkspaceModel;
use crate::source::SourceFile;

pub mod deprecated_wrapper;
pub mod determinism;
pub mod float_determinism;
pub mod hot_loop_alloc;
pub mod lock_order;
pub mod no_panic;
pub mod no_panic_transitive;
pub mod telemetry_discipline;
pub mod thread_discipline;
pub mod unsafe_hygiene;

/// One lint rule. Rules see every scanned file once (pass 1, line-level),
/// then the interprocedural workspace model (pass 2), then get a `finish`
/// call for cross-file checks (name uniqueness, per-crate attributes).
pub trait Rule {
    /// Stable rule id (also the waiver key).
    fn id(&self) -> &'static str;
    /// Per-file pass.
    fn check_file(&mut self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>);
    /// Interprocedural pass over the workspace model (call graph, effect
    /// summaries, lock map), after every file has been seen.
    fn check_model(&mut self, _model: &WorkspaceModel, _cfg: &Config, _out: &mut Vec<Finding>) {}
    /// Cross-file pass, after every file has been seen.
    fn finish(&mut self, _cfg: &Config, _out: &mut Vec<Finding>) {}
}

/// The full rule set, in reporting order.
pub fn all(registry_text: &str, registry_rel: &str) -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(no_panic::NoPanic),
        Box::new(no_panic_transitive::NoPanicTransitive),
        Box::new(determinism::Determinism),
        Box::new(float_determinism::FloatDeterminism),
        Box::new(thread_discipline::ThreadDiscipline),
        Box::new(lock_order::LockOrder),
        Box::new(hot_loop_alloc::HotLoopAlloc),
        Box::new(telemetry_discipline::TelemetryDiscipline::new(registry_text, registry_rel)),
        Box::new(deprecated_wrapper::DeprecatedWrapper),
        Box::new(unsafe_hygiene::UnsafeHygiene::default()),
    ]
}

/// Whether the byte before `pos` in `code` can end an identifier (used to
/// word-bound token searches).
pub(crate) fn ident_before(code: &str, pos: usize) -> bool {
    code[..pos].chars().last().is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Finds word-bounded occurrences of `token` in `code` (no identifier
/// character on either side).
pub(crate) fn find_token(code: &str, token: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let at = start + pos;
        let after_ok = code[at + token.len()..]
            .chars()
            .next()
            .is_none_or(|c| !(c.is_ascii_alphanumeric() || c == '_'));
        if !ident_before(code, at) && after_ok {
            hits.push(at);
        }
        start = at + token.len();
    }
    hits
}
