//! `no-panic`: designated hot-path modules must be panic-free.
//!
//! The real-time claims of the reproduction (frame deadlines, the
//! 2.7×/73% headline numbers) assume the FFT/GSW/propagation inner loops
//! never abort mid-frame. This rule forbids, outside test code, in the
//! modules listed in [`crate::config::HOT_PATHS`]:
//!
//! - `.unwrap()` / `.unwrap_err()` / `.expect(...)` / `.expect_err(...)`
//! - `panic!` / `unreachable!` / `todo!` / `unimplemented!`
//! - panic-prone slice indexing, by heuristic: a literal index (`x[0]`),
//!   an index ending in `- 1`, or an index containing `.len()` — the three
//!   shapes that panic on empty/short slices. Loop-bounded indexing
//!   (`buf[start + k]`) is allowed; hoist the length invariant instead.
//!
//! `assert!`/`debug_assert!` are allowed: a documented invariant check
//! hoisted out of the inner loop is exactly what this rule pushes toward.

use crate::config::Config;
use crate::diag::Finding;
use crate::source::SourceFile;

use super::{find_token, Rule};

/// Rule: designated FFT/optics/gpusim hot paths contain no panic sites
/// (`unwrap`, `expect`, indexing, `panic!`).
pub struct NoPanic;

pub(crate) const CALLS: &[(&str, &str)] = &[
    (".unwrap()", "`.unwrap()` can panic"),
    (".unwrap_err()", "`.unwrap_err()` can panic"),
    (".expect(", "`.expect(...)` can panic"),
    (".expect_err(", "`.expect_err(...)` can panic"),
];

pub(crate) const MACROS: &[&str] = &["panic!", "unreachable!", "todo!", "unimplemented!"];

impl Rule for NoPanic {
    fn id(&self) -> &'static str {
        "no-panic"
    }

    fn check_file(&mut self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
        if !cfg.is_hot_path(&file.rel) {
            return;
        }
        for (line_no, line) in file.numbered() {
            if line.in_test {
                continue;
            }
            let code = line.code.as_str();
            for (pat, why) in CALLS {
                if code.contains(pat) {
                    out.push(finding(file, line_no, format!("{why} on a real-time hot path; return a Result, use an infallible construct, or hoist the invariant check")));
                }
            }
            for mac in MACROS {
                if !find_token(code, mac).is_empty() {
                    out.push(finding(
                        file,
                        line_no,
                        format!("`{mac}` aborts a real-time hot path; validate inputs before entering the hot loop"),
                    ));
                }
            }
            for idx in panicky_indexing(code) {
                out.push(finding(
                    file,
                    line_no,
                    format!("panic-prone slice index `[{idx}]`; use .first()/.get() or hoist a length invariant"),
                ));
            }
        }
    }
}

fn finding(file: &SourceFile, line: usize, message: String) -> Finding {
    Finding::active("no-panic", file.rel.clone(), line, message)
}

/// Returns the index expressions of panic-prone indexing on this line.
///
/// An indexing site is a `[` whose previous non-space character can end an
/// expression (identifier, `)`, or `]`); `#[attr]`, `vec![...]`, array
/// types and slice patterns never match. A site is *panic-prone* when the
/// index is an integer literal, ends with `- 1`, or contains `.len()`.
pub(crate) fn panicky_indexing(code: &str) -> Vec<String> {
    let chars: Vec<char> = code.chars().collect();
    let mut hits = Vec::new();
    let mut prev_non_space: Option<char> = None;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '[' && prev_non_space.is_some_and(|p| p.is_ascii_alphanumeric() || p == '_' || p == ')' || p == ']') {
            // Find the matching close bracket on this line.
            let mut depth = 1;
            let mut j = i + 1;
            while j < chars.len() && depth > 0 {
                match chars[j] {
                    '[' => depth += 1,
                    ']' => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            if depth == 0 {
                let idx: String = chars[i + 1..j - 1].iter().collect();
                let trimmed = idx.trim();
                let literal = !trimmed.is_empty()
                    && trimmed.chars().all(|ch| ch.is_ascii_digit() || ch == '_');
                if literal || trimmed.ends_with("- 1") || trimmed.ends_with("-1") || trimmed.contains(".len()") {
                    hits.push(trimmed.to_string());
                }
                prev_non_space = Some(']');
                i = j;
                continue;
            }
        }
        if !c.is_whitespace() {
            prev_non_space = Some(c);
        }
        i += 1;
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_heuristic() {
        assert_eq!(panicky_indexing("let a = buf[0];"), vec!["0"]);
        assert_eq!(panicky_indexing("let a = buf[n - 1];"), vec!["n - 1"]);
        assert_eq!(panicky_indexing("let a = buf[v.len()];"), vec!["v.len()"]);
        assert!(panicky_indexing("let a = buf[start + k];").is_empty());
        assert!(panicky_indexing("#[inline]").is_empty());
        assert!(panicky_indexing("let v = vec![0u32; n];").is_empty());
        assert!(panicky_indexing("fn f(buf: &mut [f64]) {}").is_empty());
        assert!(panicky_indexing("let s = &buf[a..b];").is_empty());
    }
}
