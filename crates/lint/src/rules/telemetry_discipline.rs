//! `telemetry-discipline`: span/counter names are unique, registered, and
//! follow the `category.name` convention.
//!
//! The Chrome-trace exporter derives track grouping from the leading
//! `category.` segment, the metrics exporters key rows by name, and the CI
//! smoke test asserts specific categories exist — so a typo'd or
//! unregistered name silently drops data from dashboards. This rule
//! extracts every string literal passed to the telemetry entry points
//! (`span`, `span_cat`, `span_dyn`, `record_external_span`, `counter_add`,
//! `gauge_set`, `histogram_record_us`) — calls may span lines — and checks:
//!
//! 1. **convention** — `seg(.seg)+`, segments `[a-z0-9_]+`; `format!`
//!    placeholders (`{...}`) act as wildcard segments;
//! 2. **category** — the first segment is a known category, and for
//!    `span_cat`/`record_external_span` matches the category argument;
//! 3. **registered** — the (kind, name) pair appears in
//!    `crates/lint/telemetry.names` (wildcards allowed there too);
//! 4. **uniqueness** — a name maps to exactly one kind and category across
//!    the workspace (re-use from multiple sites of the same kind is fine).

use std::collections::BTreeMap;

use crate::config::{Config, CATEGORIES};
use crate::diag::Finding;
use crate::source::SourceFile;

use super::{ident_before, Rule};

/// Telemetry entry points: `(token, kind, has_category_arg)`.
const APIS: &[(&str, &str, bool)] = &[
    ("span_cat(", "span", true),
    ("span_dyn(", "span", true),
    ("record_external_span(", "span", true),
    ("span(", "span", false),
    ("counter_add(", "counter", false),
    ("gauge_set(", "gauge", false),
    ("histogram_record_us(", "histogram", false),
];

/// Rule: telemetry span/counter/gauge names are unique, follow the
/// `category.name` convention, and appear in the checked-in registry
/// (`crates/lint/telemetry.names`).
pub struct TelemetryDiscipline {
    registry: Registry,
    /// name → (kind, category, first site) for uniqueness checking.
    seen: BTreeMap<String, (String, String, String)>,
}

impl TelemetryDiscipline {
    /// Builds the rule with the registry file's text (`registry_rel` is
    /// used for diagnostics against the registry itself).
    pub fn new(registry_text: &str, registry_rel: &str) -> TelemetryDiscipline {
        TelemetryDiscipline {
            registry: Registry::parse(registry_text, registry_rel),
            seen: BTreeMap::new(),
        }
    }
}

impl Rule for TelemetryDiscipline {
    fn id(&self) -> &'static str {
        "telemetry-discipline"
    }

    fn check_file(&mut self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
        if cfg.is_rule_exempt(&file.rel) {
            return;
        }
        for call in extract_calls(file) {
            let name = normalize(&call.name);
            let mut fail = |msg: String| {
                out.push(Finding::active("telemetry-discipline", file.rel.clone(), call.line, msg));
            };
            if !well_formed(&name) {
                fail(format!(
                    "telemetry name \"{}\" violates the `category.name` convention \
                     (lowercase dot-separated segments, at least two)",
                    call.name
                ));
                continue;
            }
            let first = name.split('.').next().unwrap_or("");
            if !CATEGORIES.contains(&first) {
                fail(format!(
                    "telemetry name \"{name}\" starts with unknown category `{first}` \
                     (known: {})",
                    CATEGORIES.join(", ")
                ));
            }
            if let Some(cat) = &call.category {
                if first != *cat && CATEGORIES.contains(&cat.as_str()) {
                    fail(format!(
                        "span \"{name}\" is in category \"{cat}\" but its name prefix is \
                         `{first}` — name prefix and category must agree"
                    ));
                } else if !CATEGORIES.contains(&cat.as_str()) {
                    fail(format!(
                        "unknown span category \"{cat}\" (known: {})",
                        CATEGORIES.join(", ")
                    ));
                }
            }
            if !self.registry.contains(call.kind, &name) {
                fail(format!(
                    "unregistered {} name \"{name}\"; add `{} {name}` to \
                     crates/lint/telemetry.names (or fix the typo)",
                    call.kind, call.kind
                ));
            }
            let cat_for_unique = call.category.clone().unwrap_or_else(|| first.to_string());
            let site = format!("{}:{}", file.rel, call.line);
            match self.seen.get(&name) {
                None => {
                    self.seen
                        .insert(name.clone(), (call.kind.to_string(), cat_for_unique, site));
                }
                Some((kind, cat, first_site)) => {
                    if kind != call.kind {
                        fail(format!(
                            "telemetry name \"{name}\" used as both {kind} (at {first_site}) \
                             and {} — names must be unique per instrument kind",
                            call.kind
                        ));
                    } else if *cat != cat_for_unique {
                        fail(format!(
                            "telemetry name \"{name}\" registered in category \"{cat}\" \
                             (at {first_site}) but used here with \"{cat_for_unique}\""
                        ));
                    }
                }
            }
        }
    }

    fn finish(&mut self, _cfg: &Config, out: &mut Vec<Finding>) {
        out.append(&mut self.registry.parse_findings);
    }
}

/// One extracted telemetry call.
struct Call {
    line: usize,
    kind: &'static str,
    name: String,
    category: Option<String>,
}

/// Finds telemetry API calls and the string literals in their argument
/// lists, scanning past line breaks until the call's parentheses close.
fn extract_calls(file: &SourceFile) -> Vec<Call> {
    let mut calls = Vec::new();
    for (line_no, line) in file.numbered() {
        for (token, kind, has_cat) in APIS {
            let mut search = 0;
            while let Some(pos) = line.code[search..].find(token) {
                let at = search + pos;
                search = at + token.len();
                // Word-bound, and not a method call on some other receiver
                // (e.g. `timeline.span("a")`).
                if ident_before(&line.code, at)
                    || line.code[..at].trim_end().ends_with('.')
                {
                    continue;
                }
                // `span(` would otherwise also match inside `span_cat(` /
                // `span_dyn(` / `record_external_span(` at their tail; the
                // ident_before check already rejects those (prev char is
                // `_` or ident) — nothing more to do here.
                let literals = call_literals(file, line_no - 1, at + token.len());
                let Some(name) = literals.first() else {
                    continue; // fully dynamic name; nothing to check statically
                };
                let category = if *has_cat {
                    literals.iter().skip(1).find(|s| !s.contains('.')).cloned()
                } else {
                    None
                };
                calls.push(Call { line: line_no, kind, name: name.clone(), category });
            }
        }
    }
    calls
}

/// String literals inside the parenthesized argument list that starts at
/// `(line_idx, col)` (col is just past the opening paren).
fn call_literals(file: &SourceFile, line_idx: usize, col: usize) -> Vec<String> {
    let mut literals = Vec::new();
    let mut depth = 1i32;
    for (i, line) in file.lines.iter().enumerate().skip(line_idx) {
        let code = if i == line_idx { &line.code[col..] } else { &line.code[..] };
        // Count how many literals on this line belong to the call: the
        // scanner stores per-line literals in order; quotes before `col`
        // on the first line belong to earlier calls.
        let skip = if i == line_idx {
            line.code[..col].matches('"').count() / 2
        } else {
            0
        };
        let quotes_in_range = {
            let mut q = 0usize;
            let mut d = depth;
            for c in code.chars() {
                match c {
                    '(' => d += 1,
                    ')' => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    '"' => q += 1,
                    _ => {}
                }
            }
            q.div_ceil(2)
        };
        literals.extend(line.strings.iter().skip(skip).take(quotes_in_range).cloned());
        for c in code.chars() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return literals;
                    }
                }
                _ => {}
            }
        }
        if i > line_idx + 12 {
            break; // runaway (unbalanced parens); stop scanning
        }
    }
    literals
}

/// Replaces `format!` placeholders with `*` wildcard segments.
fn normalize(name: &str) -> String {
    let mut out = String::new();
    let mut depth = 0u32;
    for c in name.chars() {
        match c {
            '{' => {
                depth += 1;
                if depth == 1 {
                    out.push('*');
                }
            }
            '}' => depth = depth.saturating_sub(1),
            c if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// `seg(.seg)+` with lowercase/digit/underscore segments (or `*`).
fn well_formed(name: &str) -> bool {
    let segs: Vec<&str> = name.split('.').collect();
    segs.len() >= 2
        && segs.iter().all(|s| {
            *s == "*"
                || (!s.is_empty()
                    && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'))
        })
}

/// The checked-in name registry.
struct Registry {
    entries: Vec<(String, Vec<String>)>, // (kind, name segments)
    parse_findings: Vec<Finding>,
}

impl Registry {
    fn parse(text: &str, rel: &str) -> Registry {
        let mut entries: Vec<(String, Vec<String>)> = Vec::new();
        let mut parse_findings = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fail = |msg: String| {
                parse_findings.push(Finding::active("telemetry-discipline", rel, i + 1, msg));
            };
            let Some((kind, name)) = line.split_once(' ') else {
                fail(format!("malformed registry entry `{line}` (want `kind name`)"));
                continue;
            };
            if !["span", "counter", "gauge", "histogram"].contains(&kind) {
                fail(format!("unknown instrument kind `{kind}`"));
                continue;
            }
            let name = name.trim();
            if !well_formed(name) {
                fail(format!("registry name \"{name}\" violates the naming convention"));
                continue;
            }
            let entry = (kind.to_string(), name.split('.').map(str::to_string).collect());
            if entries.contains(&entry) {
                fail(format!("duplicate registry entry `{kind} {name}`"));
                continue;
            }
            entries.push(entry);
        }
        Registry { entries, parse_findings }
    }

    fn contains(&self, kind: &str, name: &str) -> bool {
        let segs: Vec<&str> = name.split('.').collect();
        self.entries.iter().any(|(k, pat)| {
            k == kind
                && pat.len() == segs.len()
                && pat.iter().zip(&segs).all(|(p, s)| p == "*" || *s == "*" || p == s)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_and_convention() {
        assert_eq!(normalize("gpusim.kernel.{name}.launches"), "gpusim.kernel.*.launches");
        assert!(well_formed("fft.par.map"));
        assert!(well_formed("gpusim.kernel.*.launches"));
        assert!(!well_formed("fft"));
        assert!(!well_formed("Fft.par"));
        assert!(!well_formed("fft..map"));
    }

    #[test]
    fn registry_wildcards() {
        let r = Registry::parse("counter gpusim.kernel.*.launches\nspan fft.par.map\n", "t");
        assert!(r.parse_findings.is_empty());
        assert!(r.contains("counter", "gpusim.kernel.*.launches"));
        assert!(r.contains("counter", "gpusim.kernel.gsw_iterate.launches"));
        assert!(r.contains("span", "fft.par.map"));
        assert!(!r.contains("counter", "fft.par.map"));
        assert!(!r.contains("span", "fft.par.other"));
    }

    #[test]
    fn multi_line_calls_are_extracted() {
        let src = "holoar_telemetry::histogram_record_us(\n\
                       \"core.executor.sim_latency_us\",\n\
                       stats.latency * 1e6,\n\
                   );\n";
        let f = SourceFile::scan("crates/core/src/executor.rs", src);
        let calls = extract_calls(&f);
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].name, "core.executor.sim_latency_us");
        assert_eq!(calls[0].kind, "histogram");
    }

    #[test]
    fn span_cat_category_is_last_dotless_literal() {
        let f = SourceFile::scan(
            "crates/fft/src/fft2d.rs",
            "let _s = holoar_telemetry::span_cat(\"fft.fft2d.forward\", \"fft\");\n",
        );
        let calls = extract_calls(&f);
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].category.as_deref(), Some("fft"));
    }

    #[test]
    fn method_calls_on_other_receivers_are_ignored() {
        let f = SourceFile::scan(
            "crates/gpusim/src/timeline.rs",
            "let s = timeline.span(\"a\");\n",
        );
        assert!(extract_calls(&f).is_empty());
    }
}
