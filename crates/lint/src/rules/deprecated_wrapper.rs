//! `deprecated-wrapper`: internal code goes through `ExecutionContext`,
//! never the legacy `*_with(Parallelism)` twins.
//!
//! The ExecutionContext migration kept the old `*_with` entry points alive
//! as `#[deprecated]` wrappers so downstream callers get a compiler nudge
//! instead of a break. Inside the workspace there is no such excuse: a new
//! internal call to a wrapper silently re-couples the caller to the pool
//! type and dodges the shared plan/scratch reuse the context carries. Test
//! code is exempt — the wrappers' own regression tests must keep calling
//! them to prove the twins stay bit-identical.

use crate::config::Config;
use crate::diag::Finding;
use crate::source::SourceFile;

use super::{ident_before, Rule};

/// Rule: calls to deprecated compatibility wrappers must migrate to the
/// replacement API named in the wrapper's deprecation note.
pub struct DeprecatedWrapper;

/// The `#[deprecated]` wrappers and the context-first replacement each
/// finding should point at.
const WRAPPERS: &[(&str, &str)] = &[
    ("run_with", "gsw::run"),
    ("run_pipelined_with", "run_pipelined"),
    ("object_psnr_with", "object_psnr"),
    ("object_psnr_coherent_with", "object_psnr_coherent"),
    ("object_psnr_gsw_with", "object_psnr_gsw"),
    ("video_quality_with", "video_quality"),
    ("depthmap_hologram_with", "depthmap_hologram"),
    ("hologram_from_planes_with", "hologram_from_planes"),
    ("render_view_with", "render_view"),
];

impl Rule for DeprecatedWrapper {
    fn id(&self) -> &'static str {
        "deprecated-wrapper"
    }

    fn check_file(&mut self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
        if cfg.is_rule_exempt(&file.rel) {
            return;
        }
        for (line_no, line) in file.numbered() {
            if line.in_test {
                continue;
            }
            for (name, replacement) in WRAPPERS {
                let mut search = 0;
                while let Some(pos) = line.code[search..].find(name) {
                    let at = search + pos;
                    search = at + name.len();
                    // Word-bound on both sides, and an actual call — the
                    // next non-space char is `(`.
                    if ident_before(&line.code, at) {
                        continue;
                    }
                    let rest = line.code[at + name.len()..].trim_start();
                    if !rest.starts_with('(') {
                        continue;
                    }
                    // The wrapper's own definition (`fn name(`) is the one
                    // permitted non-test occurrence.
                    if line.code[..at].trim_end().ends_with("fn") {
                        continue;
                    }
                    out.push(Finding::active(
                        "deprecated-wrapper",
                        file.rel.clone(),
                        line_no,
                        format!(
                            "internal call to deprecated wrapper `{name}`; construct an \
                             `ExecutionContext` and call `{replacement}` instead"
                        ),
                    ));
                }
            }
        }
    }
}
