//! `float-determinism`: transcendental math lives in plan-time modules.
//!
//! The f32/f64 bit-identity story (PR 6) depends on every `sin`/`cos`/
//! `exp`/`powf` evaluation happening at plan time — twiddle tables,
//! transfer-function caches, lens construction — where results are
//! computed once and reused bit-identically. A transcendental call on a
//! per-frame path can differ across libm versions and optimization
//! levels, silently breaking replay equality. Outside the modules listed
//! in [`crate::config::PLAN_TIME_PREFIXES`], any transcendental call
//! site flags.
//!
//! Patterns are exact no-argument forms (`.exp()`, not `.exp(`) so
//! `.expect(...)` can never collide; `.powf(`/`.atan2(` take arguments
//! and keep the open paren.

use crate::config::Config;
use crate::diag::Finding;
use crate::model::WorkspaceModel;
use crate::source::SourceFile;

use super::Rule;

#[derive(Default)]
/// Rule: float comparisons in simulator code go through `total_cmp` (or
/// an epsilon helper), never bare `partial_cmp`/`sort_by` on raw floats.
pub struct FloatDeterminism;

impl Rule for FloatDeterminism {
    fn id(&self) -> &'static str {
        "float-determinism"
    }

    fn check_file(&mut self, _file: &SourceFile, _cfg: &Config, _out: &mut Vec<Finding>) {}

    fn check_model(&mut self, model: &WorkspaceModel, cfg: &Config, out: &mut Vec<Finding>) {
        for (id, facts) in &model.fns {
            if facts.in_test || cfg.is_plan_time(&id.path) || cfg.is_rule_exempt(&id.path) {
                continue;
            }
            for site in &facts.transcendental_sites {
                out.push(Finding::active(
                    "float-determinism",
                    id.path.clone(),
                    site.line,
                    format!(
                        "transcendental `{}` in `{}` outside the plan-time modules; move it \
                         into a plan-time table (config::PLAN_TIME_PREFIXES) or waive with \
                         the reason it cannot be precomputed",
                        site.what, id.name
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::lint_sources;

    fn findings_for(rel: &str, src: &str) -> Vec<Finding> {
        let sources = vec![SourceFile::scan(rel, src)];
        let cfg = Config::new(std::path::PathBuf::from("/nonexistent"));
        lint_sources(&sources, &cfg, "", "")
            .findings
            .into_iter()
            .filter(|f| f.rule == "float-determinism")
            .collect()
    }

    #[test]
    fn transcendental_outside_plan_time_flags() {
        let found = findings_for(
            "crates/a/src/frame.rs",
            "fn shade(x: f64) -> f64 {\n\
             \x20   let s = x.sin();\n\
             \x20   s * x.powf(2.2)\n\
             }\n",
        );
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found[0].message.contains(".sin"), "{found:?}");
    }

    #[test]
    fn plan_time_module_is_allowed() {
        let found = findings_for(
            "crates/fft/src/plan.rs",
            "fn twiddles(n: usize) -> Vec<f64> {\n\
             \x20   (0..n).map(|k| (k as f64).sin()).collect()\n\
             }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn expect_does_not_collide_with_exp() {
        let found = findings_for(
            "crates/a/src/frame.rs",
            "fn f(v: Option<u32>) -> u32 { v.expect(\"present\") }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }
}
