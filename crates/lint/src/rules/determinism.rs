//! `determinism`: simulator and kernel code must be reproducible.
//!
//! The golden trace fixtures, calibration anchors, and FFT/GSW bit-identity
//! property tests all assume a run is a pure function of its seed. Two
//! things silently break that:
//!
//! - wall-clock reads (`Instant::now`, `SystemTime`) outside the telemetry
//!   crate's single monotonic clock (`holoar_telemetry::now_ns`), which
//!   fork simulated timing across clocks;
//! - iteration over `RandomState`-hashed containers (`HashMap`/`HashSet`),
//!   whose order changes per process and would reorder any derived output.
//!
//! Keyed *lookup* in hash maps is fine (the plan and transfer caches rely
//! on it); only iteration order is nondeterministic. The rule tracks
//! identifiers declared as hash containers in a file and flags iteration
//! over them, plus direct `RandomState`/`DefaultHasher` use.
//!
//! Applies to every line (tests included — fixtures are golden) of every
//! crate except the exempt prefixes in
//! [`crate::config::RULE_EXEMPT_PREFIXES`].

use crate::config::Config;
use crate::diag::Finding;
use crate::source::SourceFile;

use super::Rule;

/// Rule: simulator and kernel code reads one clock and iterates no
/// hash-ordered containers (bit-reproducibility discipline).
pub struct Determinism;

const CLOCKS: &[(&str, &str)] = &[
    ("Instant::now", "wall-clock read `Instant::now` outside the telemetry clock; use `holoar_telemetry::now_ns()` so simulated timing stays single-clock"),
    ("SystemTime::", "`SystemTime` is nondeterministic; use `holoar_telemetry::now_ns()` or pass timestamps in"),
    ("UNIX_EPOCH", "`UNIX_EPOCH` arithmetic is wall-clock dependent; derive times from the telemetry clock"),
];

const HASHERS: &[(&str, &str)] = &[
    ("RandomState", "`RandomState` seeds per process; use a fixed-order container or a seeded hasher"),
    ("DefaultHasher", "`DefaultHasher` output is unspecified across releases; hash with an explicit, pinned algorithm"),
];

const ITER_METHODS: &[&str] = &[".iter()", ".iter_mut()", ".keys()", ".values()", ".values_mut()", ".into_iter()", ".drain("];

impl Rule for Determinism {
    fn id(&self) -> &'static str {
        "determinism"
    }

    fn check_file(&mut self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
        if cfg.is_rule_exempt(&file.rel) {
            return;
        }
        let maps = hash_container_names(file);
        for (line_no, line) in file.numbered() {
            let code = line.code.as_str();
            for (pat, why) in CLOCKS.iter().chain(HASHERS) {
                if code.contains(pat) {
                    out.push(finding(file, line_no, (*why).to_string()));
                }
            }
            for name in &maps {
                if iterates(code, name) {
                    out.push(finding(
                        file,
                        line_no,
                        format!(
                            "iteration over hash container `{name}` has nondeterministic order; \
                             collect-and-sort, or use a BTreeMap/Vec"
                        ),
                    ));
                }
            }
        }
    }
}

fn finding(file: &SourceFile, line: usize, message: String) -> Finding {
    Finding::active("determinism", file.rel.clone(), line, message)
}

/// Identifiers declared in this file with a `HashMap`/`HashSet` type:
/// `let [mut] NAME = HashMap::new()`, `NAME: HashMap<...>` (bindings,
/// fields, statics — the `Mutex<HashMap<..>>` wrapping the plan cache
/// still names the field).
fn hash_container_names(file: &SourceFile) -> Vec<String> {
    let mut names = Vec::new();
    for line in &file.lines {
        let code = line.code.as_str();
        let Some(pos) = ["HashMap<", "HashMap::new", "HashSet<", "HashSet::new"]
            .iter()
            .filter_map(|p| code.find(p))
            .min()
        else {
            continue;
        };
        let before = &code[..pos];
        let name = if let Some(let_pos) = before.rfind("let ") {
            // `let mut cache = HashMap::new()`
            before[let_pos + 4..]
                .trim_start()
                .trim_start_matches("mut ")
                .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .next()
                .unwrap_or("")
                .to_string()
        } else if let Some(colon) = before.rfind(':') {
            // `transfer: Mutex<HashMap<...>>` — identifier before the colon.
            before[..colon]
                .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .rfind(|s| !s.is_empty())
                .unwrap_or("")
                .to_string()
        } else {
            String::new()
        };
        if !name.is_empty() && !names.contains(&name) {
            names.push(name);
        }
    }
    names
}

/// Whether `code` iterates the container named `name`.
fn iterates(code: &str, name: &str) -> bool {
    for m in ITER_METHODS {
        let pat = format!("{name}{m}");
        if let Some(pos) = code.find(&pat) {
            if !super::ident_before(code, pos) {
                return true;
            }
        }
    }
    // `for x in &name` / `for x in name` / `for x in &mut name`
    if let Some(pos) = code.find(" in ") {
        let tail = code[pos + 4..].trim_start().trim_start_matches('&').trim_start_matches("mut ");
        let head: String = tail
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '.')
            .collect();
        if head == name || head.ends_with(&format!(".{name}")) {
            return code[..pos].contains("for ") || code[..pos].trim_end().ends_with("for");
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> SourceFile {
        SourceFile::scan("crates/gpusim/src/sm.rs", src)
    }

    #[test]
    fn declared_names_are_tracked() {
        let f = scan(
            "let mut cache = HashMap::new();\n\
             transfer: Mutex<HashMap<K, V>>,\n\
             let plain = Vec::new();\n",
        );
        assert_eq!(hash_container_names(&f), vec!["cache".to_string(), "transfer".to_string()]);
    }

    #[test]
    fn lookup_is_fine_iteration_is_not() {
        assert!(!iterates("cache.get(&k)", "cache"));
        assert!(!iterates("cache.entry(k)", "cache"));
        assert!(iterates("for (k, v) in &cache {", "cache"));
        assert!(iterates("cache.values()", "cache"));
        assert!(iterates("self.cache.iter()", "cache"));
        assert!(!iterates("other_cache.iter()", "cache"));
    }
}
