//! `hot-loop-alloc`: designated per-frame loops run on pre-sized buffers.
//!
//! The functions in [`crate::config::FRAME_LOOP_FNS`] (or marked
//! `// holoar-lint: frame-loop`) contain the loops that run once per
//! frame or per GSW iteration; an allocation per trip turns the frame
//! budget into allocator noise. Inside any loop body of those functions
//! this rule forbids:
//!
//! - fresh containers and strings: `Vec::new`, `vec![`, `Box::new`,
//!   `String::new`/`from`, `format!`, `.to_string()`, `.to_owned()`,
//!   `.to_vec()`, `.collect(`, `.clone()`;
//! - `.push(...)` onto a buffer with no pre-sizing evidence in the file
//!   (`with_capacity`, `.reserve(`, or `.resize(` naming the same
//!   identifier) — a pre-sized `Vec` may push, an organically growing
//!   one may not.
//!
//! Only the function's own body is checked; allocation inside callees is
//! visible in the `--graph-out` effect summaries but not flagged here
//! (pushing `allocates` transitively would indict every helper that
//! returns a `Vec` — the frame loop's job is to *hold onto* those).

use crate::config::Config;
use crate::diag::Finding;
use crate::model::WorkspaceModel;
use crate::source::SourceFile;

use super::Rule;

#[derive(Default)]
/// Rule: designated frame-loop functions allocate nothing per iteration
/// (no `Vec::new`/`to_vec`/`clone`/`format!` inside the loop body).
pub struct HotLoopAlloc;

impl Rule for HotLoopAlloc {
    fn id(&self) -> &'static str {
        "hot-loop-alloc"
    }

    fn check_file(&mut self, _file: &SourceFile, _cfg: &Config, _out: &mut Vec<Finding>) {}

    fn check_model(&mut self, model: &WorkspaceModel, cfg: &Config, out: &mut Vec<Finding>) {
        let empty: Vec<String> = Vec::new();
        for id in model.frame_loop_fns() {
            if cfg.is_rule_exempt(&id.path) {
                continue;
            }
            let facts = model.facts(&id);
            for site in facts.alloc_sites.iter().filter(|s| s.in_loop) {
                out.push(Finding::active(
                    "hot-loop-alloc",
                    id.path.clone(),
                    site.line,
                    format!(
                        "`{}` allocates inside the per-frame loop of `{}`; hoist the buffer \
                         out of the loop and pre-size it",
                        site.what, id.name
                    ),
                ));
            }
            let presized = model.presized.get(&id.path).unwrap_or(&empty);
            for push in facts.pushes.iter().filter(|p| p.in_loop) {
                if presized.contains(&push.receiver) {
                    continue;
                }
                out.push(Finding::active(
                    "hot-loop-alloc",
                    id.path.clone(),
                    push.line,
                    format!(
                        "`{}.push(...)` in the per-frame loop of `{}` with no \
                         `with_capacity`/`reserve` evidence for `{}` in this file; growing \
                         a buffer per frame reallocates mid-frame",
                        push.receiver, id.name, push.receiver
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::lint_sources;

    fn findings_for(src: &str) -> Vec<Finding> {
        let sources = vec![SourceFile::scan("crates/a/src/frame.rs", src)];
        let cfg = Config::new(std::path::PathBuf::from("/nonexistent"));
        lint_sources(&sources, &cfg, "", "")
            .findings
            .into_iter()
            .filter(|f| f.rule == "hot-loop-alloc")
            .collect()
    }

    #[test]
    fn allocations_in_frame_loop_flag() {
        let found = findings_for(
            "// holoar-lint: frame-loop\n\
             fn per_frame(frames: &[u32]) {\n\
             \x20   for f in frames {\n\
             \x20       let mut scratch = Vec::new();\n\
             \x20       let label = format!(\"frame\");\n\
             \x20       scratch.push(f);\n\
             \x20   }\n\
             }\n",
        );
        assert!(found.iter().any(|f| f.line == 4 && f.message.contains("Vec::new")), "{found:?}");
        assert!(found.iter().any(|f| f.line == 5 && f.message.contains("format!")), "{found:?}");
        assert!(found.iter().any(|f| f.line == 6 && f.message.contains("scratch.push")), "{found:?}");
    }

    #[test]
    fn presized_push_and_outside_loop_are_clean() {
        let found = findings_for(
            "// holoar-lint: frame-loop\n\
             fn per_frame(frames: &[u32]) {\n\
             \x20   let mut out = Vec::with_capacity(frames.len());\n\
             \x20   for f in frames {\n\
             \x20       out.push(*f);\n\
             \x20   }\n\
             }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn undesignated_fn_is_not_checked() {
        let found = findings_for(
            "fn cold(frames: &[u32]) {\n\
             \x20   for f in frames {\n\
             \x20       let mut scratch = Vec::new();\n\
             \x20       scratch.push(f);\n\
             \x20   }\n\
             }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }
}
