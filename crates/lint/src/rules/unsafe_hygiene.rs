//! `unsafe-hygiene`: every `unsafe` is justified, and unsafe-free crates
//! say so.
//!
//! An `unsafe` block or function must carry a `// SAFETY:` comment on the
//! same line or within the three lines above it. Conversely, a crate whose
//! sources contain no `unsafe` at all must pin that property with
//! `#![forbid(unsafe_code)]` in its `lib.rs`, so the first future `unsafe`
//! is a deliberate, reviewed decision rather than a drive-by.

use std::collections::BTreeMap;

use crate::config::Config;
use crate::diag::Finding;
use crate::source::SourceFile;

use super::{find_token, Rule};

#[derive(Default)]
/// Rule: every `unsafe` block is justified with a `// SAFETY:` comment,
/// and crates declared clean `#![forbid(unsafe_code)]` stay that way.
pub struct UnsafeHygiene {
    /// crate key (e.g. `crates/fft`) → (lib.rs rel path, has forbid attr,
    /// crate uses unsafe anywhere).
    crates: BTreeMap<String, CrateState>,
}

#[derive(Default)]
struct CrateState {
    lib_rs: Option<String>,
    has_forbid: bool,
    uses_unsafe: bool,
}

impl Rule for UnsafeHygiene {
    fn id(&self) -> &'static str {
        "unsafe-hygiene"
    }

    fn check_file(&mut self, file: &SourceFile, _cfg: &Config, out: &mut Vec<Finding>) {
        let Some(key) = crate_key(&file.rel) else {
            return;
        };
        let state = self.crates.entry(key).or_default();
        if file.rel.ends_with("src/lib.rs") {
            state.lib_rs = Some(file.rel.clone());
            state.has_forbid =
                file.lines.iter().any(|l| l.code.contains("#![forbid(unsafe_code)]"));
        }
        for (line_no, line) in file.numbered() {
            if find_token(&line.code, "unsafe").is_empty() {
                continue;
            }
            state.uses_unsafe = true;
            // `#![forbid(unsafe_code)]` and friends mention unsafe without
            // being unsafe.
            if line.code.contains("unsafe_code") {
                continue;
            }
            // Current line plus the three above it (indices are 0-based).
            let justified = (line_no.saturating_sub(4)..line_no)
                .filter_map(|i| file.lines.get(i))
                .any(|l| l.comment.contains("SAFETY:"));
            if !justified {
                out.push(Finding::active(
                    "unsafe-hygiene",
                    file.rel.clone(),
                    line_no,
                    "`unsafe` without a `// SAFETY:` comment on or directly above the line",
                ));
            }
        }
    }

    fn finish(&mut self, _cfg: &Config, out: &mut Vec<Finding>) {
        for (key, state) in &self.crates {
            if state.uses_unsafe || state.has_forbid {
                continue;
            }
            let Some(lib) = &state.lib_rs else {
                continue;
            };
            out.push(Finding::active(
                "unsafe-hygiene",
                lib.clone(),
                1,
                format!(
                    "crate `{key}` uses no unsafe code but does not pin it; add \
                     `#![forbid(unsafe_code)]` to {lib}"
                ),
            ));
        }
    }
}

/// Maps a workspace-relative file to its crate key: `crates/<name>`,
/// `vendor/<name>`, or the root package (`.`).
fn crate_key(rel: &str) -> Option<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.first() {
        Some(&"crates") | Some(&"vendor") if parts.len() > 2 => {
            Some(format!("{}/{}", parts[0], parts[1]))
        }
        Some(&"src") | Some(&"tests") | Some(&"examples") => Some(".".to_string()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_keys() {
        assert_eq!(crate_key("crates/fft/src/plan.rs").as_deref(), Some("crates/fft"));
        assert_eq!(crate_key("vendor/proptest/src/lib.rs").as_deref(), Some("vendor/proptest"));
        assert_eq!(crate_key("src/lib.rs").as_deref(), Some("."));
        assert_eq!(crate_key("build.rs"), None);
    }
}
