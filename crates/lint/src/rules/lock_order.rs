//! `lock-order`: the cross-crate lock-ordering graph must be acyclic, and
//! no lock may be held across `Parallelism` fan-out, a channel send, or a
//! re-acquisition of itself.
//!
//! The workspace model records every guard-creation site, which locks are
//! live at each acquisition, and which calls happen under a guard
//! (including what those callees *transitively* acquire). From that this
//! rule checks:
//!
//! 1. **Cycles**: if lock B is ever acquired while A is held *and* A is
//!    ever acquired while B is held (possibly through longer chains, and
//!    possibly in different crates), two threads can deadlock. Each cycle
//!    is reported once, anchored at one witnessing edge.
//! 2. **Re-acquisition**: acquiring a lock already held by the same
//!    thread self-deadlocks on `std::sync::Mutex`; reported directly and
//!    through calls whose closure re-acquires.
//! 3. **Fan-out / sends under a guard**: holding a lock across
//!    `Parallelism::for_each_chunk` or a channel `.send(` serializes the
//!    workers (or deadlocks a bounded channel) — reported directly and
//!    through calls whose transitive closure fans out or sends.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::config::Config;
use crate::diag::Finding;
use crate::model::WorkspaceModel;
use crate::source::SourceFile;

use super::Rule;

#[derive(Default)]
/// Rule: nested lock acquisitions follow the single global lock order,
/// so no interleaving can deadlock.
pub struct LockOrder;

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn check_file(&mut self, _file: &SourceFile, _cfg: &Config, _out: &mut Vec<Finding>) {}

    fn check_model(&mut self, model: &WorkspaceModel, cfg: &Config, out: &mut Vec<Finding>) {
        cycles(model, out);

        for (id, facts) in &model.fns {
            if facts.in_test || cfg.is_rule_exempt(&id.path) {
                continue;
            }
            // Direct re-acquisition.
            for site in &facts.locks {
                if site.held.contains(&site.lock) {
                    out.push(Finding::active(
                        "lock-order",
                        id.path.clone(),
                        site.line,
                        format!(
                            "lock `{}` acquired while already held by `{}`; \
                             `std::sync::Mutex` is not reentrant — this self-deadlocks",
                            site.lock, id.name
                        ),
                    ));
                }
            }
            // Direct fan-out / sends under a guard.
            for (line, held) in &facts.fanout_under_lock {
                out.push(Finding::active(
                    "lock-order",
                    id.path.clone(),
                    *line,
                    format!(
                        "`Parallelism` fan-out in `{}` while holding {}; release the guard \
                         before fanning out or the workers serialize on it",
                        id.name,
                        lock_list(held)
                    ),
                ));
            }
            for (line, held) in &facts.sends_under_lock {
                out.push(Finding::active(
                    "lock-order",
                    id.path.clone(),
                    *line,
                    format!(
                        "channel send in `{}` while holding {}; a full bounded channel \
                         would block with the lock held",
                        id.name,
                        lock_list(held)
                    ),
                ));
            }
            // Interprocedural: a call made under a guard whose callee
            // transitively re-acquires a held lock, fans out, or sends.
            for call in model.callees(id) {
                if call.held_locks.is_empty() || cfg.is_rule_exempt(&call.callee.path) {
                    continue;
                }
                let chain = vec![id.display(), call.callee.display()];
                if let Some(acquired) = model.locks_acquired.get(&call.callee) {
                    for held in &call.held_locks {
                        if acquired.contains(held) {
                            out.push(
                                Finding::active(
                                    "lock-order",
                                    id.path.clone(),
                                    call.line,
                                    format!(
                                        "`{}` calls `{}` while holding `{}`, and the callee \
                                         transitively re-acquires it; self-deadlock",
                                        id.name, call.callee.name, held
                                    ),
                                )
                                .with_chain(chain.clone()),
                            );
                        }
                    }
                }
                if let Some(eff) = model.closure.get(&call.callee) {
                    if eff.fans_out {
                        out.push(
                            Finding::active(
                                "lock-order",
                                id.path.clone(),
                                call.line,
                                format!(
                                    "`{}` calls `{}` while holding {}, and the callee \
                                     transitively fans out on `Parallelism`",
                                    id.name,
                                    call.callee.name,
                                    lock_list(&call.held_locks)
                                ),
                            )
                            .with_chain(chain.clone()),
                        );
                    }
                }
            }
        }
    }
}

fn lock_list(locks: &[String]) -> String {
    let quoted: Vec<String> = locks.iter().map(|l| format!("`{l}`")).collect();
    format!("lock{} {}", if locks.len() == 1 { "" } else { "s" }, quoted.join(", "))
}

/// Finds and reports each cycle in the lock-ordering graph once.
fn cycles(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to) in model.lock_edges.keys() {
        adj.entry(from.as_str()).or_default().insert(to.as_str());
    }
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for ((a, b), site) in &model.lock_edges {
        // Edge a→b closes a cycle iff b reaches a.
        let Some(path_back) = bfs_path(&adj, b, a) else { continue };
        // Ring: a → b → ... → a; canonical form is the sorted node set.
        let mut ring: Vec<String> = vec![a.clone()];
        ring.extend(path_back.iter().map(|s| s.to_string()));
        let mut key = ring.clone();
        key.sort();
        key.dedup();
        if !seen_cycles.insert(key) {
            continue;
        }
        out.push(
            Finding::active(
                "lock-order",
                site.path.clone(),
                site.line,
                format!(
                    "lock-order cycle: {}; two threads taking these locks in opposite \
                     orders deadlock (witness: `{}` acquired here while `{}` held{})",
                    ring.join(" -> "),
                    b,
                    a,
                    if site.via.is_empty() {
                        String::new()
                    } else {
                        format!(", via call to `{}`", site.via)
                    },
                ),
            )
            .with_chain(ring),
        );
    }
}

/// Shortest path `from → ... → to` in the lock graph (node list including
/// both endpoints), or `None`.
fn bfs_path<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut parents: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue: VecDeque<&str> = VecDeque::new();
    queue.push_back(from);
    while let Some(cur) = queue.pop_front() {
        if cur == to {
            let mut path = vec![cur];
            let mut node = cur;
            while let Some(&p) = parents.get(node) {
                path.push(p);
                node = p;
            }
            path.reverse();
            return Some(path);
        }
        for next in adj.get(cur).into_iter().flatten() {
            if *next != from && !parents.contains_key(next) {
                parents.insert(next, cur);
                queue.push_back(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::lint_sources;

    fn findings_for(src: &str) -> Vec<Finding> {
        let sources = vec![SourceFile::scan("crates/a/src/locks.rs", src)];
        let cfg = Config::new(std::path::PathBuf::from("/nonexistent"));
        lint_sources(&sources, &cfg, "", "")
            .findings
            .into_iter()
            .filter(|f| f.rule == "lock-order")
            .collect()
    }

    #[test]
    fn opposite_order_acquisition_is_a_cycle() {
        let found = findings_for(
            "fn one(&self) {\n\
             \x20   let a = self.alpha.lock();\n\
             \x20   let b = self.beta.lock();\n\
             }\n\
             fn two(&self) {\n\
             \x20   let b = self.beta.lock();\n\
             \x20   let a = self.alpha.lock();\n\
             }\n",
        );
        let cycle = found.iter().find(|f| f.message.contains("cycle")).expect("cycle finding");
        assert!(cycle.message.contains("alpha"), "{}", cycle.message);
        assert!(cycle.message.contains("beta"), "{}", cycle.message);
        // One cycle, reported once.
        assert_eq!(found.iter().filter(|f| f.message.contains("cycle")).count(), 1);
    }

    #[test]
    fn consistent_order_is_clean() {
        let found = findings_for(
            "fn one(&self) {\n\
             \x20   let a = self.alpha.lock();\n\
             \x20   let b = self.beta.lock();\n\
             }\n\
             fn two(&self) {\n\
             \x20   let a = self.alpha.lock();\n\
             \x20   let b = self.beta.lock();\n\
             }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn fanout_under_guard_direct_and_transitive() {
        let found = findings_for(
            "fn direct(&self, data: &mut [u32]) {\n\
             \x20   let g = self.state.lock();\n\
             \x20   self.pool.for_each_chunk(data, 8, work);\n\
             }\n\
             fn indirect(&self, data: &mut [u32]) {\n\
             \x20   let g = self.state.lock();\n\
             \x20   fan(data);\n\
             }\n\
             fn fan(data: &mut [u32]) { pool().for_each_chunk(data, 8, work); }\n",
        );
        assert!(found.iter().any(|f| f.line == 3 && f.message.contains("fan-out")), "{found:?}");
        assert!(
            found.iter().any(|f| f.line == 7 && f.message.contains("transitively fans out")),
            "{found:?}"
        );
    }

    #[test]
    fn transitive_reacquisition() {
        let found = findings_for(
            "fn outer(&self) {\n\
             \x20   let g = self.state.lock();\n\
             \x20   inner_helper(self);\n\
             }\n\
             fn inner_helper(&self) {\n\
             \x20   let g = self.state.lock();\n\
             }\n",
        );
        assert!(
            found.iter().any(|f| f.message.contains("re-acquires")),
            "{found:?}"
        );
    }
}
