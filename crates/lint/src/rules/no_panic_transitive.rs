//! `no-panic-transitive`: the whole call closure of designated hot-path
//! entry points must be panic-free.
//!
//! The per-line `no-panic` rule covers the files in
//! [`crate::config::HOT_PATHS`]; this rule covers everything those files
//! *call*. Every function reachable (through the heuristic call graph)
//! from an entry in [`crate::config::HOT_ENTRY_POINTS`] — or from a fn
//! marked `// holoar-lint: hot-entry` — is checked for intrinsic panic
//! sites, and each finding carries the full call chain from the entry to
//! the offending function so the reader can see *why* a helper three
//! crates away is on the hot path.
//!
//! Sites inside `HOT_PATHS` files are skipped here (the direct rule owns
//! them); rule-exempt paths (telemetry instrumentation, vendored shims)
//! stop traversal entirely.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::diag::Finding;
use crate::model::WorkspaceModel;
use crate::source::SourceFile;

use super::Rule;

#[derive(Default)]
/// Rule: hot entry points stay panic-free *transitively* — the call
/// graph from each entry is walked and every reachable function checked.
pub struct NoPanicTransitive;

impl Rule for NoPanicTransitive {
    fn id(&self) -> &'static str {
        "no-panic-transitive"
    }

    fn check_file(&mut self, _file: &SourceFile, _cfg: &Config, _out: &mut Vec<Finding>) {}

    fn check_model(&mut self, model: &WorkspaceModel, cfg: &Config, out: &mut Vec<Finding>) {
        // One finding per (file, line, pattern); the lexicographically
        // first entry point that reaches a site claims it.
        let mut reported: BTreeSet<(String, usize, String)> = BTreeSet::new();
        for entry in model.entries() {
            let parents = model.reach(&entry, cfg);
            for id in parents.keys() {
                if cfg.is_hot_path(&id.path) || cfg.is_rule_exempt(&id.path) {
                    continue;
                }
                let facts = model.facts(id);
                for site in &facts.panic_sites {
                    if !reported.insert((id.path.clone(), site.line, site.what.clone())) {
                        continue;
                    }
                    let chain = WorkspaceModel::chain(&parents, id);
                    out.push(
                        Finding::active(
                            "no-panic-transitive",
                            id.path.clone(),
                            site.line,
                            format!(
                                "{} in `{}`, reachable from hot entry `{}` ({} call{}); \
                                 the hot path's transitive closure must be panic-free",
                                site.what,
                                id.name,
                                entry.display(),
                                chain.len() - 1,
                                if chain.len() == 2 { "" } else { "s" },
                            ),
                        )
                        .with_chain(chain),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::lint_sources;

    const REGISTRY: &str = "";

    #[test]
    fn chain_crosses_crates_and_prints_in_diagnostic() {
        let sources = vec![
            SourceFile::scan(
                "crates/a/src/hot.rs",
                "// holoar-lint: hot-entry\n\
                 pub fn entry() { holoar_b::helper(3); }\n",
            ),
            SourceFile::scan(
                "crates/b/src/helpers.rs",
                "pub fn helper(x: u32) { inner(Some(x)); }\n\
                 fn inner(x: Option<u32>) { let _ = x.unwrap(); }\n",
            ),
        ];
        let cfg = Config::new(std::path::PathBuf::from("/nonexistent"));
        let report = lint_sources(&sources, &cfg, REGISTRY, "");
        let f = report
            .findings
            .iter()
            .find(|f| f.rule == "no-panic-transitive")
            .expect("transitive finding");
        assert_eq!(f.path, "crates/b/src/helpers.rs");
        assert_eq!(f.line, 2);
        assert_eq!(
            f.chain,
            vec![
                "crates/a/src/hot.rs::entry",
                "crates/b/src/helpers.rs::helper",
                "crates/b/src/helpers.rs::inner",
            ]
        );
        let human = report.render_human(false);
        assert!(
            human.contains(
                "call chain: crates/a/src/hot.rs::entry -> crates/b/src/helpers.rs::helper \
                 -> crates/b/src/helpers.rs::inner"
            ),
            "{human}"
        );
    }

    #[test]
    fn waiver_on_the_panic_site_suppresses() {
        let sources = vec![SourceFile::scan(
            "crates/a/src/hot.rs",
            "// holoar-lint: hot-entry\n\
             pub fn entry() { helper(None); }\n\
             fn helper(v: Option<u32>) {\n\
             \x20   // holoar-lint: allow(no-panic-transitive, reason = \"init-time only\")\n\
             \x20   let _ = v.unwrap();\n\
             }\n",
        )];
        let cfg = Config::new(std::path::PathBuf::from("/nonexistent"));
        let report = lint_sources(&sources, &cfg, REGISTRY, "");
        assert!(
            !report.findings.iter().any(|f| f.status == crate::diag::Status::Active),
            "{:?}",
            report.findings
        );
    }
}
