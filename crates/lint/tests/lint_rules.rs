//! End-to-end rule tests: every rule fires on a known-bad fixture, inline
//! waivers and the checked-in baseline suppress exactly as specified, and
//! the JSON output round-trips through the telemetry crate's `jsonlite`
//! parser (the same one CI-side tooling uses).
//!
//! The fixtures under `tests/fixtures/` are data, not code — the engine's
//! workspace walker skips `fixtures` directories, so the deliberate
//! violations in them never fail the real lint gate.

use holoar_lint::{engine, Config, Report, SourceFile, Status};

/// Minimal registry for the fixtures: one registered span name.
const REGISTRY: &str = "span core.view.render_view\n";

fn cfg() -> Config {
    Config::new(std::path::PathBuf::from("/nonexistent"))
}

fn lint_one(rel: &str, src: &str) -> Report {
    lint_one_with_baseline(rel, src, "")
}

fn lint_one_with_baseline(rel: &str, src: &str, baseline: &str) -> Report {
    let files = vec![SourceFile::scan(rel, src)];
    engine::lint_sources(&files, &cfg(), REGISTRY, baseline)
}

fn lines_for(report: &Report, rule: &str) -> Vec<usize> {
    report.findings.iter().filter(|f| f.rule == rule).map(|f| f.line).collect()
}

#[test]
fn no_panic_fires_on_hot_path_fixture() {
    let src = include_str!("fixtures/no_panic.rs");
    let report = lint_one("crates/fft/src/radix2.rs", src);
    let lines = lines_for(&report, "no-panic");
    // buf[0], buf[buf.len() - 1], unwrap, expect, panic!, unreachable!.
    for expected in [5, 6, 7, 8, 10, 13] {
        assert!(lines.contains(&expected), "no-panic missing line {expected}: {lines:?}");
    }
    // Loop-bounded indexing and cfg(test) unwraps are allowed.
    assert!(!lines.contains(&17), "loop-bounded index wrongly flagged");
    assert!(!lines.contains(&25), "test-code unwrap wrongly flagged");
}

#[test]
fn no_panic_ignores_cold_paths() {
    let src = include_str!("fixtures/no_panic.rs");
    let report = lint_one("crates/bench/src/experiments.rs", src);
    assert!(
        lines_for(&report, "no-panic").is_empty(),
        "no-panic applies only to the designated hot-path modules"
    );
}

#[test]
fn determinism_flags_clocks_and_hash_iteration() {
    let src = include_str!("fixtures/determinism.rs");
    let report = lint_one("crates/gpusim/src/device.rs", src);
    let lines = lines_for(&report, "determinism");
    assert!(lines.contains(&7), "Instant::now not flagged: {lines:?}");
    assert!(lines.contains(&11), "HashMap iteration not flagged: {lines:?}");
    assert!(!lines.contains(&10), "keyed lookup wrongly flagged");
}

#[test]
fn thread_discipline_fires_outside_the_pool_only() {
    let src = include_str!("fixtures/thread_discipline.rs");
    let outside = lint_one("crates/optics/src/gsw.rs", src);
    assert_eq!(lines_for(&outside, "thread-discipline"), vec![4]);
    let home = lint_one("crates/fft/src/parallel.rs", src);
    assert!(
        lines_for(&home, "thread-discipline").is_empty(),
        "the Parallelism pool itself may touch std threads"
    );
}

#[test]
fn telemetry_discipline_flags_bad_and_unregistered_names() {
    let src = include_str!("fixtures/telemetry_discipline.rs");
    let report = lint_one("crates/core/src/view.rs", src);
    let lines = lines_for(&report, "telemetry-discipline");
    assert!(!lines.contains(&5), "registered name wrongly flagged: {lines:?}");
    for expected in [6, 7, 8] {
        assert!(lines.contains(&expected), "line {expected} not flagged: {lines:?}");
    }
}

#[test]
fn unregistered_degradation_counter_trips_telemetry_discipline() {
    // The registry knows the degradation counters the controller really
    // emits; a counter added without registering it must fail the gate.
    const DEGRADE_REGISTRY: &str =
        "counter core.degrade.step_down\ngauge core.degrade.level\n";
    let src = include_str!("fixtures/degrade_counter.rs");
    let files = vec![SourceFile::scan("crates/core/src/degrade.rs", src)];
    let report = engine::lint_sources(&files, &cfg(), DEGRADE_REGISTRY, "");
    let lines = lines_for(&report, "telemetry-discipline");
    assert!(!lines.contains(&6), "registered counter wrongly flagged: {lines:?}");
    assert!(!lines.contains(&7), "registered gauge wrongly flagged: {lines:?}");
    assert!(lines.contains(&8), "unregistered degradation counter must be flagged: {lines:?}");
}

#[test]
fn unregistered_serve_counter_trips_telemetry_discipline() {
    // The registry knows the serving-layer instruments the engine really
    // emits; a counter added without registering it must fail the gate.
    const SERVE_REGISTRY: &str =
        "counter serve.deadline.hit\ngauge serve.tick.occupancy\n";
    let src = include_str!("fixtures/serve_counter.rs");
    let files = vec![SourceFile::scan("crates/serve/src/engine.rs", src)];
    let report = engine::lint_sources(&files, &cfg(), SERVE_REGISTRY, "");
    let lines = lines_for(&report, "telemetry-discipline");
    assert!(!lines.contains(&6), "registered serve counter wrongly flagged: {lines:?}");
    assert!(!lines.contains(&7), "registered serve gauge wrongly flagged: {lines:?}");
    assert!(lines.contains(&8), "unregistered serve counter must be flagged: {lines:?}");
}

#[test]
fn unregistered_slo_counter_trips_telemetry_discipline() {
    // The registry knows the SLO instruments the tracker really emits; a
    // burn counter added without registering it must fail the gate.
    const SLO_REGISTRY: &str =
        "counter slo.burn.fast\ngauge slo.error_budget.remaining\n";
    let src = include_str!("fixtures/slo_counter.rs");
    let files = vec![SourceFile::scan("crates/serve/src/slo.rs", src)];
    let report = engine::lint_sources(&files, &cfg(), SLO_REGISTRY, "");
    let lines = lines_for(&report, "telemetry-discipline");
    assert!(!lines.contains(&6), "registered SLO counter wrongly flagged: {lines:?}");
    assert!(!lines.contains(&7), "registered SLO gauge wrongly flagged: {lines:?}");
    assert!(lines.contains(&8), "unregistered SLO counter must be flagged: {lines:?}");
}

#[test]
fn deprecated_wrapper_flags_internal_calls_only() {
    let src = include_str!("fixtures/deprecated_wrapper.rs");
    let report = lint_one("crates/core/src/quality.rs", src);
    let lines = lines_for(&report, "deprecated-wrapper");
    assert!(lines.contains(&6), "object_psnr_with call not flagged: {lines:?}");
    assert!(lines.contains(&7), "run_with call not flagged: {lines:?}");
    assert!(!lines.contains(&10), "the wrapper's own definition wrongly flagged");
    assert!(!lines.contains(&15), "prefixed identifier wrongly flagged");
    assert!(!lines.contains(&16), "suffixed identifier wrongly flagged");
    assert!(
        lines.iter().all(|l| *l < 20),
        "test code may keep exercising the wrappers: {lines:?}"
    );
}

#[test]
fn unsafe_hygiene_wants_safety_comments() {
    let src = include_str!("fixtures/unsafe_hygiene.rs");
    let report = lint_one("src/ptr.rs", src);
    assert_eq!(
        lines_for(&report, "unsafe-hygiene"),
        vec![4],
        "only the unjustified unsafe should be flagged"
    );
}

#[test]
fn unsafe_hygiene_wants_forbid_in_clean_crates() {
    let bare = lint_one("crates/foo/src/lib.rs", "pub fn f() {}\n");
    let f = bare
        .findings
        .iter()
        .find(|f| f.rule == "unsafe-hygiene")
        .expect("missing-forbid finding");
    assert_eq!((f.path.as_str(), f.line), ("crates/foo/src/lib.rs", 1));
    assert!(f.message.contains("forbid(unsafe_code)"), "{}", f.message);

    let pinned = lint_one("crates/foo/src/lib.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n");
    assert!(lines_for(&pinned, "unsafe-hygiene").is_empty());
}

#[test]
fn waivers_suppress_malformed_and_unknown_do_not() {
    let src = include_str!("fixtures/waivers.rs");
    let report = lint_one("crates/fft/src/fft2d.rs", src);
    let status_at = |line: usize| {
        report
            .findings
            .iter()
            .find(|f| f.rule == "no-panic" && f.line == line)
            .map(|f| f.status.clone())
            .unwrap_or_else(|| panic!("no no-panic finding at line {line}"))
    };
    assert!(matches!(status_at(4), Status::Waived(_)), "same-line waiver");
    assert!(matches!(status_at(6), Status::Waived(_)), "standalone waiver applies to next code line");
    assert_eq!(status_at(7), Status::Active, "malformed waiver must not suppress");
    assert_eq!(status_at(8), Status::Active, "unknown-rule waiver must not suppress");
    let syntax = lines_for(&report, "waiver-syntax");
    assert!(syntax.contains(&7) && syntax.contains(&8), "bad waivers are findings: {syntax:?}");
    if let Status::Waived(reason) = status_at(4) {
        assert_eq!(reason, "fixture: checked by caller");
    }
}

#[test]
fn baseline_suppresses_by_content_not_line_number() {
    let src = include_str!("fixtures/no_panic.rs");
    let rel = "crates/fft/src/radix2.rs";
    let sources = vec![SourceFile::scan(rel, src)];
    let first = engine::lint_sources(&sources, &cfg(), REGISTRY, "");
    let active_before = first.counts().0;
    assert!(active_before > 0);

    // A baseline generated from the run suppresses every finding...
    let baseline = engine::render_baseline(&first, &sources);
    let second = lint_one_with_baseline(rel, src, &baseline);
    let (active, _, baselined) = second.counts();
    assert_eq!(active, 0, "baselined run must be clean");
    assert_eq!(baselined, active_before);

    // ...even when the file shifts: prepend comment lines so every line
    // number changes, and the content-matching entries still cover it.
    let shifted = format!("// shim\n// shim\n// shim\n{src}");
    let third = lint_one_with_baseline(rel, &shifted, &baseline);
    assert_eq!(third.counts().0, 0, "baseline matches content, not line numbers");
}

#[test]
fn malformed_baseline_entries_are_findings() {
    let report = lint_one_with_baseline(
        "crates/fft/src/radix2.rs",
        "pub fn ok() {}\n",
        "# comment is fine\nno-panic only-two-fields\n",
    );
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == "waiver-syntax")
        .expect("malformed baseline entry must be reported");
    assert_eq!(f.line, 2);
    assert!(f.message.contains("baseline"), "{}", f.message);
}

#[test]
fn json_output_round_trips_through_jsonlite() {
    let src = include_str!("fixtures/waivers.rs");
    let report = lint_one("crates/fft/src/fft2d.rs", src);
    let json = report.render_json();
    let doc = holoar_telemetry::jsonlite::parse(&json).expect("lint JSON must parse");

    let version = doc.get("version").and_then(|v| v.as_f64()).expect("version field");
    assert_eq!(version, 1.0);
    let findings = doc.get("findings").and_then(|v| v.as_array()).expect("findings array");
    assert_eq!(findings.len(), report.findings.len());
    for (j, f) in findings.iter().zip(&report.findings) {
        assert_eq!(j.get("rule").and_then(|v| v.as_str()), Some(f.rule));
        assert_eq!(j.get("path").and_then(|v| v.as_str()), Some(f.path.as_str()));
        assert_eq!(j.get("line").and_then(|v| v.as_f64()), Some(f.line as f64));
        let status = j.get("status").and_then(|v| v.as_str()).expect("status field");
        match &f.status {
            Status::Active => assert_eq!(status, "active"),
            Status::Waived(reason) => {
                assert_eq!(status, "waived");
                assert_eq!(j.get("reason").and_then(|v| v.as_str()), Some(reason.as_str()));
            }
            Status::Baselined => assert_eq!(status, "baselined"),
        }
    }
    let summary = doc.get("summary").expect("summary object");
    let (active, waived, baselined) = report.counts();
    assert_eq!(summary.get("active").and_then(|v| v.as_f64()), Some(active as f64));
    assert_eq!(summary.get("waived").and_then(|v| v.as_f64()), Some(waived as f64));
    assert_eq!(summary.get("baselined").and_then(|v| v.as_f64()), Some(baselined as f64));
}

#[test]
fn the_workspace_itself_is_clean() {
    // The acceptance bar for this tool: the real tree has zero active
    // findings and needs zero baseline entries. Walk up from this crate to
    // the workspace root and lint it for real.
    let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = holoar_lint::find_workspace_root(here).expect("workspace root");
    let config = Config::new(root);
    let report = engine::lint_workspace(&config).expect("lint run");
    let actives: Vec<String> = report
        .active()
        .map(|f| format!("{}:{} {}: {}", f.path, f.line, f.rule, f.message))
        .collect();
    assert!(actives.is_empty(), "workspace has active lint findings:\n{}", actives.join("\n"));
    assert_eq!(report.counts().2, 0, "the checked-in baseline must stay empty");
}
