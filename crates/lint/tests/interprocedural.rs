//! End-to-end tests for the two-pass interprocedural analysis: each new
//! rule family fires on a known-bad fixture, the transitive diagnostic
//! prints its full call chain, and the workspace model plus the report are
//! bit-identical no matter what order the files arrive in.
//!
//! The fixtures under `tests/fixtures/` are data, not code — the engine's
//! workspace walker skips `fixtures` directories, so the deliberate
//! violations in them never fail the real lint gate.

use holoar_lint::{engine, model, Config, Report, SourceFile};
use proptest::prelude::*;

fn cfg() -> Config {
    Config::new(std::path::PathBuf::from("/nonexistent"))
}

/// The interprocedural fixture set: (workspace-relative path, source).
fn fixture_pairs() -> Vec<(&'static str, &'static str)> {
    vec![
        ("crates/a/src/hot.rs", include_str!("fixtures/interp_hot.rs")),
        ("crates/b/src/helpers.rs", include_str!("fixtures/interp_helpers.rs")),
        ("crates/a/src/locks.rs", include_str!("fixtures/lock_order.rs")),
        ("crates/a/src/frame.rs", include_str!("fixtures/hot_loop_alloc.rs")),
        ("crates/a/src/shade.rs", include_str!("fixtures/float_determinism.rs")),
    ]
}

fn lint(pairs: &[(&str, &str)]) -> Report {
    let sources: Vec<SourceFile> =
        pairs.iter().map(|(rel, src)| SourceFile::scan(rel, src)).collect();
    engine::lint_sources(&sources, &cfg(), "", "")
}

fn lines_for(report: &Report, rule: &str) -> Vec<usize> {
    report.findings.iter().filter(|f| f.rule == rule).map(|f| f.line).collect()
}

#[test]
fn transitive_no_panic_crosses_files_and_prints_the_chain() {
    let report = lint(&fixture_pairs());
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == "no-panic-transitive")
        .expect("transitive finding");
    // The finding anchors at the panic site, two calls and one crate away
    // from the marker-designated entry.
    assert_eq!((f.path.as_str(), f.line), ("crates/b/src/helpers.rs", 9));
    assert_eq!(
        f.chain,
        vec![
            "crates/a/src/hot.rs::render_frame",
            "crates/b/src/helpers.rs::peak_amplitude",
            "crates/b/src/helpers.rs::fold_peak",
        ]
    );
    let human = report.render_human(false);
    assert!(
        human.contains(
            "call chain: crates/a/src/hot.rs::render_frame -> \
             crates/b/src/helpers.rs::peak_amplitude -> \
             crates/b/src/helpers.rs::fold_peak"
        ),
        "{human}"
    );
}

#[test]
fn lock_order_cycle_fires_on_the_ab_ba_fixture() {
    let report = lint(&fixture_pairs());
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == "lock-order" && f.message.contains("cycle"))
        .expect("lock-order cycle finding");
    assert_eq!(f.path, "crates/a/src/locks.rs");
    assert!(
        f.message.contains("crates/a/jobs") && f.message.contains("crates/a/stats"),
        "{}",
        f.message
    );
}

#[test]
fn hot_loop_alloc_flags_unsized_allocations_only() {
    let report = lint(&fixture_pairs());
    let lines = lines_for(&report, "hot-loop-alloc");
    // Vec::new, push without pre-sizing, format! — all inside the loop.
    for expected in [8, 9, 10] {
        assert!(lines.contains(&expected), "hot-loop-alloc missing line {expected}: {lines:?}");
    }
    // The pre-sized `peaks.push` is allowed.
    assert!(!lines.contains(&13), "pre-sized push wrongly flagged: {lines:?}");
}

#[test]
fn float_determinism_respects_plan_time_modules() {
    let report = lint(&fixture_pairs());
    let lines: Vec<usize> = report
        .findings
        .iter()
        .filter(|f| f.rule == "float-determinism" && f.path == "crates/a/src/shade.rs")
        .map(|f| f.line)
        .collect();
    assert!(lines.contains(&5) && lines.contains(&6), "sin/powf not flagged: {lines:?}");

    // The same source under a plan-time path is clean.
    let plan_time = lint(&[("crates/sensors/src/shade.rs", include_str!("fixtures/float_determinism.rs"))]);
    assert!(
        lines_for(&plan_time, "float-determinism").is_empty(),
        "plan-time module wrongly flagged"
    );
}

/// Decodes `seed` into the `seed`-th permutation of `0..n` (Lehmer code).
fn permutation(mut seed: usize, n: usize) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).collect();
    let mut out = Vec::with_capacity(n);
    for k in (1..=n).rev() {
        out.push(pool.remove(seed % k));
        seed /= k;
    }
    out
}

proptest! {
    /// The workspace model dump and the full report are byte-identical
    /// regardless of the order files are handed to the analyzer.
    #[test]
    fn model_and_report_are_bit_identical_under_shuffled_orderings(seed in 0usize..120) {
        let pairs = fixture_pairs();
        let sources: Vec<SourceFile> =
            pairs.iter().map(|(rel, src)| SourceFile::scan(rel, src)).collect();
        let baseline_model = model::build(&sources, &cfg()).to_json().render_pretty();
        let baseline_report = engine::lint_sources(&sources, &cfg(), "", "").render_json();

        let shuffled: Vec<SourceFile> =
            permutation(seed, sources.len()).into_iter().map(|i| sources[i].clone()).collect();
        let shuffled_model = model::build(&shuffled, &cfg()).to_json().render_pretty();
        let shuffled_report = engine::lint_sources(&shuffled, &cfg(), "", "").render_json();

        prop_assert_eq!(baseline_model, shuffled_model);
        prop_assert_eq!(baseline_report, shuffled_report);
    }
}
