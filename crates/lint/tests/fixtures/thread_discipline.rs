// Fixture: raw threading the `thread-discipline` rule must flag. Never
// compiled; tests scan it under a non-pool rel.
pub fn fan_out() -> i32 {
    let h = std::thread::spawn(|| 42);
    h.join().unwrap_or(0)
}
