// Fixture: transcendental math outside the plan-time modules. The same
// source linted under a plan-time path must be clean.

pub fn falloff(theta: f64, gain: f64) -> f64 {
    let a = theta.sin();
    let b = gain.powf(2.5);
    a * b
}
