// Fixture: an unregistered degradation counter the `telemetry-discipline`
// rule must flag. Never compiled; tests scan it under the degrade module's
// rel path against a registry that knows `counter core.degrade.step_down`
// and `gauge core.degrade.level` but not the counter on line 8.
pub fn emit_transition() {
    holoar_telemetry::counter_add("core.degrade.step_down", 1);
    holoar_telemetry::gauge_set("core.degrade.level", 1.0);
    holoar_telemetry::counter_add("core.degrade.unplanned_transitions", 1);
}
