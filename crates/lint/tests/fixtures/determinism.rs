// Fixture: nondeterminism sources the `determinism` rule must flag. Never
// compiled; tests scan it under a simulator rel.
use std::collections::HashMap;
use std::time::Instant;

pub fn naughty() {
    let t0 = Instant::now();
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let _hit = m.get(&1);
    for (k, v) in &m {
        let _ = (k, v, t0);
    }
}
