// Fixture: unsafe with and without justification for the `unsafe-hygiene`
// rule. Never compiled (the workspace itself forbids unsafe).
pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn peek_ok(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}
