// Fixture: hot-path panic sources the `no-panic` rule must flag. This file
// is never compiled; tests scan it under a hot-path rel like
// `crates/fft/src/radix2.rs`.
pub fn hot(buf: &[f64], opt: Option<f64>) -> f64 {
    let first = buf[0];
    let last = buf[buf.len() - 1];
    let v = opt.unwrap();
    let w = opt.expect("present");
    if first > last {
        panic!("unsorted");
    }
    let _ = (v, w);
    unreachable!()
}

pub fn loop_bounded(buf: &mut [f64], start: usize, k: usize) -> f64 {
    buf[start + k]
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        v.unwrap();
    }
}
