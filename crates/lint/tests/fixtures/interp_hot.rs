// Fixture: a marker-designated hot entry whose panic sits two calls away
// in another crate (interp_helpers.rs, linted as crates/b/src/helpers.rs).

// holoar-lint: hot-entry
pub fn render_frame(buf: &[f64]) -> f64 {
    holoar_b::peak_amplitude(buf)
}
