// Fixture: a designated per-frame loop that allocates every iteration.
// Pre-sized pushes are fine; fresh Vec/format!/unsized pushes are not.

// holoar-lint: frame-loop
pub fn per_frame(samples: &[f64]) -> Vec<f64> {
    let mut peaks = Vec::with_capacity(samples.len());
    for s in samples {
        let mut scratch = Vec::new();
        scratch.push(*s);
        let label = format!("sample {s}");
        let _ = label;
        peaks.push(scratch.len() as f64);
    }
    peaks
}
