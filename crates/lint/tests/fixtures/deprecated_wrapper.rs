// Fixture: deliberate traffic through the deprecated `*_with` wrappers.
// Never compiled; the `deprecated-wrapper` rule must flag the internal
// calls (lines 6 and 7) but not the wrapper definition, near-miss
// identifiers, or test code.
pub fn hot_path(o: &Object, dm: &DepthMap) -> f64 {
    let q = quality::object_psnr_with(o, 8, &cfg(), &Parallelism::serial());
    q + gsw::run_with(&dm.slice(2, cfg()), cfg(), gsw_cfg(), &Parallelism::serial()).error
}

pub fn run_with(x: u32) -> u32 {
    x
}

pub fn near_misses() {
    my_render_view_with(1);
    let render_view_with_plan = 3;
    let _ = render_view_with_plan;
}

#[cfg(test)]
mod tests {
    #[test]
    fn wrappers_stay_equivalent() {
        let _ = super::run_with(1);
        let _ = holoar_pipeline::run_pipelined_with(25, frames, &Parallelism::new(2));
    }
}
