// Fixture: an unregistered serving-layer counter the `telemetry-discipline`
// rule must flag. Never compiled; tests scan it under the serve engine's
// rel path against a registry that knows `counter serve.deadline.hit` and
// `gauge serve.tick.occupancy` but not the counter on line 8.
pub fn account_tick() {
    holoar_telemetry::counter_add("serve.deadline.hit", 1);
    holoar_telemetry::gauge_set("serve.tick.occupancy", 0.4);
    holoar_telemetry::counter_add("serve.batch.retries", 1);
}
