// Fixture: the far side of the two-file transitive no-panic case. The
// panic lives in a private helper the hot entry never calls directly.

pub fn peak_amplitude(buf: &[f64]) -> f64 {
    fold_peak(buf.first())
}

fn fold_peak(first: Option<&f64>) -> f64 {
    *first.expect("non-empty buffer")
}
