// Fixture: waiver handling — valid same-line, valid standalone, malformed,
// and unknown-rule. Never compiled; tests scan it under a hot-path rel.
pub fn waived(opt: Option<u32>) -> u32 {
    let a = opt.unwrap(); // holoar-lint: allow(no-panic, reason = "fixture: checked by caller")
    // holoar-lint: allow(no-panic, reason = "fixture: standalone waiver")
    let b = opt.unwrap();
    let c = opt.unwrap(); // holoar-lint: allow(no-panic)
    let d = opt.unwrap(); // holoar-lint: allow(imaginary-rule, reason = "nope")
    a + b + c + d
}
