// Fixture: an unregistered SLO counter the `telemetry-discipline` rule
// must flag. Never compiled; tests scan it under the serve SLO module's
// rel path against a registry that knows `counter slo.burn.fast` and
// `gauge slo.error_budget.remaining` but not the counter on line 8.
pub fn page_on_burn() {
    holoar_telemetry::counter_add("slo.burn.fast", 1);
    holoar_telemetry::gauge_set("slo.error_budget.remaining", 0.4);
    holoar_telemetry::counter_add("slo.burn.instant", 1);
}
