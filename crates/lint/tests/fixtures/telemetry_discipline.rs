// Fixture: telemetry-naming violations the `telemetry-discipline` rule must
// flag. Never compiled; tests scan it under a core-crate rel against a
// registry containing only `span core.view.render_view`.
pub fn instrument() {
    let _ok = holoar_telemetry::span_cat("core.view.render_view", "core");
    let _convention = holoar_telemetry::span_cat("BadName", "core");
    holoar_telemetry::counter_add("core.unregistered.counter", 1);
    holoar_telemetry::counter_add("nope.view.render_view", 1);
}
