// Fixture: two paths acquire the same pair of locks in opposite orders —
// the classic AB/BA deadlock shape the lock-order rule must catch.

pub struct Shared {
    jobs: std::sync::Mutex<Vec<u64>>,
    stats: std::sync::Mutex<u64>,
}

impl Shared {
    pub fn submit(&self, id: u64) {
        let mut jobs = lock_unpoisoned(&self.jobs);
        let mut stats = lock_unpoisoned(&self.stats);
        jobs.push(id);
        *stats += 1;
    }

    pub fn report(&self) -> u64 {
        let stats = lock_unpoisoned(&self.stats);
        let jobs = lock_unpoisoned(&self.jobs);
        *stats + jobs.len() as u64
    }
}
