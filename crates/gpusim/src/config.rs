//! Hardware configuration for the simulated edge GPU.
//!
//! Defaults model the paper's evaluation platform \[36\]: an NVIDIA Jetson
//! AGX Xavier — 512-core Volta GPU (8 SMs × 64 cores), LPDDR4x memory, with
//! power rails observable the way the on-board INA3221 monitor exposes them.
//! The calibration constants (documented per field) anchor the model to the
//! paper's measured numbers; see `DESIGN.md` for the anchor list.

/// Streaming-multiprocessor parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmConfig {
    /// CUDA cores per SM.
    pub cores: u32,
    /// Special-function units per SM (transcendental throughput).
    pub sfus: u32,
    /// Warp size in threads.
    pub warp_size: u32,
    /// Warp schedulers per SM (issue slots per cycle).
    pub schedulers: u32,
    /// Maximum resident warps per SM (latency-hiding capacity).
    pub max_resident_warps: u32,
}

impl Default for SmConfig {
    fn default() -> Self {
        SmConfig { cores: 64, sfus: 16, warp_size: 32, schedulers: 4, max_resident_warps: 64 }
    }
}

/// Memory-hierarchy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryConfig {
    /// L1 hit latency in cycles.
    pub l1_latency: f64,
    /// L2 hit latency in cycles.
    pub l2_latency: f64,
    /// DRAM (LPDDR4x) latency in cycles.
    pub dram_latency: f64,
    /// L2 hit rate for L1 misses.
    pub l2_hit_rate: f64,
    /// Sustained DRAM bandwidth available to the GPU, bytes per cycle
    /// (Xavier: ~85 GB/s usable at 1.377 GHz ≈ 62 B/cycle; the GPU's share
    /// of the shared LPDDR4x is smaller).
    pub dram_bytes_per_cycle: f64,
    /// L1/shared-memory bandwidth per SM, bytes per cycle.
    pub l1_bytes_per_cycle_per_sm: f64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            l1_latency: 28.0,
            l2_latency: 190.0,
            dram_latency: 560.0,
            l2_hit_rate: 0.7,
            dram_bytes_per_cycle: 40.0,
            l1_bytes_per_cycle_per_sm: 64.0,
        }
    }
}

/// Power-rail parameters, mirroring the INA3221 channels the paper samples:
/// SoC (codec, fabric, I/O), CPU, GPU and Mem (§5.3, Fig 8a).
///
/// Rail power is `static + dynamic × activity`, where activity is the
/// simulator's occupancy-derived utilization in `[0, 1]`. The constants were
/// calibrated so a 16-plane hologram burns ≈ 4.41 W total with the Fig 8a
/// breakdown shape (SoC/CPU flat in plane count, GPU/Mem growing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerConfig {
    /// SoC rail static power, watts (codec/fabric; plane-independent).
    pub soc_static: f64,
    /// CPU rail static power, watts.
    pub cpu_static: f64,
    /// CPU rail dynamic power at full host activity, watts.
    pub cpu_dynamic: f64,
    /// GPU rail static (idle/leakage) power, watts.
    pub gpu_static: f64,
    /// GPU rail dynamic power at full activity, watts.
    pub gpu_dynamic: f64,
    /// Memory rail static power, watts.
    pub mem_static: f64,
    /// Memory rail dynamic power at full bandwidth activity, watts.
    pub mem_dynamic: f64,
    /// Half-saturation constant of the activity curve
    /// `act(planes) = planes / (planes + k)`; governs how concurrency from
    /// plane-level parallelism raises sustained utilization.
    pub activity_half_planes: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            soc_static: 0.90,
            cpu_static: 0.42,
            gpu_static: 0.15,
            gpu_dynamic: 2.80,
            mem_static: 0.12,
            mem_dynamic: 1.30,
            cpu_dynamic: 0.35,
            activity_half_planes: 8.0,
        }
    }
}

/// Full device configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceConfig {
    /// Number of SMs (Xavier Volta: 8).
    pub sm_count: u32,
    /// GPU core clock in hertz.
    pub clock_hz: f64,
    /// Host-side kernel launch overhead in seconds.
    pub launch_overhead: f64,
    /// Achieved fraction of ideal throughput for real kernels
    /// (bank conflicts, divergence, scheduling gaps). Calibrated so a 512²
    /// angular-spectrum propagation costs ≈ 2.14 ms (⇒ 341.7 ms for the
    /// 5-iteration × 16-plane GSW hologram of §2.2.1).
    pub kernel_efficiency: f64,
    /// Per-SM configuration.
    pub sm: SmConfig,
    /// Memory hierarchy.
    pub memory: MemoryConfig,
    /// Power rails.
    pub power: PowerConfig,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            sm_count: 8,
            clock_hz: 1.377e9,
            launch_overhead: 8e-6,
            kernel_efficiency: 0.076,
            sm: SmConfig::default(),
            memory: MemoryConfig::default(),
            power: PowerConfig::default(),
        }
    }
}

impl DeviceConfig {
    /// Total CUDA cores across the device.
    pub fn total_cores(&self) -> u32 {
        self.sm_count * self.sm.cores
    }

    /// Returns a derated copy of this configuration modelling transient
    /// contention: `clock_scale` multiplies the effective core clock (SM
    /// slowdown — thermal throttling or co-runner occupancy) and
    /// `dram_scale` multiplies the sustained DRAM bandwidth (memory-bus
    /// contention from other SoC clients).
    ///
    /// Scales must be in `(0, 1]`; values are clamped into that range so a
    /// fault injector can never produce an invalid device.
    ///
    /// # Examples
    ///
    /// ```
    /// use holoar_gpusim::DeviceConfig;
    /// let nominal = DeviceConfig::default();
    /// let derated = nominal.with_slowdown(0.5, 0.8);
    /// assert_eq!(derated.clock_hz, nominal.clock_hz * 0.5);
    /// assert!(derated.validate().is_ok());
    /// ```
    #[must_use]
    pub fn with_slowdown(&self, clock_scale: f64, dram_scale: f64) -> Self {
        let clamp = |s: f64| if s.is_finite() { s.clamp(1e-3, 1.0) } else { 1.0 };
        let mut derated = *self;
        derated.clock_hz *= clamp(clock_scale);
        derated.memory.dram_bytes_per_cycle *= clamp(dram_scale);
        derated
    }

    /// Validates configuration invariants.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.sm_count == 0 {
            return Err("device must have at least one SM".into());
        }
        if !(self.clock_hz > 0.0 && self.clock_hz.is_finite()) {
            return Err("clock must be positive and finite".into());
        }
        if !(self.kernel_efficiency > 0.0 && self.kernel_efficiency <= 1.0) {
            return Err("kernel efficiency must be in (0, 1]".into());
        }
        if self.sm.warp_size == 0 || self.sm.cores == 0 || self.sm.schedulers == 0 {
            return Err("SM resources must be non-zero".into());
        }
        if !(0.0..=1.0).contains(&self.memory.l2_hit_rate) {
            return Err("L2 hit rate must be in [0, 1]".into());
        }
        if self.memory.dram_bytes_per_cycle <= 0.0 || self.memory.l1_bytes_per_cycle_per_sm <= 0.0 {
            return Err("memory bandwidths must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_xavier_like() {
        let cfg = DeviceConfig::default();
        assert_eq!(cfg.total_cores(), 512);
        assert_eq!(cfg.sm_count, 8);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let cfg = DeviceConfig { sm_count: 0, ..DeviceConfig::default() };
        assert!(cfg.validate().is_err());

        let cfg = DeviceConfig { kernel_efficiency: 0.0, ..DeviceConfig::default() };
        assert!(cfg.validate().is_err());

        let cfg = DeviceConfig {
            memory: MemoryConfig { l2_hit_rate: 1.5, ..MemoryConfig::default() },
            ..DeviceConfig::default()
        };
        assert!(cfg.validate().is_err());

        let cfg = DeviceConfig { clock_hz: f64::NAN, ..DeviceConfig::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn slowdown_derates_clock_and_dram_and_stays_valid() {
        let nominal = DeviceConfig::default();
        let derated = nominal.with_slowdown(0.5, 0.25);
        assert!((derated.clock_hz - nominal.clock_hz * 0.5).abs() < 1.0);
        let want = nominal.memory.dram_bytes_per_cycle * 0.25;
        assert!((derated.memory.dram_bytes_per_cycle - want).abs() < 1e-12);
        assert!(derated.validate().is_ok());

        // Pathological scales are clamped rather than producing an
        // invalid device.
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY, 7.0] {
            assert!(nominal.with_slowdown(bad, bad).validate().is_ok(), "scale {bad}");
        }
        // An identity slowdown is exactly the nominal config.
        assert_eq!(nominal.with_slowdown(1.0, 1.0), nominal);
    }

    #[test]
    fn idle_power_is_sum_of_statics() {
        let p = PowerConfig::default();
        let idle = p.soc_static + p.cpu_static + p.gpu_static + p.mem_static;
        assert!(idle > 1.0 && idle < 2.5, "idle {idle} W out of plausible range");
    }
}
