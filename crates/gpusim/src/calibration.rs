//! Calibration anchors tying the simulator to the paper's measurements.
//!
//! The reproduction's performance claims are all *relative* (speedups, power
//! and energy percentages), but the model is pinned to the paper's absolute
//! anchors so latencies and powers are meaningful on their own:
//!
//! * 341.7 ms for the baseline hologram — 512², 16 depth planes, 5 GSW
//!   iterations (§2.2.1, Table 1 discussion);
//! * latency ≈ linear in depth-plane count, forward ≈ backward (Fig 4b);
//! * ≈ 4.41 W total board power during a 16-plane hologram (§5.3);
//! * SM utilization ≈ 74% forward / 90% backward, L1 hit 99% (§3).
//!
//! `DeviceConfig::kernel_efficiency` is the single timing scale factor; it
//! was solved once against the first anchor and is validated by the tests in
//! this module.

use crate::device::Device;
use crate::hologram_kernels::{run_job, HologramJob};

/// The paper's measured baseline hologram latency, seconds (§2.2.1).
pub const BASELINE_HOLOGRAM_LATENCY: f64 = 0.3417;

/// Full (unapproximated) depth-plane count per object (§4.3).
pub const FULL_PLANES: u32 = 16;

/// GSW iterations profiled by the paper (§2.2.1 footnote 3).
pub const GSW_ITERATIONS: u32 = 5;

/// Hologram resolution used for calibration (512²).
pub const HOLOGRAM_PIXELS: u64 = 512 * 512;

/// Measured latencies of the other pipeline stages on the edge GPU
/// (§2.2.1, Fig 2), seconds.
pub mod stage_latency {
    /// Kimera-VIO pose estimation.
    pub const POSE_ESTIMATE: f64 = 0.0138;
    /// NVGaze eye tracking.
    pub const EYE_TRACK: f64 = 0.0044;
    /// InfiniTAM scene reconstruction.
    pub const SCENE_RECONSTRUCT: f64 = 0.120;
}

/// Returns the calibrated Xavier-like device and the latency it models for
/// the paper's baseline hologram configuration.
pub fn baseline_hologram_latency() -> f64 {
    let mut device = Device::xavier();
    run_job(&mut device, &HologramJob::full(FULL_PLANES)).latency
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_latency_matches_paper_anchor() {
        let latency = baseline_hologram_latency();
        let err = (latency - BASELINE_HOLOGRAM_LATENCY).abs() / BASELINE_HOLOGRAM_LATENCY;
        assert!(
            err < 0.05,
            "modeled baseline hologram {:.1} ms vs paper {:.1} ms ({:.1}% off)",
            latency * 1e3,
            BASELINE_HOLOGRAM_LATENCY * 1e3,
            err * 100.0
        );
    }

    #[test]
    fn hologram_misses_realtime_by_an_order_of_magnitude() {
        // The paper's motivating observation: ~10× over the 33 ms deadline.
        let latency = baseline_hologram_latency();
        assert!(latency > 8.0 * 0.033);
    }

    #[test]
    fn four_planes_fit_realtime_but_not_more() {
        // §3: "a state-of-the-art edge GPU is only able to compute for < 4
        // depth planes in real-time".
        let mut device = Device::xavier();
        let t4 = run_job(&mut device, &HologramJob::full(4)).latency;
        let t8 = run_job(&mut device, &HologramJob::full(8)).latency;
        assert!(t4 < 2.0 * 0.066, "4 planes should be near real-time, got {t4}");
        assert!(t8 > 0.066, "8 planes should miss 30 fps clearly, got {t8}");
    }

    #[test]
    fn utilization_matches_section3_bands() {
        use crate::hologram_kernels::{propagation_kernel, Step};
        let mut device = Device::xavier();
        let fwd = device.execute(&propagation_kernel(Step::Forward, HOLOGRAM_PIXELS));
        let bwd = device.execute(&propagation_kernel(Step::Backward, HOLOGRAM_PIXELS));
        // Paper: 74% forward, 90% backward (±8 pp band).
        assert!(
            (fwd.sm_utilization - 0.74).abs() < 0.08,
            "forward SM utilization {:.2} should be near 0.74",
            fwd.sm_utilization
        );
        assert!(
            (bwd.sm_utilization - 0.90).abs() < 0.08,
            "backward SM utilization {:.2} should be near 0.90",
            bwd.sm_utilization
        );
        assert!(bwd.sm_utilization > fwd.sm_utilization);
    }

    #[test]
    fn stall_leaders_match_section3() {
        use crate::hologram_kernels::{propagation_kernel, Step};
        use crate::stats::StallCategory as C;
        let mut device = Device::xavier();
        let fwd = device.execute(&propagation_kernel(Step::Forward, HOLOGRAM_PIXELS));
        let bwd = device.execute(&propagation_kernel(Step::Backward, HOLOGRAM_PIXELS));
        // Forward: Data Request is the top reason; Read-only Loads are minor.
        assert!(fwd.stalls.fraction(C::DataRequest) > fwd.stalls.fraction(C::ReadOnlyLoad));
        assert!(fwd.stalls.fraction(C::ExecutionDependency) > 0.1);
        // Backward: Read-only Loads dominate, Sync is second.
        assert!(bwd.stalls.fraction(C::ReadOnlyLoad) > 0.3);
        assert!(bwd.stalls.fraction(C::Sync) > 0.1);
        assert!(
            bwd.stalls.fraction(C::ReadOnlyLoad) > bwd.stalls.fraction(C::DataRequest),
            "backward should be read-only dominated"
        );
    }
}
