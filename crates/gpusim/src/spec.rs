//! Declarative device specification — the one way the upper layers
//! (serving, faults, SLO, fleet) construct simulated devices.
//!
//! [`DeviceSpec`] is a small by-value builder over [`DeviceConfig`]: it
//! captures the handful of knobs the serving stack actually varies — SM
//! count, per-frame deadline, a standing slowdown (folded in through
//! [`DeviceConfig::with_slowdown`]) and the calibrated kernel efficiency —
//! and derives the full config on demand. Heterogeneous fleets are a
//! `Vec<DeviceSpec>`.
//!
//! # Examples
//!
//! ```
//! use holoar_gpusim::{Device, DeviceSpec};
//!
//! // The serving default: a 32-SM edge accelerator on a 90 Hz deadline.
//! let spec = DeviceSpec::edge();
//! let device = Device::new(spec.config()).unwrap();
//! assert_eq!(device.config().sm_count, 32);
//!
//! // A thermally-throttled half-rate sibling for a heterogeneous fleet.
//! let throttled = DeviceSpec::edge().slowdown(0.5, 0.8);
//! assert!(throttled.config().clock_hz < spec.config().clock_hz);
//! ```

use crate::config::DeviceConfig;

/// Per-frame deadline of the serving default, seconds (90 Hz refresh).
pub const EDGE_FRAME_BUDGET: f64 = 1.0 / 90.0;

/// A declarative specification of one simulated edge device.
///
/// The builder methods consume and return the spec so fleets read as
/// chained expressions; [`DeviceSpec::config`] derives the concrete
/// [`DeviceConfig`] (slowdown folded in) and [`DeviceSpec::validate`]
/// checks the result plus the spec-level invariants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    sm_count: u32,
    kernel_efficiency: f64,
    clock_scale: f64,
    dram_scale: f64,
    frame_budget: f64,
}

impl Default for DeviceSpec {
    /// The Xavier baseline: the [`DeviceConfig::default`] platform on the
    /// paper's 33 ms hologram deadline, with no standing slowdown.
    fn default() -> Self {
        let base = DeviceConfig::default();
        DeviceSpec {
            sm_count: base.sm_count,
            kernel_efficiency: base.kernel_efficiency,
            clock_scale: 1.0,
            dram_scale: 1.0,
            frame_budget: 0.033,
        }
    }
}

impl DeviceSpec {
    /// The Xavier baseline spec (see [`DeviceSpec::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The multi-session serving default: a 32-SM edge accelerator (4× the
    /// Xavier GPU — an edge-server part, not the HMD itself) driving a
    /// 90 Hz display ([`EDGE_FRAME_BUDGET`]).
    pub fn edge() -> Self {
        Self::default().sm_count(32).frame_budget(EDGE_FRAME_BUDGET)
    }

    /// Sets the number of streaming multiprocessors.
    #[must_use]
    pub fn sm_count(mut self, sm_count: u32) -> Self {
        self.sm_count = sm_count;
        self
    }

    /// Sets the achieved fraction of ideal throughput (see
    /// [`DeviceConfig::kernel_efficiency`]).
    #[must_use]
    pub fn kernel_efficiency(mut self, efficiency: f64) -> Self {
        self.kernel_efficiency = efficiency;
        self
    }

    /// Sets the per-frame deadline in seconds.
    #[must_use]
    pub fn frame_budget(mut self, seconds: f64) -> Self {
        self.frame_budget = seconds;
        self
    }

    /// Applies a *standing* slowdown — a permanently throttled or
    /// contended device, as opposed to the transient per-frame derating the
    /// fault injector applies. Folded into the derived config through
    /// [`DeviceConfig::with_slowdown`], so the same clamping rules apply.
    #[must_use]
    pub fn slowdown(mut self, clock_scale: f64, dram_scale: f64) -> Self {
        self.clock_scale = clock_scale;
        self.dram_scale = dram_scale;
        self
    }

    /// The per-frame deadline in seconds.
    pub fn budget(&self) -> f64 {
        self.frame_budget
    }

    /// Derives the concrete device configuration with the standing
    /// slowdown folded in.
    pub fn config(&self) -> DeviceConfig {
        DeviceConfig {
            sm_count: self.sm_count,
            kernel_efficiency: self.kernel_efficiency,
            ..DeviceConfig::default()
        }
        .with_slowdown(self.clock_scale, self.dram_scale)
    }

    /// Validates the spec: the frame budget must be positive and finite
    /// and the derived config must pass [`DeviceConfig::validate`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.frame_budget > 0.0 && self.frame_budget.is_finite()) {
            return Err("device frame budget must be positive and finite".into());
        }
        self.config().validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_the_xavier_baseline() {
        let spec = DeviceSpec::new();
        assert_eq!(spec.config(), DeviceConfig::default());
        assert!(spec.validate().is_ok());
        assert!((spec.budget() - 0.033).abs() < 1e-12);
    }

    #[test]
    fn edge_spec_is_the_serving_device() {
        let spec = DeviceSpec::edge();
        let cfg = spec.config();
        // Exactly the old `serve_device()` shape: 32 SMs over the Xavier
        // defaults, no derating — checked-in serving artifacts depend on
        // this being bit-exact.
        assert_eq!(cfg, DeviceConfig { sm_count: 32, ..DeviceConfig::default() });
        assert_eq!(spec.budget(), EDGE_FRAME_BUDGET);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn slowdown_folds_through_with_slowdown() {
        let nominal = DeviceSpec::edge();
        let derated = nominal.slowdown(0.5, 0.25);
        assert_eq!(derated.config(), nominal.config().with_slowdown(0.5, 0.25));
        // Clamping comes for free from `with_slowdown`.
        assert!(nominal.slowdown(f64::NAN, -1.0).validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_budget_and_bad_config() {
        assert!(DeviceSpec::edge().frame_budget(0.0).validate().is_err());
        assert!(DeviceSpec::edge().frame_budget(f64::NAN).validate().is_err());
        assert!(DeviceSpec::edge().sm_count(0).validate().is_err());
        assert!(DeviceSpec::edge().kernel_efficiency(0.0).validate().is_err());
    }
}
