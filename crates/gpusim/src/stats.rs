//! Execution statistics: the observables NVPROF exposed to the paper.

use std::fmt;

/// Instruction-stall categories, matching the NVPROF taxonomy the paper
/// reports in §3 (Data Request, Execution Dependency, Instruction Fetch,
/// Sync, Read-only Loads, plus an aggregate Other).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StallCategory {
    /// Waiting on outstanding global loads/stores (non-read-only path).
    DataRequest,
    /// Waiting on a prior instruction's result.
    ExecutionDependency,
    /// Instruction-cache pressure.
    InstructionFetch,
    /// Barrier waits (`__syncthreads`, grid sync).
    Sync,
    /// Waiting on read-only (LDG/texture) loads.
    ReadOnlyLoad,
    /// Everything else (pipeline busy, not-selected, …).
    Other,
}

impl StallCategory {
    /// All categories in display order.
    pub const ALL: [StallCategory; 6] = [
        StallCategory::DataRequest,
        StallCategory::ExecutionDependency,
        StallCategory::InstructionFetch,
        StallCategory::Sync,
        StallCategory::ReadOnlyLoad,
        StallCategory::Other,
    ];

    /// Human-readable name used by profiler reports.
    pub fn name(self) -> &'static str {
        match self {
            StallCategory::DataRequest => "Data Request",
            StallCategory::ExecutionDependency => "Execution Dependency",
            StallCategory::InstructionFetch => "Instruction Fetch",
            StallCategory::Sync => "Sync",
            StallCategory::ReadOnlyLoad => "Read-only Loads",
            StallCategory::Other => "Other",
        }
    }

    fn index(self) -> usize {
        match self {
            StallCategory::DataRequest => 0,
            StallCategory::ExecutionDependency => 1,
            StallCategory::InstructionFetch => 2,
            StallCategory::Sync => 3,
            StallCategory::ReadOnlyLoad => 4,
            StallCategory::Other => 5,
        }
    }
}

impl fmt::Display for StallCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Stall cycles broken down by category.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StallBreakdown {
    cycles: [f64; 6],
}

impl StallBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cycles` to a category.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is negative or non-finite.
    pub fn add(&mut self, category: StallCategory, cycles: f64) {
        assert!(cycles >= 0.0 && cycles.is_finite(), "stall cycles must be non-negative");
        self.cycles[category.index()] += cycles;
    }

    /// Cycles attributed to a category.
    pub fn cycles(&self, category: StallCategory) -> f64 {
        self.cycles[category.index()]
    }

    /// Total stall cycles across categories.
    pub fn total(&self) -> f64 {
        self.cycles.iter().sum()
    }

    /// The fraction of total stalls in a category (0 when there are no
    /// stalls) — the percentage NVPROF reports.
    pub fn fraction(&self, category: StallCategory) -> f64 {
        let total = self.total();
        if total > 0.0 {
            self.cycles(category) / total
        } else {
            0.0
        }
    }

    /// Scales all categories uniformly (used when exposing raw stalls after
    /// latency hiding).
    pub fn scaled(&self, factor: f64) -> StallBreakdown {
        let mut out = *self;
        for c in &mut out.cycles {
            *c *= factor;
        }
        out
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &StallBreakdown) {
        for (a, b) in self.cycles.iter_mut().zip(&other.cycles) {
            *a += *b;
        }
    }
}

/// Per-kernel-launch statistics returned by the device.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Kernel name.
    pub name: String,
    /// Wall-clock execution time in seconds (including launch overhead).
    pub time: f64,
    /// Total device cycles the kernel occupied.
    pub cycles: f64,
    /// Busy (issue/throughput) cycles.
    pub busy_cycles: f64,
    /// Exposed stall cycles by category.
    pub stalls: StallBreakdown,
    /// SM utilization in `[0, 1]` (busy / (busy + exposed stalls)) — the
    /// `sm_efficiency`-style metric of §3.
    pub sm_utilization: f64,
    /// L1 hit rate observed.
    pub l1_hit_rate: f64,
    /// Bytes moved through L1 (total global traffic).
    pub l1_bytes: f64,
    /// Bytes reaching DRAM after caches.
    pub dram_bytes: f64,
}

impl fmt::Display for KernelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.3} ms, SM util {:.1}%, L1 hit {:.1}%",
            self.name,
            self.time * 1e3,
            self.sm_utilization * 100.0,
            self.l1_hit_rate * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates_and_fractions() {
        let mut b = StallBreakdown::new();
        b.add(StallCategory::Sync, 30.0);
        b.add(StallCategory::DataRequest, 70.0);
        assert_eq!(b.total(), 100.0);
        assert_eq!(b.fraction(StallCategory::Sync), 0.3);
        assert_eq!(b.fraction(StallCategory::ReadOnlyLoad), 0.0);
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        let b = StallBreakdown::new();
        for c in StallCategory::ALL {
            assert_eq!(b.fraction(c), 0.0);
        }
    }

    #[test]
    fn scaled_preserves_fractions() {
        let mut b = StallBreakdown::new();
        b.add(StallCategory::Sync, 10.0);
        b.add(StallCategory::Other, 90.0);
        let s = b.scaled(0.25);
        assert_eq!(s.total(), 25.0);
        assert!((s.fraction(StallCategory::Sync) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_categories() {
        let mut a = StallBreakdown::new();
        a.add(StallCategory::Sync, 5.0);
        let mut b = StallBreakdown::new();
        b.add(StallCategory::Sync, 7.0);
        b.add(StallCategory::DataRequest, 1.0);
        a.merge(&b);
        assert_eq!(a.cycles(StallCategory::Sync), 12.0);
        assert_eq!(a.total(), 13.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_stall_cycles_panic() {
        StallBreakdown::new().add(StallCategory::Sync, -1.0);
    }

    #[test]
    fn category_names_match_nvprof_taxonomy() {
        assert_eq!(StallCategory::ReadOnlyLoad.name(), "Read-only Loads");
        assert_eq!(StallCategory::ALL.len(), 6);
        assert_eq!(StallCategory::Sync.to_string(), "Sync");
    }
}
