//! Power-rail model — the INA3221 voltage-monitor substitute.
//!
//! The paper samples four rails on the Jetson board: SoC, CPU, GPU and Mem
//! (§4.5, Fig 8a). Each rail here is `static + dynamic × activity`. The GPU
//! and Mem activities rise with the number of depth planes in flight
//! (plane-level parallelism keeps more warps resident, raising sustained
//! issue and bandwidth utilization), which reproduces Fig 8a's breakdown:
//! SoC/CPU roughly flat in plane count, GPU/Mem growing.

use crate::config::PowerConfig;

/// Instantaneous power on the four monitored rails, in watts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RailPower {
    /// SoC rail (codec, fabric, I/O).
    pub soc: f64,
    /// CPU cluster rail.
    pub cpu: f64,
    /// GPU rail.
    pub gpu: f64,
    /// Memory (LPDDR) rail.
    pub mem: f64,
}

impl RailPower {
    /// Total board power.
    pub fn total(&self) -> f64 {
        self.soc + self.cpu + self.gpu + self.mem
    }
}

/// Activity levels in `[0, 1]` used to evaluate the rail model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Activity {
    /// GPU issue/occupancy activity.
    pub gpu: f64,
    /// Memory bandwidth activity.
    pub mem: f64,
    /// Host CPU activity.
    pub cpu: f64,
}

impl Activity {
    /// An idle device.
    pub const IDLE: Activity = Activity { gpu: 0.0, mem: 0.0, cpu: 0.0 };

    /// Creates an activity snapshot.
    ///
    /// # Panics
    ///
    /// Panics if any component is outside `[0, 1]`.
    pub fn new(gpu: f64, mem: f64, cpu: f64) -> Self {
        for (name, v) in [("gpu", gpu), ("mem", mem), ("cpu", cpu)] {
            assert!((0.0..=1.0).contains(&v), "{name} activity must be in [0, 1], got {v}");
        }
        Activity { gpu, mem, cpu }
    }

    /// The activity level sustained while computing holograms with
    /// `planes` depth planes in flight: `planes / (planes + k)` with `k` from
    /// the power configuration. GPU and Mem follow this curve; the host CPU
    /// sits at a moderate kernel-launch duty cycle.
    pub fn for_hologram(planes: f64, config: &PowerConfig) -> Activity {
        let p = planes.max(0.0);
        let act = p / (p + config.activity_half_planes);
        Activity { gpu: act, mem: act, cpu: 0.30 }
    }
}

impl PowerConfig {
    /// Evaluates the rail model at an activity point.
    pub fn rails(&self, activity: Activity) -> RailPower {
        RailPower {
            soc: self.soc_static,
            cpu: self.cpu_static + self.cpu_dynamic * activity.cpu,
            gpu: self.gpu_static + self.gpu_dynamic * activity.gpu,
            mem: self.mem_static + self.mem_dynamic * activity.mem,
        }
    }
}

/// Integrates rail power over time into per-rail energy (joules).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyMeter {
    /// Accumulated wall-clock time in seconds.
    pub time: f64,
    /// Accumulated per-rail energy in joules.
    pub energy: RailEnergy,
}

/// Per-rail accumulated energy, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RailEnergy {
    /// SoC rail energy.
    pub soc: f64,
    /// CPU rail energy.
    pub cpu: f64,
    /// GPU rail energy.
    pub gpu: f64,
    /// Memory rail energy.
    pub mem: f64,
}

impl RailEnergy {
    /// Total energy across rails.
    pub fn total(&self) -> f64 {
        self.soc + self.cpu + self.gpu + self.mem
    }
}

impl EnergyMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accrues `duration` seconds at the given rail powers.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is negative or non-finite.
    pub fn accumulate(&mut self, duration: f64, rails: RailPower) {
        assert!(duration >= 0.0 && duration.is_finite(), "duration must be non-negative");
        self.time += duration;
        self.energy.soc += rails.soc * duration;
        self.energy.cpu += rails.cpu * duration;
        self.energy.gpu += rails.gpu * duration;
        self.energy.mem += rails.mem * duration;
    }

    /// Time-averaged total power, or 0 for an empty meter.
    pub fn average_power(&self) -> f64 {
        if self.time > 0.0 {
            self.energy.total() / self.time
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rails_scale_with_activity() {
        let cfg = PowerConfig::default();
        let idle = cfg.rails(Activity::IDLE);
        let busy = cfg.rails(Activity::new(1.0, 1.0, 1.0));
        assert!(busy.total() > idle.total());
        assert_eq!(idle.gpu, cfg.gpu_static);
        assert_eq!(busy.gpu, cfg.gpu_static + cfg.gpu_dynamic);
        // SoC is activity-independent.
        assert_eq!(idle.soc, busy.soc);
    }

    #[test]
    fn hologram_activity_grows_and_saturates_with_planes() {
        let cfg = PowerConfig::default();
        let a2 = Activity::for_hologram(2.0, &cfg);
        let a16 = Activity::for_hologram(16.0, &cfg);
        let a64 = Activity::for_hologram(64.0, &cfg);
        assert!(a2.gpu < a16.gpu);
        assert!(a16.gpu < a64.gpu);
        assert!(a64.gpu < 1.0);
        // Zero planes ⇒ zero GPU activity.
        assert_eq!(Activity::for_hologram(0.0, &cfg).gpu, 0.0);
    }

    #[test]
    #[should_panic(expected = "activity must be in [0, 1]")]
    fn activity_bounds_checked() {
        Activity::new(1.5, 0.0, 0.0);
    }

    #[test]
    fn meter_integrates_energy() {
        let mut m = EnergyMeter::new();
        m.accumulate(2.0, RailPower { soc: 1.0, cpu: 0.5, gpu: 2.0, mem: 0.5 });
        assert_eq!(m.time, 2.0);
        assert_eq!(m.energy.total(), 8.0);
        assert_eq!(m.average_power(), 4.0);
        m.accumulate(2.0, RailPower { soc: 0.0, cpu: 0.0, gpu: 0.0, mem: 0.0 });
        assert_eq!(m.average_power(), 2.0);
    }

    #[test]
    fn empty_meter_reports_zero_power() {
        assert_eq!(EnergyMeter::new().average_power(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        EnergyMeter::new().accumulate(-1.0, RailPower::default());
    }

    #[test]
    fn sixteen_plane_hologram_power_matches_paper_anchor() {
        // The paper's baseline burns ≈ 4.41 W (Inter-Holo's 4.24 W is a
        // 3.86% reduction from it, §5.3).
        let cfg = PowerConfig::default();
        let rails = cfg.rails(Activity::for_hologram(16.0, &cfg));
        let total = rails.total();
        assert!(
            (total - 4.41).abs() < 0.25,
            "baseline hologram power {total:.2} W should be near 4.41 W"
        );
    }
}
