//! Event-driven execution timeline: streams, block scheduling and
//! occupancy over time.
//!
//! The closed-form model in [`crate::device`] charges each kernel its total
//! cycles; this module simulates the same workload *over time*: kernels are
//! enqueued on streams (per-plane streams, the way a CUDA implementation of
//! Algorithm 1 would overlap independent depth planes), blocks from every
//! ready kernel compete for SM block slots, and the simulator advances
//! through block-retirement events. The output is a timeline — occupancy
//! samples, per-kernel start/end, makespan — which exposes *why* plane-level
//! parallelism raises sustained utilization (the Fig 8a activity mechanism)
//! instead of assuming it.

use std::collections::BTreeMap;

use crate::config::DeviceConfig;
use crate::kernel::KernelDesc;
use crate::sm::{block_cost, co_resident_blocks};

/// One kernel enqueued on a stream.
#[derive(Debug, Clone)]
pub struct StreamOp {
    /// Stream id; ops on the same stream execute in order, ops on different
    /// streams may overlap.
    pub stream: u32,
    /// The kernel to run.
    pub kernel: KernelDesc,
}

/// A kernel's realized execution interval.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpan {
    /// Kernel name.
    pub name: String,
    /// Stream it ran on.
    pub stream: u32,
    /// First block start time, seconds.
    pub start: f64,
    /// Last block retirement time, seconds.
    pub end: f64,
}

/// An occupancy sample: fraction of the device's block slots busy over one
/// inter-event interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancySample {
    /// Interval start, seconds.
    pub start: f64,
    /// Interval end, seconds.
    pub end: f64,
    /// Occupied fraction of block slots in `[0, 1]`.
    pub occupancy: f64,
}

/// The simulated timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Per-kernel spans, in completion order.
    pub spans: Vec<KernelSpan>,
    /// Occupancy trace over inter-event intervals.
    pub occupancy: Vec<OccupancySample>,
    /// Total makespan, seconds.
    pub makespan: f64,
}

impl Timeline {
    /// Time-weighted mean occupancy over the whole run.
    pub fn mean_occupancy(&self) -> f64 {
        let mut weighted = 0.0;
        let mut total = 0.0;
        for s in &self.occupancy {
            let dt = s.end - s.start;
            weighted += s.occupancy * dt;
            total += dt;
        }
        if total > 0.0 {
            weighted / total
        } else {
            0.0
        }
    }

    /// The span for a kernel name, if it ran.
    pub fn span(&self, name: &str) -> Option<&KernelSpan> {
        self.spans.iter().find(|s| s.name == name)
    }
}

/// Simulates a set of stream operations on the device.
///
/// Model: the device exposes `sm_count × slots_per_sm` block slots. At every
/// scheduling step, the frontier kernel of each stream (its predecessor on
/// the stream having fully retired) contributes blocks; free slots are
/// handed out round-robin across ready kernels (the hardware work
/// distributor). A slot services a block in
/// `block_time × slots_per_sm` — co-resident blocks share their SM's
/// throughput — which makes the simulator's full-occupancy throughput equal
/// the calibrated closed-form model's (one block per SM per `block_time`).
/// The simulation advances to the next block-retirement event.
///
/// # Panics
///
/// Panics if any kernel is invalid.
pub fn simulate(ops: &[StreamOp], config: &DeviceConfig) -> Timeline {
    if ops.is_empty() {
        return Timeline { spans: Vec::new(), occupancy: Vec::new(), makespan: 0.0 };
    }

    // Per-op state.
    struct OpState {
        blocks_left: u64,
        block_time: f64,
        started_at: Option<f64>,
        retired_blocks: u64,
        total_blocks: u64,
        end: f64,
        slots_cap: u64,
    }
    let slots_per_sm = (config.sm.max_resident_warps as u64 * config.sm.warp_size as u64
        / 256)
        .max(1);
    let mut states: Vec<OpState> = ops
        .iter()
        .map(|op| {
            // holoar-lint: allow(no-panic-transitive, reason = "documented contract for hand-built descriptors; stream ops reaching the timeline carry kernels from this crate's builders, which are valid by construction")
            let cost = block_cost(&op.kernel, config).unwrap_or_else(|e| panic!("{e}"));
            // Service time per slot: SM throughput is shared among its
            // co-resident slots.
            let block_time = cost.total_cycles() / config.kernel_efficiency / config.clock_hz
                * slots_per_sm as f64;
            let blocks = op.kernel.grid_blocks as u64;
            let slots_cap = (co_resident_blocks(&op.kernel, config) as u64)
                .max(1)
                .saturating_mul(config.sm_count as u64);
            OpState {
                blocks_left: blocks,
                block_time,
                started_at: None,
                retired_blocks: 0,
                total_blocks: blocks,
                end: 0.0,
                slots_cap,
            }
        })
        .collect();

    // Stream order: indices of ops per stream, in enqueue order. BTreeMap so
    // the ready-scan below iterates streams in a fixed order run to run.
    let mut stream_queues: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        stream_queues.entry(op.stream).or_default().push(i);
    }
    let mut stream_cursor: BTreeMap<u32, usize> = BTreeMap::new();

    // Device-wide block slots.
    let total_slots: u64 = slots_per_sm * config.sm_count as u64;

    // In-flight blocks: (op index, retirement time).
    let mut in_flight: Vec<(usize, f64)> = Vec::new();
    let mut now = 0.0f64;
    let mut occupancy = Vec::new();
    let mut spans_done = 0usize;

    while spans_done < ops.len() {
        // Ready ops: frontier of each stream whose blocks are not exhausted.
        let mut ready: Vec<usize> = Vec::new();
        for (&stream, queue) in &stream_queues {
            let cursor = *stream_cursor.get(&stream).unwrap_or(&0);
            if let Some(&op_idx) = queue.get(cursor) {
                if states[op_idx].blocks_left > 0 {
                    ready.push(op_idx);
                }
            }
        }
        ready.sort_unstable(); // determinism

        // Hand out free slots round-robin across ready ops, respecting each
        // kernel's own co-residency cap.
        let mut free = total_slots.saturating_sub(in_flight.len() as u64);
        let mut progressed = true;
        while free > 0 && progressed {
            progressed = false;
            for &op_idx in &ready {
                if free == 0 {
                    break;
                }
                let state = &mut states[op_idx];
                let in_flight_for_op =
                    in_flight.iter().filter(|(i, _)| *i == op_idx).count() as u64;
                if state.blocks_left > 0 && in_flight_for_op < state.slots_cap {
                    state.blocks_left -= 1;
                    state.started_at.get_or_insert(now);
                    in_flight.push((op_idx, now + state.block_time));
                    free -= 1;
                    progressed = true;
                }
            }
        }

        // Advance to the next retirement.
        let Some(&(_, next_t)) = in_flight
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
        else {
            // Nothing in flight and nothing ready: streams are blocked on
            // ops with zero remaining blocks (shouldn't happen) — bail.
            break;
        };
        occupancy.push(OccupancySample {
            start: now,
            end: next_t,
            occupancy: (in_flight.len() as f64 / total_slots as f64).min(1.0),
        });
        now = next_t;
        // Retire everything due now.
        let mut retired: Vec<usize> = Vec::new();
        in_flight.retain(|&(op_idx, t)| {
            if t <= now + 1e-18 {
                retired.push(op_idx);
                false
            } else {
                true
            }
        });
        for op_idx in retired {
            let state = &mut states[op_idx];
            state.retired_blocks += 1;
            if state.retired_blocks == state.total_blocks {
                state.end = now;
                spans_done += 1;
                // Advance that op's stream cursor.
                let stream = ops[op_idx].stream;
                *stream_cursor.entry(stream).or_insert(0) += 1;
            }
        }
    }

    let mut spans: Vec<KernelSpan> = ops
        .iter()
        .enumerate()
        .map(|(i, op)| KernelSpan {
            name: op.kernel.name.clone(),
            stream: op.stream,
            start: states[i].started_at.unwrap_or(0.0),
            end: states[i].end,
        })
        .collect();
    spans.sort_by(|a, b| a.end.total_cmp(&b.end));
    let makespan = spans.iter().map(|s| s.end).fold(0.0, f64::max);
    Timeline { spans, occupancy, makespan }
}

/// Builds the per-plane stream workload for one GSW sweep: each depth plane
/// on its own stream (forward then backward), the way a stream-parallel
/// implementation of Algorithm 1 overlaps planes.
pub fn plane_stream_ops(pixels: u64, planes: u32) -> Vec<StreamOp> {
    use crate::hologram_kernels::{propagation_kernel, Step};
    let mut ops = Vec::with_capacity(planes as usize * 2);
    for p in 0..planes {
        let mut fwd = propagation_kernel(Step::Forward, pixels);
        fwd.name = format!("fwd_plane{p}");
        ops.push(StreamOp { stream: p, kernel: fwd });
        let mut bwd = propagation_kernel(Step::Backward, pixels);
        bwd.name = format!("bwd_plane{p}");
        ops.push(StreamOp { stream: p, kernel: bwd });
    }
    ops
}

/// Builds the shared-device workload for a fleet of hologram jobs: session
/// `s`'s kernel sequence (per iteration, per plane, forward then backward)
/// goes on stream `s`, so the timeline interleaves the sessions' block
/// waves on one SM/DRAM model the way concurrent CUDA contexts share a GPU.
/// Jobs with `plane_count == 0` contribute nothing.
///
/// # Panics
///
/// Panics if any job with planes is invalid.
pub fn session_stream_ops(jobs: &[crate::hologram_kernels::HologramJob]) -> Vec<StreamOp> {
    use crate::hologram_kernels::{job_kernels, Step};
    let mut ops = Vec::new();
    for (s, job) in jobs.iter().enumerate() {
        if job.plane_count == 0 {
            continue;
        }
        for kernel in job_kernels(job) {
            let mut kernel = kernel;
            let step = if kernel.name == Step::Forward.kernel_name() { "fwd" } else { "bwd" };
            kernel.name = format!("s{s}_{step}");
            ops.push(StreamOp { stream: s as u32, kernel });
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::kernel::InstructionMix;

    fn kernel(name: &str, blocks: u32) -> KernelDesc {
        KernelDesc::new(
            name,
            blocks,
            256,
            InstructionMix { flops: 100.0, loads: 8.0, stores: 4.0, ..Default::default() },
        )
    }

    #[test]
    fn empty_workload_is_empty_timeline() {
        let t = simulate(&[], &DeviceConfig::default());
        assert_eq!(t.makespan, 0.0);
        assert!(t.spans.is_empty());
        assert_eq!(t.mean_occupancy(), 0.0);
    }

    #[test]
    fn single_kernel_matches_closed_form_throughput() {
        let cfg = DeviceConfig::default();
        let k = kernel("solo", 512);
        let t = simulate(&[StreamOp { stream: 0, kernel: k.clone() }], &cfg);
        assert_eq!(t.spans.len(), 1);
        // Closed form: blocks_per_sm × block_time (+ drain tail); the
        // timeline should land within ~20%.
        let mut device = Device::new(cfg).unwrap();
        let closed = device.execute(&k).time - cfg.launch_overhead;
        let ratio = t.makespan / closed;
        assert!((0.8..1.2).contains(&ratio), "timeline/closed-form ratio {ratio}");
    }

    #[test]
    fn same_stream_serializes_different_streams_overlap() {
        let cfg = DeviceConfig::default();
        // Two small kernels that each fill a fraction of the device.
        let serial = simulate(
            &[
                StreamOp { stream: 0, kernel: kernel("a", 16) },
                StreamOp { stream: 0, kernel: kernel("b", 16) },
            ],
            &cfg,
        );
        let parallel = simulate(
            &[
                StreamOp { stream: 0, kernel: kernel("a", 16) },
                StreamOp { stream: 1, kernel: kernel("b", 16) },
            ],
            &cfg,
        );
        assert!(
            parallel.makespan < serial.makespan,
            "streams should overlap: {} vs {}",
            parallel.makespan,
            serial.makespan
        );
        // Serial: b starts only after a ends.
        let a_end = serial.span("a").unwrap().end;
        let b_start = serial.span("b").unwrap().start;
        assert!(b_start >= a_end - 1e-15);
    }

    #[test]
    fn more_streams_raise_occupancy() {
        let cfg = DeviceConfig::default();
        // Small per-plane kernels: 2 planes cannot fill the device, 16 can.
        let low = simulate(&plane_stream_ops(8 * 256, 2), &cfg);
        let high = simulate(&plane_stream_ops(8 * 256, 16), &cfg);
        assert!(
            high.mean_occupancy() > low.mean_occupancy(),
            "occupancy {:.2} vs {:.2}",
            high.mean_occupancy(),
            low.mean_occupancy()
        );
    }

    #[test]
    fn occupancy_samples_are_contiguous_and_bounded() {
        let cfg = DeviceConfig::default();
        let t = simulate(&plane_stream_ops(64 * 256, 4), &cfg);
        for pair in t.occupancy.windows(2) {
            assert!((pair[0].end - pair[1].start).abs() < 1e-15, "gap in occupancy trace");
        }
        for s in &t.occupancy {
            assert!((0.0..=1.0).contains(&s.occupancy));
            assert!(s.end >= s.start);
        }
    }

    #[test]
    fn stream_parallel_sweep_beats_serial_sweep() {
        // The stream-parallel plane sweep should finish no later than
        // running the same kernels back-to-back on one stream.
        let cfg = DeviceConfig::default();
        let parallel = simulate(&plane_stream_ops(128 * 256, 8), &cfg);
        let serial_ops: Vec<StreamOp> = plane_stream_ops(128 * 256, 8)
            .into_iter()
            .map(|mut op| {
                op.stream = 0;
                op
            })
            .collect();
        let serial = simulate(&serial_ops, &cfg);
        assert!(parallel.makespan <= serial.makespan + 1e-12);
    }

    #[test]
    fn session_streams_overlap_on_the_shared_device() {
        use crate::hologram_kernels::HologramJob;
        let cfg = DeviceConfig::default();
        let small = HologramJob {
            pixels: 64 * 64,
            plane_count: 4,
            coverage: 1.0,
            gsw_iterations: 1,
        };
        let fleet = vec![small; 4];
        let shared = simulate(&session_stream_ops(&fleet), &cfg);
        // Same kernels forced onto one stream: strictly serial.
        let serial_ops: Vec<StreamOp> = session_stream_ops(&fleet)
            .into_iter()
            .map(|mut op| {
                op.stream = 0;
                op
            })
            .collect();
        let serial = simulate(&serial_ops, &cfg);
        assert!(
            shared.makespan < serial.makespan,
            "session streams should interleave: {} vs {}",
            shared.makespan,
            serial.makespan
        );
        // Zero-plane sessions contribute nothing.
        let skipped = HologramJob { plane_count: 0, ..small };
        assert_eq!(session_stream_ops(&[skipped]).len(), 0);
    }

    #[test]
    fn all_kernels_complete() {
        let cfg = DeviceConfig::default();
        let ops = plane_stream_ops(16 * 256, 6);
        let t = simulate(&ops, &cfg);
        assert_eq!(t.spans.len(), ops.len());
        for s in &t.spans {
            assert!(s.end > s.start - 1e-18, "{} never ran", s.name);
        }
    }
}
