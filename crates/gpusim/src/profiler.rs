//! NVPROF-style profiling: per-kernel aggregation and report formatting.
//!
//! The paper collects SM utilization, stall breakdowns, L1 hit rates and
//! memory traffic with NVPROF (§3, §4.5). [`Profiler`] aggregates the same
//! observables across launches of each kernel name.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::stats::{KernelStats, StallBreakdown, StallCategory};

/// Aggregated statistics for one kernel name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KernelAggregate {
    /// Number of launches recorded.
    pub invocations: u64,
    /// Total execution time, seconds.
    pub total_time: f64,
    /// Total busy cycles.
    pub busy_cycles: f64,
    /// Total exposed stall cycles by category.
    pub stalls: StallBreakdown,
    /// Total L1 traffic, bytes.
    pub l1_bytes: f64,
    /// Total DRAM traffic, bytes.
    pub dram_bytes: f64,
    /// Time-weighted L1 hit rate accumulator.
    weighted_l1: f64,
}

impl KernelAggregate {
    /// Mean execution time per launch, seconds.
    pub fn mean_time(&self) -> f64 {
        if self.invocations > 0 {
            self.total_time / self.invocations as f64
        } else {
            0.0
        }
    }

    /// Aggregate SM utilization: busy / (busy + stalls).
    pub fn sm_utilization(&self) -> f64 {
        let denom = self.busy_cycles + self.stalls.total();
        if denom > 0.0 {
            self.busy_cycles / denom
        } else {
            0.0
        }
    }

    /// Time-weighted mean L1 hit rate.
    ///
    /// Returns `0.0` when no time has been recorded; use
    /// [`KernelAggregate::mean_l1_hit_rate`] to distinguish "no data" from a
    /// genuine zero hit rate.
    pub fn l1_hit_rate(&self) -> f64 {
        self.mean_l1_hit_rate().unwrap_or(0.0)
    }

    /// Time-weighted mean L1 hit rate, or `None` when this aggregate has
    /// recorded no execution time (a kernel never launched, or only
    /// zero-duration launches) — the `weighted_l1 / total_time` division
    /// would otherwise be 0/0.
    pub fn mean_l1_hit_rate(&self) -> Option<f64> {
        if self.total_time > 0.0 {
            Some(self.weighted_l1 / self.total_time)
        } else {
            None
        }
    }

    /// Fraction of stall cycles in a category (the NVPROF stall-reasons pie).
    pub fn stall_fraction(&self, category: StallCategory) -> f64 {
        self.stalls.fraction(category)
    }
}

/// Aggregates [`KernelStats`] by kernel name.
///
/// # Examples
///
/// ```
/// use holoar_gpusim::{Device, InstructionMix, KernelDesc, Profiler};
///
/// let mut device = Device::xavier();
/// let mut profiler = Profiler::new();
/// let k = KernelDesc::new("scale", 64, 256, InstructionMix {
///     flops: 4.0, loads: 1.0, stores: 1.0, ..Default::default()
/// });
/// profiler.record(&device.execute(&k));
/// profiler.record(&device.execute(&k));
/// assert_eq!(profiler.aggregate("scale").unwrap().invocations, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    kernels: BTreeMap<String, KernelAggregate>,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one kernel execution.
    pub fn record(&mut self, stats: &KernelStats) {
        let agg = self.kernels.entry(stats.name.clone()).or_default();
        agg.invocations += 1;
        agg.total_time += stats.time;
        agg.busy_cycles += stats.busy_cycles;
        agg.stalls.merge(&stats.stalls);
        agg.l1_bytes += stats.l1_bytes;
        agg.dram_bytes += stats.dram_bytes;
        agg.weighted_l1 += stats.l1_hit_rate * stats.time;
    }

    /// The aggregate for a kernel name, if recorded.
    pub fn aggregate(&self, name: &str) -> Option<&KernelAggregate> {
        self.kernels.get(name)
    }

    /// Iterates over `(name, aggregate)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &KernelAggregate)> {
        self.kernels.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of distinct kernel names recorded.
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// Formats an NVPROF-like text report: one block per kernel with timing,
    /// utilization, cache and stall-reason percentages.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "==== simulated profiler report ====");
        for (name, agg) in self.iter() {
            let _ = writeln!(
                out,
                "{name}: {} launches, total {:.3} ms, avg {:.3} ms",
                agg.invocations,
                agg.total_time * 1e3,
                agg.mean_time() * 1e3
            );
            let l1_hit = match agg.mean_l1_hit_rate() {
                Some(rate) => format!("{:>5.1}%", rate * 100.0),
                None => "  n/a".to_string(),
            };
            let _ = writeln!(
                out,
                "  sm_utilization {:>5.1}%   l1_hit {l1_hit}   l1 {:.1} MB   dram {:.2} MB",
                agg.sm_utilization() * 100.0,
                agg.l1_bytes / 1e6,
                agg.dram_bytes / 1e6
            );
            let _ = write!(out, "  stalls:");
            for cat in StallCategory::ALL {
                let _ = write!(out, " {}={:.0}%", cat.name(), agg.stall_fraction(cat) * 100.0);
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::kernel::{InstructionMix, KernelDesc};

    fn run_one(name: &str) -> KernelStats {
        let mut d = Device::xavier();
        d.execute(&KernelDesc::new(
            name,
            32,
            256,
            InstructionMix { flops: 50.0, loads: 8.0, stores: 4.0, ..Default::default() },
        ))
    }

    #[test]
    fn records_and_aggregates() {
        let mut p = Profiler::new();
        let s = run_one("a");
        p.record(&s);
        p.record(&s);
        let agg = p.aggregate("a").unwrap();
        assert_eq!(agg.invocations, 2);
        assert!((agg.total_time - 2.0 * s.time).abs() < 1e-12);
        assert!((agg.mean_time() - s.time).abs() < 1e-12);
        assert_eq!(agg.l1_bytes, 2.0 * s.l1_bytes);
    }

    #[test]
    fn distinct_kernels_tracked_separately() {
        let mut p = Profiler::new();
        p.record(&run_one("a"));
        p.record(&run_one("b"));
        assert_eq!(p.kernel_count(), 2);
        assert!(p.aggregate("c").is_none());
    }

    #[test]
    fn utilization_and_hit_rate_are_bounded() {
        let mut p = Profiler::new();
        p.record(&run_one("a"));
        let agg = p.aggregate("a").unwrap();
        assert!(agg.sm_utilization() > 0.0 && agg.sm_utilization() <= 1.0);
        assert!((agg.l1_hit_rate() - 0.99).abs() < 1e-9);
    }

    #[test]
    fn stall_fractions_sum_to_one_when_stalled() {
        let mut p = Profiler::new();
        p.record(&run_one("a"));
        let agg = p.aggregate("a").unwrap();
        let total: f64 = StallCategory::ALL.iter().map(|&c| agg.stall_fraction(c)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_aggregate_defaults() {
        let agg = KernelAggregate::default();
        assert_eq!(agg.mean_time(), 0.0);
        assert_eq!(agg.sm_utilization(), 0.0);
        assert_eq!(agg.l1_hit_rate(), 0.0);
        assert_eq!(agg.mean_l1_hit_rate(), None);
    }

    #[test]
    fn mean_l1_hit_rate_matches_recorded_data() {
        let mut p = Profiler::new();
        p.record(&run_one("a"));
        let agg = p.aggregate("a").unwrap();
        let rate = agg.mean_l1_hit_rate().expect("time was recorded");
        assert!((rate - agg.l1_hit_rate()).abs() < 1e-15);
        assert!((0.0..=1.0).contains(&rate));
    }

    #[test]
    fn report_prints_na_for_never_launched_kernels() {
        // An aggregate with zero recorded time must render "n/a", not NaN.
        let mut p = Profiler::new();
        let ghost = KernelStats {
            name: "ghost".to_string(),
            time: 0.0,
            cycles: 0.0,
            busy_cycles: 0.0,
            stalls: StallBreakdown::new(),
            sm_utilization: 0.0,
            l1_hit_rate: 0.0,
            l1_bytes: 0.0,
            dram_bytes: 0.0,
        };
        p.record(&ghost);
        let report = p.report();
        assert!(report.contains("n/a"), "{report}");
        assert!(!report.contains("NaN"), "{report}");
    }

    #[test]
    fn report_mentions_kernels_and_categories() {
        let mut p = Profiler::new();
        p.record(&run_one("fwd_prop"));
        let report = p.report();
        assert!(report.contains("fwd_prop"));
        assert!(report.contains("sm_utilization"));
        assert!(report.contains("Read-only Loads"));
    }
}
